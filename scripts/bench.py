#!/usr/bin/env python
"""Run the annotation-throughput benchmark and write a perf baseline.

Usage (from the repository root)::

    PYTHONPATH=src python scripts/bench.py [--tables N] [--output PATH]

Times the per-column annotation path against the batched engine on the
same synthetic corpus the pytest benchmark uses, checks the ≥3x speedup
and exact-equality acceptance criteria, and writes the numbers to
``BENCH_annotation.json`` so future PRs have a perf trajectory to
compare against. The pytest harness equivalent is::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_annotation_throughput.py -s
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
for path in (REPO_ROOT / "src", REPO_ROOT):
    if str(path) not in sys.path:
        sys.path.insert(0, str(path))

from benchmarks.test_bench_annotation_throughput import (  # noqa: E402
    MIN_SPEEDUP,
    N_TABLES,
    run_throughput_comparison,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tables", type=int, default=N_TABLES, help="synthetic corpus size")
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_annotation.json",
        help="where to write the JSON baseline",
    )
    args = parser.parse_args(argv)

    result = run_throughput_comparison(n_tables=args.tables)
    baseline = {
        "benchmark": "annotation_throughput",
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "machine": platform.machine(),
        **{key: round(value, 6) if isinstance(value, float) else value for key, value in result.items()},
    }
    args.output.write_text(json.dumps(baseline, indent=2) + "\n")

    print(
        f"annotated {result['n_tables']} tables / {result['n_columns']} columns "
        f"({result['unique_names']} distinct names)"
    )
    print(
        f"per-column {result['per_column_seconds']:.3f}s | "
        f"batched {result['batched_seconds']:.3f}s | "
        f"speedup {result['speedup']:.2f}x | "
        f"{result['batched_columns_per_second']:.0f} cols/sec batched"
    )
    print(f"baseline written to {args.output}")

    if not result["results_equal"]:
        print("FAIL: batched results differ from per-column results", file=sys.stderr)
        return 1
    if result["speedup"] < MIN_SPEEDUP:
        print(f"FAIL: speedup {result['speedup']:.2f}x below {MIN_SPEEDUP}x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
