#!/usr/bin/env python
"""Run perf benchmarks and write JSON baselines.

Usage (from the repository root)::

    PYTHONPATH=src python scripts/bench.py [--suite SUITE] [--tables N]

Suites:

* ``annotation`` (default) — per-column vs batched annotation
  throughput; writes ``BENCH_annotation.json`` and enforces the ≥3x
  speedup / exact-equality acceptance criteria.
* ``corpus_io`` — sharded corpus storage I/O (streaming build into an
  on-disk store, atomic save, lazy reload, single-table gets) with a
  peak-RSS note; writes ``BENCH_corpus_io.json``.
* ``index_io`` — cold ``GitTables.load()`` + first-query latency with
  and without persisted mmap-backed index artifacts; enforces the ≥5x
  cold-start speedup / exact-equality acceptance criteria and writes
  ``BENCH_index_io.json``.
* ``parallel_build`` — serial vs 4-process corpus build of the
  500-table benchmark corpus under time-compressed (real-sleep)
  GitHub-API pacing; enforces the ≥2x wall-clock speedup and
  byte-identical-directory acceptance criteria and writes
  ``BENCH_parallel_build.json``.
* ``serving`` — micro-batched multi-worker query serving vs a 1-worker
  unbatched request loop over the same store; enforces the ≥3x QPS
  speedup / byte-identical-response acceptance criteria and writes
  ``BENCH_serving.json``.
* ``ann`` — flat exact batch search vs the partitioned probe-then-
  rerank tier over a 50k-row clustered corpus; enforces the ≥5x
  throughput / recall@10 ≥ 0.95 / shared-hit bit-identity acceptance
  criteria and writes ``BENCH_ann.json``.
* ``stats`` — the full corpus-statistics surface off the materialized
  columnar projection vs the streaming per-table scan over a 5k-table
  sharded store; enforces the ≥5x speedup / exact-equality acceptance
  criteria and writes ``BENCH_stats.json``.
* ``incremental`` — +10% in-place growth of a 5k-table store
  (:meth:`GitTables.extend`: epoch build + delta artifact refresh) vs a
  from-scratch rebuild of the grown corpus; enforces the ≥5x speedup /
  exact-equality / equal-content-fingerprint acceptance criteria and
  writes ``BENCH_incremental.json``.
* ``compaction`` — online re-shard of a sharded store while a
  2-worker pool keeps serving it: serving QPS during the concurrent
  :func:`~repro.storage.compaction.compact_store` (through worker
  hot-reload of the new generation) vs steady state; enforces the
  ≥0.8x QPS ratio / bit-identical-response / equal-content-fingerprint
  acceptance criteria and writes ``BENCH_compaction.json``.
* ``all`` — every suite.

``--compare`` turns a run into a **regression gate**: results are
written to a temporary file instead of the committed baseline, every
throughput key (``*_per_second``, ``*_qps``) is compared against the
committed ``BENCH_*.json``, and any throughput more than 20% below its
baseline exits nonzero. ``--list`` prints the suite registry without
running anything; ``--help`` lists every suite with its gate. The
pytest harness equivalents (all carry the ``slow`` marker, which the
default run deselects, so ``-m slow`` is required)::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_annotation_throughput.py -s -m slow
    PYTHONPATH=src python -m pytest benchmarks/test_bench_corpus_io.py -s -m slow
    PYTHONPATH=src python -m pytest benchmarks/test_bench_index_io.py -s -m slow
    PYTHONPATH=src python -m pytest benchmarks/test_bench_parallel_build.py -s -m slow
    PYTHONPATH=src python -m pytest benchmarks/test_bench_serving.py -s -m slow
    PYTHONPATH=src python -m pytest benchmarks/test_bench_ann.py -s -m slow
    PYTHONPATH=src python -m pytest benchmarks/test_bench_stats.py -s -m slow
    PYTHONPATH=src python -m pytest benchmarks/test_bench_incremental.py -s -m slow
    PYTHONPATH=src python -m pytest benchmarks/test_bench_compaction.py -s -m slow
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
for path in (REPO_ROOT / "src", REPO_ROOT):
    if str(path) not in sys.path:
        sys.path.insert(0, str(path))

from benchmarks.test_bench_annotation_throughput import (  # noqa: E402
    MIN_SPEEDUP,
    N_TABLES,
    run_throughput_comparison,
)
from benchmarks.test_bench_corpus_io import (  # noqa: E402
    N_TABLES as IO_N_TABLES,
    SHARD_SIZE,
    run_corpus_io_benchmark,
)
from benchmarks.test_bench_index_io import (  # noqa: E402
    MIN_SPEEDUP as INDEX_MIN_SPEEDUP,
    N_TABLES as INDEX_N_TABLES,
    run_index_io_benchmark,
)
from benchmarks.test_bench_parallel_build import (  # noqa: E402
    MIN_SPEEDUP as PARALLEL_MIN_SPEEDUP,
    N_TABLES as PARALLEL_N_TABLES,
    run_parallel_build_benchmark,
)
from benchmarks.test_bench_serving import (  # noqa: E402
    MIN_SPEEDUP as SERVING_MIN_SPEEDUP,
    N_TABLES as SERVING_N_TABLES,
    WORKERS as SERVING_WORKERS,
    run_serving_benchmark,
)
from benchmarks.test_bench_ann import (  # noqa: E402
    MIN_RECALL as ANN_MIN_RECALL,
    MIN_SPEEDUP as ANN_MIN_SPEEDUP,
    N_ROWS as ANN_N_ROWS,
    run_ann_benchmark,
)
from benchmarks.test_bench_stats import (  # noqa: E402
    MIN_SPEEDUP as STATS_MIN_SPEEDUP,
    N_TABLES as STATS_N_TABLES,
    run_stats_benchmark,
)
from benchmarks.test_bench_incremental import (  # noqa: E402
    MIN_SPEEDUP as INCREMENTAL_MIN_SPEEDUP,
    N_TABLES as INCREMENTAL_N_TABLES,
    run_incremental_benchmark,
)
from benchmarks.test_bench_compaction import (  # noqa: E402
    MIN_QPS_RATIO as COMPACTION_MIN_QPS_RATIO,
    N_TABLES as COMPACTION_N_TABLES,
    WORKERS as COMPACTION_WORKERS,
    run_compaction_benchmark,
)

#: Throughputs below ``baseline * (1 - REGRESSION_TOLERANCE)`` fail the
#: ``--compare`` gate.
REGRESSION_TOLERANCE = 0.20


def _write_baseline(output: Path, benchmark: str, result: dict) -> None:
    baseline = {
        "benchmark": benchmark,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "machine": platform.machine(),
        **{
            key: round(value, 6) if isinstance(value, float) else value
            for key, value in result.items()
        },
    }
    output.write_text(json.dumps(baseline, indent=2) + "\n")
    print(f"baseline written to {output}")


def run_annotation_suite(tables: int, output: Path) -> int:
    result = run_throughput_comparison(n_tables=tables)
    _write_baseline(output, "annotation_throughput", result)
    print(
        f"annotated {result['n_tables']} tables / {result['n_columns']} columns "
        f"({result['unique_names']} distinct names)"
    )
    print(
        f"per-column {result['per_column_seconds']:.3f}s | "
        f"batched {result['batched_seconds']:.3f}s | "
        f"speedup {result['speedup']:.2f}x | "
        f"{result['batched_columns_per_second']:.0f} cols/sec batched"
    )
    if not result["results_equal"]:
        print("FAIL: batched results differ from per-column results", file=sys.stderr)
        return 1
    if result["speedup"] < MIN_SPEEDUP:
        print(f"FAIL: speedup {result['speedup']:.2f}x below {MIN_SPEEDUP}x", file=sys.stderr)
        return 1
    return 0


def run_corpus_io_suite(tables: int, output: Path) -> int:
    result = run_corpus_io_benchmark(n_tables=tables, shard_size=SHARD_SIZE)
    _write_baseline(output, "corpus_io", result)
    print(
        f"built {result['n_tables']} tables into {result['n_shards']} shards "
        f"(shard_size={result['shard_size']}) in {result['build_seconds']:.2f}s "
        f"({result['build_tables_per_second']:.0f} tables/sec, resumable commits)"
    )
    print(
        f"atomic save {result['save_seconds']:.3f}s | "
        f"lazy reload {result['reload_seconds']:.3f}s "
        f"({result['reload_tables_per_second']:.0f} tables/sec) | "
        f"{result['lazy_gets']} single-table gets {result['lazy_get_seconds']:.3f}s"
    )
    print(
        f"peak RSS {result['peak_rss_kb_note'] / 1024:.0f} MiB "
        "(process high-water mark, note only)"
    )
    if result["n_reloaded"] != result["n_tables"]:
        print("FAIL: reload returned a different table count", file=sys.stderr)
        return 1
    return 0


def run_index_io_suite(tables: int, output: Path) -> int:
    result = run_index_io_benchmark(n_tables=tables)
    _write_baseline(output, "index_io", result)
    print(
        f"cold load+first-query over {result['n_indexed_schemas']} schemas: "
        f"no artifacts {result['cold_no_artifacts_seconds']:.3f}s | "
        f"with artifacts {result['cold_with_artifacts_seconds']:.3f}s | "
        f"speedup {result['speedup']:.1f}x | "
        f"one-time publish {result['publish_seconds']:.3f}s"
    )
    if not result["results_equal"]:
        print("FAIL: artifact-backed results differ from embedded results", file=sys.stderr)
        return 1
    if result["speedup"] < INDEX_MIN_SPEEDUP:
        print(
            f"FAIL: speedup {result['speedup']:.1f}x below {INDEX_MIN_SPEEDUP}x",
            file=sys.stderr,
        )
        return 1
    return 0


def run_parallel_build_suite(tables: int, output: Path) -> int:
    result = run_parallel_build_benchmark(n_tables=tables)
    _write_baseline(output, "parallel_build", result)
    print(
        f"built {result['n_tables']} tables: serial {result['serial_seconds']:.1f}s | "
        f"{result['processes']}-process {result['parallel_seconds']:.1f}s | "
        f"speedup {result['speedup']:.2f}x "
        f"(real_time_factor={result['real_time_factor']}, {result['cpu_count']} CPU)"
    )
    if not result["byte_identical"]:
        print("FAIL: parallel directory differs from the serial build", file=sys.stderr)
        return 1
    if result["speedup"] < PARALLEL_MIN_SPEEDUP:
        print(
            f"FAIL: speedup {result['speedup']:.2f}x below {PARALLEL_MIN_SPEEDUP}x",
            file=sys.stderr,
        )
        return 1
    return 0


def run_serving_suite(tables: int, output: Path) -> int:
    result = run_serving_benchmark(n_tables=tables)
    _write_baseline(output, "serving", result)
    latency = result["latency_ms"]
    print(
        f"{result['n_requests']} searches over {result['n_tables']} tables: "
        f"1-worker unbatched {result['baseline_qps']:.0f} QPS | "
        f"{result['workers']}-worker micro-batched {result['served_qps']:.0f} QPS | "
        f"speedup {result['speedup']:.2f}x"
    )
    print(
        f"mean batch {result['mean_batch_size']:.1f} "
        f"(histogram {result['batch_size_histogram']}) | "
        f"paced latency p50 {latency['p50']:.1f}ms "
        f"p95 {latency['p95']:.1f}ms p99 {latency['p99']:.1f}ms"
    )
    if not result["results_equal"]:
        print("FAIL: served responses differ from single-shot calls", file=sys.stderr)
        return 1
    if result["worker_crashes"]:
        print("FAIL: workers crashed during the benchmark", file=sys.stderr)
        return 1
    if result["speedup"] < SERVING_MIN_SPEEDUP:
        print(
            f"FAIL: speedup {result['speedup']:.2f}x below {SERVING_MIN_SPEEDUP}x",
            file=sys.stderr,
        )
        return 1
    return 0


def run_ann_suite(rows: int, output: Path) -> int:
    result = run_ann_benchmark(n_rows=rows)
    _write_baseline(output, "ann", result)
    print(
        f"{result['n_queries']} queries x {result['n_rows']} rows "
        f"({result['n_partitions']} partitions, nprobe {result['nprobe']}): "
        f"flat {result['flat_seconds']:.3f}s | "
        f"partitioned {result['ann_seconds']:.3f}s | "
        f"speedup {result['speedup']:.1f}x | "
        f"build {result['build_seconds']:.2f}s"
    )
    print(
        f"recall@{result['top_k']} {result['recall_at_k']:.4f} "
        f"(holdout {result['holdout_recall']:.4f}) | "
        f"mean candidate fraction {result['mean_candidate_fraction']:.4f}"
    )
    if not result["shared_hits_identical"]:
        print("FAIL: shared hits scored differently across tiers", file=sys.stderr)
        return 1
    if not result["full_probe_equals_flat"]:
        print("FAIL: full probe differs from the flat tier", file=sys.stderr)
        return 1
    if result["recall_at_k"] < ANN_MIN_RECALL:
        print(
            f"FAIL: recall {result['recall_at_k']:.4f} below {ANN_MIN_RECALL}",
            file=sys.stderr,
        )
        return 1
    if result["speedup"] < ANN_MIN_SPEEDUP:
        print(
            f"FAIL: speedup {result['speedup']:.1f}x below {ANN_MIN_SPEEDUP}x",
            file=sys.stderr,
        )
        return 1
    return 0


def run_stats_suite(tables: int, output: Path) -> int:
    result = run_stats_benchmark(n_tables=tables)
    _write_baseline(output, "stats", result)
    print(
        f"stats surface over {result['n_tables']} tables "
        f"({result['n_columns']} columns, {result['n_annotations']} annotations): "
        f"scan {result['scan_seconds']:.3f}s | "
        f"columnar {result['columnar_seconds']:.3f}s | "
        f"speedup {result['speedup']:.1f}x | "
        f"one-time build+publish {result['build_publish_seconds']:.3f}s"
    )
    if not result["results_equal"]:
        print("FAIL: columnar statistics differ from the streaming scan", file=sys.stderr)
        return 1
    if result["speedup"] < STATS_MIN_SPEEDUP:
        print(
            f"FAIL: speedup {result['speedup']:.1f}x below {STATS_MIN_SPEEDUP}x",
            file=sys.stderr,
        )
        return 1
    return 0


def run_incremental_suite(tables: int, output: Path) -> int:
    result = run_incremental_benchmark(n_tables=tables)
    _write_baseline(output, "incremental", result)
    print(
        f"growth {result['n_tables']} -> {result['n_grown_tables']} tables "
        f"(epoch {result['epoch']}): "
        f"extend {result['extend_seconds']:.1f}s "
        f"({result['extend_new_tables_per_second']:.0f} new tables/sec) | "
        f"rebuild {result['rebuild_seconds']:.1f}s | "
        f"speedup {result['speedup']:.1f}x | "
        f"base build {result['base_build_seconds']:.1f}s"
    )
    if result["epoch"] != 2 or not result["epoch_sealed"]:
        print("FAIL: extend did not seal a new epoch", file=sys.stderr)
        return 1
    if not result["results_equal"]:
        print("FAIL: extended session differs from the rebuild", file=sys.stderr)
        return 1
    if not result["fingerprints_equal"]:
        print("FAIL: extended store content differs from the rebuild", file=sys.stderr)
        return 1
    if result["speedup"] < INCREMENTAL_MIN_SPEEDUP:
        print(
            f"FAIL: speedup {result['speedup']:.1f}x below {INCREMENTAL_MIN_SPEEDUP}x",
            file=sys.stderr,
        )
        return 1
    return 0


def run_compaction_suite(tables: int, output: Path) -> int:
    result = run_compaction_benchmark(n_tables=tables)
    _write_baseline(output, "compaction", result)
    print(
        f"re-shard {result['shards_before']} -> {result['shards_after']} shards "
        f"over {result['n_tables']} tables "
        f"(generation {result['generation']}, {result['compact_seconds']:.2f}s rewrite, "
        f"{result['workers']} workers): "
        f"steady {result['steady_qps']:.0f} QPS | "
        f"during compaction {result['during_compaction_qps']:.0f} QPS | "
        f"ratio {result['qps_ratio']:.2f}x"
    )
    if result["generation"] != 2:
        print("FAIL: compaction did not publish a new generation", file=sys.stderr)
        return 1
    if not result["fingerprints_equal"]:
        print("FAIL: compaction changed the content fingerprint", file=sys.stderr)
        return 1
    if not result["results_equal"]:
        print("FAIL: served answers changed during the re-shard", file=sys.stderr)
        return 1
    if not result["pool_settled_on_new_generation"] or not result["workers_reloaded"]:
        print("FAIL: workers never hot-reloaded the new layout", file=sys.stderr)
        return 1
    if result["qps_ratio"] < COMPACTION_MIN_QPS_RATIO:
        print(
            f"FAIL: QPS during compaction fell to {result['qps_ratio']:.2f}x of "
            f"steady state (gate {COMPACTION_MIN_QPS_RATIO}x)",
            file=sys.stderr,
        )
        return 1
    return 0


def compare_against_baseline(baseline_path: Path, fresh: dict) -> list[str]:
    """Throughput regressions of ``fresh`` vs a committed baseline.

    Only throughput keys (``*_per_second``, ``*_qps``) are gated —
    higher is better, and they are robust to machine-to-machine scale
    differences in a way absolute seconds are not. Returns
    human-readable regression lines (empty when the gate passes).
    """
    baseline = json.loads(baseline_path.read_text())
    regressions = []
    for key, old in baseline.items():
        if not (key.endswith("_per_second") or key.endswith("_qps")):
            continue
        if not isinstance(old, (int, float)) or isinstance(old, bool) or old <= 0:
            continue
        new = fresh.get(key)
        if not isinstance(new, (int, float)) or isinstance(new, bool):
            continue
        if new < old * (1.0 - REGRESSION_TOLERANCE):
            regressions.append(
                f"{key}: {new:.1f} vs baseline {old:.1f} "
                f"({(new / old - 1.0) * 100.0:+.0f}%, tolerance -{REGRESSION_TOLERANCE:.0%})"
            )
    return regressions


#: Suite registry: name → (runner, default table count, baseline file,
#: one-line description shown by ``--help``).
SUITES = {
    "annotation": (
        run_annotation_suite,
        N_TABLES,
        "BENCH_annotation.json",
        f"per-column vs batched annotation throughput (>={MIN_SPEEDUP}x gate)",
    ),
    "corpus_io": (
        run_corpus_io_suite,
        IO_N_TABLES,
        "BENCH_corpus_io.json",
        "sharded store build / atomic save / lazy reload I/O",
    ),
    "index_io": (
        run_index_io_suite,
        INDEX_N_TABLES,
        "BENCH_index_io.json",
        f"cold start with vs without mmap'd index artifacts (>={INDEX_MIN_SPEEDUP}x gate)",
    ),
    "parallel_build": (
        run_parallel_build_suite,
        PARALLEL_N_TABLES,
        "BENCH_parallel_build.json",
        f"serial vs multi-process corpus build (>={PARALLEL_MIN_SPEEDUP}x gate)",
    ),
    "serving": (
        run_serving_suite,
        SERVING_N_TABLES,
        "BENCH_serving.json",
        f"{SERVING_WORKERS}-worker micro-batched serving vs 1-worker unbatched "
        f"loop (>={SERVING_MIN_SPEEDUP}x QPS gate)",
    ),
    "ann": (
        run_ann_suite,
        ANN_N_ROWS,
        "BENCH_ann.json",
        f"flat vs partitioned probe-then-rerank batch search "
        f"(>={ANN_MIN_SPEEDUP}x at recall@10 >= {ANN_MIN_RECALL} gate)",
    ),
    "stats": (
        run_stats_suite,
        STATS_N_TABLES,
        "BENCH_stats.json",
        f"columnar projection vs streaming scan statistics (>={STATS_MIN_SPEEDUP}x gate)",
    ),
    "incremental": (
        run_incremental_suite,
        INCREMENTAL_N_TABLES,
        "BENCH_incremental.json",
        f"in-place +10% growth vs from-scratch rebuild (>={INCREMENTAL_MIN_SPEEDUP}x gate)",
    ),
    "compaction": (
        run_compaction_suite,
        COMPACTION_N_TABLES,
        "BENCH_compaction.json",
        f"online re-shard under a live {COMPACTION_WORKERS}-worker pool "
        f"(QPS ratio >= {COMPACTION_MIN_QPS_RATIO}x gate)",
    ),
}


def main(argv: list[str] | None = None) -> int:
    suite_lines = "\n".join(
        f"  {name:<15} {description}"
        for name, (_, _, _, description) in SUITES.items()
    )
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        epilog=f"suites:\n{suite_lines}\n  {'all':<15} every suite",
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--suite",
        choices=(*SUITES, "all"),
        default="annotation",
        help="which benchmark suite to run (listed below)",
    )
    parser.add_argument(
        "--tables",
        type=int,
        default=None,
        help="override corpus size (tables; rows for the ann suite)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="where to write the JSON baseline (single-suite runs only)",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="print the suite registry (name, default size, baseline, gate) and exit",
    )
    parser.add_argument(
        "--compare",
        action="store_true",
        help=(
            "regression gate: run against a temporary output and fail "
            f"(exit nonzero) when any throughput key falls more than "
            f"{REGRESSION_TOLERANCE:.0%} below the committed baseline"
        ),
    )
    args = parser.parse_args(argv)

    if args.list:
        for name, (_, default_size, baseline_name, description) in SUITES.items():
            print(f"{name:<15} size={default_size:<7} {baseline_name:<26} {description}")
        return 0

    status = 0
    for name in SUITES if args.suite == "all" else (args.suite,):
        runner, default_tables, baseline_name, _ = SUITES[name]
        committed = REPO_ROOT / baseline_name
        if args.compare:
            if not committed.exists():
                print(f"SKIP {name}: no committed {baseline_name} to compare against")
                continue
            with tempfile.TemporaryDirectory() as tmp:
                fresh_path = Path(tmp) / baseline_name
                status |= runner(args.tables or default_tables, fresh_path)
                fresh = json.loads(fresh_path.read_text())
            regressions = compare_against_baseline(committed, fresh)
            for line in regressions:
                print(f"FAIL {name} regression: {line}", file=sys.stderr)
            if regressions:
                status = 1
            else:
                print(f"compare {name}: no throughput regression vs {baseline_name}")
            continue
        output = (
            args.output
            if args.output and args.suite != "all"
            else committed
        )
        status |= runner(args.tables or default_tables, output)
    return status


if __name__ == "__main__":
    raise SystemExit(main())
