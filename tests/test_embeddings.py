"""Unit tests for the embedding substrates (repro.embeddings)."""

import numpy as np
import pytest

from repro.embeddings.fasttext import FastTextModel
from repro.embeddings.hashing import hashed_unit_vector, ngrams, tokenize
from repro.embeddings.sentence import SentenceEncoder
from repro.embeddings.similarity import (
    NearestNeighbourIndex,
    cosine_similarity,
    cosine_similarity_matrix,
)


class TestHashing:
    def test_tokenize(self):
        assert tokenize("Product_ID 42") == ["product", "id", "42"]

    def test_tokenize_empty(self):
        assert tokenize("!!!") == []

    def test_ngrams_include_boundaries(self):
        grams = ngrams("id", sizes=(3,))
        assert "<id>" in grams

    def test_ngrams_of_long_token(self):
        grams = ngrams("status", sizes=(3,))
        assert "<st" in grams and "us>" in grams

    def test_hashed_vector_is_unit_and_deterministic(self):
        a = hashed_unit_vector("id", 32)
        b = hashed_unit_vector("id", 32)
        assert np.allclose(a, b)
        assert np.linalg.norm(a) == pytest.approx(1.0)

    def test_different_tokens_nearly_orthogonal(self):
        a = hashed_unit_vector("country", 64)
        b = hashed_unit_vector("latitude", 64)
        assert abs(float(a @ b)) < 0.5


class TestFastTextModel:
    def test_identical_strings_have_similarity_one(self):
        model = FastTextModel()
        assert model.similarity("status", "Status") == pytest.approx(1.0)

    def test_compound_shares_similarity_with_parts(self):
        model = FastTextModel()
        assert model.similarity("product id", "id") > 0.3
        assert model.similarity("product id", "id") > model.similarity("species", "id")

    def test_unrelated_strings_have_low_similarity(self):
        model = FastTextModel()
        assert model.similarity("latitude", "email") < 0.4

    def test_empty_string_embeds_to_zero(self):
        model = FastTextModel()
        assert np.allclose(model.embed(""), 0.0)

    def test_embed_batch_shape(self):
        model = FastTextModel(dim=32)
        matrix = model.embed_batch(["a", "b", "c"])
        assert matrix.shape == (3, 32)

    def test_embeddings_are_unit_norm(self):
        model = FastTextModel()
        assert np.linalg.norm(model.embed("country code")) == pytest.approx(1.0)

    def test_invalid_dim_rejected(self):
        with pytest.raises(ValueError):
            FastTextModel(dim=2)


class TestSentenceEncoder:
    def test_schema_embedding_is_unit_norm(self):
        encoder = SentenceEncoder()
        vector = encoder.embed_schema(["order id", "order date", "status"])
        assert np.linalg.norm(vector) == pytest.approx(1.0)

    def test_related_sentences_are_closer(self):
        encoder = SentenceEncoder()
        query = encoder.embed("sales amount per product")
        orders = encoder.embed_schema(["product id", "quantity", "total price", "status"])
        sensors = encoder.embed_schema(["timestamp", "sensor id", "temperature"])
        assert cosine_similarity(query, orders) > cosine_similarity(query, sensors)

    def test_empty_schema_embeds_to_zero(self):
        encoder = SentenceEncoder()
        assert np.allclose(encoder.embed_schema([]), 0.0)

    def test_common_words_are_downweighted(self):
        encoder = SentenceEncoder()
        with_stopwords = encoder.embed("the price of the order")
        without = encoder.embed("price order")
        assert cosine_similarity(with_stopwords, without) > 0.8

    def test_invalid_dim_rejected(self):
        with pytest.raises(ValueError):
            SentenceEncoder(dim=4)


class TestSimilarityUtilities:
    def test_cosine_similarity_bounds(self):
        a = np.array([1.0, 0.0])
        assert cosine_similarity(a, a) == pytest.approx(1.0)
        assert cosine_similarity(a, -a) == pytest.approx(-1.0)
        assert cosine_similarity(a, np.zeros(2)) == 0.0

    def test_similarity_matrix_shape(self):
        queries = np.eye(3)
        index = np.eye(3)[:2]
        matrix = cosine_similarity_matrix(queries, index)
        assert matrix.shape == (3, 2)
        assert matrix[0, 0] == pytest.approx(1.0)

    def test_nearest_neighbour_index(self):
        labels = ["a", "b", "c"]
        vectors = np.eye(3)
        index = NearestNeighbourIndex(labels, vectors)
        best = index.best(np.array([0.9, 0.1, 0.0]))
        assert best[0] == "a"
        top2 = index.query(np.array([0.9, 0.5, 0.0]), top_k=2)
        assert [label for label, _ in top2] == ["a", "b"]

    def test_nearest_neighbour_length_mismatch(self):
        with pytest.raises(ValueError):
            NearestNeighbourIndex(["a"], np.eye(2))


class TestBatchQueries:
    @pytest.fixture(scope="class")
    def index(self):
        model = FastTextModel(dim=32)
        labels = [f"type {i}" for i in range(40)]
        return NearestNeighbourIndex(labels, model.embed_batch(labels))

    def test_query_batch_matches_row_wise_query_exactly(self, index):
        model = FastTextModel(dim=32)
        matrix = model.embed_batch(["status", "order id", "unrelated words", "type 7"])
        batched = index.query_batch(matrix, top_k=3)
        assert batched == [index.query(matrix[i], top_k=3) for i in range(matrix.shape[0])]

    def test_query_batch_matches_full_sort_reference(self, index):
        model = FastTextModel(dim=32)
        matrix = model.embed_batch(["customer email", "status"])
        for row, hits in zip(matrix, index.query_batch(matrix, top_k=5)):
            reference = index.query(row, top_k=len(index))[:5]
            assert hits == reference

    def test_zero_vector_query_row_scores_zero(self, index):
        matrix = np.vstack([np.zeros(32), np.ones(32)])
        zero_hits, one_hits = index.query_batch(matrix, top_k=2)
        assert all(score == 0.0 for _, score in zero_hits)
        assert len(zero_hits) == len(one_hits) == 2

    def test_empty_query_batch(self, index):
        assert index.query_batch(np.zeros((0, 32)), top_k=3) == []

    def test_empty_index(self):
        empty = NearestNeighbourIndex([], np.zeros((0, 8)))
        assert empty.query(np.ones(8)) == []
        assert empty.query_batch(np.ones((2, 8))) == [[], []]
        assert empty.best(np.ones(8)) is None

    def test_top_k_batch_clamps_to_index_size(self, index):
        matrix = FastTextModel(dim=32).embed_batch(["status"])
        hits = index.top_k_batch(matrix, top_k=10_000)[0]
        assert len(hits) == len(index)
        scores = [score for _, score in hits]
        assert scores == sorted(scores, reverse=True)

    def test_ties_break_by_ascending_index(self):
        # Two identical index vectors tie exactly; the lower index wins.
        vectors = np.vstack([np.eye(4)[0], np.eye(4)[0], np.eye(4)[1]])
        index = NearestNeighbourIndex(["first", "twin", "other"], vectors)
        hits = index.query(np.eye(4)[0], top_k=2)
        assert [label for label, _ in hits] == ["first", "twin"]


class TestBatchEmbeddingIdentity:
    def test_fasttext_batch_rows_equal_single_embeds(self):
        batch_model, single_model = FastTextModel(dim=32), FastTextModel(dim=32)
        texts = ["order id", "Status", "", "order id", "naïve column"]
        batch = batch_model.embed_batch(texts)
        singles = np.vstack([single_model.embed(text) for text in texts])
        assert np.array_equal(batch, singles)

    def test_sentence_batch_rows_equal_single_embeds(self):
        batch_model, single_model = SentenceEncoder(dim=32), SentenceEncoder(dim=32)
        texts = ["total price per order", "sensor id", "total price per order"]
        batch = batch_model.embed_many(texts)
        singles = np.vstack([single_model.embed(text) for text in texts])
        assert np.array_equal(batch, singles)

    def test_batch_results_independent_of_batch_composition(self):
        reference = FastTextModel(dim=32).embed_batch(["alpha", "beta", "gamma"])
        shuffled_model = FastTextModel(dim=32)
        shuffled = shuffled_model.embed_batch(["gamma", "alpha", "delta", "beta"])
        assert np.array_equal(reference[0], shuffled[1])
        assert np.array_equal(reference[1], shuffled[3])
        assert np.array_equal(reference[2], shuffled[0])

    def test_similarity_delegates_to_shared_cosine(self):
        model = FastTextModel()
        from repro.embeddings.similarity import cosine_similarity as shared

        left, right = model.embed("product id"), model.embed("id")
        assert model.similarity("product id", "id") == shared(left, right)
        assert model.similarity("", "anything") == 0.0
