"""Integration tests for the full pipeline and corpus statistics."""

import pytest

from repro.config import AnnotationConfig, ExtractionConfig, PipelineConfig
from repro.core.annotation import AnnotationMethod
from repro.core.pipeline import CorpusBuilder, build_corpus
from repro.core.stats import AnnotationStatistics, CorpusStatistics, dimension_cdf, top_types
from repro.errors import PipelineConfigError
from repro.github.content import GeneratorConfig


class TestPipelineConfig:
    def test_default_validates(self):
        PipelineConfig.default().validate()

    def test_small_and_large_presets(self):
        assert PipelineConfig.small().target_tables < PipelineConfig.large().target_tables

    def test_invalid_topic_count_rejected_at_construction(self):
        with pytest.raises(PipelineConfigError):
            ExtractionConfig(topic_count=0)

    def test_invalid_threshold_rejected_at_construction(self):
        with pytest.raises(PipelineConfigError):
            AnnotationConfig(semantic_similarity_threshold=2.0)

    def test_unknown_ontology_rejected_at_construction(self):
        with pytest.raises(PipelineConfigError):
            AnnotationConfig(ontologies=("freebase",))

    def test_replace_overrides_and_revalidates(self):
        config = PipelineConfig.small()
        tweaked = config.replace(target_tables=37, seed=9)
        assert (tweaked.target_tables, tweaked.seed) == (37, 9)
        # Untouched stage configs are carried over, not rebuilt.
        assert tweaked.extraction is config.extraction
        with pytest.raises(PipelineConfigError):
            config.replace(target_tables=0)


class TestPipelineEndToEnd:
    def test_pipeline_produces_tables(self, pipeline_result):
        assert len(pipeline_result.corpus) > 20
        assert pipeline_result.table_count == len(pipeline_result.corpus)

    def test_parse_success_rate_is_high(self, pipeline_result):
        assert pipeline_result.parsing_report.success_rate > 0.9

    def test_only_permissive_licenses_survive(self, pipeline_result, gittables_corpus):
        from repro.github.licenses import is_permissive

        assert all(is_permissive(annotated.license_key) for annotated in gittables_corpus)

    def test_filter_report_counts_are_consistent(self, pipeline_result):
        report = pipeline_result.filter_report
        assert report.evaluated == report.kept + report.dropped
        assert 0.0 <= report.drop_rate_excluding_license() <= 1.0

    def test_every_table_respects_minimum_dimensions(self, gittables_corpus, small_config):
        for annotated in gittables_corpus:
            assert annotated.table.num_rows >= small_config.curation.min_rows
            assert annotated.table.num_columns >= small_config.curation.min_columns

    def test_no_social_media_columns_survive(self, gittables_corpus):
        blocked = ("twitter", "tweet", "reddit", "facebook")
        for annotated in gittables_corpus:
            for name in annotated.table.header:
                assert not any(term in name.lower() for term in blocked)

    def test_every_table_is_annotated_by_the_semantic_method(self, gittables_corpus):
        without = [
            annotated
            for annotated in gittables_corpus
            if not annotated.annotations.for_method(AnnotationMethod.SEMANTIC)
        ]
        assert len(without) < 0.2 * len(gittables_corpus)

    def test_target_table_count_is_respected(self):
        config = PipelineConfig(target_tables=10)
        result = build_corpus(config, generator_config=GeneratorConfig.small(seed=5))
        assert len(result.corpus) <= 10

    def test_builder_accepts_existing_instance(self, github_instance):
        builder = CorpusBuilder(PipelineConfig(target_tables=15), instance=github_instance)
        result = builder.build()
        assert len(result.corpus) <= 15

    def test_pipeline_is_deterministic(self):
        config = PipelineConfig(target_tables=12, seed=77)
        generator = GeneratorConfig(n_repositories=60, mean_rows=30, seed=77)
        first = build_corpus(config, generator_config=generator)
        second = build_corpus(config, generator_config=generator)
        assert [a.table_id for a in first.corpus] == [a.table_id for a in second.corpus]


class TestCorpusStatistics:
    def test_basic_shape(self, gittables_corpus):
        stats = CorpusStatistics.from_corpus(gittables_corpus)
        assert stats.table_count == len(gittables_corpus)
        assert stats.avg_rows > 0
        assert stats.avg_cols >= 2

    def test_atomic_fractions_sum_to_one(self, gittables_corpus):
        stats = CorpusStatistics.from_corpus(gittables_corpus)
        assert sum(stats.atomic_type_fractions.values()) == pytest.approx(1.0, abs=1e-6)

    def test_table1_and_table4_rows(self, gittables_corpus):
        stats = CorpusStatistics.from_corpus(gittables_corpus)
        row = stats.as_table1_row()
        assert row["n_tables"] == stats.table_count
        table4 = stats.as_table4_rows()
        assert set(table4) == {"numeric", "string", "other"}

    def test_gittables_is_larger_than_webtables(self, gittables_corpus, viznet_corpus):
        git = CorpusStatistics.from_corpus(gittables_corpus)
        viz = CorpusStatistics.from_corpus(viznet_corpus)
        assert git.avg_rows > viz.avg_rows
        assert git.avg_cols > viz.avg_cols

    def test_dimension_cdf_is_monotone(self, gittables_corpus):
        cdf = dimension_cdf(gittables_corpus, axis="rows")
        counts = [count for _, count in cdf]
        assert counts == sorted(counts)
        assert counts[-1] == len(gittables_corpus)

    def test_dimension_cdf_invalid_axis(self, gittables_corpus):
        with pytest.raises(ValueError):
            dimension_cdf(gittables_corpus, axis="cells")


class TestAnnotationStatistics:
    def test_table5_rows_cover_all_combinations(self, gittables_corpus):
        stats = AnnotationStatistics.from_corpus(gittables_corpus)
        rows = stats.as_table5_rows()
        assert len(rows) == 4
        combos = {(row["method"], row["ontology"]) for row in rows}
        assert ("syntactic", "dbpedia") in combos and ("semantic", "schema_org") in combos

    def test_semantic_covers_more_columns_than_syntactic(self, gittables_corpus):
        stats = AnnotationStatistics.from_corpus(gittables_corpus)
        assert stats.mean_coverage["semantic"] > stats.mean_coverage["syntactic"]

    def test_semantic_annotates_more_columns_per_ontology(self, gittables_corpus):
        stats = AnnotationStatistics.from_corpus(gittables_corpus)
        for ontology in ("dbpedia", "schema_org"):
            assert (
                stats.stats_for("semantic", ontology).annotated_columns
                >= stats.stats_for("syntactic", ontology).annotated_columns
            )

    def test_similarity_scores_within_bounds(self, gittables_corpus):
        stats = AnnotationStatistics.from_corpus(gittables_corpus)
        for scores in stats.similarity_scores.values():
            assert all(0.0 <= score <= 1.0 for score in scores)

    def test_top_types_sorted_by_count(self, gittables_corpus):
        stats = AnnotationStatistics.from_corpus(gittables_corpus)
        top = top_types(stats, "syntactic", "dbpedia", k=10)
        counts = [count for _, count in top]
        assert counts == sorted(counts, reverse=True)

    def test_unknown_combination_raises(self, gittables_corpus):
        stats = AnnotationStatistics.from_corpus(gittables_corpus)
        with pytest.raises(KeyError):
            stats.stats_for("semantic", "freebase")
