"""Crash/concurrency harness for process-parallel corpus builds.

The contract under test (see :mod:`repro.storage.parallel`): a
``processes=N`` build finalizes a directory **byte-identical** to a
serial build of the same configuration, and stays resumable to that
same byte-identical directory after SIGKILLing any worker at any commit
point, killing the coordinator during finalize/compaction, or switching
the process count between sessions.

The fault injector (``fault_injector`` fixture, built on
:class:`repro.storage.parallel.FaultSpec`) and the subprocess build
runner live in ``tests/conftest.py``.
"""

from __future__ import annotations

import json
import os
import signal
import time

import pytest

from repro.api import GitTables
from repro.config import ExtractionConfig, PipelineConfig
from repro.core.corpus import AnnotatedTable, GitTablesCorpus
from repro.core.pipeline import CorpusBuilder, build_corpus
from repro.dataframe.table import Table
from repro.errors import CorpusError, PipelineConfigError
from repro.github.content import GeneratorConfig
from repro.storage import BuildCheckpoint, ShardedJsonlStore
from repro.storage._io import directory_file_bytes as _dir_bytes
from repro.storage.checkpoint import worker_checkpoint_ids
from repro.storage.parallel import (
    ParallelCorpusBuilder,
    WorkerShardWriter,
    build_mp_context,
    has_parallel_state,
    worker_log_filename,
    worker_shard_filename,
)

BATCH = 8
SHARDS = 8


@pytest.fixture(scope="module")
def par_config():
    return PipelineConfig(
        extraction=ExtractionConfig(topic_count=8), target_tables=40, seed=7
    )


@pytest.fixture(scope="module")
def par_generator():
    return GeneratorConfig(n_repositories=100, mean_rows=25, seed=7)


@pytest.fixture(scope="module")
def serial_reference(tmp_path_factory, par_config, par_generator):
    """A one-shot single-process build: the byte-level ground truth."""
    store = tmp_path_factory.mktemp("serial-ref") / "store"
    result = build_corpus(
        par_config,
        generator_config=par_generator,
        batch_size=BATCH,
        store_dir=store,
        shard_size=SHARDS,
    )
    return store, result




def _parallel_build(store_dir, config, generator, processes, fault=None):
    builder = CorpusBuilder(config=config, generator_config=generator, batch_size=BATCH)
    return ParallelCorpusBuilder(builder, processes=processes, fault=fault).build(
        store_dir, shard_size=SHARDS
    )


class TestByteIdentity:
    def test_four_process_build_matches_serial_bytes(
        self, tmp_path, par_config, par_generator, serial_reference
    ):
        """The headline acceptance: 4 processes, same bytes as serial."""
        reference_dir, reference = serial_reference
        store = tmp_path / "store"
        result = build_corpus(
            par_config,
            generator_config=par_generator,
            batch_size=BATCH,
            store_dir=store,
            shard_size=SHARDS,
            processes=4,
        )
        assert result.table_count == par_config.target_tables
        assert _dir_bytes(store) == _dir_bytes(reference_dir)
        # No worker-scoped residue, no checkpoints.
        assert BuildCheckpoint.load(store) is None
        assert worker_checkpoint_ids(store) == []
        assert not has_parallel_state(store)
        # The corpora read back equal, table for table.
        assert [a.to_dict() for a in result.corpus] == [
            a.to_dict() for a in reference.corpus
        ]

    def test_parallel_report_accounts_for_all_work(
        self, tmp_path, par_config, par_generator
    ):
        store = tmp_path / "store"
        result = build_corpus(
            par_config,
            generator_config=par_generator,
            batch_size=BATCH,
            store_dir=store,
            shard_size=SHARDS,
            processes=3,
        )
        report = result.pipeline_report
        assert report.sessions == 1
        assert report.items_collected == par_config.target_tables
        # Workers annotate only filter survivors, and at least every
        # table that made the corpus.
        assert report.stage("annotation").items_in >= par_config.target_tables
        assert report.stage("parsing").items_in >= report.stage("annotation").items_in
        assert report.stage("extraction").items_out == report.stage("parsing").items_in
        # Legacy curation stats are rebuilt from corpus metadata.
        assert result.curation_report.tables_processed == par_config.target_tables
        assert result.extraction_report.api_requests > 0

    def test_processes_config_field_is_honoured(
        self, tmp_path, par_generator, par_config, serial_reference
    ):
        reference_dir, _ = serial_reference
        config = par_config.replace(processes=2)
        store = tmp_path / "store"
        build_corpus(
            config,
            generator_config=par_generator,
            batch_size=BATCH,
            store_dir=store,
            shard_size=SHARDS,
        )
        assert _dir_bytes(store) == _dir_bytes(reference_dir)

    def test_invalid_process_counts_rejected(self):
        with pytest.raises(PipelineConfigError):
            PipelineConfig(processes=0)
        builder = CorpusBuilder(config=PipelineConfig.small())
        with pytest.raises(CorpusError):
            ParallelCorpusBuilder(builder, processes=0)
        with pytest.raises(CorpusError):
            ParallelCorpusBuilder(builder, processes=100)


class TestWorkerCrashInjection:
    """SIGKILL a worker mid-commit; resume must reach the serial bytes."""

    @pytest.mark.parametrize(
        "point",
        ["before-shard-append", "before-log-append", "torn-log-append", "after-log-append"],
    )
    def test_kill_worker_mid_commit_then_resume(
        self, tmp_path, par_config, par_generator, serial_reference, fault_injector, point
    ):
        reference_dir, _ = serial_reference
        store = tmp_path / "store"
        fault = fault_injector(commit_n=2, worker=1, point=point)
        with pytest.raises(CorpusError, match="worker 1 died"):
            _parallel_build(store, par_config, par_generator, processes=3, fault=fault)
        # The wreckage is a resumable parallel directory.
        assert has_parallel_state(store)
        assert BuildCheckpoint.load(store) is not None
        # Resume under a *different* process count; same final bytes.
        result = _parallel_build(store, par_config, par_generator, processes=2)
        assert result.table_count == par_config.target_tables
        assert result.pipeline_report.sessions == 2
        assert _dir_bytes(store) == _dir_bytes(reference_dir)

    def test_torn_log_tail_is_truncated_on_worker_resume(
        self, tmp_path, par_config, par_generator, fault_injector
    ):
        store = tmp_path / "store"
        fault = fault_injector(commit_n=2, worker=0, point="torn-log-append")
        with pytest.raises(CorpusError):
            _parallel_build(store, par_config, par_generator, processes=2, fault=fault)
        log_path = store / worker_log_filename(0)
        torn_size = log_path.stat().st_size
        data = log_path.read_bytes()
        assert not data.endswith(b"\n")  # the tear is really on disk
        writer = WorkerShardWriter(store, worker=0, shard_size=SHARDS)
        assert log_path.stat().st_size < torn_size
        assert log_path.read_bytes().endswith(b"\n")
        # Only complete records survived the replay.
        assert writer.committed_count == len(writer._tables)

    def test_mid_build_directory_is_readable(
        self, tmp_path, par_config, par_generator, fault_injector, parallel_build_subprocess
    ):
        """The merged mid-build manifest serves lazy readers."""
        store = tmp_path / "store"
        process = parallel_build_subprocess(
            store,
            par_config,
            par_generator,
            processes=3,
            fault=fault_injector(commit_n=1, worker=None, point="before-manifest-publish"),
        )
        assert process.exitcode == -signal.SIGKILL
        manifest = json.loads((store / "manifest.json").read_text())
        assert "parallel" in manifest
        corpus = GitTablesCorpus.load(store)
        assert isinstance(corpus.store, ShardedJsonlStore)
        assert len(corpus) > 0
        listed = {annotated.table_id for annotated in corpus}
        assert set(manifest["tables"]) == listed


class TestCoordinatorCrashInjection:
    """Kill the build during finalize (compaction) and mid-dispatch."""

    @pytest.mark.parametrize("point", ["before-manifest-publish", "before-cleanup"])
    def test_kill_during_finalize_then_resume(
        self,
        tmp_path,
        par_config,
        par_generator,
        serial_reference,
        fault_injector,
        parallel_build_subprocess,
        point,
    ):
        reference_dir, _ = serial_reference
        store = tmp_path / "store"
        process = parallel_build_subprocess(
            store,
            par_config,
            par_generator,
            processes=3,
            fault=fault_injector(commit_n=1, worker=None, point=point),
        )
        assert process.exitcode == -signal.SIGKILL
        result = build_corpus(
            par_config,
            generator_config=par_generator,
            batch_size=BATCH,
            store_dir=store,
            shard_size=SHARDS,
            processes=2,
        )
        assert result.table_count == par_config.target_tables
        assert _dir_bytes(store) == _dir_bytes(reference_dir)

    def test_kill_coordinator_mid_build_then_resume(
        self, tmp_path, par_config, par_generator, serial_reference, parallel_build_entry
    ):
        """SIGKILL the whole coordinator while workers are running."""
        reference_dir, _ = serial_reference
        store = tmp_path / "store"
        ctx = build_mp_context()
        process = ctx.Process(
            target=parallel_build_entry,
            args=(str(store), par_config, par_generator, 3, None, BATCH, SHARDS),
        )
        process.start()
        deadline = time.monotonic() + 60.0
        # Wait for evidence of committed parallel work, then kill.
        while time.monotonic() < deadline:
            if any(store.glob("manifest-*.log")):
                break
            if process.exitcode is not None:  # pragma: no cover - too fast
                break
            time.sleep(0.01)
        if process.exitcode is None:
            os.kill(process.pid, signal.SIGKILL)
        process.join(timeout=10.0)
        # Orphaned workers notice the dead coordinator and exit on
        # their own (and until they do, their scope locks keep a
        # resumed session from touching their files); give them a
        # moment so the resume below does not have to wait on locks.
        time.sleep(3.0)
        result = build_corpus(
            par_config,
            generator_config=par_generator,
            batch_size=BATCH,
            store_dir=store,
            shard_size=SHARDS,
            processes=3,
        )
        assert result.table_count == par_config.target_tables
        assert _dir_bytes(store) == _dir_bytes(reference_dir)


class TestCrossModeResume:
    """Process counts (including 1) are interchangeable across sessions."""

    def test_parallel_partial_resumed_serially(
        self, tmp_path, par_config, par_generator, serial_reference, fault_injector
    ):
        reference_dir, _ = serial_reference
        store = tmp_path / "store"
        with pytest.raises(CorpusError):
            _parallel_build(
                store,
                par_config,
                par_generator,
                processes=3,
                fault=fault_injector(commit_n=1, worker=0, point="after-log-append"),
            )
        # processes=1 on a parallel-state directory routes through the
        # coordinator and still finalizes the canonical layout.
        result = build_corpus(
            par_config,
            generator_config=par_generator,
            batch_size=BATCH,
            store_dir=store,
            shard_size=SHARDS,
            processes=1,
        )
        assert result.table_count == par_config.target_tables
        assert _dir_bytes(store) == _dir_bytes(reference_dir)

    def test_serial_partial_resumed_in_parallel(
        self, tmp_path, monkeypatch, par_config, par_generator, serial_reference
    ):
        from repro.storage import ShardedCorpusWriter

        reference_dir, _ = serial_reference
        store = tmp_path / "store"
        original_commit = ShardedCorpusWriter.commit
        calls = {"n": 0}

        def killed_commit(self):
            calls["n"] += 1
            if calls["n"] > 3:
                raise KeyboardInterrupt("simulated kill")
            return original_commit(self)

        monkeypatch.setattr(ShardedCorpusWriter, "commit", killed_commit)
        with pytest.raises(KeyboardInterrupt):
            build_corpus(
                par_config,
                generator_config=par_generator,
                batch_size=BATCH,
                store_dir=store,
                shard_size=SHARDS,
            )
        monkeypatch.undo()
        partial = GitTablesCorpus.load(store)
        assert 0 < len(partial) < par_config.target_tables

        result = build_corpus(
            par_config,
            generator_config=par_generator,
            batch_size=BATCH,
            store_dir=store,
            shard_size=SHARDS,
            processes=3,
        )
        assert result.table_count == par_config.target_tables
        assert _dir_bytes(store) == _dir_bytes(reference_dir)

    def test_completed_store_reused_under_any_process_count(
        self, tmp_path, par_config, par_generator
    ):
        store = tmp_path / "store"
        build_corpus(
            par_config,
            generator_config=par_generator,
            batch_size=BATCH,
            store_dir=store,
            shard_size=SHARDS,
            processes=2,
        )
        manifest_mtime = (store / "manifest.json").stat().st_mtime_ns
        again = build_corpus(
            par_config,
            generator_config=par_generator,
            batch_size=BATCH,
            store_dir=store,
            shard_size=SHARDS,
            processes=4,
        )
        assert again.table_count == par_config.target_tables
        assert (store / "manifest.json").stat().st_mtime_ns == manifest_mtime
        assert again.curation_report.tables_processed == par_config.target_tables

    def test_resume_with_real_config_drift_rejected(
        self, tmp_path, par_config, par_generator, fault_injector
    ):
        store = tmp_path / "store"
        with pytest.raises(CorpusError):
            _parallel_build(
                store,
                par_config,
                par_generator,
                processes=2,
                fault=fault_injector(commit_n=1, worker=0, point="after-log-append"),
            )
        drifted = par_config.replace(seed=par_config.seed + 1)
        with pytest.raises(CorpusError, match="different pipeline"):
            build_corpus(
                drifted,
                generator_config=par_generator,
                batch_size=BATCH,
                store_dir=store,
                shard_size=SHARDS,
                processes=2,
            )


class TestArtifactsAfterParallelBuilds:
    """A crashed-then-resumed corpus serves identical artifact-backed results."""

    def test_resumed_corpus_serves_identical_results_through_artifacts(
        self, tmp_path, par_config, par_generator, serial_reference, fault_injector
    ):
        reference_dir, _ = serial_reference
        store = tmp_path / "store"
        with pytest.raises(CorpusError):
            _parallel_build(
                store,
                par_config,
                par_generator,
                processes=3,
                fault=fault_injector(commit_n=2, worker=1, point="before-log-append"),
            )
        _parallel_build(store, par_config, par_generator, processes=2)

        query = "status and total price per order"
        prefix = ["order_id", "order_date"]

        # First artifact-backed session builds and publishes the indexes
        # under the merged manifest's content fingerprint.
        warm = GitTables.load(store, use_artifacts=True)
        warm_search = warm.search(query, k=5)
        warm_completion = warm.complete_schema(prefix, k=5)
        assert (store / "artifacts").exists()
        fingerprint = ShardedJsonlStore(store).content_fingerprint()
        assert fingerprint == ShardedJsonlStore(reference_dir).content_fingerprint()

        # A fresh session mmaps the published artifacts; results must be
        # bit-identical to both the artifact-free path and a session
        # over the serial reference corpus.
        cold = GitTables.load(store, use_artifacts=True)
        plain = GitTables.load(store, use_artifacts=False)
        serial = GitTables.load(reference_dir, use_artifacts=False)
        for session in (cold, plain, serial):
            assert session.search(query, k=5) == warm_search
            assert session.complete_schema(prefix, k=5) == warm_completion


def _mini_table(index: int) -> AnnotatedTable:
    from repro.core.annotation import TableAnnotations

    table = Table(
        ["id", "status"],
        [["1", "OPEN"], ["2", "CLOSED"]],
        table_id=f"w{index:03d}",
    )
    return AnnotatedTable(
        table=table,
        annotations=TableAnnotations(table_id=table.table_id),
        topic="order" if index % 2 else "organism",
        repository="octo/data",
        source_url=f"https://github.com/octo/data/blob/main/t{index}.csv",
        license_key="mit",
    )


class TestWorkerShardWriter:
    """Unit-level durability checks for the per-worker writer."""

    def test_commit_touches_only_worker_scoped_files(self, tmp_path):
        writer = WorkerShardWriter(tmp_path, worker=3, shard_size=2)
        tables = [_mini_table(i) for i in range(3)]
        writer.extend(tables)
        writer.commit(
            done=[0, 1, 2, 3],
            indices={table.source_url: i for i, table in enumerate(tables)},
        )
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == [
            worker_log_filename(3),
            worker_shard_filename(3, 0),
            worker_shard_filename(3, 1),
        ]
        assert not (tmp_path / "manifest.json").exists()

    def test_resume_replays_log_and_done_indices(self, tmp_path):
        writer = WorkerShardWriter(tmp_path, worker=0, shard_size=2)
        writer.extend([_mini_table(0), _mini_table(1)])
        writer.commit(done=[0, 1], indices={_mini_table(0).source_url: 0})
        writer.commit(done=[5, 9])  # dropped-only batch: log record, no tables
        writer.close()
        resumed = WorkerShardWriter(tmp_path, worker=0, shard_size=2)
        assert resumed.committed_count == 2
        assert resumed.done_indices == {0, 1, 5, 9}
        assert resumed.get("w000").table_id == "w000"

    def test_resume_heals_own_tail_and_orphans_only(self, tmp_path):
        writer = WorkerShardWriter(tmp_path, worker=0, shard_size=4)
        writer.extend([_mini_table(0)])
        writer.commit(done=[0])
        shard = tmp_path / worker_shard_filename(0, 0)
        committed = shard.stat().st_size
        with open(shard, "ab") as handle:
            handle.write(b'{"torn": tr')  # uncommitted tail
        (tmp_path / worker_shard_filename(0, 7)).write_bytes(b"{}\n")  # own orphan
        other = tmp_path / worker_shard_filename(1, 0)
        other.write_bytes(b"{}\n")  # another worker's file: untouchable
        writer.close()
        WorkerShardWriter(tmp_path, worker=0, shard_size=4)
        assert shard.stat().st_size == committed
        assert not (tmp_path / worker_shard_filename(0, 7)).exists()
        assert other.exists()

    def test_worker_writer_never_finalizes(self, tmp_path):
        writer = WorkerShardWriter(tmp_path, worker=0, shard_size=4)
        with pytest.raises(CorpusError):
            writer.finalize()

    def test_scope_lock_excludes_concurrent_writers(self, tmp_path, monkeypatch):
        """Two live writers can never share a worker scope (flock)."""
        monkeypatch.setattr(WorkerShardWriter, "LOCK_TIMEOUT_SECONDS", 0.2)
        writer = WorkerShardWriter(tmp_path, worker=0, shard_size=4)
        with pytest.raises(CorpusError, match="locked"):
            WorkerShardWriter(tmp_path, worker=0, shard_size=4)
        WorkerShardWriter(tmp_path, worker=1, shard_size=4).close()  # other scopes free
        writer.close()
        WorkerShardWriter(tmp_path, worker=0, shard_size=4).close()  # released

    def test_table_entries_carry_stream_indices(self, tmp_path):
        writer = WorkerShardWriter(tmp_path, worker=2, shard_size=4)
        tables = [_mini_table(0), _mini_table(1)]
        writer.extend(tables)
        writer.commit(
            done=[10, 11, 12],
            indices={tables[0].source_url: 10, tables[1].source_url: 12},
        )
        record = json.loads(
            (tmp_path / worker_log_filename(2)).read_text().splitlines()[0]
        )
        assert record["done"] == [10, 11, 12]
        assert record["tables"]["w000"]["index"] == 10
        assert record["tables"]["w001"]["index"] == 12
