"""Tests for persistent mmap-backed index artifacts.

Covers the artifact store itself (publish/load/invalidate, fingerprint
guards, corruption handling), ``NearestNeighbourIndex.save``/``mmap``
bit-identity, and the consumer integrations: cold ``GitTables.load``
must answer queries from mmap'd artifacts with **zero corpus-wide
embedding calls** and results bit-identical to the artifact-free path,
while any staleness (different encoder config, mutated corpus,
truncated artifact file) must trigger a rebuild — never silently serve
wrong vectors.
"""

import json

import numpy as np
import pytest

from repro.api import GitTables
from repro.applications.data_search import SEARCH_ARTIFACT, TableSearchEngine
from repro.applications.kg_matching import KGMatchingBenchmark
from repro.applications.schema_completion import COMPLETION_ARTIFACT, NearestCompletion
from repro.applications.type_detection import TypeDetectionExperiment
from repro.config import AnnotationConfig, PipelineConfig
from repro.core.annotation import AnnotationPipeline
from repro.core.corpus import GitTablesCorpus
from repro.core.pipeline import build_corpus
from repro.embeddings.persist import embedder_fingerprint, load_index, publish_index
from repro.embeddings.sentence import SentenceEncoder
from repro.embeddings.similarity import NearestNeighbourIndex
from repro.github.content import GeneratorConfig
from repro.storage import (
    IndexArtifactStore,
    ShardedCorpusWriter,
    corpus_content_fingerprint,
)


@pytest.fixture(scope="module")
def store_dir(tmp_path_factory):
    """A small sharded corpus store shared by the integration tests."""
    directory = tmp_path_factory.mktemp("artifact-corpus") / "store"
    build_corpus(
        PipelineConfig(target_tables=24, seed=7),
        generator_config=GeneratorConfig(n_repositories=100, mean_rows=25, seed=7),
        store_dir=directory,
        shard_size=8,
    )
    return directory


QUERY = "status and sales amount per product"
PREFIX = ("order_id", "order_date", "status")


def _spy_embed_many(monkeypatch):
    """Record the size of every SentenceEncoder.embed_many call."""
    calls: list[int] = []
    original = SentenceEncoder.embed_many

    def spying(self, texts):
        calls.append(len(texts))
        return original(self, texts)

    monkeypatch.setattr(SentenceEncoder, "embed_many", spying)
    return calls


class TestIndexArtifactStore:
    def test_publish_load_roundtrip(self, tmp_path):
        store = IndexArtifactStore(tmp_path / "artifacts")
        matrix = np.random.default_rng(3).normal(size=(6, 4))
        store.publish("demo", {"v": 1}, arrays={"m": matrix}, payload={"labels": ["a"]})
        loaded = store.load("demo", {"v": 1})
        assert loaded is not None
        assert loaded.payload == {"labels": ["a"]}
        assert np.array_equal(loaded.arrays["m"], matrix)
        # Non-empty arrays come back mmap'd and read-only.
        assert isinstance(loaded.arrays["m"], np.memmap)
        assert not loaded.arrays["m"].flags.writeable

    def test_fingerprint_mismatch_is_a_miss(self, tmp_path):
        store = IndexArtifactStore(tmp_path / "artifacts")
        store.publish("demo", {"encoder": {"dim": 128}}, arrays={}, payload={})
        assert store.load("demo", {"encoder": {"dim": 128}}) is not None
        assert store.load("demo", {"encoder": {"dim": 64}}) is None

    def test_fingerprint_normalisation(self, tmp_path):
        """Tuples and lists in fingerprints compare equal (JSON round-trip)."""
        store = IndexArtifactStore(tmp_path / "artifacts")
        store.publish("demo", {"sizes": (3, 4)}, arrays={}, payload={})
        assert store.load("demo", {"sizes": [3, 4]}) is not None

    def test_truncated_array_file_is_a_miss(self, tmp_path):
        store = IndexArtifactStore(tmp_path / "artifacts")
        store.publish("demo", {"v": 1}, arrays={"m": np.ones((8, 8))})
        path = store.path("demo") / "m.npy"
        path.write_bytes(path.read_bytes()[:64])
        assert store.load("demo", {"v": 1}) is None

    def test_corrupt_meta_is_a_miss(self, tmp_path):
        store = IndexArtifactStore(tmp_path / "artifacts")
        store.publish("demo", {"v": 1}, arrays={})
        (store.path("demo") / "meta.json").write_text("{not json")
        assert store.load("demo", {"v": 1}) is None

    def test_missing_artifact_is_a_miss(self, tmp_path):
        store = IndexArtifactStore(tmp_path / "artifacts")
        assert store.load("absent", {"v": 1}) is None
        assert store.names() == []

    def test_republish_replaces(self, tmp_path):
        store = IndexArtifactStore(tmp_path / "artifacts")
        store.publish("demo", {"v": 1}, arrays={"m": np.zeros((2, 2))})
        store.publish("demo", {"v": 2}, arrays={"m": np.ones((3, 3))})
        assert store.load("demo", {"v": 1}) is None
        loaded = store.load("demo", {"v": 2})
        assert loaded.arrays["m"].shape == (3, 3)

    def test_invalidate(self, tmp_path):
        store = IndexArtifactStore(tmp_path / "artifacts")
        store.publish("one", {"v": 1}, arrays={})
        store.publish("two", {"v": 1}, arrays={})
        store.invalidate("one")
        assert store.names() == ["two"]
        store.invalidate()
        assert store.names() == []

    def test_empty_arrays_supported(self, tmp_path):
        """Zero-size matrices (empty corpora) round-trip eagerly."""
        store = IndexArtifactStore(tmp_path / "artifacts")
        store.publish("demo", {"v": 1}, arrays={"m": np.zeros((0, 16))})
        loaded = store.load("demo", {"v": 1})
        assert loaded.arrays["m"].shape == (0, 16)

    def test_invalid_names_rejected(self, tmp_path):
        store = IndexArtifactStore(tmp_path / "artifacts")
        for bad in ("", ".hidden", "a/b", "a b"):
            with pytest.raises(ValueError):
                store.publish(bad, {"v": 1})


class TestIndexPersistence:
    """NearestNeighbourIndex.save/mmap bit-identity."""

    def test_mmap_queries_bit_identical(self, tmp_path):
        rng = np.random.default_rng(5)
        vectors = rng.normal(size=(40, 16))
        vectors[7] = 0.0  # zero vector row
        index = NearestNeighbourIndex([f"l{i}" for i in range(40)], vectors)
        index.save(tmp_path / "index")
        mapped = NearestNeighbourIndex.mmap(tmp_path / "index")
        assert isinstance(mapped._unit_vectors, np.memmap)
        queries = rng.normal(size=(9, 16))
        queries[2] = 0.0
        for top_k in (1, 3, 40):
            assert index.query_batch(queries, top_k=top_k) == mapped.query_batch(
                queries, top_k=top_k
            )
        assert index.query(queries[0], top_k=5) == mapped.query(queries[0], top_k=5)

    def test_empty_index_round_trip(self, tmp_path):
        index = NearestNeighbourIndex([], np.zeros((0, 8)))
        index.save(tmp_path / "index")
        mapped = NearestNeighbourIndex.mmap(tmp_path / "index")
        assert len(mapped) == 0
        assert mapped.query(np.zeros(8)) == []

    def test_tampered_vectors_rejected(self, tmp_path):
        index = NearestNeighbourIndex(["a"], np.ones((1, 4)))
        index.save(tmp_path / "index")
        meta_path = tmp_path / "index" / "index.json"
        meta = json.loads(meta_path.read_text())
        meta["shape"] = [2, 4]
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(ValueError):
            NearestNeighbourIndex.mmap(tmp_path / "index")

    def test_publish_load_index_helpers(self, tmp_path):
        store = IndexArtifactStore(tmp_path / "artifacts")
        index = NearestNeighbourIndex(["x", "y"], np.eye(2))
        publish_index(store, "idx", {"v": 1}, index, payload={"extra": 7})
        resolved = load_index(store, "idx", {"v": 1})
        assert resolved is not None
        loaded, payload = resolved
        assert loaded.labels == ["x", "y"]
        assert payload["extra"] == 7
        assert load_index(store, "idx", {"v": 2}) is None


class TestEmbedderFingerprint:
    def test_distinguishes_configurations(self):
        base = embedder_fingerprint(SentenceEncoder())
        assert embedder_fingerprint(SentenceEncoder()) == base
        assert embedder_fingerprint(SentenceEncoder(dim=64)) != base
        assert embedder_fingerprint(SentenceEncoder(seed=2)) != base
        assert embedder_fingerprint(SentenceEncoder(ngram_sizes=(3,))) != base

    def test_corpus_fingerprint_none_for_memory(self):
        assert corpus_content_fingerprint(GitTablesCorpus(name="m")) is None


class TestColdStartFromArtifacts:
    """The acceptance criterion: cold load + query = zero corpus-wide
    embedding calls, results bit-identical to the artifact-free path."""

    def test_cold_search_embeds_only_the_query(self, store_dir, monkeypatch):
        GitTables.load(store_dir).warm()  # publish (or refresh) artifacts
        baseline = GitTables.load(store_dir, use_artifacts=False).search(QUERY, k=5)
        calls = _spy_embed_many(monkeypatch)
        cold = GitTables.load(store_dir)
        results = cold.search(QUERY, k=5)
        assert calls == [1], f"expected only the query embedding, saw {calls}"
        assert results == baseline

    def test_cold_completion_embeds_only_the_prefix(self, store_dir, monkeypatch):
        GitTables.load(store_dir).warm()
        baseline = GitTables.load(store_dir, use_artifacts=False).complete_schema(PREFIX, k=5)
        calls = _spy_embed_many(monkeypatch)
        cold = GitTables.load(store_dir)
        results = cold.complete_schema(PREFIX, k=5)
        assert calls == [len(PREFIX)], calls
        assert results == baseline

    def test_cold_kg_benchmark_matches(self, store_dir):
        GitTables.load(store_dir).warm()
        baseline = GitTables.load(store_dir, use_artifacts=False).match_kg()
        assert GitTables.load(store_dir).match_kg() == baseline

    def test_cold_type_detection_matches(self, store_dir):
        options = {"columns_per_type": 20, "epochs": 4, "n_splits": 2, "seed": 3}
        warmup = GitTables.load(store_dir)
        published = warmup.detect_types(**options)
        baseline = GitTables.load(store_dir, use_artifacts=False).detect_types(**options)
        assert published == baseline
        assert GitTables.load(store_dir).detect_types(**options) == baseline

    def test_save_carries_artifacts(self, store_dir, tmp_path):
        session = GitTables.load(store_dir).warm()
        target = tmp_path / "copy"
        session.save(target, shard_size=8)
        names = IndexArtifactStore.for_corpus_dir(target).names()
        assert SEARCH_ARTIFACT in names and COMPLETION_ARTIFACT in names
        assert any(name.startswith("kg-benchmark") for name in names)
        reloaded = GitTables.load(target)
        assert reloaded.search(QUERY, k=5) == session.search(QUERY, k=5)


class TestArtifactInvalidation:
    """Staleness must always rebuild — never silently serve wrong vectors."""

    def test_different_encoder_config_rebuilds(self, store_dir, monkeypatch):
        GitTables.load(store_dir).warm()
        calls = _spy_embed_many(monkeypatch)
        other = GitTables(
            corpus=GitTablesCorpus.load(store_dir),
            encoder=SentenceEncoder(dim=64),
            artifacts=IndexArtifactStore.for_corpus_dir(store_dir),
        )
        results = other.search(QUERY, k=3)
        assert sum(calls) > 1, "a corpus-wide re-embedding pass must have happened"
        artifact_free = GitTables(
            corpus=GitTablesCorpus.load(store_dir), encoder=SentenceEncoder(dim=64)
        )
        assert results == artifact_free.search(QUERY, k=3)
        # Restore the default-encoder artifacts for the other tests.
        GitTables.load(store_dir).warm()

    def test_mutated_corpus_rebuilds(self, tmp_path, monkeypatch):
        corpus_dir = tmp_path / "store"
        build_corpus(
            PipelineConfig(target_tables=10, seed=5),
            generator_config=GeneratorConfig(n_repositories=60, mean_rows=20, seed=5),
            store_dir=corpus_dir,
            shard_size=4,
        )
        GitTables.load(corpus_dir).warm()
        # Mutate the stored corpus out-of-band: append one more table.
        from tests.test_storage import _annotated

        writer = ShardedCorpusWriter(corpus_dir)
        writer.add(_annotated("intruder"))
        writer.finalize()
        calls = _spy_embed_many(monkeypatch)
        session = GitTables.load(corpus_dir)
        results = session.search(QUERY, k=3)
        assert sum(calls) > 1, "mutated corpus must force a rebuild"
        assert len(session.search_engine) == len(session.corpus)
        fresh = GitTables.load(corpus_dir, use_artifacts=False).search(QUERY, k=3)
        assert results == fresh

    def test_truncated_artifact_rebuilds(self, tmp_path, monkeypatch):
        corpus_dir = tmp_path / "store"
        build_corpus(
            PipelineConfig(target_tables=10, seed=6),
            generator_config=GeneratorConfig(n_repositories=60, mean_rows=20, seed=6),
            store_dir=corpus_dir,
            shard_size=4,
        )
        baseline = GitTables.load(corpus_dir).warm().search(QUERY, k=3)
        artifacts = IndexArtifactStore.for_corpus_dir(corpus_dir)
        vectors = artifacts.path(SEARCH_ARTIFACT) / "unit_vectors.npy"
        vectors.write_bytes(vectors.read_bytes()[:100])
        calls = _spy_embed_many(monkeypatch)
        results = GitTables.load(corpus_dir).search(QUERY, k=3)
        assert sum(calls) > 1, "truncated artifact must force a rebuild"
        assert results == baseline

    def test_reset_caches_invalidates_artifacts(self, tmp_path):
        corpus_dir = tmp_path / "store"
        build_corpus(
            PipelineConfig(target_tables=10, seed=8),
            generator_config=GeneratorConfig(n_repositories=60, mean_rows=20, seed=8),
            store_dir=corpus_dir,
            shard_size=4,
        )
        session = GitTables.load(corpus_dir).warm()
        assert session.artifacts.names()
        session.reset_caches()
        assert session.artifacts.names() == []
        # Keeping artifacts is possible too.
        session.warm()
        session.reset_caches(invalidate_artifacts=False)
        assert session.artifacts.names()


class TestConsumerUnits:
    def test_search_engine_artifact_roundtrip_is_bit_identical(self, store_dir):
        corpus = GitTablesCorpus.load(store_dir)
        artifacts = IndexArtifactStore.for_corpus_dir(store_dir)
        fresh = TableSearchEngine(corpus, encoder=SentenceEncoder(), artifacts=artifacts)
        warm = TableSearchEngine(corpus, encoder=SentenceEncoder(), artifacts=artifacts)
        assert np.array_equal(fresh._index._unit_vectors, warm._index._unit_vectors)
        assert warm._schemas == fresh._schemas
        assert warm.search_batch([QUERY, "people and cities"], k=4) == fresh.search_batch(
            [QUERY, "people and cities"], k=4
        )

    def test_completion_artifact_roundtrip_is_bit_identical(self, store_dir):
        corpus = GitTablesCorpus.load(store_dir)
        artifacts = IndexArtifactStore.for_corpus_dir(store_dir)
        fresh = NearestCompletion(corpus, encoder=SentenceEncoder(), artifacts=artifacts)
        warm = NearestCompletion(corpus, encoder=SentenceEncoder(), artifacts=artifacts)
        assert len(warm) == len(fresh)
        assert np.array_equal(np.asarray(fresh._flat_matrix), np.asarray(warm._flat_matrix))
        assert warm.complete(PREFIX, k=6) == fresh.complete(PREFIX, k=6)
        evaluation = warm.evaluate(PREFIX + ("quantity", "total_price"), prefix_length=3)
        assert evaluation == fresh.evaluate(PREFIX + ("quantity", "total_price"), prefix_length=3)

    def test_kg_benchmark_roundtrip(self, store_dir):
        corpus = GitTablesCorpus.load(store_dir)
        artifacts = IndexArtifactStore.for_corpus_dir(store_dir)
        fresh = KGMatchingBenchmark.from_corpus(corpus, artifacts=artifacts)
        warm = KGMatchingBenchmark.from_corpus(corpus, artifacts=artifacts)
        assert warm.columns == fresh.columns
        assert warm.n_tables == fresh.n_tables

    def test_type_features_artifact_roundtrip(self, store_dir):
        corpus = GitTablesCorpus.load(store_dir)
        artifacts = IndexArtifactStore.for_corpus_dir(store_dir)
        experiment = TypeDetectionExperiment(columns_per_type=20, seed=3, artifacts=artifacts)
        fresh = experiment.sample_labelled_columns(corpus)
        warm = experiment.sample_labelled_columns(corpus)
        assert list(warm.labels) == list(fresh.labels)
        assert np.array_equal(np.asarray(warm.features), np.asarray(fresh.features))

    def test_read_only_corpus_dir_degrades_gracefully(self, store_dir, monkeypatch):
        """Publish failure must never crash a query — the freshly built
        in-RAM index serves instead (artifacts are an optimisation)."""
        IndexArtifactStore.for_corpus_dir(store_dir).invalidate()

        def denied(self, *args, **kwargs):
            raise PermissionError("read-only filesystem")

        monkeypatch.setattr(IndexArtifactStore, "publish", denied)
        session = GitTables.load(store_dir)
        results = session.search(QUERY, k=3)
        assert session.complete_schema(PREFIX, k=3)
        assert session.match_kg()
        monkeypatch.undo()
        assert results == GitTables.load(store_dir, use_artifacts=False).search(QUERY, k=3)
        GitTables.load(store_dir).warm()  # restore artifacts for later tests

    def test_save_skips_indexes_of_mutated_corpus(self, tmp_path):
        """Indexes built before an in-memory mutation must not be
        published under the saved (post-mutation) fingerprint."""
        from tests.test_storage import _annotated, _corpus

        corpus = _corpus(8)
        session = GitTables.from_corpus(corpus)
        stale_results = session.search(QUERY, k=3)
        assert len(session.search_engine) == 8
        corpus.add(_annotated("added-later", topic="organism"))
        target = tmp_path / "saved"
        session.save(target, shard_size=4)
        # The stale index was not persisted (only the stats projection,
        # which save() rebuilds fresh); a fresh load re-embeds and sees
        # all 9 tables.
        assert IndexArtifactStore.for_corpus_dir(target).names() == ["stats-projection"]
        reloaded = GitTables.load(target)
        assert len(reloaded.search_engine) == 9
        assert stale_results is not None

    def test_in_memory_corpus_skips_artifacts(self, tmp_path):
        """No durable identity -> nothing published, plain build path."""
        from tests.test_storage import _corpus

        corpus = _corpus(6)
        artifacts = IndexArtifactStore(tmp_path / "artifacts")
        TableSearchEngine(corpus, artifacts=artifacts)
        NearestCompletion(corpus, artifacts=artifacts)
        KGMatchingBenchmark.from_corpus(corpus, artifacts=artifacts)
        assert artifacts.names() == []

    def test_ontology_index_artifacts(self, tmp_path):
        from repro.embeddings.fasttext import FastTextModel

        artifacts = IndexArtifactStore(tmp_path / "artifacts")
        config = AnnotationConfig()
        first = AnnotationPipeline(config, artifacts=artifacts)
        published = artifacts.names()
        assert any(name.startswith("ontology-") for name in published)

        calls: list[int] = []
        original = FastTextModel.embed_batch

        def spying(self, texts):
            calls.append(len(texts))
            return original(self, texts)

        FastTextModel.embed_batch = spying
        try:
            second = AnnotationPipeline(config, artifacts=artifacts)
        finally:
            FastTextModel.embed_batch = original
        assert calls == [], "ontology label embedding must come from artifacts"

        # Annotations over a loaded index are identical to a fresh one.
        from repro.dataframe.table import Table

        table = Table(
            ["order_id", "status", "customer_email"],
            [["1", "OPEN", "a@example.com"]],
            table_id="t",
        )
        assert [a for a in second.annotate(table).all()] == [
            a for a in first.annotate(table).all()
        ]
