"""Online compaction / live re-sharding of a sealed serving store.

The contract under test (see :func:`repro.storage.compaction.compact_store`
and ``GitTables.compact``): rewriting a sealed store to a new shard size
publishes a new manifest **generation** with byte-for-byte identical
corpus content — same tables, same order, same ``content_fingerprint``
(pinned through ``compacted_from``), so every derived index artifact
stays valid with zero re-embedding. The swap is crash-safe at every
stage (a SIGKILL converges, on re-run, to exactly the old or the new
layout, never a mixture), an open reader can never observe a half-swapped
directory, and a serving worker pool follows the generation bump by
hot-reloading while answering bit-identically throughout.
"""

from __future__ import annotations

import json
import shutil
import signal
import time

import pytest

from repro.api import GitTables
from repro.applications.data_search import TableSearchEngine
from repro.applications.schema_completion import NearestCompletion
from repro.config import PipelineConfig
from repro.core.annotation import (
    AnnotationMethod,
    ColumnAnnotation,
    TableAnnotations,
)
from repro.core.corpus import AnnotatedTable
from repro.dataframe.table import Table
from repro.errors import CorpusError
from repro.github.content import GeneratorConfig
from repro.serving.metrics import ServiceMetrics
from repro.storage._io import directory_file_bytes
from repro.storage.compaction import compact_store
from repro.storage.sharded import (
    ShardedCorpusWriter,
    ShardedJsonlStore,
    read_store_version,
)

TABLES = 24
GROWN_TABLES = 30
SHARDS = 8
NEW_SIZE = 5
BATCH = 4
SEED = 7

CRASH_POINTS = ["before-shard-publish", "before-manifest-publish", "before-sweep"]

QUERIES = ("status and total price per order", "population by city")
PREFIXES = (("id",), ("name", "city"))


@pytest.fixture(scope="module")
def gen_config():
    return GeneratorConfig(n_repositories=200, mean_rows=25, seed=SEED)


@pytest.fixture(scope="module")
def sealed_store(tmp_path_factory, gen_config):
    """A sealed store with warmed (published) index artifacts."""
    directory = tmp_path_factory.mktemp("compaction") / "base"
    session = GitTables.build(
        PipelineConfig(target_tables=TABLES, seed=SEED),
        generator_config=gen_config,
        batch_size=BATCH,
        store_dir=directory,
        shard_size=SHARDS,
    )
    _ = session.search_engine
    _ = session.completer
    return directory


@pytest.fixture(scope="module")
def compacted_reference(tmp_path_factory, sealed_store):
    """The sealed store compacted (uncrashed) to ``NEW_SIZE``."""
    directory = tmp_path_factory.mktemp("compaction") / "reference"
    shutil.copytree(sealed_store, directory)
    compact_store(directory, shard_size=NEW_SIZE)
    return directory


def _answers(session: GitTables) -> tuple:
    searches = tuple(tuple(session.search(query, k=5)) for query in QUERIES)
    completions = tuple(
        tuple(session.complete_schema(prefix, k=5)) for prefix in PREFIXES
    )
    return searches, completions, session.stats()


def _annotated(table_id: str) -> AnnotatedTable:
    table = Table(["id", "status"], [["1", "OPEN"]], table_id=table_id)
    annotations = TableAnnotations(table_id=table_id)
    annotations.add(
        ColumnAnnotation("status", "status", "dbpedia", AnnotationMethod.SYNTACTIC, 1.0)
    )
    return AnnotatedTable(
        table=table,
        annotations=annotations,
        topic="id",
        repository="octo/data",
        source_url=f"https://github.com/octo/data/blob/main/{table_id}.csv",
        license_key="mit",
    )


class TestCompactionRewrite:
    def test_layout_changes_content_does_not(self, tmp_path, sealed_store):
        directory = tmp_path / "store"
        shutil.copytree(sealed_store, directory)
        before = ShardedJsonlStore(directory)
        fingerprint = before.content_fingerprint()
        table_ids = list(before.table_ids())
        manifest_before = dict(before.manifest)

        report = compact_store(directory, shard_size=NEW_SIZE)

        assert report.rewritten
        assert report.generation == 2
        assert report.shard_size == NEW_SIZE
        assert report.table_count == TABLES
        assert report.fingerprint == fingerprint
        after = ShardedJsonlStore(directory)
        assert after.generation == 2
        assert after.content_fingerprint() == fingerprint
        assert list(after.table_ids()) == table_ids
        assert [t.table_id for t in after] == table_ids
        # Epoch history and cached stats ride along untouched.
        assert after.epoch == manifest_before["epoch"]
        assert after.sealed_epochs == manifest_before["epochs"]
        assert after.manifest["stats"] == manifest_before["stats"]
        # The new layout is generation-scoped and optimally packed; no
        # old-generation file survives the sweep.
        files = after.shard_files()
        assert files and all(name.startswith("shard_g00002_") for name in files)
        assert sorted(path.name for path in directory.glob("shard_*.jsonl")) == sorted(files)
        counts = [entry["count"] for entry in after.manifest["shards"]]
        assert all(count == NEW_SIZE for count in counts[:-1])
        assert 0 < counts[-1] <= NEW_SIZE
        assert read_store_version(directory) == (manifest_before["epoch"], True, 2)

    def test_session_answers_identical_across_compaction(
        self, sealed_store, compacted_reference
    ):
        assert _answers(GitTables.load(sealed_store)) == _answers(
            GitTables.load(compacted_reference)
        )

    def test_repeated_compaction_pins_original_fingerprint(
        self, tmp_path, sealed_store, compacted_reference
    ):
        original = ShardedJsonlStore(sealed_store).content_fingerprint()
        directory = tmp_path / "store"
        shutil.copytree(compacted_reference, directory)
        report = compact_store(directory, shard_size=10)
        assert report.generation == 3
        assert report.fingerprint == original
        store = ShardedJsonlStore(directory)
        assert store.generation == 3
        assert store.content_fingerprint() == original
        assert store.compacted_from["fingerprint"] == original

    def test_same_size_compaction_is_a_byte_stable_noop(
        self, tmp_path, compacted_reference
    ):
        directory = tmp_path / "store"
        shutil.copytree(compacted_reference, directory)
        before = directory_file_bytes(directory)
        report = compact_store(directory)
        assert not report.rewritten
        assert report.generation == 2
        assert report.swept_files == 0
        assert directory_file_bytes(directory) == before

    def test_facade_compact_serves_identically_with_zero_reembedding(
        self, tmp_path, sealed_store, monkeypatch
    ):
        directory = tmp_path / "store"
        shutil.copytree(sealed_store, directory)
        session = GitTables.load(directory)
        expected = _answers(session)

        def forbid(*args, **kwargs):  # pragma: no cover - assertion guard
            raise AssertionError("compaction must not trigger corpus re-embedding")

        # The load path (mmap of fingerprint-guarded artifacts) must be
        # the only way the engines come back after the re-shard.
        monkeypatch.setattr(TableSearchEngine, "_build", forbid)
        monkeypatch.setattr(TableSearchEngine, "_extend_from_artifacts", forbid)
        monkeypatch.setattr(NearestCompletion, "_build", forbid)
        monkeypatch.setattr(NearestCompletion, "_extend_from_artifacts", forbid)

        report = session.compact(shard_size=NEW_SIZE)
        assert report["rewritten"]
        assert report["generation"] == 2
        assert _answers(session) == expected


class TestCompactionRefusals:
    def test_refuses_unsealed_and_unfinalized_stores(self, tmp_path):
        directory = tmp_path / "store"
        writer = ShardedCorpusWriter(directory, shard_size=4)
        writer.extend([_annotated(f"t{i:03d}") for i in range(6)])
        writer.commit()
        # Mid-build, first commit: the epoch is open and unsealed.
        with pytest.raises(CorpusError, match="not sealed"):
            compact_store(directory)
        writer.extend([_annotated(f"t{i:03d}") for i in range(6, 10)])
        writer.commit()
        # Later commits live in the manifest delta log until finalize.
        with pytest.raises(CorpusError, match="manifest log"):
            compact_store(directory)
        writer.finalize()
        compact_store(directory)  # sealed: fine
        extension = ShardedCorpusWriter(directory, shard_size=4, extend=True)
        extension.begin_extension()
        # Epoch 2 is open but unsealed.
        with pytest.raises(CorpusError, match="not sealed"):
            compact_store(directory)

    def test_refuses_in_flight_parallel_builds(self, tmp_path, sealed_store):
        directory = tmp_path / "store"
        shutil.copytree(sealed_store, directory)
        manifest_path = directory / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["parallel"] = {"workers": 2}
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(CorpusError, match="parallel"):
            compact_store(directory, shard_size=NEW_SIZE)


class TestReaderMidSwap:
    def test_open_reader_never_mixes_layouts(self, tmp_path, sealed_store):
        directory = tmp_path / "store"
        shutil.copytree(sealed_store, directory)
        store = ShardedJsonlStore(directory, cache_shards=1)
        by_shard: dict[int, str] = {}
        for table_id, (shard, _line) in store._locations.items():
            by_shard.setdefault(shard, table_id)
        cached = store.get(by_shard[0])
        assert cached is not None  # shard 0 now sits in the reader's cache

        compact_store(directory, shard_size=NEW_SIZE)

        # The cached shard still serves (no file read involved) ...
        assert store.get(by_shard[0]).table_id == by_shard[0]
        # ... but touching any not-yet-read shard is diagnosed as a
        # layout swap and demands a reopen — never a mixed view.
        with pytest.raises(CorpusError, match="reopen the store"):
            store.get(by_shard[1])
        reopened = ShardedJsonlStore(directory)
        assert reopened.generation == 2
        assert reopened.get(by_shard[1]).table_id == by_shard[1]


class TestCompactionCrashMatrix:
    @pytest.mark.parametrize("point", CRASH_POINTS)
    def test_sigkilled_compaction_converges_byte_exact(
        self, tmp_path, sealed_store, fault_injector, compaction_subprocess, point
    ):
        reference = tmp_path / "reference"
        shutil.copytree(sealed_store, reference)
        compact_store(reference, shard_size=NEW_SIZE)

        directory = tmp_path / "store"
        shutil.copytree(sealed_store, directory)
        process = compaction_subprocess(
            directory,
            shard_size=NEW_SIZE,
            fault=fault_injector(commit_n=1, worker=None, point=point),
        )
        assert process.exitcode == -signal.SIGKILL

        # The manifest publish is the commit point: strictly before it
        # the old layout is authoritative, at or after it the new one.
        epoch, sealed, generation = read_store_version(directory)
        assert (epoch, sealed) == (1, True)
        assert generation == (2 if point == "before-sweep" else 1)
        # Whatever the wreckage, the authoritative layout reads cleanly
        # with the original content.
        store = ShardedJsonlStore(directory)
        assert store.content_fingerprint() == ShardedJsonlStore(
            sealed_store
        ).content_fingerprint()
        assert len(store) == TABLES

        report = compact_store(directory, shard_size=NEW_SIZE)
        assert report.generation == 2
        assert report.rewritten == (point != "before-sweep")
        assert directory_file_bytes(directory) == directory_file_bytes(reference)

    @pytest.mark.parametrize("point", ["before-shard-publish", "before-manifest-publish"])
    def test_pre_publish_crash_cleanup_restores_old_layout(
        self, tmp_path, sealed_store, fault_injector, compaction_subprocess, point
    ):
        directory = tmp_path / "store"
        shutil.copytree(sealed_store, directory)
        process = compaction_subprocess(
            directory,
            shard_size=NEW_SIZE,
            fault=fault_injector(commit_n=1, worker=None, point=point),
        )
        assert process.exitcode == -signal.SIGKILL
        # A crashed attempt left staged/renamed leftovers behind.
        assert directory_file_bytes(directory) != directory_file_bytes(sealed_store)
        # Compacting at the current size degenerates to cleanup: the
        # directory is byte-exactly the never-compacted layout again.
        report = compact_store(directory)
        assert not report.rewritten
        assert report.generation == 1
        assert report.swept_files > 0
        assert directory_file_bytes(directory) == directory_file_bytes(sealed_store)


class TestExtensionAfterCompaction:
    def test_extension_appends_within_the_compacted_layout(
        self, tmp_path, sealed_store, compacted_reference
    ):
        original = ShardedJsonlStore(sealed_store).content_fingerprint()
        directory = tmp_path / "store"
        shutil.copytree(compacted_reference, directory)
        GitTables.load(directory).extend(target_tables=GROWN_TABLES)
        store = ShardedJsonlStore(directory)
        assert len(store) == GROWN_TABLES
        assert read_store_version(directory) == (2, True, 2)
        # New shards roll under the compacted generation's names.
        assert all(name.startswith("shard_g00002_") for name in store.shard_files())
        # The append moved past the pin: the fingerprint is structural
        # again, but artifacts keyed by the pre-compaction fingerprint
        # still identify their sealed prefix through ``compacted_from``.
        assert store.content_fingerprint() != original
        assert store.sealed_prefix_boundary(original) == TABLES


class TestServeDuringCompaction:
    def test_pool_answers_identically_and_follows_the_generation_bump(
        self, tmp_path, sealed_store
    ):
        directory = tmp_path / "store"
        shutil.copytree(sealed_store, directory)
        session = GitTables.load(directory)
        expected = {query: session.search(query, k=5) for query in QUERIES}
        with session.serve(workers=2, max_wait_ms=5.0) as service:
            for query in QUERIES:
                assert service.search(query, k=5) == expected[query]

            report = compact_store(directory, shard_size=NEW_SIZE)
            assert report.rewritten

            # Keep querying while the bump propagates: every answer must
            # stay bit-identical, before and after each worker reloads.
            deadline = time.monotonic() + 60.0
            while True:
                for query in QUERIES:
                    assert service.search(query, k=5) == expected[query]
                workers = service.metrics()["workers"]
                generations = workers["generations"]
                if generations and all(g == 2 for g in generations.values()):
                    break
                if time.monotonic() >= deadline:  # pragma: no cover
                    pytest.fail(f"workers never reloaded generation 2: {workers}")
                time.sleep(0.1)

            workers = service.metrics()["workers"]
            assert workers["store_generation"] == 2
            assert all(g == 2 for g in workers["generations"].values())
            assert all(r >= 1 for r in workers["artifact_reloads"].values())
            for query in QUERIES:
                assert service.search(query, k=5) == expected[query]


class TestMetricsGenerationSurface:
    def test_snapshot_reports_store_and_worker_generations(self):
        metrics = ServiceMetrics()
        metrics.record_worker_store("worker-00", {"epoch": 1, "generation": 2, "reloads": 1})
        metrics.record_worker_store("worker-01", {"epoch": 1, "reloads": 0})
        workers = metrics.snapshot(
            workers={"configured": 2}, store_epoch=1, store_generation=2
        )["workers"]
        assert workers["store_generation"] == 2
        # A worker that predates generations reports the default layout.
        assert workers["generations"] == {"worker-00": 2, "worker-01": 1}
        assert workers["artifact_reloads"] == {"worker-00": 1, "worker-01": 0}
