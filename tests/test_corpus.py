"""Unit tests for the corpus container (repro.core.corpus)."""

import pytest

from repro.core.annotation import AnnotationMethod, ColumnAnnotation, TableAnnotations, annotate_table
from repro.core.corpus import AnnotatedTable, GitTablesCorpus
from repro.dataframe.table import Table
from repro.errors import CorpusError


def _annotated(table_id: str, topic: str = "id", repo: str = "octo/data") -> AnnotatedTable:
    table = Table(["id", "status"], [["1", "OPEN"], ["2", "CLOSED"]], table_id=table_id)
    annotations = TableAnnotations(table_id=table_id)
    annotations.add(ColumnAnnotation("status", "status", "dbpedia", AnnotationMethod.SYNTACTIC, 1.0))
    return AnnotatedTable(
        table=table,
        annotations=annotations,
        topic=topic,
        repository=repo,
        source_url=f"https://github.com/{repo}/blob/main/{table_id}.csv",
        license_key="mit",
    )


class TestCorpusContainer:
    def test_add_and_lookup(self):
        corpus = GitTablesCorpus()
        annotated = _annotated("t1")
        corpus.add(annotated)
        assert len(corpus) == 1
        assert corpus.get("t1") is annotated
        assert "t1" in corpus

    def test_duplicate_ids_rejected(self):
        corpus = GitTablesCorpus()
        corpus.add(_annotated("t1"))
        with pytest.raises(CorpusError):
            corpus.add(_annotated("t1"))

    def test_topic_subset(self):
        corpus = GitTablesCorpus()
        corpus.add(_annotated("t1", topic="id"))
        corpus.add(_annotated("t2", topic="organism"))
        subset = corpus.topic_subset("organism")
        assert len(subset) == 1
        assert subset.topics() == ["organism"]
        # Provenance is recorded in the derived corpus name.
        assert subset.name == "gittables/topic=organism"

    def test_filter_predicate(self):
        corpus = GitTablesCorpus()
        corpus.add(_annotated("t1", repo="a/x"))
        corpus.add(_annotated("t2", repo="b/y"))
        filtered = corpus.filter(lambda annotated: annotated.repository == "a/x")
        assert len(filtered) == 1
        assert filtered.name == "gittables/filtered"

    def test_iter_schemas_streams(self):
        corpus = GitTablesCorpus()
        corpus.add(_annotated("t1"))
        corpus.add(_annotated("t2"))
        iterator = corpus.iter_schemas()
        assert next(iterator) == ("t1", ("id", "status"))
        assert list(iterator) == [("t2", ("id", "status"))]

    def test_repository_counts(self):
        corpus = GitTablesCorpus()
        corpus.add(_annotated("t1", repo="a/x"))
        corpus.add(_annotated("t2", repo="a/x"))
        corpus.add(_annotated("t3", repo="b/y"))
        assert corpus.repositories() == {"a/x": 2, "b/y": 1}

    def test_totals_and_schemas(self):
        corpus = GitTablesCorpus()
        corpus.add(_annotated("t1"))
        corpus.add(_annotated("t2"))
        assert corpus.total_rows() == 4
        assert corpus.total_columns() == 4
        assert ("t1", ("id", "status")) in corpus.schemas()


class TestSerialisation:
    def test_round_trip_dict(self, people_table):
        annotations = annotate_table(people_table)
        annotated = AnnotatedTable(
            table=people_table,
            annotations=annotations,
            topic="person",
            repository="octo/people",
            source_url="https://github.com/octo/people/blob/main/p.csv",
            license_key="mit",
        )
        restored = AnnotatedTable.from_dict(annotated.to_dict())
        assert restored.table.header == people_table.header
        assert restored.table.rows == people_table.rows
        assert len(restored.annotations.all()) == len(annotations.all())
        assert restored.topic == "person"

    def test_save_and_load_corpus(self, tmp_path):
        corpus = GitTablesCorpus(name="mini")
        corpus.add(_annotated("t1"))
        corpus.add(_annotated("t2", topic="organism"))
        corpus.save(tmp_path / "corpus")
        restored = GitTablesCorpus.load(tmp_path / "corpus")
        assert restored.name == "mini"
        assert len(restored) == 2
        assert restored.get("t2").topic == "organism"

    def test_load_missing_directory_raises(self, tmp_path):
        with pytest.raises(CorpusError):
            GitTablesCorpus.load(tmp_path / "does-not-exist")
