"""Tests for the experiment report generator and the CLI entry point."""

import pytest

from repro.experiments.__main__ import main as cli_main
from repro.experiments.context import ExperimentContext, get_context
from repro.experiments.registry import ExperimentResult
from repro.experiments.report import generate_report, render_result_markdown, write_report


class TestExperimentContext:
    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            ExperimentContext(scale="huge")

    def test_context_cache_returns_same_object(self):
        assert get_context("small") is get_context("small")

    def test_scales_have_increasing_targets(self):
        small = ExperimentContext(scale="small").pipeline_config()
        default = ExperimentContext(scale="default").pipeline_config()
        large = ExperimentContext(scale="large").pipeline_config()
        assert small.target_tables < default.target_tables < large.target_tables

    def test_small_scale_has_generator_override(self):
        assert ExperimentContext(scale="small").generator_config() is not None
        assert ExperimentContext(scale="default").generator_config() is None


class TestRenderMarkdown:
    def _result(self):
        return ExperimentResult(
            experiment_id="tableX",
            title="Example",
            rows=[{"metric": "f1", "value": 0.9}],
            paper_reference=[{"metric": "f1", "value": 0.86}],
            notes="shape matches",
        )

    def test_contains_measured_and_reference_tables(self):
        text = render_result_markdown("Table X — Example", self._result())
        assert "## Table X — Example" in text
        assert "Measured (this reproduction)" in text
        assert "Paper reference" in text
        assert "| f1 | 0.9 |" in text
        assert "shape matches" in text

    def test_row_truncation(self):
        result = ExperimentResult(
            experiment_id="y", title="Y", rows=[{"i": i} for i in range(50)]
        )
        text = render_result_markdown("Y", result, max_rows=10)
        assert "more rows" in text

    def test_empty_rows_render_placeholder(self):
        result = ExperimentResult(experiment_id="z", title="Z")
        assert "_(no rows)_" in render_result_markdown("Z", result)


class TestReportGeneration:
    def test_generate_report_covers_all_paper_artifacts(self, context):
        report = generate_report(scale="small")
        for heading in ("Table 1", "Table 7", "Table 8", "Figure 4a", "Figure 6a",
                        "Section 4.2", "Section 4.3"):
            assert heading in report

    def test_write_report_creates_file(self, tmp_path, context):
        path = tmp_path / "EXPERIMENTS.md"
        text = write_report(path, scale="small")
        assert path.read_text(encoding="utf-8") == text


class TestCLI:
    def test_only_flag_prints_selected_experiments(self, capsys, context):
        exit_code = cli_main(["--scale", "small", "--only", "table1"])
        assert exit_code == 0
        captured = capsys.readouterr()
        assert "table1" in captured.out

    def test_unknown_experiment_id_fails(self, capsys, context):
        exit_code = cli_main(["--scale", "small", "--only", "table99"])
        assert exit_code == 2

    def test_output_flag_writes_file(self, tmp_path, capsys, context):
        path = tmp_path / "report.md"
        exit_code = cli_main(["--scale", "small", "--output", str(path)])
        assert exit_code == 0
        assert path.exists()
