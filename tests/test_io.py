"""Unit tests for CSV serialisation (repro.dataframe.io)."""

import pytest

from repro.dataframe.io import read_csv_file, table_to_csv, write_csv_file
from repro.dataframe.parser import parse_csv
from repro.dataframe.table import Table
from repro.errors import CSVParseError


class TestTableToCSV:
    def test_round_trip(self, orders_table):
        text = table_to_csv(orders_table)
        parsed, _ = parse_csv(text)
        assert parsed.header == orders_table.header
        assert parsed.rows == orders_table.rows

    def test_values_with_delimiter_are_quoted(self):
        table = Table(header=["note"], rows=[["hello, world"]])
        text = table_to_csv(table)
        assert '"hello, world"' in text

    def test_values_with_quotes_are_escaped(self):
        table = Table(header=["note"], rows=[['say "hi"']])
        text = table_to_csv(table)
        assert '""hi""' in text

    def test_none_serialises_to_empty(self):
        table = Table(header=["a", "b"], rows=[[None, "x"]])
        text = table_to_csv(table)
        assert text.splitlines()[1] == ",x"

    def test_custom_delimiter(self, orders_table):
        text = table_to_csv(orders_table, delimiter=";")
        assert ";" in text.splitlines()[0]


class TestFileIO:
    def test_write_and_read(self, tmp_path, orders_table):
        path = tmp_path / "orders.csv"
        write_csv_file(orders_table, path)
        table, report = read_csv_file(path)
        assert table.header == orders_table.header
        assert table.num_rows == orders_table.num_rows
        assert report.dialect.delimiter == ","

    def test_read_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(CSVParseError):
            read_csv_file(path)
