"""Unit tests for the WordNet-noun substrate (repro.wordnet)."""

import pytest

from repro.wordnet.lexicon import NounEntry, NounLexicon, blocked_topics, load_default_lexicon
from repro.wordnet.topics import PRIORITY_TOPICS, select_topics


class TestLexicon:
    def test_default_lexicon_is_nonempty(self):
        lexicon = load_default_lexicon()
        assert len(lexicon) > 300

    def test_default_lexicon_is_cached(self):
        assert load_default_lexicon() is load_default_lexicon()

    def test_contains_priority_topics(self):
        lexicon = load_default_lexicon()
        for topic in PRIORITY_TOPICS:
            assert topic in lexicon

    def test_hypernym_chain_reaches_entity(self):
        lexicon = load_default_lexicon()
        chain = lexicon.hypernym_chain("city")
        assert chain[0] == "city"
        assert chain[-1] == "entity"

    def test_hypernym_chain_of_root(self):
        lexicon = load_default_lexicon()
        assert lexicon.hypernym_chain("entity") == ["entity"]

    def test_domains(self):
        lexicon = load_default_lexicon()
        assert "noun.person" in lexicon.domains()
        assert lexicon.domain_of("city") == "noun.location"

    def test_by_domain(self):
        lexicon = load_default_lexicon()
        people = lexicon.by_domain("noun.person")
        assert all(entry.domain == "noun.person" for entry in people)
        assert len(people) > 10

    def test_duplicate_noun_rejected(self):
        entries = [NounEntry("a", "a", "noun.tops"), NounEntry("a", "a", "noun.tops")]
        with pytest.raises(ValueError):
            NounLexicon(entries)

    def test_get_unknown_returns_none(self):
        assert load_default_lexicon().get("zzz-not-a-noun") is None


class TestTopicSelection:
    def test_priority_topics_come_first(self):
        selection = select_topics(5)
        assert selection.topics[:3] == PRIORITY_TOPICS

    def test_requested_count_respected(self):
        assert len(select_topics(12)) == 12

    def test_blocked_topics_never_selected(self):
        selection = select_topics(len(load_default_lexicon()))
        assert not set(selection.topics) & blocked_topics()

    def test_extra_blocked_topics(self):
        selection = select_topics(30, extra_blocked={"id"})
        assert "id" not in selection.topics

    def test_deterministic_given_seed(self):
        assert select_topics(20, seed=5).topics == select_topics(20, seed=5).topics

    def test_different_seeds_differ(self):
        a = select_topics(30, seed=1).topics
        b = select_topics(30, seed=2).topics
        assert a != b

    def test_invalid_count_rejected(self):
        with pytest.raises(ValueError):
            select_topics(0)
