"""Unit tests for the Faker substrate and PII scrubbing (repro.anonymize)."""

import re

import pytest

from repro.anonymize.pii_scrubber import PIIScrubber
from repro.anonymize.provider import FakeDataProvider


class TestFakeDataProvider:
    def test_name_format(self):
        provider = FakeDataProvider(seed=1)
        assert len(provider.name().split()) == 2

    def test_email_format(self):
        provider = FakeDataProvider(seed=1)
        assert re.match(r"^[a-z]+\.[a-z]+@[\w.]+$", provider.email())

    def test_date_format(self):
        provider = FakeDataProvider(seed=1)
        assert re.match(r"^\d{4}-\d{2}-\d{2}$", provider.date())

    def test_postcode_format(self):
        provider = FakeDataProvider(seed=1)
        assert re.match(r"^\d{5}$", provider.postcode())

    def test_generate_by_class_name(self):
        provider = FakeDataProvider(seed=1)
        assert "@" in provider.generate("faker.email")
        assert provider.generate("faker.city")

    def test_generate_unknown_class_rejected(self):
        with pytest.raises(ValueError):
            FakeDataProvider().generate("faker.unknown")

    def test_generate_column_length(self):
        values = FakeDataProvider(seed=2).generate_column("faker.name", 7)
        assert len(values) == 7

    def test_generate_column_negative_rejected(self):
        with pytest.raises(ValueError):
            FakeDataProvider().generate_column("faker.name", -1)

    def test_deterministic_given_seed(self):
        assert FakeDataProvider(seed=3).name() == FakeDataProvider(seed=3).name()

    def test_keyed_stream_independent_of_parent_usage(self):
        """Keyed sub-providers depend only on (seed, key), not on how much
        the parent generated before — the property resumed builds rely on."""
        fresh = FakeDataProvider(seed=3)
        worn = FakeDataProvider(seed=3)
        for _ in range(10):
            worn.name()
        assert fresh.keyed("k").generate_column("faker.email", 4) == worn.keyed(
            "k"
        ).generate_column("faker.email", 4)
        # Different keys (and seeds) give different streams.
        assert fresh.keyed("k").generate_column("faker.email", 4) != fresh.keyed(
            "other"
        ).generate_column("faker.email", 4)


class TestPIIScrubber:
    def _annotations(self, people_table):
        return {
            "name": [("name", 1.0)],
            "email": [("email", 1.0)],
            "birth date": [("birth date", 0.9)],
            "city": [("city", 1.0)],
        }

    def test_scrubs_pii_columns(self, people_table):
        scrubber = PIIScrubber()
        scrubbed, report = scrubber.scrub(people_table, self._annotations(people_table))
        assert "email" in report.scrubbed_columns
        assert "birth date" in report.scrubbed_columns
        assert scrubbed.column("email").values != people_table.column("email").values

    def test_non_pii_columns_untouched(self, people_table):
        scrubber = PIIScrubber()
        scrubbed, _ = scrubber.scrub(people_table, self._annotations(people_table))
        assert scrubbed.column("city").values == people_table.column("city").values
        assert scrubbed.column("id").values == people_table.column("id").values

    def test_name_scrubbed_when_cooccurring_with_other_pii(self, people_table):
        scrubber = PIIScrubber()
        _, report = scrubber.scrub(people_table, self._annotations(people_table))
        assert "name" in report.scrubbed_columns

    def test_name_alone_is_not_scrubbed(self, people_table):
        scrubber = PIIScrubber()
        annotations = {"name": [("name", 1.0)]}
        scrubbed, report = scrubber.scrub(people_table, annotations)
        assert report.scrubbed_columns == []
        assert "name" in report.skipped_conditional
        assert scrubbed.column("name").values == people_table.column("name").values

    def test_low_confidence_annotations_ignored(self, people_table):
        scrubber = PIIScrubber(confidence_threshold=0.95)
        annotations = {"birth date": [("birth date", 0.6)]}
        _, report = scrubber.scrub(people_table, annotations)
        assert report.scrubbed_count == 0

    def test_metadata_records_scrubbed_columns(self, people_table):
        scrubber = PIIScrubber()
        scrubbed, _ = scrubber.scrub(people_table, self._annotations(people_table))
        assert "email" in scrubbed.metadata["pii_scrubbed_columns"]

    def test_no_annotations_is_a_noop(self, people_table):
        scrubber = PIIScrubber()
        scrubbed, report = scrubber.scrub(people_table, {})
        assert scrubbed is people_table
        assert report.scrubbed_count == 0
