"""Tests for the streaming stage-graph pipeline API (repro.pipeline)."""

import pytest

from repro.config import PipelineConfig
from repro.core.annotation import AnnotationPipeline
from repro.core.curation import ContentCurator
from repro.core.filtering import TableFilter
from repro.core.pipeline import CorpusBuilder, build_corpus
from repro.github.content import GeneratorConfig
from repro.pipeline import (
    AnnotateStage,
    BatchStage,
    CurateStage,
    FilterStage,
    FunctionStage,
    MapStage,
    ParseStage,
    Pipeline,
    StageContext,
)


class TestComposition:
    def test_stage_ordering_is_application_order(self):
        pipeline = Pipeline(
            [
                FunctionStage(lambda x: x + 1, name="inc"),
                FunctionStage(lambda x: x * 10, name="scale"),
            ]
        )
        assert pipeline.stage_names == ("inc", "scale")
        outcome = pipeline.run(range(4))
        assert outcome.items == [10, 20, 30, 40]

    def test_then_and_insert_compose(self):
        pipeline = Pipeline([FunctionStage(lambda x: x * 10, name="scale")])
        pipeline.then(lambda x: x + 1, name="inc").insert(
            0, FunctionStage(lambda x: x - 1, name="dec")
        )
        assert pipeline.stage_names == ("dec", "scale", "inc")
        assert pipeline.run([2]).items == [11]

    def test_duplicate_stage_names_rejected(self):
        pipeline = Pipeline([FunctionStage(lambda x: x, name="same")])
        with pytest.raises(ValueError):
            pipeline.then(lambda x: x, name="same")

    def test_function_stage_drops_none(self):
        pipeline = Pipeline([FunctionStage(lambda x: x if x % 2 else None, name="odd")])
        assert pipeline.run(range(6)).items == [1, 3, 5]

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ValueError):
            Pipeline([]).run([1])

    def test_context_state_shared_between_stages(self):
        class Publisher:
            name = "publisher"

            def process(self, items, ctx):
                ctx.publish("seen", [])
                for item in items:
                    ctx.state["seen"].append(item)
                    yield item

        outcome = Pipeline([Publisher()]).run([1, 2, 3])
        assert outcome.context.state["seen"] == [1, 2, 3]


class TestStreaming:
    def test_poisoned_item_past_limit_is_never_touched(self):
        pulled_poison = []

        def source():
            yield from range(5)
            pulled_poison.append(True)
            yield 999

        pipeline = Pipeline([FunctionStage(lambda x: x * 2, name="double")], batch_size=2)
        outcome = pipeline.run(source(), limit=5)
        assert outcome.items == [0, 2, 4, 6, 8]
        assert not pulled_poison
        assert outcome.report.stopped_early

    def test_runner_batches_bound_materialization(self):
        pipeline = Pipeline([FunctionStage(lambda x: x, name="id")], batch_size=8)
        outcome = pipeline.run(range(30))
        report = outcome.report
        assert report.peak_batch_items <= 8
        assert report.batches == 4
        assert report.items_collected == 30

    def test_limit_zero_batch_boundary(self):
        pipeline = Pipeline([FunctionStage(lambda x: x, name="id")], batch_size=4)
        outcome = pipeline.run(range(100), limit=4)
        assert len(outcome.items) == 4

    def test_poisoned_extracted_file_never_parsed(self, small_config):
        """A poisoned upstream file past the corpus target is never pulled."""
        builder = CorpusBuilder(
            small_config, generator_config=GeneratorConfig.small(seed=11)
        )
        from repro.wordnet.topics import select_topics

        topics = select_topics(4, seed=11).topics
        files, _ = builder.extractor.extract(list(topics))
        assert len(files) > 10

        pulled_poison = []

        def poisoned_source():
            yield from files
            pulled_poison.append(True)
            yield object()  # would crash ParseStage if ever processed

        pipeline = Pipeline(
            [
                ParseStage(),
                FilterStage(TableFilter(small_config.curation)),
                AnnotateStage(AnnotationPipeline(small_config.annotation)),
                CurateStage(ContentCurator(small_config.curation, seed=small_config.seed)),
            ],
            batch_size=4,
        )
        # Every extracted file can satisfy a limit of 1 long before the
        # poison; the graph must stop pulling at the limit.
        outcome = pipeline.run(poisoned_source(), config=small_config, limit=1)
        assert len(outcome.items) == 1
        assert not pulled_poison

    def test_no_wasted_annotation_past_target(self):
        """Satellite fix: annotation pulls exactly target_tables items."""
        config = PipelineConfig(target_tables=10)
        result = build_corpus(config, generator_config=GeneratorConfig.small(seed=5))
        report = result.pipeline_report
        assert len(result.corpus) == 10
        assert report.stage("annotation").items_in == 10
        assert report.stage("curation").items_out == 10
        # The legacy builder extracted all 40 default topics up front; the
        # streaming one stops pulling topics once the target is met.
        assert report.stage("extraction").items_in < config.extraction.topic_count
        # Early stop must still flush the extraction stage's finally-block
        # fields (the runner closes the generator chain deterministically).
        assert result.extraction_report.api_requests > 0

    def test_reused_pipeline_resets_legacy_reports(self, small_config):
        """Running one Pipeline twice must not accumulate legacy reports."""
        builder = CorpusBuilder(
            small_config, generator_config=GeneratorConfig.small(seed=23)
        )
        from repro.wordnet.topics import select_topics

        topics = select_topics(2, seed=23).topics
        files, _ = builder.extractor.extract(list(topics))
        pipeline = Pipeline(
            [ParseStage(), FilterStage(TableFilter(small_config.curation))], batch_size=8
        )
        first = pipeline.run(files, config=small_config)
        second = pipeline.run(files, config=small_config)
        for outcome in (first, second):
            parsing = outcome.report.stage_reports["parsing"]
            assert parsing.attempted == outcome.report.stage("parsing").items_in
            filtering = outcome.report.stage_reports["filtering"]
            assert filtering.evaluated == outcome.report.stage("filtering").items_in


class TestReportReconciliation:
    def test_counters_match_legacy_reports(self, pipeline_result):
        report = pipeline_result.pipeline_report
        assert report is not None
        assert report.stage_names == (
            "extraction",
            "parsing",
            "filtering",
            "annotation",
            "curation",
        )

        assert report.stage("extraction").items_out == (
            pipeline_result.extraction_report.files_downloaded
        )
        parsing = report.stage("parsing")
        assert parsing.items_in == pipeline_result.parsing_report.attempted
        assert parsing.items_out == pipeline_result.parsing_report.parsed
        filtering = report.stage("filtering")
        assert filtering.items_in == pipeline_result.filter_report.evaluated
        assert filtering.items_out == pipeline_result.filter_report.kept
        curation = report.stage("curation")
        assert curation.items_in == pipeline_result.curation_report.tables_processed
        assert curation.items_out == len(pipeline_result.corpus)

    def test_legacy_report_objects_registered(self, pipeline_result):
        report = pipeline_result.pipeline_report
        assert report.stage_reports["parsing"] is pipeline_result.parsing_report
        assert report.stage_reports["filtering"] is pipeline_result.filter_report
        assert report.stage_reports["extraction"] is pipeline_result.extraction_report
        assert report.stage_reports["curation"] is pipeline_result.curation_report

    def test_timings_and_rows(self, pipeline_result):
        report = pipeline_result.pipeline_report
        assert report.total_seconds > 0
        assert all(metrics.seconds >= 0 for metrics in report.stages.values())
        rows = report.as_rows()
        assert [row["stage"] for row in rows] == list(report.stage_names)
        assert "extraction" in report.summary()

    def test_peak_batch_is_bounded(self, pipeline_result):
        report = pipeline_result.pipeline_report
        assert 0 < report.peak_batch_items <= report.batch_size


class _DoublingBatchStage:
    """A toy batch stage recording the chunk shapes it received."""

    name = "double"

    def __init__(self, delay_by_item: dict | None = None):
        self.chunks: list[int] = []
        self.delay_by_item = delay_by_item or {}

    def process_batch(self, batch, ctx):
        import time

        self.chunks.append(len(batch))
        for item in batch:
            delay = self.delay_by_item.get(item)
            if delay:
                time.sleep(delay)
        return [item * 2 for item in batch]


class TestMapStage:
    def test_batch_stages_satisfy_protocol(self):
        assert isinstance(_DoublingBatchStage(), BatchStage)
        assert isinstance(ParseStage(), BatchStage)
        parse_map = MapStage(ParseStage())
        assert parse_map.name == "parsing"

    def test_sequential_chunking(self):
        stage = _DoublingBatchStage()
        outcome = Pipeline([MapStage(stage, chunk_size=4)]).run(range(10))
        assert outcome.items == [i * 2 for i in range(10)]
        assert stage.chunks == [4, 4, 2]

    def test_parallel_preserves_order(self):
        # The first chunk is the slowest; its results must still lead.
        stage = _DoublingBatchStage(delay_by_item={0: 0.05, 8: 0.01})
        outcome = Pipeline([MapStage(stage, chunk_size=2, workers=4)]).run(range(12))
        assert outcome.items == [i * 2 for i in range(12)]

    def test_parallel_equals_sequential(self):
        serial = Pipeline([MapStage(_DoublingBatchStage(), chunk_size=3)]).run(range(50))
        parallel = Pipeline(
            [MapStage(_DoublingBatchStage(), chunk_size=3, workers=4)]
        ).run(range(50))
        assert serial.items == parallel.items

    def test_workers_inherited_from_pipeline_config(self):
        recorded = []

        class Recorder:
            name = "recorder"

            def process_batch(self, batch, ctx):
                import threading

                recorded.append(threading.current_thread().name)
                return batch

        config = PipelineConfig(workers=3)
        Pipeline([MapStage(Recorder(), chunk_size=1)]).run(range(6), config=config)
        assert any("ThreadPoolExecutor" in name for name in recorded)

    def test_counters_reconcile_with_per_item_stage(self):
        outcome = Pipeline([MapStage(_DoublingBatchStage(), chunk_size=4)]).run(range(10))
        metrics = outcome.report.stage("double")
        assert metrics.items_in == 10
        assert metrics.items_out == 10

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            MapStage(_DoublingBatchStage(), chunk_size=0)
        with pytest.raises(ValueError):
            MapStage(_DoublingBatchStage(), workers=0)

    def test_map_wrapped_parse_stage_resets_reports(self, small_config):
        builder = CorpusBuilder(
            small_config, generator_config=GeneratorConfig.small(seed=23)
        )
        from repro.wordnet.topics import select_topics

        topics = select_topics(2, seed=23).topics
        files, _ = builder.extractor.extract(list(topics))
        pipeline = Pipeline([MapStage(ParseStage(), chunk_size=8, workers=2)])
        first = pipeline.run(files, config=small_config)
        second = pipeline.run(files, config=small_config)
        for outcome in (first, second):
            parsing = outcome.report.stage_reports["parsing"]
            assert parsing.attempted == outcome.report.stage("parsing").items_in
            assert parsing.parsed == outcome.report.stage("parsing").items_out

    def test_annotate_process_batch_equals_per_item(self, small_config):
        builder = CorpusBuilder(
            small_config, generator_config=GeneratorConfig.small(seed=31)
        )
        from repro.wordnet.topics import select_topics

        topics = select_topics(2, seed=31).topics
        files, _ = builder.extractor.extract(list(topics))
        parsed, _ = builder.parser.parse_all(files[:12])
        stage = AnnotateStage(AnnotationPipeline(small_config.annotation))
        ctx = StageContext()
        batched = stage.process_batch(parsed, ctx)
        per_item = list(stage.process(iter(parsed), ctx))
        assert [candidate.annotations for candidate in batched] == [
            candidate.annotations for candidate in per_item
        ]


class TestParallelBuild:
    def test_workers_build_identical_corpus(self):
        config = PipelineConfig(target_tables=15, seed=13)
        generator = GeneratorConfig(n_repositories=80, mean_rows=25, seed=13)
        serial = build_corpus(config, generator_config=generator)
        parallel = build_corpus(config.replace(workers=4), generator_config=generator)
        assert len(parallel.corpus) == 15
        assert [t.table_id for t in serial.corpus] == [t.table_id for t in parallel.corpus]
        for one, two in zip(serial.corpus, parallel.corpus):
            assert one.table.rows == two.table.rows
            assert one.annotations == two.annotations
        report = parallel.pipeline_report
        assert report.stage("parsing").items_in == parallel.parsing_report.attempted

    def test_invalid_workers_rejected(self):
        from repro.errors import PipelineConfigError

        with pytest.raises(PipelineConfigError):
            PipelineConfig(workers=0)


class TestBuilderOverGraph:
    def test_builder_exposes_composable_pipeline(self):
        builder = CorpusBuilder(
            PipelineConfig(target_tables=5), generator_config=GeneratorConfig.small(seed=3)
        )
        pipeline = builder.pipeline()
        assert pipeline.stage_names == (
            "extraction",
            "parsing",
            "filtering",
            "annotation",
            "curation",
        )
        # Custom observer stages slot in without touching the builder.
        seen = []
        pipeline.insert(3, FunctionStage(lambda p: (seen.append(p), p)[1], name="observe"))
        from repro.wordnet.topics import select_topics

        topics = select_topics(builder.config.extraction.topic_count, seed=builder.config.seed)
        outcome = pipeline.run(topics.topics, config=builder.config, limit=5)
        assert len(outcome.items) == 5
        assert len(seen) == 5

    def test_streamed_corpus_matches_legacy_contents(self):
        """Same seed → identical corpus contents via facade and legacy paths."""
        config = PipelineConfig(target_tables=12, seed=77)
        generator = GeneratorConfig(n_repositories=60, mean_rows=30, seed=77)
        first = build_corpus(config, generator_config=generator)
        second = build_corpus(config, generator_config=generator, batch_size=3)
        assert [a.table_id for a in first.corpus] == [a.table_id for a in second.corpus]
        for one, two in zip(first.corpus, second.corpus):
            assert one.table.header == two.table.header
            assert one.table.rows == two.table.rows
            assert [a.type_label for a in one.annotations.all()] == [
                a.type_label for a in two.annotations.all()
            ]

    def test_default_stage_context(self):
        ctx = StageContext()
        assert ctx.config is None
        ctx.publish("k", 1)
        assert ctx.state["k"] == 1
