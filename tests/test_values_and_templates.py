"""Unit tests for the synthetic value pools and table templates."""

import numpy as np
import pytest

from repro._rand import derive_rng
from repro.dataframe.dtypes import AtomicType, infer_column_type
from repro.github.content import TABLE_TEMPLATES, ColumnSpec, ContentGenerator, GeneratorConfig
from repro.github.values import VALUE_KINDS, ValuePools, generate_values


@pytest.fixture()
def rng():
    return derive_rng(1234, "value-tests")


class TestValueKinds:
    def test_every_kind_generates_requested_count(self, rng):
        for kind in VALUE_KINDS:
            values = generate_values(kind, rng, 7)
            assert len(values) == 7
            assert all(isinstance(value, str) for value in values)

    def test_unknown_kind_rejected(self, rng):
        with pytest.raises(KeyError):
            generate_values("not-a-kind", rng, 3)

    @pytest.mark.parametrize("kind", ["price", "quantity", "count", "score", "age", "salary"])
    def test_numeric_kinds_infer_numeric(self, rng, kind):
        values = generate_values(kind, rng, 30)
        assert infer_column_type(values).is_numeric

    @pytest.mark.parametrize("kind", ["country", "city", "species", "status", "person_name"])
    def test_categorical_kinds_infer_string(self, rng, kind):
        values = generate_values(kind, rng, 30)
        assert infer_column_type(values) is AtomicType.STRING

    def test_date_kind_infers_date(self, rng):
        assert infer_column_type(generate_values("date", rng, 30)) is AtomicType.DATE

    def test_email_values_contain_at_sign(self, rng):
        assert all("@" in value for value in generate_values("email", rng, 10))

    def test_id_values_are_sequential(self, rng):
        values = [int(v) for v in generate_values("id", rng, 10)]
        assert values == list(range(values[0], values[0] + 10))

    def test_country_pool_skews_western(self, rng):
        values = generate_values("country", rng, 2000)
        us_share = sum(value in ("United States", "USA") for value in values) / len(values)
        assert us_share > 0.2

    def test_gender_pool_matches_table6(self, rng):
        values = set(generate_values("gender", rng, 500))
        assert {"Male", "Female"} & values


class TestTemplates:
    def test_all_templates_have_core_and_topics(self):
        for template in TABLE_TEMPLATES:
            assert len(template.core) >= 3
            assert template.topics
            assert template.weight > 0

    def test_all_template_kinds_are_known(self):
        for template in TABLE_TEMPLATES:
            for spec in template.core + template.optional:
                assert spec.kind in VALUE_KINDS, (template.key, spec)

    def test_biology_template_matches_figure2(self):
        biology = next(t for t in TABLE_TEMPLATES if t.key == "biology")
        names = {spec.name for spec in biology.core}
        assert {"Isolate Id", "Species", "Organism Group"} <= names

    def test_orders_template_matches_figure6b(self):
        orders = next(t for t in TABLE_TEMPLATES if t.key == "orders")
        names = {spec.name for spec in orders.core + orders.optional}
        assert {"order_id", "status", "total_price", "product_id"} <= names


class TestGeneratorInternals:
    def test_column_sampling_respects_core(self):
        generator = ContentGenerator(GeneratorConfig(seed=5))
        template = TABLE_TEMPLATES[0]
        columns = generator._sample_columns(template)
        core_names = [spec.name for spec in template.core]
        assert [spec.name for spec in columns[: len(core_names)]] == core_names

    def test_name_mutation_produces_different_name(self):
        generator = ContentGenerator(GeneratorConfig(seed=6))
        mutated = {generator._mutate_name("order date") for _ in range(30)}
        assert any(name != "order date" for name in mutated)

    def test_style_name_variants(self):
        generator = ContentGenerator(GeneratorConfig(seed=7))
        assert generator._style_name("order date", "snake") == "order_date"
        assert generator._style_name("order date", "upper") == "ORDER_DATE"
        assert generator._style_name("order date", "camel") == "orderDate"
        assert generator._style_name("order date", "title") == "Order Date"

    def test_abbreviation_shortens_known_words(self):
        generator = ContentGenerator(GeneratorConfig(seed=8))
        assert generator._abbreviate("quantity") == "qty"
        assert generator._abbreviate("address") == "addr"
        assert len(generator._abbreviate("measurement")) <= 5

    def test_file_topics_include_header_tokens(self):
        generator = ContentGenerator(GeneratorConfig(seed=9))
        template = TABLE_TEMPLATES[1]
        columns = [ColumnSpec("order_id", "id"), ColumnSpec("status", "status")]
        topics = generator._file_topics(template, columns)
        assert "order" in topics and "status" in topics


class TestValuePools:
    def test_pools_are_nonempty(self):
        for name in ("COUNTRIES", "CITIES", "SPECIES", "STATUSES", "FIRST_NAMES"):
            assert getattr(ValuePools, name)

    def test_weighted_pools_have_positive_weights(self):
        for pool in (ValuePools.COUNTRIES, ValuePools.CITIES, ValuePools.GENDERS):
            assert all(weight > 0 for _, weight in pool)
