"""Tests for the GitTables session facade (repro.api)."""

import pytest

from repro import GitTables, PipelineConfig
from repro.applications.data_search import TableSearchEngine
from repro.applications.kg_matching import (
    KGMatchingBenchmark,
    ValueLinkingMatcher,
    evaluate_matcher,
)
from repro.applications.schema_completion import NearestCompletion
from repro.applications.type_detection import TypeDetectionExperiment
from repro.github.content import GeneratorConfig


@pytest.fixture(scope="module")
def session(context):
    """A facade over the shared small corpus (shared with experiments)."""
    return GitTables.from_result(context.pipeline_result)


class TestConstruction:
    def test_build_runs_streaming_pipeline(self):
        gt = GitTables.build(
            PipelineConfig(target_tables=8, seed=13),
            generator_config=GeneratorConfig.small(seed=13),
        )
        assert len(gt) == len(gt.corpus) == 8
        assert gt.pipeline_report is not None
        assert gt.pipeline_report.stage("curation").items_out == 8
        assert "GitTables(8 tables" in repr(gt)

    def test_build_matches_legacy_build_corpus(self):
        from repro import build_corpus

        config = PipelineConfig(target_tables=9, seed=21)
        generator = GeneratorConfig(n_repositories=60, mean_rows=30, seed=21)
        gt = GitTables.build(config, generator_config=generator)
        legacy = build_corpus(config, generator_config=generator)
        assert [a.table_id for a in gt.corpus] == [a.table_id for a in legacy.corpus]
        for ours, theirs in zip(gt.corpus, legacy.corpus):
            assert ours.table.rows == theirs.table.rows

    def test_from_corpus_and_len_topics(self, gittables_corpus):
        gt = GitTables.from_corpus(gittables_corpus)
        assert len(gt) == len(gittables_corpus)
        assert gt.topics() == gittables_corpus.topics()
        assert gt.result is None and gt.pipeline_report is None

    def test_save_and_load_roundtrip(self, session, tmp_path):
        session.save(tmp_path / "corpus")
        loaded = GitTables.load(tmp_path / "corpus")
        assert len(loaded) == len(session)
        assert loaded.corpus.topics() == session.corpus.topics()


class TestApplicationEquivalence:
    """Facade methods return identical results to the bespoke constructors."""

    def test_search_matches_bespoke_engine(self, session, gittables_corpus):
        query = "status and sales amount per product"
        bespoke = TableSearchEngine(gittables_corpus).search(query, k=5)
        assert session.search(query, k=5) == bespoke

    def test_complete_schema_matches_bespoke_completer(self, session, gittables_corpus):
        prefix = ("order_id", "order_date", "status")
        bespoke = NearestCompletion(gittables_corpus).complete(prefix, k=5)
        assert session.complete_schema(prefix, k=5) == bespoke

    def test_evaluate_completion_matches_bespoke(self, session, gittables_corpus):
        schema = ("order_id", "order_date", "status", "quantity", "total_price")
        bespoke = NearestCompletion(gittables_corpus).evaluate(schema, prefix_length=3, k=5)
        ours = session.evaluate_completion(schema, prefix_length=3, k=5)
        assert ours == bespoke

    def test_detect_types_matches_bespoke_experiment(self, session, gittables_corpus):
        options = {"columns_per_type": 25, "epochs": 6, "n_splits": 2, "seed": 3}
        bespoke = TypeDetectionExperiment(**options).within_corpus(gittables_corpus)
        ours = session.detect_types(**options)
        assert ours == bespoke

    def test_match_kg_matches_bespoke_evaluation(self, session, gittables_corpus):
        benchmark = KGMatchingBenchmark.from_corpus(gittables_corpus, min_columns=3, min_rows=5)
        bespoke = evaluate_matcher(ValueLinkingMatcher(), benchmark, "dbpedia")
        assert session.match_kg(ontology="dbpedia") == bespoke

    def test_match_kg_all_covers_both_matchers_and_ontologies(self, session):
        scores = session.match_kg_all()
        combos = {(score.matcher, score.ontology) for score in scores}
        assert len(scores) == 4 and len(combos) == 4
        assert {score.ontology for score in scores} == {"dbpedia", "schema_org"}
        assert len({score.matcher for score in scores}) == 2

    def test_shift_report_matches_bespoke(self, session, viznet_corpus):
        from repro.applications.domain_classifier import detect_data_shift

        options = {"n_columns_per_corpus": 80, "n_splits": 3, "n_estimators": 5, "seed": 1}
        bespoke = detect_data_shift(session.corpus, viznet_corpus, **options)
        ours = session.shift_report(viznet_corpus, **options)
        assert ours == bespoke

    def test_shift_report_accepts_facade_argument(self, session, viznet_corpus):
        other = GitTables.from_corpus(viznet_corpus)
        options = {"n_columns_per_corpus": 40, "n_splits": 2, "n_estimators": 3, "seed": 2}
        assert session.shift_report(other, **options) == session.shift_report(
            viznet_corpus, **options
        )


class TestSharedCaches:
    def test_search_engine_and_completer_are_cached(self, session):
        assert session.search_engine is session.search_engine
        assert session.completer is session.completer

    def test_encoder_is_shared_across_applications(self, session):
        assert session.search_engine.encoder is session.encoder
        assert session.completer.encoder is session.encoder

    def test_kg_benchmark_cached_per_thresholds(self, session):
        assert session.kg_benchmark(3, 5) is session.kg_benchmark(3, 5)
        assert session.kg_benchmark(3, 5) is not session.kg_benchmark(2, 2)

    def test_reset_caches_drops_state(self, session):
        engine = session.search_engine
        session.reset_caches()
        assert session.search_engine is not engine

    def test_stats_and_annotation_stats(self, session):
        stats = session.stats()
        assert stats.table_count == len(session)
        assert session.annotation_stats().mean_coverage
