"""Unit tests for the Table/Column model (repro.dataframe.table)."""

import pytest

from repro.dataframe.dtypes import AtomicType
from repro.dataframe.table import Column, Table
from repro.errors import TableValidationError


class TestTableConstruction:
    def test_shape(self, orders_table):
        assert orders_table.shape == (4, 6)
        assert orders_table.num_cells == 24
        assert len(orders_table) == 4

    def test_empty_header_rejected(self):
        with pytest.raises(TableValidationError):
            Table(header=[], rows=[])

    def test_ragged_rows_rejected(self):
        with pytest.raises(TableValidationError):
            Table(header=["a", "b"], rows=[["1", "2"], ["3"]])

    def test_header_coerced_to_strings(self):
        table = Table(header=[1, 2], rows=[["x", "y"]])
        assert table.header == ("1", "2")

    def test_from_columns(self):
        table = Table.from_columns({"a": [1, 2], "b": [3, 4]})
        assert table.shape == (2, 2)
        assert table.column("a").values == (1, 2)

    def test_from_columns_unequal_lengths_rejected(self):
        with pytest.raises(TableValidationError):
            Table.from_columns({"a": [1], "b": [1, 2]})

    def test_from_columns_empty_rejected(self):
        with pytest.raises(TableValidationError):
            Table.from_columns({})


class TestColumnAccess:
    def test_column_lookup_by_name(self, orders_table):
        column = orders_table.column("status")
        assert column.values[0] == "SHIPPED"

    def test_column_lookup_missing_raises(self, orders_table):
        with pytest.raises(KeyError):
            orders_table.column("does-not-exist")

    def test_column_index(self, orders_table):
        assert orders_table.column_index("order_id") == 0

    def test_columns_have_inferred_types(self, orders_table):
        assert orders_table.column("quantity").atomic_type is AtomicType.INTEGER
        assert orders_table.column("total_price").atomic_type is AtomicType.FLOAT
        assert orders_table.column("status").atomic_type is AtomicType.STRING
        assert orders_table.column("order_date").atomic_type is AtomicType.DATE

    def test_iter_rows(self, orders_table):
        rows = list(orders_table.iter_rows())
        assert len(rows) == 4
        assert rows[0][0] == "1001"

    def test_to_dicts(self, orders_table):
        dicts = orders_table.to_dicts()
        assert dicts[1]["status"] == "PENDING"


class TestColumnStatistics:
    def test_missing_fraction(self):
        column = Column.from_values("x", ["1", "", "nan", "2"])
        assert column.missing_fraction == pytest.approx(0.5)

    def test_distinct_count(self):
        column = Column.from_values("x", ["a", "b", "a", ""])
        assert column.distinct_count == 2

    def test_numeric_summary(self):
        column = Column.from_values("x", ["1", "2", "3", "4"])
        summary = column.summary()
        assert summary["mean"] == pytest.approx(2.5)
        assert summary["min"] == 1.0
        assert summary["max"] == 4.0

    def test_summary_of_text_column_is_zeroed(self):
        column = Column.from_values("x", ["a", "b"])
        assert column.summary()["count"] == 0.0


class TestSchemaHelpers:
    def test_schema(self, orders_table):
        assert orders_table.schema[0] == "order_id"

    def test_schema_prefix(self, orders_table):
        assert orders_table.schema_prefix(3) == ("order_id", "order_date", "status")

    def test_schema_prefix_invalid_length(self, orders_table):
        with pytest.raises(TableValidationError):
            orders_table.schema_prefix(0)

    def test_unnamed_column_fraction(self):
        table = Table(header=["a", "", "unnamed"], rows=[["1", "2", "3"]])
        assert table.unnamed_column_fraction() == pytest.approx(2 / 3)


class TestTransformations:
    def test_with_metadata_returns_copy(self, orders_table):
        updated = orders_table.with_metadata(extra="x")
        assert updated.metadata["extra"] == "x"
        assert "extra" not in orders_table.metadata

    def test_with_column_values(self, orders_table):
        updated = orders_table.with_column_values("status", ["A", "B", "C", "D"])
        assert updated.column("status").values == ("A", "B", "C", "D")
        assert orders_table.column("status").values[0] == "SHIPPED"

    def test_with_column_values_length_mismatch(self, orders_table):
        with pytest.raises(TableValidationError):
            orders_table.with_column_values("status", ["only-one"])

    def test_head(self, orders_table):
        assert orders_table.head(2).num_rows == 2
        assert orders_table.head(100).num_rows == 4
