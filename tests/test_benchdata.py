"""Unit tests for the evaluation datasets (repro.benchdata)."""

import pytest

from repro.benchdata.ctu import CTU_SCHEMAS
from repro.benchdata.t2dv2 import build_t2dv2
from repro.benchdata.webtables import WebTableConfig, build_webtables_corpus
from repro.core.stats import CorpusStatistics


class TestWebTablesCorpus:
    def test_corpus_size(self, viznet_corpus):
        assert len(viznet_corpus) > 50

    def test_dimensions_are_web_scale(self, viznet_corpus):
        stats = CorpusStatistics.from_corpus(viznet_corpus)
        assert stats.avg_rows < 60
        assert stats.avg_cols < 10

    def test_tables_are_annotated(self, viznet_corpus):
        annotated_count = sum(1 for table in viznet_corpus if table.annotations.all())
        assert annotated_count > 0.8 * len(viznet_corpus)

    def test_unannotated_build_is_supported(self):
        corpus = build_webtables_corpus(WebTableConfig(n_tables=10, seed=3), annotate=False)
        assert len(corpus) == 10
        assert all(not table.annotations.all() for table in corpus)

    def test_deterministic_given_seed(self):
        config = WebTableConfig(n_tables=15, seed=9)
        first = build_webtables_corpus(config, annotate=False)
        second = build_webtables_corpus(config, annotate=False)
        assert [t.table.header for t in first] == [t.table.header for t in second]

    def test_column_names_are_web_style(self, viznet_corpus):
        names = {name for table in viznet_corpus for name in table.table.header}
        assert "name" in names or "title" in names


class TestT2Dv2:
    def test_benchmark_size(self, t2dv2_benchmark):
        assert len(t2dv2_benchmark) > 50
        assert len(t2dv2_benchmark.tables) > 10

    def test_gold_and_true_types_present(self, t2dv2_benchmark):
        for column in t2dv2_benchmark.columns:
            assert column.gold_type
            assert column.true_type

    def test_some_gold_labels_are_coarsened(self, t2dv2_benchmark):
        fraction = t2dv2_benchmark.coarsened_fraction()
        assert 0.0 < fraction < 0.8

    def test_coarsening_can_be_disabled(self):
        benchmark = build_t2dv2(n_tables=20, coarsen_probability=0.0, seed=3)
        assert benchmark.coarsened_fraction() == 0.0

    def test_deterministic_given_seed(self):
        first = build_t2dv2(n_tables=10, seed=5)
        second = build_t2dv2(n_tables=10, seed=5)
        assert [column.gold_type for column in first.columns] == [
            column.gold_type for column in second.columns
        ]

    def test_values_match_row_count(self):
        benchmark = build_t2dv2(n_tables=5, rows_per_table=12, seed=2)
        assert all(len(column.values) == 12 for column in benchmark.columns)


class TestCTUSchemas:
    def test_three_databases(self):
        assert {schema.database for schema in CTU_SCHEMAS} == {
            "Employee", "ClassicModels", "AdventureWorks",
        }

    def test_prefixes_match_paper(self):
        prefixes = {schema.table: schema.prefix(3) for schema in CTU_SCHEMAS}
        assert prefixes["employees"] == ("emp_no", "birth_date", "first_name")
        assert prefixes["orders"] == ("orderNumber", "orderDate", "requiredDate")
        assert prefixes["WorkOrder"] == ("WorkOrderID", "ProductID", "OrderQty")

    def test_invalid_prefix_length(self):
        with pytest.raises(ValueError):
            CTU_SCHEMAS[0].prefix(0)
        with pytest.raises(ValueError):
            CTU_SCHEMAS[0].prefix(100)
