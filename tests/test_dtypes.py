"""Unit tests for atomic type inference (repro.dataframe.dtypes)."""

import pytest

from repro.dataframe.dtypes import (
    AtomicType,
    coerce_value,
    infer_column_type,
    infer_value_type,
    is_missing,
)


class TestIsMissing:
    def test_none_is_missing(self):
        assert is_missing(None)

    def test_nan_float_is_missing(self):
        assert is_missing(float("nan"))

    @pytest.mark.parametrize("token", ["", "na", "N/A", "NaN", "null", "None", "-", "?"])
    def test_missing_tokens(self, token):
        assert is_missing(token)

    @pytest.mark.parametrize("value", ["0", "false", "abc", 0, 0.0, "  x  "])
    def test_non_missing_values(self, value):
        assert not is_missing(value)


class TestInferValueType:
    @pytest.mark.parametrize(
        "value,expected",
        [
            ("42", AtomicType.INTEGER),
            ("-7", AtomicType.INTEGER),
            ("3.14", AtomicType.FLOAT),
            ("1e-3", AtomicType.FLOAT),
            ("1,234.5", AtomicType.FLOAT),
            ("true", AtomicType.BOOLEAN),
            ("No", AtomicType.BOOLEAN),
            ("2021-03-01", AtomicType.DATE),
            ("03/04/2021", AtomicType.DATE),
            ("2021-03-01 12:30:00", AtomicType.DATE),
            ("hello", AtomicType.STRING),
            ("", AtomicType.EMPTY),
            (None, AtomicType.EMPTY),
        ],
    )
    def test_value_types(self, value, expected):
        assert infer_value_type(value) is expected

    def test_python_native_types(self):
        assert infer_value_type(7) is AtomicType.INTEGER
        assert infer_value_type(7.5) is AtomicType.FLOAT
        assert infer_value_type(True) is AtomicType.BOOLEAN


class TestInferColumnType:
    def test_all_integers(self):
        assert infer_column_type(["1", "2", "3"]) is AtomicType.INTEGER

    def test_mixed_int_float_promotes_to_float(self):
        assert infer_column_type(["1", "2.5", "3"]) is AtomicType.FLOAT

    def test_strings_dominate(self):
        assert infer_column_type(["a", "b", "1"]) is AtomicType.STRING

    def test_mostly_numeric_with_noise_is_numeric(self):
        values = ["1"] * 99 + ["oops"]
        assert infer_column_type(values).is_numeric

    def test_empty_column(self):
        assert infer_column_type(["", None, "na"]) is AtomicType.EMPTY

    def test_boolean_column(self):
        assert infer_column_type(["yes", "no", "yes", "no"]) is AtomicType.BOOLEAN

    def test_date_column(self):
        assert infer_column_type(["2020-01-01", "2020-02-01", "2020-03-01"]) is AtomicType.DATE

    def test_missing_values_ignored(self):
        assert infer_column_type(["1", "", "2", "nan"]) is AtomicType.INTEGER


class TestCoarseBuckets:
    def test_numeric_bucket(self):
        assert AtomicType.INTEGER.coarse == "numeric"
        assert AtomicType.FLOAT.coarse == "numeric"

    def test_string_bucket_includes_dates(self):
        assert AtomicType.STRING.coarse == "string"
        assert AtomicType.DATE.coarse == "string"

    def test_other_bucket(self):
        assert AtomicType.BOOLEAN.coarse == "other"
        assert AtomicType.EMPTY.coarse == "other"

    def test_is_numeric_flag(self):
        assert AtomicType.INTEGER.is_numeric
        assert not AtomicType.STRING.is_numeric


class TestCoerceValue:
    def test_coerce_integer(self):
        assert coerce_value("42", AtomicType.INTEGER) == 42

    def test_coerce_float_with_thousands(self):
        assert coerce_value("1,234.5", AtomicType.FLOAT) == pytest.approx(1234.5)

    def test_coerce_boolean(self):
        assert coerce_value("yes", AtomicType.BOOLEAN) is True
        assert coerce_value("no", AtomicType.BOOLEAN) is False

    def test_coerce_missing_returns_none(self):
        assert coerce_value("", AtomicType.INTEGER) is None

    def test_coerce_unparseable_returns_text(self):
        assert coerce_value("abc", AtomicType.INTEGER) == "abc"
