"""Lint gate: run ruff (configured in pyproject.toml) over the repo.

Skips when ruff is not installed in the environment — the offline test
image ships without it — but keeps CI environments that do have ruff
honest about the correctness-focused rule set.
"""

from __future__ import annotations

import importlib.util
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]

_HAS_RUFF = importlib.util.find_spec("ruff") is not None


@pytest.mark.skipif(not _HAS_RUFF, reason="ruff is not installed")
def test_ruff_check_is_clean():
    proc = subprocess.run(
        [sys.executable, "-m", "ruff", "check", "src", "tests", "benchmarks", "examples"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, f"ruff found issues:\n{proc.stdout}\n{proc.stderr}"
