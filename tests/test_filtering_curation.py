"""Unit tests for table filtering and content curation (repro.core)."""

import pytest

from repro.config import CurationConfig
from repro.core.annotation import annotate_table
from repro.core.curation import ContentCurator, CurationReport
from repro.core.filtering import (
    REASON_LICENSE,
    REASON_NON_STRING_HEADER,
    REASON_SOCIAL_MEDIA,
    REASON_TOO_SMALL,
    REASON_UNNAMED,
    FilterDecision,
    TableFilter,
)
from repro.dataframe.table import Table


def _table(header, rows, license_key="mit"):
    return Table(header, rows, table_id="t", metadata={"license": license_key})


class TestTableFilter:
    @pytest.fixture()
    def table_filter(self):
        return TableFilter(CurationConfig())

    def test_good_table_is_kept(self, table_filter, orders_table):
        assert table_filter.evaluate(orders_table).keep

    def test_license_required(self, table_filter, orders_table):
        decision = table_filter.evaluate(orders_table, license_key=None)
        assert decision == FilterDecision.dropped(REASON_LICENSE)

    def test_non_permissive_license_dropped(self, table_filter, orders_table):
        assert not table_filter.evaluate(orders_table, license_key="proprietary").keep

    def test_license_filter_can_be_disabled(self, orders_table):
        table_filter = TableFilter(CurationConfig(require_permissive_license=False))
        assert table_filter.evaluate(orders_table, license_key=None).keep

    def test_too_few_rows_dropped(self, table_filter):
        table = _table(["a", "b"], [["1", "2"]])
        assert table_filter.evaluate(table).reason == REASON_TOO_SMALL

    def test_too_few_columns_dropped(self, table_filter):
        table = _table(["a"], [["1"], ["2"], ["3"]])
        assert table_filter.evaluate(table).reason == REASON_TOO_SMALL

    def test_mostly_unnamed_columns_dropped(self, table_filter):
        table = _table(["a", "", "", ""], [["1", "2", "3", "4"], ["5", "6", "7", "8"]])
        assert table_filter.evaluate(table).reason == REASON_UNNAMED

    def test_numeric_header_dropped(self, table_filter):
        table = _table(["2020", "2021"], [["1", "2"], ["3", "4"]])
        assert table_filter.evaluate(table).reason == REASON_NON_STRING_HEADER

    def test_short_alpha_header_is_fine(self, table_filter):
        table = _table(["x", "y"], [["1", "2"], ["3", "4"]])
        assert table_filter.evaluate(table).keep

    def test_social_media_columns_dropped(self, table_filter):
        table = _table(["id", "twitter_handle"], [["1", "@a"], ["2", "@b"]])
        assert table_filter.evaluate(table).reason == REASON_SOCIAL_MEDIA

    def test_report_aggregates_reasons(self, table_filter):
        report = table_filter.filter_parsed([])[1]
        assert report.evaluated == 0
        decision_keep = FilterDecision.kept()
        decision_drop = FilterDecision.dropped(REASON_TOO_SMALL)
        report.record(decision_keep)
        report.record(decision_drop)
        assert report.kept == 1
        assert report.dropped_by_reason[REASON_TOO_SMALL] == 1
        assert report.drop_rate == pytest.approx(0.5)


class TestContentCurator:
    def test_pii_columns_are_anonymised(self, people_table):
        annotations = annotate_table(people_table)
        curator = ContentCurator(CurationConfig())
        report = CurationReport()
        result = curator.curate(people_table, annotations, report=report)
        assert report.tables_processed == 1
        assert "email" in result.scrub_report.scrubbed_columns
        assert result.table.column("email").values != people_table.column("email").values

    def test_disabled_anonymisation_is_noop(self, people_table):
        annotations = annotate_table(people_table)
        curator = ContentCurator(CurationConfig(anonymize_pii=False))
        result = curator.curate(people_table, annotations)
        assert result.table is people_table
        assert result.scrub_report.scrubbed_count == 0

    def test_report_percentages(self, people_table):
        annotations = annotate_table(people_table)
        curator = ContentCurator(CurationConfig())
        report = CurationReport()
        curator.curate(people_table, annotations, report=report)
        percentages = report.type_percentages()
        assert all(0.0 <= value <= 100.0 for value in percentages.values())
        assert 0.0 <= report.scrubbed_column_fraction <= 1.0

    def test_non_pii_table_unchanged(self, orders_table):
        annotations = annotate_table(orders_table)
        curator = ContentCurator(CurationConfig())
        report = CurationReport()
        result = curator.curate(orders_table, annotations, report=report)
        assert result.table.column("status").values == orders_table.column("status").values
