"""Tests for the concurrent query serving layer (``repro.serving``).

Covers the ISSUE-6 edge cases: empty corpora, single-request windows
(no batching regression), bit-identity of coalesced results, deadline
expiry mid-batch, overload rejection, close semantics, and a worker
SIGKILL mid-request with transparent respawn (reusing the PR-5 fault
idiom of killing a live worker pid and asserting recovery).

The in-process tests (``workers=0``) run the exact same batcher and
endpoint groups as the pool, minus the process hop, so they pin the
coalescing semantics cheaply; the pool tests exercise the mmap'd
worker path over a real saved store.
"""

from __future__ import annotations

import concurrent.futures
import os
import signal
import time

import pytest

from repro import GitTables, GitTablesCorpus, ServingConfig
from repro.config import PipelineConfigError
from repro.errors import (
    DeadlineExceeded,
    ServiceClosed,
    ServiceOverloaded,
    ServingError,
)

DETECT_OPTIONS = {"columns_per_type": 8, "epochs": 2, "n_splits": 2}


@pytest.fixture(scope="module")
def store_session(gittables_corpus, tmp_path_factory):
    """The small corpus saved to a sharded store, reloaded for serving."""
    directory = tmp_path_factory.mktemp("serving_store") / "corpus"
    GitTables.from_corpus(gittables_corpus).save(directory)
    return GitTables.load(directory)


class TestServingConfig:
    def test_defaults_validate(self):
        config = ServingConfig()
        assert config.workers == 2
        assert config.max_batch == 64

    @pytest.mark.parametrize(
        "overrides",
        [
            {"workers": -1},
            {"workers": 100},
            {"max_batch": 0},
            {"max_wait_ms": -0.1},
            {"max_queue": 0},
            {"default_timeout_s": 0.0},
            {"max_respawns": -1},
            {"drain_timeout_s": 0.0},
            {"latency_samples": 0},
        ],
    )
    def test_invalid_values_rejected(self, overrides):
        with pytest.raises(PipelineConfigError):
            ServingConfig(**overrides)

    def test_replace_and_in_process(self):
        config = ServingConfig().replace(max_batch=8)
        assert config.max_batch == 8
        assert ServingConfig.in_process().workers == 0


class TestInProcessService:
    def test_empty_corpus_serves_empty_results(self):
        session = GitTables.from_corpus(GitTablesCorpus())
        with session.serve(workers=0) as service:
            assert service.search("anything", k=5) == []
            assert service.complete_schema(["alpha", "beta"], k=5) == []

    def test_single_request_window_matches_single_shot(self, gittables_corpus):
        session = GitTables.from_corpus(gittables_corpus)
        with session.serve(workers=0, max_wait_ms=0.0) as service:
            served = service.search("employee salary", k=5)
        assert served == session.search("employee salary", k=5)
        snapshot = service.metrics()
        stats = snapshot["endpoints"]["search"]
        assert stats["completed"] == 1
        assert stats["batch_size_histogram"] == {"1": 1}
        assert stats["mean_batch_size"] == 1.0

    def test_concurrent_searches_are_bit_identical(self, gittables_corpus):
        session = GitTables.from_corpus(gittables_corpus)
        queries = [f"table about topic {index}" for index in range(12)]
        expected = [session.search(query, k=4) for query in queries]
        with session.serve(workers=0, max_wait_ms=20.0) as service:
            futures = [service.submit_search(query, k=4) for query in queries]
            results = [future.result(timeout=60) for future in futures]
        assert results == expected
        snapshot = service.metrics()
        stats = snapshot["endpoints"]["search"]
        assert stats["completed"] == len(queries)
        # The coalescer must have merged at least some of the burst.
        assert stats["batches"] < len(queries)

    def test_mixed_endpoints_share_a_window(self, gittables_corpus):
        session = GitTables.from_corpus(gittables_corpus)
        expected_search = session.search("orders", k=3)
        expected_completion = session.complete_schema(["name", "email"], k=3)
        with session.serve(workers=0, max_wait_ms=20.0) as service:
            search_future = service.submit_search("orders", k=3)
            completion_future = service.submit_complete_schema(["name", "email"], k=3)
            assert search_future.result(timeout=60) == expected_search
            assert completion_future.result(timeout=60) == expected_completion

    def test_detect_types_requests_share_one_run(self, gittables_corpus):
        session = GitTables.from_corpus(gittables_corpus)
        expected = session.detect_types(**DETECT_OPTIONS)
        with session.serve(workers=0, max_wait_ms=50.0) as service:
            futures = [
                service.submit_detect_types(**DETECT_OPTIONS) for _ in range(3)
            ]
            results = [future.result(timeout=120) for future in futures]
        assert all(result == expected for result in results)
        stats = service.metrics()["endpoints"]["detect_types"]
        assert stats["completed"] == 3

    def test_invalid_payloads_rejected_at_submit(self, gittables_corpus):
        session = GitTables.from_corpus(gittables_corpus)
        with session.serve(workers=0) as service:
            with pytest.raises(ServingError):
                service.submit_search("", k=3)
            with pytest.raises(ServingError):
                service.submit_search("ok", k=0)
            with pytest.raises(ServingError):
                service.submit_complete_schema([], k=3)
            with pytest.raises(ServingError):
                service.submit_detect_types(eval_corpus=GitTablesCorpus())
        # Rejected payloads never entered the pipeline.
        assert service.metrics()["endpoints"] == {}

    def test_overloaded_queue_rejects_new_requests(self, gittables_corpus):
        session = GitTables.from_corpus(gittables_corpus)
        with session.serve(workers=0, max_queue=1, max_wait_ms=500.0) as service:
            # The first request holds the window open for up to 500ms;
            # the second submit exceeds the queue bound immediately.
            held = service.submit_search("first", k=2)
            with pytest.raises(ServiceOverloaded):
                service.submit_search("second", k=2)
            assert held.result(timeout=60) == session.search("first", k=2)
        snapshot = service.metrics()
        assert snapshot["endpoints"]["search"]["rejected"] == 1

    def test_closed_service_rejects_submissions(self, gittables_corpus):
        session = GitTables.from_corpus(gittables_corpus)
        service = session.serve(workers=0)
        service.close()
        assert service.closed
        with pytest.raises(ServiceClosed):
            service.submit_search("anything", k=2)
        # close() is idempotent.
        service.close()


class TestWorkerPoolService:
    def test_pool_requires_store_directory(self, gittables_corpus):
        session = GitTables.from_corpus(gittables_corpus)
        with pytest.raises(ServingError):
            session.serve(workers=1)

    def test_pool_results_match_single_shot(self, store_session):
        queries = [f"table about topic {index}" for index in range(10)]
        prefixes = [["name", "email"], ["order", "price"]]
        expected_search = [store_session.search(query, k=4) for query in queries]
        expected_completion = [
            store_session.complete_schema(prefix, k=4) for prefix in prefixes
        ]
        with store_session.serve(workers=2, max_wait_ms=20.0) as service:
            assert len(service.worker_pids()) == 2
            search_futures = [service.submit_search(q, k=4) for q in queries]
            completion_futures = [
                service.submit_complete_schema(p, k=4) for p in prefixes
            ]
            searched = [f.result(timeout=120) for f in search_futures]
            completed = [f.result(timeout=120) for f in completion_futures]
        assert searched == expected_search
        assert completed == expected_completion
        snapshot = service.metrics()
        assert snapshot["workers"]["configured"] == 2
        assert snapshot["workers"]["crashes"] == 0

    def test_deadline_expiry_mid_batch(self, store_session):
        with store_session.serve(workers=1, max_wait_ms=0.0) as service:
            future = service.submit_search("anything", k=3, timeout=1e-6)
            with pytest.raises(DeadlineExceeded):
                future.result(timeout=120)
            # A later request with a sane deadline still succeeds: the
            # expired request poisoned neither the batch nor the worker.
            assert service.search("anything", k=3) == store_session.search(
                "anything", k=3
            )
        snapshot = service.metrics()
        assert snapshot["endpoints"]["search"]["deadline_expired"] == 1

    def test_worker_sigkill_mid_request_is_transparent(self, store_session):
        # Ten distinct detect runs (distinct option keys, so no memo
        # sharing) give the lone worker ~2s of sequential work; the kill
        # lands while some are in flight and some are still queued.
        option_sets = [
            {"columns_per_type": 8, "epochs": epochs, "n_splits": 2}
            for epochs in range(2, 12)
        ]
        expected = [store_session.detect_types(**options) for options in option_sets]
        with store_session.serve(workers=1, max_wait_ms=0.0) as service:
            pids = service.worker_pids()
            assert len(pids) == 1
            futures = [
                service.submit_detect_types(timeout=300, **options)
                for options in option_sets
            ]
            # Let the first batches reach the worker before killing it.
            time.sleep(0.5)
            os.kill(pids[0], signal.SIGKILL)
            results = [future.result(timeout=300) for future in futures]
            assert results == expected
            # The crash is detected on a collector tick and the counters
            # flip before the replacement handle is registered; poll the
            # whole recovered state within a bounded window rather than
            # asserting on the first snapshot.
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                snapshot = service.metrics()
                workers = snapshot["workers"]
                if (
                    workers["crashes"] >= 1
                    and workers["respawns"] >= 1
                    and workers["alive"] == 1
                ):
                    break
                time.sleep(0.1)
            assert snapshot["workers"]["crashes"] >= 1
            assert snapshot["workers"]["respawns"] >= 1
            assert snapshot["workers"]["alive"] == 1

    def test_blocking_wait_converts_timeout(self, store_session):
        with store_session.serve(workers=0, max_wait_ms=0.0) as service:
            with pytest.raises(DeadlineExceeded):
                service.detect_types(timeout=1e-6, **DETECT_OPTIONS)


class TestServiceMetricsSnapshot:
    def test_snapshot_shape(self, gittables_corpus):
        session = GitTables.from_corpus(gittables_corpus)
        with session.serve(workers=0, max_wait_ms=5.0) as service:
            service.search("snapshot probe", k=2)
            snapshot = service.metrics()
        assert snapshot["queue"]["limit"] == ServingConfig().max_queue
        assert snapshot["queue"]["depth"] == 0
        assert snapshot["queue"]["max_depth"] >= 1
        stats = snapshot["endpoints"]["search"]
        latency = stats["latency_ms"]
        assert latency["samples"] == 1
        assert latency["p50"] <= latency["p95"] <= latency["p99"]
        assert stats["qps"] > 0.0

    def test_concurrent_submitters_all_resolve(self, gittables_corpus):
        session = GitTables.from_corpus(gittables_corpus)
        queries = [f"threaded query {index}" for index in range(8)]
        expected = {query: session.search(query, k=3) for query in queries}
        with session.serve(workers=0, max_wait_ms=10.0) as service:
            with concurrent.futures.ThreadPoolExecutor(max_workers=4) as pool:
                results = dict(
                    zip(
                        queries,
                        pool.map(lambda q: service.search(q, k=3), queries),
                    )
                )
        assert results == expected


class TestIndexTierMetrics:
    """``snapshot()['index']`` — the ANN-tier view fed by the executors."""

    def test_local_executor_reports_flat_tier(self, gittables_corpus):
        session = GitTables.from_corpus(gittables_corpus)
        with session.serve(workers=0) as service:
            service.search("index tier probe", k=3)
            index = service.metrics()["index"]
        # The small corpus stays below the ANN scale gate: flat tier,
        # no probe histogram to report.
        assert index["search"]["tier"] == "flat"
        assert "probed_partitions" not in index["search"]

    def test_local_executor_reports_partitioned_tier(self, gittables_corpus):
        from repro.config import IndexConfig

        session = GitTables.from_corpus(
            gittables_corpus, index_config=IndexConfig(min_rows=1, nprobe=2)
        )
        with session.serve(workers=0) as service:
            service.search("index tier probe", k=3)
            service.complete_schema(["name", "email"], k=3)
            index = service.metrics()["index"]
        assert index["search"]["tier"] == "partitioned"
        assert index["search"]["queries"] >= 1
        assert index["search"]["probed_partitions"]
        assert 0.0 < index["search"]["mean_candidate_fraction"] <= 1.0
        assert index["completion"]["tier"] == "partitioned"

    def test_worker_pool_merges_tier_stats(self, gittables_corpus, tmp_path):
        from repro.config import IndexConfig

        directory = tmp_path / "corpus"
        GitTables.from_corpus(gittables_corpus).save(directory)
        session = GitTables.load(
            directory, index_config=IndexConfig(min_rows=1, nprobe=2)
        )
        queries = [f"pooled tier probe {index}" for index in range(6)]
        expected = [session.search(query, k=3) for query in queries]
        with session.serve(workers=2, max_wait_ms=10.0) as service:
            results = [service.search(query, k=3) for query in queries]
            index = service.metrics()["index"]
        assert results == expected
        assert index["search"]["tier"] == "partitioned"
        # Counters are merged across workers: every query is accounted for.
        assert index["search"]["queries"] >= len(queries)
        assert sum(index["search"]["probed_partitions"].values()) >= len(queries)


class TestDispatchQueueGuard:
    """Regression: a failing ``task_queue.put`` during dispatch used to be
    swallowed, stranding every future in the batch until its deadline —
    the worker never saw the task, so no result could ever arrive. The
    pool must treat it like an orphaned batch of a crashed worker:
    retry once on another worker, then fail with ``WorkerCrashed``."""

    @staticmethod
    def _stub_pool(queues):
        import threading

        from repro.serving.workers import WorkerPool, _WorkerHandle

        pool = WorkerPool.__new__(WorkerPool)
        pool._lock = threading.Lock()
        pool._batches = {}
        pool._next_batch_id = 0
        pool.resolved = []
        pool._resolve = lambda request, result=None, error=None: pool.resolved.append(
            (request, error)
        )
        pool._workers = []
        for index, task_queue in enumerate(queues):
            from repro.serving.workers import _WorkerHandle as Handle

            handle = Handle(index)
            handle.process = object()  # routing only checks "not dead, not None"
            handle.task_queue = task_queue
            pool._workers.append(handle)
        return pool

    @staticmethod
    def _requests(n):
        from concurrent.futures import Future

        from repro.serving.batcher import Request

        return [
            Request(seq=i, endpoint="search", key=("search", 4), payload=(f"q{i}",), future=Future())
            for i in range(n)
        ]

    class _FullQueue:
        def __init__(self):
            self.puts = 0

        def put(self, item):
            self.puts += 1
            import queue

            raise queue.Full

    class _GoodQueue:
        def __init__(self):
            self.items = []

        def put(self, item):
            self.items.append(item)

    def test_rejected_dispatch_retries_on_another_worker(self):
        full, good = self._FullQueue(), self._GoodQueue()
        pool = self._stub_pool([full, good])
        requests = self._requests(2)
        pool.dispatch(requests)
        # The batch landed on the healthy worker and is still in flight.
        assert full.puts == 1
        assert len(good.items) == 1
        assert good.items[0][2] == "search"
        assert good.items[0][4] == [request.payload for request in requests]
        assert pool.resolved == []
        [batch] = pool._batches.values()
        assert batch.worker == 1 and batch.retried
        assert pool._workers[0].load == 0
        assert pool._workers[1].load == len(requests)

    def test_twice_rejected_dispatch_fails_with_worker_crashed(self):
        from repro.errors import WorkerCrashed

        pool = self._stub_pool([self._FullQueue(), self._FullQueue()])
        requests = self._requests(3)
        pool.dispatch(requests)
        # Nothing is stranded: every future fails loudly and promptly.
        assert len(pool.resolved) == len(requests)
        assert {id(request) for request, _ in pool.resolved} == {
            id(request) for request in requests
        }
        assert all(isinstance(error, WorkerCrashed) for _, error in pool.resolved)
        assert pool._batches == {}
        assert all(handle.load == 0 for handle in pool._workers)

    def test_unowned_batch_is_left_to_the_crash_handler(self):
        from repro.serving.workers import _Batch

        full = self._FullQueue()
        pool = self._stub_pool([full])
        requests = self._requests(1)
        # The crash handler already claimed this batch (it is not in
        # pool._batches); _send must not resolve or re-dispatch it — a
        # second owner would double-resolve the futures.
        batch = _Batch(99, requests, worker=0)
        pool._send(pool._workers[0], batch)
        assert pool.resolved == []
        assert not batch.retried
        assert pool._batches == {}
