"""Tests for snapshot-table unions and hierarchy-aware evaluation."""

import pytest

from repro.core.annotation import TableAnnotations
from repro.core.augmentation import reconstruct_snapshots, union_tables, unionable_groups
from repro.core.corpus import AnnotatedTable, GitTablesCorpus
from repro.dataframe.table import Table
from repro.errors import TableValidationError
from repro.ml.hierarchy_metrics import (
    hierarchical_accuracy,
    hierarchical_credit,
    hierarchical_report,
)
from repro.ontology.dbpedia import load_dbpedia


def _snapshot(table_id: str, rows, header=("id", "status")) -> Table:
    return Table(list(header), rows, table_id=table_id, metadata={"license": "mit"})


def _annotated(table: Table, repo: str = "octo/snapshots") -> AnnotatedTable:
    return AnnotatedTable(
        table=table,
        annotations=TableAnnotations(table_id=table.table_id),
        topic="id",
        repository=repo,
        source_url=f"https://github.com/{repo}/blob/main/{table.table_id}.csv",
    )


class TestUnionTables:
    def test_union_concatenates_and_deduplicates(self):
        day1 = _snapshot("day1", [["1", "OPEN"], ["2", "OPEN"]])
        day2 = _snapshot("day2", [["2", "OPEN"], ["3", "CLOSED"]])
        union = union_tables([day1, day2])
        assert union.num_rows == 3
        assert union.metadata["union_of"] == ("day1", "day2")

    def test_union_accepts_differently_styled_headers(self):
        day1 = _snapshot("day1", [["1", "OPEN"]], header=("Id", "Status"))
        day2 = _snapshot("day2", [["2", "CLOSED"]], header=("id", "status"))
        union = union_tables([day1, day2])
        assert union.num_rows == 2
        assert union.header == ("Id", "Status")

    def test_mismatched_schemas_rejected(self):
        day1 = _snapshot("day1", [["1", "OPEN"]])
        other = _snapshot("other", [["1", "x", "y"]], header=("id", "a", "b"))
        with pytest.raises(TableValidationError):
            union_tables([day1, other])

    def test_empty_list_rejected(self):
        with pytest.raises(TableValidationError):
            union_tables([])


class TestSnapshotReconstruction:
    def _corpus(self) -> GitTablesCorpus:
        corpus = GitTablesCorpus()
        corpus.add(_annotated(_snapshot("day1", [["1", "OPEN"], ["2", "OPEN"]])))
        corpus.add(_annotated(_snapshot("day2", [["2", "OPEN"], ["3", "CLOSED"]])))
        corpus.add(
            _annotated(
                _snapshot("unrelated", [["x", "1", "2"]], header=("name", "a", "b")),
                repo="other/repo",
            )
        )
        return corpus

    def test_groups_require_shared_repository_and_schema(self):
        groups = unionable_groups(self._corpus())
        assert len(groups) == 1
        assert len(groups[0]) == 2

    def test_reconstruct_snapshots_report(self):
        report = reconstruct_snapshots(self._corpus())
        assert report.groups_found == 1
        assert report.tables_unioned == 2
        assert report.rows_before == 4
        assert report.rows_after == 3
        assert report.duplicate_row_fraction == pytest.approx(0.25)
        assert report.unions[0].num_rows == 3

    def test_pipeline_corpus_contains_snapshot_families(self, gittables_corpus):
        report = reconstruct_snapshots(gittables_corpus)
        # The generator plants snapshot repositories, so at least some
        # unionable families should exist and unions never lose rows
        # beyond deduplication.
        assert report.rows_after <= report.rows_before
        for union in report.unions:
            assert union.num_rows >= 1


class TestHierarchyMetrics:
    @pytest.fixture(scope="class")
    def dbpedia(self):
        return load_dbpedia()

    def test_exact_match_full_credit(self, dbpedia):
        assert hierarchical_credit("city", "city", dbpedia) == 1.0

    def test_ancestor_gets_partial_credit(self, dbpedia):
        # 'birth date' has parent 'date': predicting the coarser type earns
        # partial credit, as does predicting the finer type.
        assert hierarchical_credit("date", "birth date", dbpedia) == 0.5
        assert hierarchical_credit("birth date", "date", dbpedia) == 0.5

    def test_unrelated_gets_no_credit(self, dbpedia):
        assert hierarchical_credit("size", "city", dbpedia) == 0.0

    def test_invalid_credit_rejected(self, dbpedia):
        with pytest.raises(ValueError):
            hierarchical_credit("a", "b", dbpedia, ancestor_credit=2.0)

    def test_hierarchical_accuracy_averages(self, dbpedia):
        accuracy = hierarchical_accuracy(
            ["city", "date", "size"], ["city", "birth date", "city"], dbpedia
        )
        assert accuracy == pytest.approx((1.0 + 0.5 + 0.0) / 3)

    def test_report_rates_sum_to_one(self, dbpedia):
        report = hierarchical_report(
            ["city", "date", "size"], ["city", "birth date", "city"], dbpedia
        )
        assert report["exact_rate"] + report["related_rate"] + report["unrelated_rate"] == pytest.approx(1.0)
        assert report["hierarchical_accuracy"] > report["exact_rate"]

    def test_length_mismatch_rejected(self, dbpedia):
        with pytest.raises(ValueError):
            hierarchical_accuracy(["a"], ["a", "b"], dbpedia)
        with pytest.raises(ValueError):
            hierarchical_report([], [], dbpedia)
