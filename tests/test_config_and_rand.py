"""Unit tests for configuration objects and deterministic RNG helpers."""

import numpy as np
import pytest

from repro._rand import DEFAULT_SEED, default_rng, derive_rng, derive_seed, stable_hash
from repro.config import (
    GITHUB_MAX_FILE_SIZE,
    GITHUB_RESULT_WINDOW,
    AnnotationConfig,
    CurationConfig,
    ExtractionConfig,
    PipelineConfig,
)
from repro.errors import PipelineConfigError


class TestRandHelpers:
    def test_stable_hash_is_process_independent(self):
        # blake2b-based, so the value is a fixed constant across runs.
        assert stable_hash("id") == stable_hash("id")
        assert stable_hash("id") != stable_hash("name")

    def test_derive_seed_namespacing(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_derive_rng_streams_are_reproducible(self):
        first = derive_rng(7, "x").standard_normal(5)
        second = derive_rng(7, "x").standard_normal(5)
        assert np.allclose(first, second)

    def test_default_rng_uses_default_seed(self):
        assert np.allclose(
            default_rng().standard_normal(3),
            np.random.default_rng(DEFAULT_SEED).standard_normal(3),
        )


class TestGitHubConstants:
    def test_paper_constants(self):
        assert GITHUB_MAX_FILE_SIZE == 438 * 1024
        assert GITHUB_RESULT_WINDOW == 1000


class TestExtractionConfig:
    def test_default_is_valid(self):
        ExtractionConfig().validate()

    def test_invalid_page_size(self):
        with pytest.raises(PipelineConfigError):
            ExtractionConfig(page_size=0).validate()
        with pytest.raises(PipelineConfigError):
            ExtractionConfig(page_size=5000).validate()

    def test_invalid_segment_bytes(self):
        with pytest.raises(PipelineConfigError):
            ExtractionConfig(size_segment_bytes=0).validate()


class TestCurationConfig:
    def test_default_is_valid(self):
        CurationConfig().validate()

    def test_invalid_unnamed_fraction(self):
        with pytest.raises(PipelineConfigError):
            CurationConfig(max_unnamed_fraction=1.5).validate()

    def test_invalid_dimensions(self):
        with pytest.raises(PipelineConfigError):
            CurationConfig(min_rows=-1).validate()

    def test_invalid_pii_threshold(self):
        with pytest.raises(PipelineConfigError):
            CurationConfig(pii_confidence_threshold=-0.1).validate()


class TestAnnotationConfig:
    def test_default_is_valid(self):
        AnnotationConfig().validate()

    def test_empty_ontologies_rejected(self):
        with pytest.raises(PipelineConfigError):
            AnnotationConfig(ontologies=()).validate()

    def test_small_embedding_dim_rejected(self):
        with pytest.raises(PipelineConfigError):
            AnnotationConfig(embedding_dim=2).validate()

    def test_invalid_ngram_sizes_rejected(self):
        with pytest.raises(PipelineConfigError):
            AnnotationConfig(ngram_sizes=(0,)).validate()


class TestPipelineConfig:
    def test_presets_validate(self):
        for config in (PipelineConfig.small(), PipelineConfig.default(), PipelineConfig.large()):
            config.validate()

    def test_invalid_target_tables(self):
        with pytest.raises(PipelineConfigError):
            PipelineConfig(target_tables=0).validate()

    def test_configs_are_frozen(self):
        config = PipelineConfig.default()
        with pytest.raises(AttributeError):
            config.seed = 1
