"""Unit tests for column annotation (repro.core.annotation)."""

import pytest

from repro.config import AnnotationConfig
from repro.core.annotation import (
    AnnotationMethod,
    AnnotationPipeline,
    ColumnAnnotation,
    SemanticAnnotator,
    SyntacticAnnotator,
    TableAnnotations,
    annotate_table,
    preprocess_column_name,
)
from repro.errors import AnnotationError
from repro.ontology.dbpedia import load_dbpedia


@pytest.fixture(scope="module")
def dbpedia():
    return load_dbpedia()


@pytest.fixture(scope="module")
def syntactic(dbpedia):
    return SyntacticAnnotator(dbpedia)


@pytest.fixture(scope="module")
def semantic(dbpedia):
    return SemanticAnnotator(dbpedia, similarity_threshold=0.5)


class TestPreprocessing:
    def test_underscores_and_camelcase(self):
        assert preprocess_column_name("birth_Date") == "birth date"
        assert preprocess_column_name("birthDate") == "birth date"


class TestSyntacticAnnotator:
    def test_exact_match_has_confidence_one(self, syntactic):
        annotation = syntactic.annotate_column("Birth_Date")
        assert annotation.type_label == "birth date"
        assert annotation.confidence == 1.0
        assert annotation.method is AnnotationMethod.SYNTACTIC

    def test_unknown_name_returns_none(self, syntactic):
        assert syntactic.annotate_column("zzzz_unmatchable_name") is None

    def test_names_with_digits_are_skipped(self, syntactic):
        assert syntactic.annotate_column("field_1") is None

    def test_empty_name_returns_none(self, syntactic):
        assert syntactic.annotate_column("") is None
        assert syntactic.annotate_column("   ") is None

    def test_annotate_table(self, syntactic, orders_table):
        annotations = syntactic.annotate(orders_table)
        annotated_columns = {annotation.column for annotation in annotations}
        assert "status" in annotated_columns


class TestSemanticAnnotator:
    def test_exact_name_gets_similarity_one(self, semantic):
        annotation = semantic.annotate_column("status")
        assert annotation.type_label == "status"
        assert annotation.confidence == pytest.approx(1.0, abs=1e-6)

    def test_compound_name_maps_to_related_type(self, semantic):
        annotation = semantic.annotate_column("customer_email")
        assert annotation is not None
        assert "email" in annotation.type_label or "customer" in annotation.type_label

    def test_threshold_filters_weak_matches(self, dbpedia):
        strict = SemanticAnnotator(dbpedia, similarity_threshold=0.999)
        assert strict.annotate_column("xqzw_gibberish_column") is None

    def test_invalid_threshold_rejected(self, dbpedia):
        with pytest.raises(AnnotationError):
            SemanticAnnotator(dbpedia, similarity_threshold=1.5)

    def test_names_with_digits_are_skipped(self, semantic):
        assert semantic.annotate_column("col_2020") is None

    def test_annotates_more_columns_than_syntactic(self, syntactic, semantic):
        names = ["order_id", "ordr_dt", "sts", "total_price_val", "qty", "cstmr_email"]
        syntactic_hits = sum(syntactic.annotate_column(name) is not None for name in names)
        semantic_hits = sum(semantic.annotate_column(name) is not None for name in names)
        assert semantic_hits >= syntactic_hits


class TestTableAnnotations:
    def _make(self):
        annotations = TableAnnotations(table_id="t")
        annotations.add(
            ColumnAnnotation("status", "status", "dbpedia", AnnotationMethod.SYNTACTIC, 1.0)
        )
        annotations.add(
            ColumnAnnotation("status", "status", "schema_org", AnnotationMethod.SEMANTIC, 0.8)
        )
        annotations.add(
            ColumnAnnotation("email", "email", "schema_org", AnnotationMethod.SEMANTIC, 0.9)
        )
        return annotations

    def test_for_method_filters(self):
        annotations = self._make()
        assert len(annotations.for_method(AnnotationMethod.SEMANTIC)) == 2
        assert len(annotations.for_method(AnnotationMethod.SEMANTIC, "schema_org")) == 2
        assert len(annotations.for_method(AnnotationMethod.SYNTACTIC, "schema_org")) == 0

    def test_column_types_view(self):
        annotations = self._make()
        types = annotations.column_types(AnnotationMethod.SEMANTIC, "schema_org")
        assert types["email"] == ("email", 0.9)

    def test_annotated_column_fraction(self):
        annotations = self._make()
        assert annotations.annotated_column_fraction(AnnotationMethod.SEMANTIC, 4) == pytest.approx(0.5)
        assert annotations.annotated_column_fraction(AnnotationMethod.SEMANTIC, 0) == 0.0

    def test_pii_view_groups_by_column(self):
        view = self._make().pii_view()
        assert set(view) == {"status", "email"}
        assert ("email", 0.9) in view["email"]


class TestAnnotationPipeline:
    def test_annotates_against_both_ontologies(self, orders_table):
        pipeline = AnnotationPipeline(AnnotationConfig())
        annotations = pipeline.annotate(orders_table)
        ontologies = {annotation.ontology for annotation in annotations.all()}
        assert ontologies == {"dbpedia", "schema_org"}

    def test_single_ontology_config(self, orders_table):
        pipeline = AnnotationPipeline(AnnotationConfig(ontologies=("dbpedia",)))
        annotations = pipeline.annotate(orders_table)
        assert {a.ontology for a in annotations.all()} == {"dbpedia"}

    def test_annotate_table_helper_uses_cache(self, orders_table):
        first = annotate_table(orders_table)
        second = annotate_table(orders_table)
        assert len(first.all()) == len(second.all())

    def test_semantic_confidences_within_bounds(self, orders_table):
        annotations = annotate_table(orders_table)
        for annotation in annotations.for_method(AnnotationMethod.SEMANTIC):
            assert 0.0 <= annotation.confidence <= 1.0


class TestBatchAnnotation:
    @pytest.fixture(scope="class")
    def pipeline(self):
        return AnnotationPipeline(AnnotationConfig())

    def _tables(self, orders_table, people_table):
        from repro.dataframe.table import Table

        edge_cases = Table(
            header=["field_1", "", "   ", "status", "unmatchable_zzz", "status"],
            rows=[["1", "2", "3", "4", "5", "6"]],
            table_id="edge-cases",
        )
        return [orders_table, people_table, edge_cases]

    def test_annotate_batch_equals_per_table_annotate(
        self, pipeline, orders_table, people_table
    ):
        tables = self._tables(orders_table, people_table)
        batched = pipeline.annotate_batch(tables)
        assert batched == [pipeline.annotate(table) for table in tables]

    def test_annotator_batch_equals_per_column(self, pipeline, orders_table, people_table):
        tables = self._tables(orders_table, people_table)
        for group in (pipeline.syntactic, pipeline.semantic):
            for annotator in group.values():
                batched = annotator.annotate_batch(tables)
                per_column = [
                    [
                        annotation
                        for annotation in (
                            annotator.annotate_column(name) for name in table.header
                        )
                        if annotation is not None
                    ]
                    for table in tables
                ]
                assert batched == per_column

    def test_empty_batch(self, pipeline):
        assert pipeline.annotate_batch([]) == []

    def test_batch_preserves_table_ids(self, pipeline, orders_table, people_table):
        batched = pipeline.annotate_batch([orders_table, people_table])
        assert [annotations.table_id for annotations in batched] == [
            orders_table.table_id,
            people_table.table_id,
        ]

    def test_annotate_tables_helper(self, orders_table, people_table):
        from repro.core.annotation import annotate_tables

        batched = annotate_tables([orders_table, people_table])
        assert batched == [annotate_table(orders_table), annotate_table(people_table)]


class TestPipelineCache:
    def test_explicit_config_reuses_pipeline(self, orders_table, monkeypatch):
        from repro.core import annotation as annotation_module

        built = []
        original_init = annotation_module.AnnotationPipeline.__init__

        def counting_init(self, config=None):
            built.append(config)
            original_init(self, config)

        monkeypatch.setattr(annotation_module.AnnotationPipeline, "__init__", counting_init)
        annotation_module._PIPELINE_CACHE.clear()
        config = AnnotationConfig(ontologies=("dbpedia",), semantic_similarity_threshold=0.6)
        annotate_table(orders_table, config)
        annotate_table(orders_table, config)
        annotate_table(orders_table, AnnotationConfig(ontologies=("dbpedia",), semantic_similarity_threshold=0.6))
        assert len(built) == 1

    def test_distinct_configs_get_distinct_pipelines(self, orders_table):
        from repro.core.annotation import _PIPELINE_CACHE, _pipeline_for

        strict = AnnotationConfig(semantic_similarity_threshold=0.9)
        loose = AnnotationConfig(semantic_similarity_threshold=0.1)
        assert _pipeline_for(strict) is not _pipeline_for(loose)
        assert _pipeline_for(strict) is _pipeline_for(strict)
        assert len(_PIPELINE_CACHE) <= 8
