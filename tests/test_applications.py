"""Integration tests for the paper's applications (repro.applications)."""

import pytest

from repro.applications.data_search import TableSearchEngine
from repro.applications.domain_classifier import detect_data_shift, sample_corpus_columns
from repro.applications.kg_matching import (
    KGMatchingBenchmark,
    PatternMatcher,
    ValueLinkingMatcher,
    evaluate_matcher,
)
from repro.applications.schema_completion import NearestCompletion
from repro.applications.type_detection import TypeDetectionExperiment
from repro.benchdata.ctu import CTU_SCHEMAS, schema_by_name


class TestDomainClassifier:
    def test_sample_corpus_columns_deduplicates(self, gittables_corpus):
        columns = sample_corpus_columns(gittables_corpus, n_columns=50, seed=1)
        assert len(columns) <= 50
        assert len({(name, values[:5]) for name, values in columns}) == len(columns)

    def test_detects_shift_between_corpora(self, gittables_corpus, viznet_corpus):
        result = detect_data_shift(
            gittables_corpus,
            viznet_corpus,
            n_columns_per_corpus=60,
            n_splits=3,
            n_estimators=5,
        )
        assert result.mean_accuracy > 0.6
        assert len(result.fold_accuracies) == 3

    def test_identical_corpora_are_not_separable(self, gittables_corpus):
        result = detect_data_shift(
            gittables_corpus,
            gittables_corpus,
            n_columns_per_corpus=40,
            n_splits=3,
            n_estimators=5,
        )
        assert result.mean_accuracy < 0.75

    def test_empty_corpus_rejected(self, gittables_corpus):
        from repro.core.corpus import GitTablesCorpus

        with pytest.raises(ValueError):
            detect_data_shift(gittables_corpus, GitTablesCorpus(), n_columns_per_corpus=10)


class TestTypeDetection:
    def test_sampling_yields_target_types_only(self, gittables_corpus):
        experiment = TypeDetectionExperiment(columns_per_type=20, epochs=5)
        data = experiment.sample_labelled_columns(gittables_corpus)
        assert set(data.labels) <= set(experiment.target_types)
        assert data.features.shape[0] == data.n_samples

    def test_within_corpus_f1_reasonable(self, viznet_corpus):
        experiment = TypeDetectionExperiment(columns_per_type=25, epochs=10, n_splits=3)
        result = experiment.within_corpus(viznet_corpus, name="VizNet")
        assert 0.3 < result.mean_f1 <= 1.0
        assert result.train_corpus == "VizNet"

    def test_cross_corpus_transfer_drops(self, gittables_corpus, viznet_corpus):
        experiment = TypeDetectionExperiment(columns_per_type=25, epochs=10, n_splits=3)
        within = experiment.within_corpus(viznet_corpus)
        cross = experiment.cross_corpus(viznet_corpus, gittables_corpus)
        assert cross.mean_f1 < within.mean_f1

    def test_table7_rows(self, gittables_corpus, viznet_corpus):
        experiment = TypeDetectionExperiment(columns_per_type=20, epochs=8, n_splits=3)
        rows = [result.as_table7_row() for result in experiment.run_table7(gittables_corpus, viznet_corpus)]
        assert len(rows) == 3
        assert rows[2]["train_corpus"] == "VizNet" and rows[2]["eval_corpus"] == "GitTables"


class TestSchemaCompletion:
    def test_ctu_schemas_are_well_formed(self):
        assert len(CTU_SCHEMAS) == 3
        assert schema_by_name("orders").prefix(3) == ("orderNumber", "orderDate", "requiredDate")
        with pytest.raises(KeyError):
            schema_by_name("nonexistent")

    def test_completions_are_ranked_by_distance(self, gittables_corpus):
        completer = NearestCompletion(gittables_corpus)
        completions = completer.complete(["order_id", "order_date", "status"], k=5)
        distances = [completion.prefix_distance for completion in completions]
        assert distances == sorted(distances)
        assert len(completions) <= 5

    def test_employee_prefix_finds_employee_like_schema(self, gittables_corpus):
        completer = NearestCompletion(gittables_corpus)
        evaluation = completer.evaluate(
            schema_by_name("employees").attributes, prefix_length=3, k=10
        )
        assert evaluation.best_schema_similarity > 0.2

    def test_invalid_arguments_rejected(self, gittables_corpus):
        completer = NearestCompletion(gittables_corpus)
        with pytest.raises(ValueError):
            completer.complete([], k=5)
        with pytest.raises(ValueError):
            completer.complete(["a"], k=0)
        with pytest.raises(ValueError):
            completer.evaluate(["a", "b"], prefix_length=5)


class TestDataSearch:
    def test_search_returns_ranked_results(self, gittables_corpus):
        engine = TableSearchEngine(gittables_corpus)
        results = engine.search("status and sales amount per product", k=5)
        assert len(results) <= 5
        scores = [result.score for result in results]
        assert scores == sorted(scores, reverse=True)
        assert results[0].rank == 1

    def test_query_specificity_matters(self):
        from repro.core.annotation import TableAnnotations
        from repro.core.corpus import AnnotatedTable, GitTablesCorpus
        from repro.dataframe.table import Table

        corpus = GitTablesCorpus()
        schemas = {
            "bio": ["isolate id", "species", "organism group", "country"],
            "orders": ["order id", "product id", "status", "total price"],
        }
        for key, header in schemas.items():
            table = Table(header, [["x"] * len(header)], table_id=key)
            corpus.add(
                AnnotatedTable(
                    table=table,
                    annotations=TableAnnotations(table_id=key),
                    topic=key,
                    repository=f"octo/{key}",
                    source_url=f"https://github.com/octo/{key}.csv",
                )
            )
        engine = TableSearchEngine(corpus)
        assert engine.best("species isolated per country").table_id == "bio"
        assert engine.best("status and sales amount per product").table_id == "orders"

    def test_empty_query_rejected(self, gittables_corpus):
        engine = TableSearchEngine(gittables_corpus)
        with pytest.raises(ValueError):
            engine.search("   ")

    def test_empty_corpus_returns_nothing(self):
        from repro.core.corpus import GitTablesCorpus

        engine = TableSearchEngine(GitTablesCorpus())
        assert engine.search("anything") == []
        assert engine.best("anything") is None


class TestKGMatching:
    def test_benchmark_curation_respects_minimums(self, gittables_corpus):
        benchmark = KGMatchingBenchmark.from_corpus(gittables_corpus, min_columns=3, min_rows=5)
        table_ids = {column.table_id for column in benchmark.columns}
        for annotated in gittables_corpus:
            if annotated.table_id in table_ids:
                assert annotated.table.num_columns >= 3
                assert annotated.table.num_rows >= 5

    def test_benchmark_has_both_ontologies(self, gittables_corpus):
        benchmark = KGMatchingBenchmark.from_corpus(gittables_corpus)
        assert benchmark.columns_for("dbpedia")
        assert benchmark.columns_for("schema_org")

    def test_value_linking_matcher_links_entity_columns(self):
        matcher = ValueLinkingMatcher()
        assert matcher.annotate_column(["United States", "Canada", "Germany"]) == "country"
        assert matcher.annotate_column(["Enterococcus faecium", "Escherichia coli"]) == "species"
        assert matcher.annotate_column(["1001", "1002", "1003"]) is None

    def test_pattern_matcher_detects_structural_types(self):
        matcher = PatternMatcher()
        assert matcher.annotate_column(["a@b.com", "c@d.org"]) == "email"
        assert matcher.annotate_column(["2021-01-02", "2022-03-04"]) == "date"
        assert matcher.annotate_column(["apple", "pear"]) is None

    def test_matchers_score_low_recall_on_gittables(self, gittables_corpus):
        benchmark = KGMatchingBenchmark.from_corpus(gittables_corpus)
        score = evaluate_matcher(ValueLinkingMatcher(), benchmark, "dbpedia")
        assert score.recall < 0.5
        assert 0.0 <= score.precision <= 1.0
        assert 0.0 <= score.f1 <= 1.0

    def test_unknown_ontology_rejected(self, gittables_corpus):
        benchmark = KGMatchingBenchmark.from_corpus(gittables_corpus)
        with pytest.raises(ValueError):
            evaluate_matcher(ValueLinkingMatcher(), benchmark, "freebase")
