"""Unit tests for the ML substrate (repro.ml)."""

import numpy as np
import pytest

from repro._rand import default_rng
from repro.errors import FeatureExtractionError, ModelNotFittedError
from repro.ml.crossval import KFold, StratifiedKFold, cross_validate
from repro.ml.features import ColumnFeaturizer
from repro.ml.metrics import (
    accuracy_score,
    confusion_matrix,
    f1_score_macro,
    precision_recall_f1,
    precision_score_macro,
    recall_score_macro,
)
from repro.ml.neural import MLPClassifier
from repro.ml.random_forest import RandomForestClassifier
from repro.ml.tree import DecisionTreeClassifier


def _blobs(n=300, seed=0):
    """Two well-separated Gaussian blobs."""
    rng = default_rng(seed)
    a = rng.normal(loc=-2.0, size=(n // 2, 5))
    b = rng.normal(loc=2.0, size=(n // 2, 5))
    features = np.vstack([a, b])
    labels = np.array([0] * (n // 2) + [1] * (n // 2))
    return features, labels


class TestMetrics:
    def test_accuracy(self):
        assert accuracy_score([1, 0, 1], [1, 0, 0]) == pytest.approx(2 / 3)

    def test_empty_predictions_rejected(self):
        with pytest.raises(ValueError):
            accuracy_score([], [])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            accuracy_score([1, 2], [1])

    def test_confusion_matrix(self):
        matrix, labels = confusion_matrix(["a", "a", "b"], ["a", "b", "b"])
        assert labels == ["a", "b"]
        assert matrix[0, 0] == 1 and matrix[0, 1] == 1 and matrix[1, 1] == 1

    def test_perfect_f1(self):
        assert f1_score_macro([1, 2, 3], [1, 2, 3]) == pytest.approx(1.0)

    def test_precision_recall_per_class(self):
        scores = precision_recall_f1([1, 1, 0, 0], [1, 0, 0, 0])
        assert scores[1]["precision"] == pytest.approx(1.0)
        assert scores[1]["recall"] == pytest.approx(0.5)

    def test_macro_scores_average_classes(self):
        y_true = [0, 0, 1]
        y_pred = [0, 0, 0]
        assert precision_score_macro(y_true, y_pred) == pytest.approx(1 / 3)
        assert recall_score_macro(y_true, y_pred) == pytest.approx(0.5)


class TestCrossValidation:
    def test_kfold_partitions_everything(self):
        folds = list(KFold(n_splits=4, seed=1).split(20))
        assert len(folds) == 4
        all_test = np.concatenate([test for _, test in folds])
        assert sorted(all_test.tolist()) == list(range(20))

    def test_kfold_too_many_splits(self):
        with pytest.raises(ValueError):
            list(KFold(n_splits=10).split(5))

    def test_stratified_preserves_class_balance(self):
        labels = np.array([0] * 20 + [1] * 20)
        for train, test in StratifiedKFold(n_splits=4, seed=2).split(labels):
            test_labels = labels[test]
            assert 0 in test_labels and 1 in test_labels

    def test_cross_validate_scores(self):
        features, labels = _blobs()
        scores = cross_validate(
            lambda: DecisionTreeClassifier(max_depth=4),
            features,
            labels,
            accuracy_score,
            n_splits=3,
        )
        assert len(scores) == 3
        assert min(scores) > 0.8


class TestDecisionTree:
    def test_learns_separable_data(self):
        features, labels = _blobs()
        tree = DecisionTreeClassifier(max_depth=5).fit(features, labels)
        assert accuracy_score(labels, tree.predict(features)) > 0.95

    def test_predict_before_fit_raises(self):
        with pytest.raises(ModelNotFittedError):
            DecisionTreeClassifier().predict(np.zeros((1, 3)))

    def test_max_depth_limits_tree(self):
        features, labels = _blobs()
        tree = DecisionTreeClassifier(max_depth=1).fit(features, labels)
        assert tree.depth() <= 1

    def test_string_labels_supported(self):
        features, labels = _blobs()
        names = np.where(labels == 0, "red", "blue")
        tree = DecisionTreeClassifier(max_depth=4).fit(features, names)
        assert set(tree.predict(features)) <= {"red", "blue"}

    def test_predict_proba_rows_sum_to_one(self):
        features, labels = _blobs()
        tree = DecisionTreeClassifier(max_depth=4).fit(features, labels)
        probabilities = tree.predict_proba(features[:10])
        assert np.allclose(probabilities.sum(axis=1), 1.0)

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(np.zeros((5, 2)), np.zeros(4))


class TestRandomForest:
    def test_learns_separable_data(self):
        features, labels = _blobs()
        forest = RandomForestClassifier(n_estimators=8, seed=3).fit(features, labels)
        assert accuracy_score(labels, forest.predict(features)) > 0.95

    def test_probabilities_average_trees(self):
        features, labels = _blobs()
        forest = RandomForestClassifier(n_estimators=5, seed=3).fit(features, labels)
        probabilities = forest.predict_proba(features[:5])
        assert probabilities.shape == (5, 2)
        assert np.allclose(probabilities.sum(axis=1), 1.0)

    def test_unfitted_predict_raises(self):
        with pytest.raises(ModelNotFittedError):
            RandomForestClassifier().predict(np.zeros((1, 2)))

    def test_invalid_estimator_count(self):
        with pytest.raises(ValueError):
            RandomForestClassifier(n_estimators=0)

    def test_deterministic_given_seed(self):
        features, labels = _blobs()
        first = RandomForestClassifier(n_estimators=5, seed=9).fit(features, labels)
        second = RandomForestClassifier(n_estimators=5, seed=9).fit(features, labels)
        assert np.array_equal(first.predict(features), second.predict(features))


class TestMLP:
    def test_learns_separable_data(self):
        features, labels = _blobs()
        model = MLPClassifier(hidden_sizes=(16,), epochs=30, seed=1).fit(features, labels)
        assert accuracy_score(labels, model.predict(features)) > 0.95

    def test_loss_decreases(self):
        features, labels = _blobs()
        model = MLPClassifier(hidden_sizes=(16,), epochs=20, seed=1).fit(features, labels)
        assert model.loss_history_[-1] < model.loss_history_[0]

    def test_multiclass(self):
        rng = default_rng(4)
        features = np.vstack([rng.normal(loc=c * 3, size=(40, 4)) for c in range(3)])
        labels = np.repeat(["a", "b", "c"], 40)
        model = MLPClassifier(hidden_sizes=(32,), epochs=80, seed=2).fit(features, labels)
        assert f1_score_macro(labels, model.predict(features)) > 0.85

    def test_unfitted_predict_raises(self):
        with pytest.raises(ModelNotFittedError):
            MLPClassifier().predict(np.zeros((1, 3)))

    def test_empty_hidden_sizes_rejected(self):
        with pytest.raises(ValueError):
            MLPClassifier(hidden_sizes=())

    def test_probabilities_sum_to_one(self):
        features, labels = _blobs()
        model = MLPClassifier(hidden_sizes=(8,), epochs=10, seed=1).fit(features, labels)
        probabilities = model.predict_proba(features[:7])
        assert np.allclose(probabilities.sum(axis=1), 1.0)


class TestColumnFeaturizer:
    def test_feature_vector_length_matches_names(self):
        featurizer = ColumnFeaturizer()
        vector = featurizer.featurize_values(["a", "b", "c"])
        assert len(vector) == featurizer.n_features
        assert len(vector.names) == len(vector.values)

    def test_email_columns_activate_at_sign_features(self):
        featurizer = ColumnFeaturizer()
        vector = featurizer.featurize_values(["a@x.com", "b@y.org"]).as_dict()
        assert vector["char[@]_any"] == 1.0
        assert vector["char[@]_mean"] > 0.0

    def test_numeric_columns_have_numeric_statistics(self):
        featurizer = ColumnFeaturizer()
        vector = featurizer.featurize_values(["1", "2", "3", "4"]).as_dict()
        assert vector["numeric_fraction"] == pytest.approx(1.0)
        assert vector["numeric_mean"] == pytest.approx(2.5)

    def test_empty_column_is_all_finite(self):
        featurizer = ColumnFeaturizer()
        vector = featurizer.featurize_values(["", None, "nan"])
        assert np.all(np.isfinite(vector.values))

    def test_feature_families_can_be_disabled(self):
        only_stats = ColumnFeaturizer(include_char_features=False, include_embeddings=False)
        assert only_stats.n_features == 27

    def test_all_families_disabled_rejected(self):
        with pytest.raises(FeatureExtractionError):
            ColumnFeaturizer(
                include_char_features=False, include_embeddings=False, include_statistics=False
            )

    def test_featurize_many_shape(self):
        featurizer = ColumnFeaturizer()
        matrix = featurizer.featurize_many([["1", "2"], ["a", "b"], ["x@y.z"]])
        assert matrix.shape == (3, featurizer.n_features)

    def test_featurize_column_object(self, orders_table):
        featurizer = ColumnFeaturizer()
        vector = featurizer.featurize_column(orders_table.column("total_price"))
        assert np.all(np.isfinite(vector.values))

    def test_max_values_caps_work(self):
        featurizer = ColumnFeaturizer(max_values=10)
        vector = featurizer.featurize_values([str(i) for i in range(1000)])
        assert vector.as_dict()["n_distinct"] <= 10
