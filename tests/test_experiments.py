"""Integration tests for the experiment drivers (repro.experiments)."""

import pytest

from repro.experiments.annotation_quality import run_annotation_quality
from repro.experiments.annotation_stats import run_fig4b, run_fig4c, run_fig5, run_table3, run_table5
from repro.experiments.content_bias import run_table6
from repro.experiments.corpus_stats import run_fig4a, run_table1, run_table2, run_table4
from repro.experiments.data_search import run_fig6b
from repro.experiments.domain_shift import run_domain_shift
from repro.experiments.kg_matching import run_fig6a
from repro.experiments.registry import EXPERIMENT_REGISTRY, ExperimentResult, format_result
from repro.experiments.schema_completion import run_table8
from repro.experiments.type_detection import run_table7

SCALE = "small"


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        import repro.experiments.registry as registry  # noqa: F401
        # Importing the driver modules above registers everything.
        expected = {
            "table1", "table2", "table3", "table4", "table5", "table6", "table7", "table8",
            "fig4a", "fig4b", "fig4c", "fig5", "fig6a", "fig6b", "domain_shift",
            "annotation_quality",
        }
        assert expected <= set(EXPERIMENT_REGISTRY)

    def test_format_result_renders_rows_and_reference(self):
        result = ExperimentResult(
            experiment_id="x", title="T", rows=[{"a": 1}], paper_reference=[{"a": 2}], notes="n"
        )
        text = format_result(result)
        assert "== x: T ==" in text and "paper reference" in text and "notes: n" in text

    def test_row_by_lookup(self):
        result = ExperimentResult("x", "T", rows=[{"k": "a", "v": 1}, {"k": "b", "v": 2}])
        assert result.row_by(k="b")["v"] == 2
        with pytest.raises(KeyError):
            result.row_by(k="missing")


class TestCorpusExperiments:
    def test_table1_shape(self, context):
        result = run_table1(SCALE)
        git_row = result.row_by(name="GitTables (reproduced)")
        viz_row = result.row_by(name="VizNet (simulated)")
        assert git_row["avg_rows"] > viz_row["avg_rows"]
        assert git_row["avg_cols"] > viz_row["avg_cols"]

    def test_table2_reports_more_types_than_t2dv2(self, context):
        result = run_table2(SCALE)
        git_row = result.row_by(dataset="GitTables (reproduced)")
        t2d_row = result.row_by(dataset="T2Dv2 (synthetic)")
        assert git_row["n_types"] > t2d_row["n_types"]

    def test_table4_numeric_share_higher_for_gittables(self, context):
        result = run_table4(SCALE)
        numeric = result.row_by(atomic_type="numeric")
        assert numeric["gittables_pct"] > numeric["webtables_pct"]
        other = result.row_by(atomic_type="other")
        assert other["gittables_pct"] < 10.0

    def test_fig4a_is_cumulative(self, context):
        result = run_fig4a(SCALE)
        rows = [row for row in result.rows if row["axis"] == "rows"]
        counts = [row["cumulative_tables"] for row in rows]
        assert counts == sorted(counts)


class TestAnnotationExperiments:
    def test_table3_lists_all_pii_types(self, context):
        result = run_table3(SCALE)
        assert {row["semantic_type"] for row in result.rows} == {
            "name", "address", "person", "email", "birth date", "home location",
            "birth place", "postal code",
        }

    def test_table5_semantic_annotates_more(self, context):
        result = run_table5(SCALE)
        for ontology in ("dbpedia", "schema_org"):
            semantic = result.row_by(method="semantic", ontology=ontology)
            syntactic = result.row_by(method="syntactic", ontology=ontology)
            assert semantic["annotated_columns"] >= syntactic["annotated_columns"]

    def test_fig4b_mean_coverage_ordering(self, context):
        result = run_fig4b(SCALE)
        summary = result.row_by(method="mean coverage")
        assert summary["coverage_bin_high_pct"] > summary["coverage_bin_low_pct"]

    def test_fig4c_reports_both_ontologies(self, context):
        result = run_fig4c(SCALE)
        ontologies = {row["ontology"].split()[0] for row in result.rows}
        assert {"dbpedia", "schema_org"} <= ontologies

    def test_fig5_reports_top25_per_ontology(self, context):
        result = run_fig5(SCALE)
        dbpedia_rows = [row for row in result.rows if row["ontology"] == "dbpedia"]
        assert 0 < len(dbpedia_rows) <= 25
        assert dbpedia_rows[0]["rank"] == 1

    def test_table6_bias_types_present(self, context):
        result = run_table6(SCALE)
        assert {row["semantic_type"] for row in result.rows} == {
            "country", "city", "gender", "ethnicity", "race", "nationality",
        }


class TestModelExperiments:
    def test_domain_shift_above_chance(self, context):
        result = run_domain_shift(SCALE)
        assert result.rows[0]["mean_accuracy"] > 0.6

    def test_annotation_quality_band(self, context):
        result = run_annotation_quality(SCALE)
        for row in result.rows:
            assert 0.3 <= row["agreement_with_gold"] <= 0.95
            assert row["agreement_with_fine_type"] >= row["agreement_with_gold"]

    def test_table7_cross_corpus_drop(self, context):
        result = run_table7(SCALE)
        within_viznet = result.row_by(train_corpus="VizNet", eval_corpus="VizNet")
        cross = result.row_by(train_corpus="VizNet", eval_corpus="GitTables")
        assert cross["f1_macro"] < within_viznet["f1_macro"]

    def test_table8_reports_all_ctu_prefixes(self, context):
        result = run_table8(SCALE)
        prefixes = {row["header_prefix"] for row in result.rows}
        assert "emp_no, birth_date, first_name" in prefixes
        average = result.row_by(header_prefix="(average)")
        assert -1.0 <= average["cosine_similarity"] <= 1.0

    def test_fig6a_scores_are_low(self, context):
        result = run_fig6a(SCALE)
        matcher_rows = [row for row in result.rows if row["system"] != "(benchmark size)"]
        assert matcher_rows
        assert all(row["recall"] < 0.6 for row in matcher_rows)

    def test_fig6b_returns_ranked_tables(self, context):
        result = run_fig6b(SCALE)
        first_query_rows = [
            row for row in result.rows if row["query"] == "status and sales amount per product"
        ]
        assert [row["rank"] for row in first_query_rows] == sorted(
            row["rank"] for row in first_query_rows
        )
