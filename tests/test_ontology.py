"""Unit tests for the ontology substrate (repro.ontology)."""

import pytest

from repro.errors import OntologyError
from repro.ontology.dbpedia import DBPEDIA_TARGET_TYPE_COUNT, load_dbpedia
from repro.ontology.pii import PII_FAKER_CLASSES, PII_TYPES, faker_class_for, is_pii_type
from repro.ontology.registry import load_ontologies, load_ontology
from repro.ontology.schema_org import SCHEMA_ORG_TARGET_TYPE_COUNT, load_schema_org
from repro.ontology.types import AtomicKind, Ontology, SemanticType, normalize_label


class TestNormalizeLabel:
    @pytest.mark.parametrize(
        "raw,expected",
        [
            ("product_id", "product id"),
            ("productID", "product id"),
            ("Product-Id", "product id"),
            ("birthDate", "birth date"),
            ("  Name  ", "name"),
            ("order.date", "order date"),
            ("ALLCAPS", "allcaps"),
        ],
    )
    def test_normalisation(self, raw, expected):
        assert normalize_label(raw) == expected


class TestSemanticType:
    def test_normalized_property(self):
        semantic_type = SemanticType(label="birth date", ontology="dbpedia")
        assert semantic_type.normalized == "birth date"

    def test_ancestry_walks_parents(self):
        dbpedia = load_dbpedia()
        ancestry = dbpedia.get("birth date").ancestry(dbpedia)
        assert ancestry[0] == "birth date"
        assert "date" in ancestry

    def test_ancestry_handles_missing_parent(self):
        ontology = Ontology("test", [SemanticType("a", "test", parent="ghost")])
        assert ontology.get("a").ancestry(ontology) == ["a", "ghost"]


class TestOntologyContainer:
    def test_duplicate_labels_rejected(self):
        with pytest.raises(OntologyError):
            Ontology("test", [SemanticType("x", "test"), SemanticType("x", "test")])

    def test_match_normalized(self):
        dbpedia = load_dbpedia()
        assert dbpedia.match_normalized("Birth_Date").label == "birth date"
        assert dbpedia.match_normalized("not a real type at all") is None

    def test_types_in_domain(self):
        dbpedia = load_dbpedia()
        person_types = dbpedia.types_in_domain("Person")
        assert any(t.label == "birth date" for t in person_types)

    def test_is_descendant(self):
        dbpedia = load_dbpedia()
        assert dbpedia.is_descendant("birth date", "date")
        assert not dbpedia.is_descendant("date", "birth date")


class TestCatalogues:
    def test_dbpedia_reaches_paper_scale(self):
        assert len(load_dbpedia()) == DBPEDIA_TARGET_TYPE_COUNT

    def test_schema_org_reaches_paper_scale(self):
        assert len(load_schema_org()) == SCHEMA_ORG_TARGET_TYPE_COUNT

    def test_dbpedia_has_id_with_description(self):
        id_type = load_dbpedia().get("id")
        assert id_type is not None
        assert "identifier" in id_type.description.lower()

    def test_schema_org_has_identifier(self):
        assert load_schema_org().get("identifier") is not None

    def test_atomic_kinds_assigned(self):
        dbpedia = load_dbpedia()
        assert dbpedia.get("population").atomic is AtomicKind.NUMBER
        assert dbpedia.get("name").atomic is AtomicKind.TEXT

    def test_compound_types_have_parents(self):
        dbpedia = load_dbpedia()
        compound = dbpedia.get("vehicle id")
        assert compound is not None
        assert compound.parent == "id"

    def test_loading_is_deterministic(self):
        first = [t.label for t in load_dbpedia()]
        second = [t.label for t in load_dbpedia()]
        assert first == second


class TestRegistry:
    def test_load_by_name(self):
        assert load_ontology("dbpedia").name == "dbpedia"
        assert load_ontology("schema_org").name == "schema_org"

    def test_unknown_name_rejected(self):
        with pytest.raises(OntologyError):
            load_ontology("wikidata")

    def test_load_all(self):
        ontologies = load_ontologies()
        assert set(ontologies) == {"dbpedia", "schema_org"}

    def test_load_subset(self):
        ontologies = load_ontologies(["dbpedia"])
        assert set(ontologies) == {"dbpedia"}


class TestPIIRegistry:
    def test_paper_table3_types_present(self):
        assert set(PII_TYPES) == set(PII_FAKER_CLASSES)
        assert "name" in PII_TYPES
        assert "email" in PII_TYPES

    def test_is_pii_type(self):
        assert is_pii_type("email")
        assert not is_pii_type("country")

    def test_faker_class_mapping(self):
        assert faker_class_for("email") == "faker.email"
        assert faker_class_for("birth date") == "faker.date"
        assert faker_class_for("unknown") is None
