"""The columnar analytics engine: projection ≡ scan, persistence, pushdown.

The contract under test is exact equality: every statistic computed from
the materialized :class:`~repro.storage.columnar.ColumnarProjection`
must be *identical* — including Counter insertion order, float bit
patterns and tie-breaking — to the streaming per-table reference
(``from_scan``). Property tests drive randomized corpora (empty corpora
and all-null columns included) through both paths; deterministic tests
cover artifact persistence, fingerprint staleness, prune-on-publish,
predicate pushdown and the no-JSON-parsed cold-load guarantee.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import GitTables
from repro.core.annotation import AnnotationMethod, ColumnAnnotation, TableAnnotations
from repro.core.corpus import AnnotatedTable, GitTablesCorpus
from repro.core.curation import CurationReport
from repro.core.stats import AnnotationStatistics, CorpusStatistics, dimension_cdf, top_types
from repro.dataframe.table import Table
from repro.storage.artifacts import IndexArtifactStore, corpus_content_fingerprint
from repro.storage.columnar import (
    ColumnarProjection,
    TablePredicate,
    count_by,
    ensure_projection,
    first_seen_counts,
    histogram,
    load_projection,
    masked,
    publish_projection,
    quantiles,
    sum_by,
)

_TOPICS = ("thing", "organism", "order", "event")
_REPOS = ("octo/data", "acme/tables", "lab/sets")
_LICENSES = ("mit", "apache-2.0", "gpl-3.0", None)
_HEADER_NAMES = ("id", "status", "country", "name", "price", "note")
_CELLS = ("1", "7", "x", "ok", "3.5", "true", "", "na")
_TYPE_LABELS = ("status", "name", "country", "price", "city", "id")
_ONTOLOGIES = ("dbpedia", "schema_org")
_PII_LABELS = ("email", "name", "birth date")


@st.composite
def annotated_table(draw, index: int) -> AnnotatedTable:
    table_id = f"t{index:03d}"
    n_cols = draw(st.integers(min_value=1, max_value=4))
    header = [draw(st.sampled_from(_HEADER_NAMES)) for _ in range(n_cols)]
    n_rows = draw(st.integers(min_value=0, max_value=5))
    rows = [[draw(st.sampled_from(_CELLS)) for _ in header] for _ in range(n_rows)]
    metadata = {}
    pii_columns = draw(
        st.lists(
            st.tuples(st.sampled_from(header), st.sampled_from(_PII_LABELS)),
            max_size=2,
        )
    )
    if pii_columns:
        metadata["pii_scrubbed_types"] = dict(pii_columns)
    annotations = TableAnnotations(table_id=table_id)
    for _ in range(draw(st.integers(min_value=0, max_value=5))):
        annotations.add(
            ColumnAnnotation(
                column=draw(st.sampled_from(header)),
                type_label=draw(st.sampled_from(_TYPE_LABELS)),
                ontology=draw(st.sampled_from(_ONTOLOGIES)),
                method=draw(st.sampled_from(list(AnnotationMethod))),
                confidence=draw(
                    st.floats(min_value=0.0, max_value=1.0, allow_nan=False, width=64)
                ),
            )
        )
    return AnnotatedTable(
        table=Table(header, rows, table_id=table_id, metadata=metadata),
        annotations=annotations,
        topic=draw(st.sampled_from(_TOPICS)),
        repository=draw(st.sampled_from(_REPOS)),
        source_url=f"https://github.com/example/{table_id}.csv",
        license_key=draw(st.sampled_from(_LICENSES)),
    )


@st.composite
def corpora(draw, max_tables: int = 6) -> GitTablesCorpus:
    corpus = GitTablesCorpus(name="prop")
    for index in range(draw(st.integers(min_value=0, max_value=max_tables))):
        corpus.add(draw(annotated_table(index)))
    return corpus


@st.composite
def predicates(draw) -> TablePredicate:
    return TablePredicate(
        topic=draw(st.sampled_from((None,) + _TOPICS)),
        repository=draw(st.sampled_from((None,) + _REPOS)),
        license_key=draw(st.sampled_from((None, "mit", "unseen-license"))),
        min_rows=draw(st.sampled_from((None, 0, 2, 9))),
        max_rows=draw(st.sampled_from((None, 0, 3))),
        min_columns=draw(st.sampled_from((None, 2))),
        max_columns=draw(st.sampled_from((None, 3))),
        dtype=draw(st.sampled_from((None, "integer", "string", "empty"))),
        annotation_label=draw(st.sampled_from((None, "country", "price", "unseen"))),
        method=draw(st.sampled_from((None, "syntactic", "semantic"))),
        pii=draw(st.sampled_from((None, True, False))),
    )


def _scan_ids(corpus, predicate: TablePredicate) -> list[str]:
    return [
        annotated.table_id for annotated in corpus if predicate.matches(annotated)
    ]


class TestProjectionEqualsScan:
    """Property: every aggregate off the arrays ≡ the streaming reference."""

    @given(corpus=corpora())
    @settings(max_examples=40, deadline=None)
    def test_statistics_identical(self, corpus):
        projection = ColumnarProjection.from_corpus(corpus)
        assert CorpusStatistics.from_projection(projection) == CorpusStatistics.from_scan(corpus)
        assert AnnotationStatistics.from_projection(projection) == AnnotationStatistics.from_scan(
            corpus
        )
        assert CurationReport.from_projection(projection) == CurationReport.from_scan(corpus)

    @given(corpus=corpora())
    @settings(max_examples=25, deadline=None)
    def test_cdf_and_top_types_identical(self, corpus):
        projection = ColumnarProjection.from_corpus(corpus)
        scan_stats = AnnotationStatistics.from_scan(corpus)
        proj_stats = AnnotationStatistics.from_projection(projection)
        for method in ("syntactic", "semantic"):
            for ontology in ("dbpedia", "schema_org"):
                assert top_types(proj_stats, method, ontology, k=25) == top_types(
                    scan_stats, method, ontology, k=25
                )
        for axis in ("rows", "columns"):
            reference = dimension_cdf(corpus, axis=axis)
            corpus.attach_projection(projection)
            assert dimension_cdf(corpus, axis=axis) == reference
            corpus._projection = None

    @given(corpus=corpora(), predicate=predicates())
    @settings(max_examples=40, deadline=None)
    def test_predicate_pushdown_identical(self, corpus, predicate):
        projection = ColumnarProjection.from_corpus(corpus)
        assert projection.select_ids(predicate) == _scan_ids(corpus, predicate)

    def test_empty_corpus(self):
        corpus = GitTablesCorpus(name="empty")
        projection = ColumnarProjection.from_corpus(corpus)
        assert projection.table_count == 0
        assert CorpusStatistics.from_projection(projection) == CorpusStatistics.from_scan(corpus)
        assert AnnotationStatistics.from_projection(projection) == AnnotationStatistics.from_scan(
            corpus
        )
        assert CurationReport.from_projection(projection) == CurationReport.from_scan(corpus)
        assert projection.select_ids(TablePredicate(min_rows=1)) == []

    def test_all_null_columns(self):
        corpus = GitTablesCorpus(name="nulls")
        table = Table(
            ["empty_a", "empty_b"],
            [["", "na"], ["null", ""], ["nan", "none"]],
            table_id="all-null",
        )
        corpus.add(
            AnnotatedTable(
                table=table,
                annotations=TableAnnotations(table_id="all-null"),
                topic="thing",
                repository="octo/data",
                source_url="u",
                license_key=None,
            )
        )
        projection = ColumnarProjection.from_corpus(corpus)
        scan = CorpusStatistics.from_scan(corpus)
        assert CorpusStatistics.from_projection(projection) == scan
        assert scan.atomic_type_counts.get("empty") == 2
        assert projection.select_ids(TablePredicate(dtype="empty")) == ["all-null"]


class TestKernels:
    def test_count_by_matches_bincount_semantics(self):
        codes = np.array([2, 0, 2, 1, 2], dtype=np.int64)
        assert count_by(codes, 4).tolist() == [1, 1, 3, 0]
        mask = np.array([True, False, True, True, False])
        assert count_by(codes, 4, mask=mask).tolist() == [0, 1, 2, 0]
        assert count_by(np.array([], dtype=np.int64), 3).tolist() == [0, 0, 0]

    def test_sum_by_is_exact_for_ints(self):
        codes = np.array([0, 1, 0, 1], dtype=np.int64)
        weights = np.array([10**15, 3, 7, 4], dtype=np.int64)
        sums = sum_by(codes, weights, 2)
        assert sums.dtype == np.int64
        assert sums.tolist() == [10**15 + 7, 7]

    def test_histogram_matches_numpy(self):
        values = np.array([0.1, 0.5, 0.9, 0.5])
        bins = np.linspace(0.0, 1.0, 5)
        assert histogram(values, bins).tolist() == np.histogram(values, bins=bins)[0].tolist()

    def test_quantiles_empty_is_zeros(self):
        assert quantiles(np.array([]), [0.25, 0.5, 0.75]).tolist() == [0.0, 0.0, 0.0]
        assert quantiles(np.array([1.0, 3.0]), 0.5).tolist() == [2.0]

    def test_masked_selects(self):
        values = np.array([1, 2, 3])
        assert masked(values, np.array([True, False, True])).tolist() == [1, 3]

    def test_first_seen_counts_preserves_encounter_order(self):
        codes = np.array([5, 1, 5, 3, 1, 5], dtype=np.int64)
        uniq, counts = first_seen_counts(codes)
        assert uniq.tolist() == [5, 1, 3]
        assert counts.tolist() == [3, 2, 1]
        uniq, counts = first_seen_counts(np.array([], dtype=np.int64))
        assert uniq.tolist() == [] and counts.tolist() == []


def _disk_corpus(tmp_path, n: int = 12):
    """A sharded on-disk corpus built from n synthetic tables."""
    from tests.test_storage import _annotated

    corpus = GitTablesCorpus(name="disk")
    for index in range(n):
        corpus.add(_annotated(f"t{index:03d}", topic="id" if index % 2 else "organism"))
    store_dir = tmp_path / "corpus"
    corpus.save(store_dir, shard_size=4)
    return GitTablesCorpus.load(store_dir), store_dir


class TestPersistenceAndStaleness:
    def test_publish_load_roundtrip(self, tmp_path):
        corpus, store_dir = _disk_corpus(tmp_path)
        fingerprint = corpus_content_fingerprint(corpus)
        artifacts = IndexArtifactStore.for_corpus_dir(store_dir)
        projection = ColumnarProjection.from_corpus(corpus)
        publish_projection(artifacts, projection, corpus_fingerprint=fingerprint)
        loaded = load_projection(IndexArtifactStore.for_corpus_dir(store_dir), fingerprint)
        assert loaded == projection
        assert loaded.table_ids == projection.table_ids
        assert loaded.topics == projection.topics

    def test_publish_requires_fingerprint(self, tmp_path):
        corpus = GitTablesCorpus(name="mem")
        projection = ColumnarProjection.from_corpus(corpus)
        artifacts = IndexArtifactStore(tmp_path / "artifacts")
        with pytest.raises(ValueError):
            publish_projection(artifacts, projection, corpus_fingerprint=None)

    def test_ensure_projection_attaches_and_reuses(self, tmp_path):
        corpus, store_dir = _disk_corpus(tmp_path)
        artifacts = IndexArtifactStore.for_corpus_dir(store_dir)
        built = ensure_projection(corpus, artifacts)
        assert corpus.projection is built
        # A second resolution returns the attached instance untouched.
        assert ensure_projection(corpus, artifacts) is built
        # A fresh corpus over the same store mmaps the published copy.
        reloaded = GitTablesCorpus.load(store_dir)
        assert ensure_projection(reloaded, IndexArtifactStore.for_corpus_dir(store_dir)) == built

    def test_attached_projection_goes_stale_on_mutation(self):
        from tests.test_storage import _annotated, _corpus

        corpus = _corpus(5)
        projection = ColumnarProjection.from_corpus(corpus)
        corpus.attach_projection(projection)
        assert corpus.projection is projection
        corpus.add(_annotated("late-arrival"))
        assert corpus.projection is None
        # Dispatch falls back to the scan and sees the new table.
        assert CorpusStatistics.from_corpus(corpus).table_count == 6

    def test_out_of_band_mutation_misses_then_rebuilds(self, tmp_path):
        from repro.storage.sharded import ShardedCorpusWriter
        from tests.test_storage import _annotated

        corpus, store_dir = _disk_corpus(tmp_path)
        old_fingerprint = corpus_content_fingerprint(corpus)
        ensure_projection(corpus, IndexArtifactStore.for_corpus_dir(store_dir))

        writer = ShardedCorpusWriter(store_dir, shard_size=4)
        writer.add(_annotated("out-of-band"))
        writer.finalize()

        mutated = GitTablesCorpus.load(store_dir)
        new_fingerprint = corpus_content_fingerprint(mutated)
        assert new_fingerprint != old_fingerprint
        artifacts = IndexArtifactStore.for_corpus_dir(store_dir)
        assert load_projection(artifacts, new_fingerprint) is None
        rebuilt = ensure_projection(mutated, artifacts)
        assert rebuilt.table_count == len(mutated)
        assert CorpusStatistics.from_projection(rebuilt) == CorpusStatistics.from_scan(mutated)

    def test_prune_removes_corpus_keyed_artifacts_only(self, tmp_path):
        import json
        import shutil

        artifacts = IndexArtifactStore(tmp_path / "artifacts")
        artifacts.publish("ontology-index", {"model": "fasttext"}, payload={"k": 1})
        artifacts.publish("current-stats", {"kind": "x", "corpus": "bbb"}, payload={"k": 3})
        # Hand-roll a stale corpus-keyed artifact: publish() itself would
        # have swept it already (tested below), so write it directly.
        stale = artifacts.directory / "old-stats"
        shutil.copytree(artifacts.directory / "current-stats", stale)
        meta_path = stale / "meta.json"
        meta = json.loads(meta_path.read_text(encoding="utf-8"))
        meta["fingerprint"]["corpus"] = "aaa"
        meta_path.write_text(json.dumps(meta), encoding="utf-8")

        removed = artifacts.prune("bbb")
        assert removed == ["old-stats"]
        assert sorted(artifacts.names()) == ["current-stats", "ontology-index"]

    def test_publish_prunes_superseded_fingerprints(self, tmp_path):
        artifacts = IndexArtifactStore(tmp_path / "artifacts")
        artifacts.publish("stats-a", {"kind": "x", "corpus": "aaa"}, payload={})
        artifacts.publish("keep-me", {"model": "fasttext"}, payload={})
        # Publishing under a new corpus fingerprint sweeps the stale one.
        artifacts.publish("stats-b", {"kind": "x", "corpus": "bbb"}, payload={})
        assert sorted(artifacts.names()) == ["keep-me", "stats-b"]


class TestColdLoadReadsOnlyArrays:
    def test_stats_after_cold_load_parse_no_table_json(self, tmp_path, monkeypatch):
        import repro.storage.sharded as sharded
        from tests.test_storage import _corpus

        corpus = _corpus(16)
        store_dir = tmp_path / "corpus"
        GitTables.from_corpus(corpus).save(store_dir, shard_size=4)

        reference_corpus = GitTablesCorpus.load(store_dir)
        reference_stats = CorpusStatistics.from_scan(reference_corpus)
        reference_ann = AnnotationStatistics.from_scan(reference_corpus)
        reference_curation = CurationReport.from_scan(reference_corpus)
        reference_cdf = dimension_cdf(reference_corpus, axis="rows")

        session = GitTables.load(store_dir)

        def _no_json_allowed(path, byte_count):
            raise AssertionError(f"table JSON parsed during columnar stats: {path}")

        monkeypatch.setattr(sharded, "_read_shard_tables", _no_json_allowed)
        assert session.stats() == reference_stats
        assert session.annotation_stats() == reference_ann
        assert CurationReport.from_corpus(session.corpus) == reference_curation
        assert dimension_cdf(session.corpus, axis="rows") == reference_cdf


class TestCorpusFilterPushdown:
    def test_filter_accepts_predicate_and_matches_callable(self):
        from tests.test_storage import _corpus

        corpus = _corpus(9)
        predicate = TablePredicate(topic="organism", min_rows=1)
        corpus.attach_projection(ColumnarProjection.from_corpus(corpus))
        fast = [annotated.table_id for annotated in corpus.filter(predicate)]
        corpus._projection = None
        slow = [annotated.table_id for annotated in corpus.filter(predicate)]
        callable_path = [
            annotated.table_id for annotated in corpus.filter(predicate.matches)
        ]
        assert fast == slow == callable_path
        assert fast  # the predicate selects something

    def test_filter_without_projection_builds_none(self):
        from tests.test_storage import _corpus

        corpus = _corpus(4)
        assert corpus.projection is None
        subset = corpus.filter(TablePredicate(topic="id"))
        assert {annotated.topic for annotated in subset} == {"id"}


class TestParquetExport:
    def test_to_parquet_writes_decoded_tables(self, tmp_path):
        pytest.importorskip("pyarrow")
        from tests.test_storage import _corpus

        projection = ColumnarProjection.from_corpus(_corpus(6))
        written = projection.to_parquet(tmp_path / "parquet")
        assert sorted(path.name for path in written) == [
            "annotations.parquet",
            "columns.parquet",
            "pii.parquet",
            "tables.parquet",
        ]

    def test_to_parquet_raises_cleanly_without_pyarrow(self, tmp_path, monkeypatch):
        import builtins

        real_import = builtins.__import__

        def _no_pyarrow(name, *args, **kwargs):
            if name.startswith("pyarrow"):
                raise ImportError("pyarrow is not installed")
            return real_import(name, *args, **kwargs)

        monkeypatch.setattr(builtins, "__import__", _no_pyarrow)
        from tests.test_storage import _corpus

        projection = ColumnarProjection.from_corpus(_corpus(2))
        with pytest.raises(RuntimeError, match="pyarrow"):
            projection.to_parquet(tmp_path / "parquet")
