"""Shared pytest fixtures.

Expensive artefacts (the small GitTables corpus, the VizNet contrast
corpus, the T2Dv2 benchmark) are session-scoped and shared through the
experiment context so the whole suite builds them exactly once.

Also home of the crash-injection helpers for the process-parallel build
harness: :func:`kill_at` builds a
:class:`~repro.storage.parallel.FaultSpec` that SIGKILLs a chosen
worker (or the coordinator) at a precise commit point, and
:func:`run_parallel_build_subprocess` runs a whole parallel build in a
child process so coordinator-side kills don't take the test runner
down with them.
"""

from __future__ import annotations

import pytest

from repro.config import PipelineConfig
from repro.core.pipeline import CorpusBuilder
from repro.dataframe.table import Table
from repro.experiments.context import get_context
from repro.github.content import GeneratorConfig
from repro.github.instance import build_instance
from repro.storage.parallel import FaultSpec, ParallelCorpusBuilder, build_mp_context


def kill_at(commit_n: int, worker: int | None = 0, point: str = "before-log-append") -> FaultSpec:
    """A fault injector: SIGKILL ``worker`` at its ``commit_n``-th commit.

    ``point`` selects the precise instant within the commit (see
    :class:`~repro.storage.parallel.FaultSpec`); ``worker=None`` targets
    the coordinator's finalize points instead.
    """
    return FaultSpec(worker=worker, commit_n=commit_n, point=point)


def _parallel_build_entry(
    store_dir, config, generator_config, processes, fault, batch_size, shard_size, extend=False
):
    builder = CorpusBuilder(config=config, generator_config=generator_config, batch_size=batch_size)
    ParallelCorpusBuilder(builder, processes=processes, fault=fault).build(
        store_dir, shard_size=shard_size, extend=extend
    )


def run_parallel_build_subprocess(
    store_dir,
    config,
    generator_config,
    processes: int,
    fault: FaultSpec | None = None,
    batch_size: int = 8,
    shard_size: int = 8,
    timeout: float = 180.0,
    extend: bool = False,
):
    """Run one parallel build in a child process and return the Process.

    Coordinator-targeted :class:`FaultSpec`s SIGKILL the process running
    the build, so tests drive those scenarios through this wrapper: the
    child dies (exitcode ``-SIGKILL``) and the pytest process survives
    to assert on the wreckage and resume the build.
    """
    ctx = build_mp_context()
    process = ctx.Process(
        target=_parallel_build_entry,
        args=(
            str(store_dir),
            config,
            generator_config,
            processes,
            fault,
            batch_size,
            shard_size,
            extend,
        ),
    )
    process.start()
    process.join(timeout=timeout)
    if process.is_alive():  # pragma: no cover - hung build
        process.terminate()
        process.join(timeout=10.0)
        raise AssertionError("parallel build subprocess did not finish in time")
    return process


def _compaction_entry(store_dir, shard_size, fault):
    from repro.storage.compaction import compact_store

    compact_store(store_dir, shard_size=shard_size, fault=fault)


def run_compaction_subprocess(
    store_dir, shard_size=None, fault: FaultSpec | None = None, timeout: float = 120.0
):
    """Run one :func:`compact_store` in a child process; return the Process.

    Compaction runs in the calling process, so SIGKILL fault points
    (``before-shard-publish`` / ``before-manifest-publish`` /
    ``before-sweep``) would take the test runner down; this wrapper lets
    the child die (exitcode ``-SIGKILL``) while pytest survives to
    assert on the wreckage and re-run the compaction.
    """
    ctx = build_mp_context()
    process = ctx.Process(target=_compaction_entry, args=(str(store_dir), shard_size, fault))
    process.start()
    process.join(timeout=timeout)
    if process.is_alive():  # pragma: no cover - hung compaction
        process.terminate()
        process.join(timeout=10.0)
        raise AssertionError("compaction subprocess did not finish in time")
    return process


@pytest.fixture()
def fault_injector():
    """The :func:`kill_at` fault-spec factory, as a fixture."""
    return kill_at


@pytest.fixture()
def compaction_subprocess():
    """The :func:`run_compaction_subprocess` wrapper, as a fixture."""
    return run_compaction_subprocess


@pytest.fixture()
def parallel_build_subprocess():
    """The :func:`run_parallel_build_subprocess` wrapper, as a fixture."""
    return run_parallel_build_subprocess


@pytest.fixture()
def parallel_build_entry():
    """The raw child-process build entry point (for custom kill timing)."""
    return _parallel_build_entry


@pytest.fixture(scope="session")
def context():
    """The shared small-scale experiment context."""
    return get_context(scale="small")


@pytest.fixture(scope="session")
def gittables_corpus(context):
    """A small GitTables corpus built through the full pipeline."""
    return context.gittables


@pytest.fixture(scope="session")
def pipeline_result(context):
    """The pipeline result (corpus + stage reports) for the small corpus."""
    return context.pipeline_result


@pytest.fixture(scope="session")
def viznet_corpus(context):
    """The synthetic VizNet/Web-table contrast corpus."""
    return context.viznet


@pytest.fixture(scope="session")
def t2dv2_benchmark(context):
    """The synthetic T2Dv2 gold standard."""
    return context.t2dv2


@pytest.fixture(scope="session")
def github_instance():
    """A small synthetic GitHub instance (independent of the corpus)."""
    return build_instance(GeneratorConfig.small(seed=99))


@pytest.fixture()
def small_config():
    """A fresh small pipeline configuration."""
    return PipelineConfig.small()


@pytest.fixture()
def orders_table():
    """A hand-written order table used across unit tests."""
    return Table(
        header=["order_id", "order_date", "status", "quantity", "total_price", "customer_email"],
        rows=[
            ["1001", "2021-03-01", "SHIPPED", "4", "25.99", "alice@example.com"],
            ["1002", "2021-03-02", "PENDING", "1", "7.50", "bob@example.com"],
            ["1003", "2021-03-05", "SHIPPED", "2", "12.00", "carol@example.com"],
            ["1004", "2021-03-07", "CANCELLED", "8", "80.10", "dave@example.com"],
        ],
        table_id="unit-test-orders",
        metadata={"license": "mit", "topic": "order"},
    )


@pytest.fixture()
def people_table():
    """A hand-written person table with PII columns."""
    return Table(
        header=["id", "name", "email", "birth date", "city"],
        rows=[
            ["1", "Ada Lovelace", "ada@example.com", "1815-12-10", "London"],
            ["2", "Alan Turing", "alan@example.com", "1912-06-23", "London"],
            ["3", "Grace Hopper", "grace@example.com", "1906-12-09", "New York"],
        ],
        table_id="unit-test-people",
        metadata={"license": "mit"},
    )
