"""Shared pytest fixtures.

Expensive artefacts (the small GitTables corpus, the VizNet contrast
corpus, the T2Dv2 benchmark) are session-scoped and shared through the
experiment context so the whole suite builds them exactly once.
"""

from __future__ import annotations

import pytest

from repro.config import PipelineConfig
from repro.dataframe.table import Table
from repro.experiments.context import get_context
from repro.github.content import GeneratorConfig
from repro.github.instance import build_instance


@pytest.fixture(scope="session")
def context():
    """The shared small-scale experiment context."""
    return get_context(scale="small")


@pytest.fixture(scope="session")
def gittables_corpus(context):
    """A small GitTables corpus built through the full pipeline."""
    return context.gittables


@pytest.fixture(scope="session")
def pipeline_result(context):
    """The pipeline result (corpus + stage reports) for the small corpus."""
    return context.pipeline_result


@pytest.fixture(scope="session")
def viznet_corpus(context):
    """The synthetic VizNet/Web-table contrast corpus."""
    return context.viznet


@pytest.fixture(scope="session")
def t2dv2_benchmark(context):
    """The synthetic T2Dv2 gold standard."""
    return context.t2dv2


@pytest.fixture(scope="session")
def github_instance():
    """A small synthetic GitHub instance (independent of the corpus)."""
    return build_instance(GeneratorConfig.small(seed=99))


@pytest.fixture()
def small_config():
    """A fresh small pipeline configuration."""
    return PipelineConfig.small()


@pytest.fixture()
def orders_table():
    """A hand-written order table used across unit tests."""
    return Table(
        header=["order_id", "order_date", "status", "quantity", "total_price", "customer_email"],
        rows=[
            ["1001", "2021-03-01", "SHIPPED", "4", "25.99", "alice@example.com"],
            ["1002", "2021-03-02", "PENDING", "1", "7.50", "bob@example.com"],
            ["1003", "2021-03-05", "SHIPPED", "2", "12.00", "carol@example.com"],
            ["1004", "2021-03-07", "CANCELLED", "8", "80.10", "dave@example.com"],
        ],
        table_id="unit-test-orders",
        metadata={"license": "mit", "topic": "order"},
    )


@pytest.fixture()
def people_table():
    """A hand-written person table with PII columns."""
    return Table(
        header=["id", "name", "email", "birth date", "city"],
        rows=[
            ["1", "Ada Lovelace", "ada@example.com", "1815-12-10", "London"],
            ["2", "Alan Turing", "alan@example.com", "1912-06-23", "London"],
            ["3", "Grace Hopper", "grace@example.com", "1906-12-09", "New York"],
        ],
        table_id="unit-test-people",
        metadata={"license": "mit"},
    )
