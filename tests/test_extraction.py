"""Unit tests for the extraction stage (repro.core.extraction)."""

import pytest

from repro.config import ExtractionConfig
from repro.core.extraction import CSVExtractor, ExtractionReport, build_topic_query, segment_query
from repro.github.client import GitHubClient
from repro.github.search import SearchQuery


class TestTopicQueries:
    def test_build_topic_query_excludes_forks_by_default(self):
        query = build_topic_query("object")
        assert query.term == "object"
        assert query.extension == "csv"
        assert not query.include_forks

    def test_build_topic_query_can_include_forks(self):
        assert build_topic_query("object", exclude_forks=False).include_forks


class TestSegmentQuery:
    def test_small_result_set_is_not_segmented(self):
        query = SearchQuery(term="id")
        assert segment_query(query, total_count=500, result_window=1000) == [query]

    def test_large_result_set_is_segmented_by_size(self):
        query = SearchQuery(term="id")
        segments = segment_query(
            query, total_count=5000, result_window=1000, segment_bytes=50 * 1024,
            max_file_size=438 * 1024,
        )
        assert len(segments) > 1
        assert all(segment.size_min is not None for segment in segments)

    def test_segments_cover_the_full_size_range_without_overlap(self):
        query = SearchQuery(term="id")
        segments = segment_query(query, total_count=10_000, max_file_size=1000, segment_bytes=100)
        assert segments[0].size_min == 0
        assert segments[-1].size_max == 1000
        for previous, current in zip(segments, segments[1:]):
            assert current.size_min == previous.size_max + 1

    def test_more_results_means_more_segments(self):
        query = SearchQuery(term="id")
        few = segment_query(query, total_count=3000, max_file_size=100_000)
        many = segment_query(query, total_count=100_000, max_file_size=100_000)
        assert len(many) >= len(few)


class TestCSVExtractor:
    @pytest.fixture()
    def extractor(self, github_instance):
        config = ExtractionConfig(topic_count=4, result_window=200, page_size=50)
        return CSVExtractor(GitHubClient(github_instance), config)

    def test_collect_urls_deduplicates(self, extractor):
        urls = extractor.collect_urls("id")
        assert len(urls) == len(set(urls))

    def test_extract_topic_returns_files_with_content(self, extractor):
        files = extractor.extract_topic("id")
        assert files
        assert all(file.content for file in files)
        assert all(file.topic == "id" for file in files)

    def test_extract_deduplicates_across_topics(self, extractor):
        files, report = extractor.extract(["id", "value"])
        urls = [file.url for file in files]
        assert len(urls) == len(set(urls))
        assert report.files_downloaded == len(files)
        assert report.total_urls >= report.files_downloaded

    def test_report_counts_queries_per_topic(self, extractor):
        _, report = extractor.extract(["id"])
        assert "id" in report.initial_counts
        assert report.segmented_queries["id"] >= 1
        assert report.api_requests > 0

    def test_extraction_respects_file_size_cap(self, extractor):
        files, _ = extractor.extract(["id"])
        assert all(file.size_bytes <= extractor.config.max_file_size for file in files)
