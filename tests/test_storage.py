"""Tests for the pluggable corpus storage subsystem (repro.storage).

Covers the CorpusStore backends (in-memory, sharded JSONL reader,
append-only writer), atomic saves, lazy single-shard reads, resumable
builds (kill mid-build → resume → byte-identical to a one-shot run), and
cross-session PipelineReport reconciliation.
"""

import json
import os

import pytest

from repro.config import PipelineConfig
from repro.core.annotation import AnnotationMethod, ColumnAnnotation, TableAnnotations
from repro.core.corpus import AnnotatedTable, GitTablesCorpus
from repro.core.pipeline import CorpusBuilder, build_corpus
from repro.dataframe.table import Table
from repro.errors import CorpusError
from repro.github.content import GeneratorConfig
from repro.pipeline import Pipeline, PipelineReport, ResumeSkipStage, combine_counters
from repro.storage import (
    BuildCheckpoint,
    InMemoryStore,
    ShardedCorpusWriter,
    ShardedJsonlStore,
    is_sharded_dir,
)
from repro.storage._io import directory_file_bytes


def _annotated(table_id: str, topic: str = "id", repo: str = "octo/data") -> AnnotatedTable:
    table = Table(["id", "status"], [["1", "OPEN"], ["2", "CLOSED"]], table_id=table_id)
    annotations = TableAnnotations(table_id=table_id)
    annotations.add(ColumnAnnotation("status", "status", "dbpedia", AnnotationMethod.SYNTACTIC, 1.0))
    return AnnotatedTable(
        table=table,
        annotations=annotations,
        topic=topic,
        repository=repo,
        source_url=f"https://github.com/{repo}/blob/main/{table_id}.csv",
        license_key="mit",
    )


def _corpus(n: int, name: str = "mini") -> GitTablesCorpus:
    corpus = GitTablesCorpus(name=name)
    for index in range(n):
        corpus.add(_annotated(f"t{index:03d}", topic="id" if index % 2 else "organism"))
    return corpus


def _dir_bytes(directory) -> dict[str, bytes]:
    return directory_file_bytes(directory)


class TestShardedRoundTrip:
    def test_save_load_tables_identical(self, tmp_path):
        corpus = _corpus(11)
        corpus.save(tmp_path / "corpus", shard_size=4)
        loaded = GitTablesCorpus.load(tmp_path / "corpus")
        assert isinstance(loaded.store, ShardedJsonlStore)
        assert loaded.name == "mini"
        assert len(loaded) == 11
        originals = [annotated.to_dict() for annotated in corpus]
        restored = [annotated.to_dict() for annotated in loaded]
        assert restored == originals

    def test_resave_is_byte_identical(self, tmp_path):
        corpus = _corpus(9)
        corpus.save(tmp_path / "one", shard_size=4)
        GitTablesCorpus.load(tmp_path / "one").save(tmp_path / "two", shard_size=4)
        assert _dir_bytes(tmp_path / "one") == _dir_bytes(tmp_path / "two")

    def test_empty_corpus_round_trip(self, tmp_path):
        GitTablesCorpus(name="empty").save(tmp_path / "corpus")
        loaded = GitTablesCorpus.load(tmp_path / "corpus")
        assert len(loaded) == 0
        assert list(loaded) == []
        assert loaded.topics() == []
        assert loaded.total_rows() == 0

    def test_single_shard_round_trip(self, tmp_path):
        corpus = _corpus(3)
        corpus.save(tmp_path / "corpus", shard_size=100)
        loaded = GitTablesCorpus.load(tmp_path / "corpus")
        assert loaded.store.shard_files() == ["shard_00000.jsonl"]
        assert [a.table_id for a in loaded] == [a.table_id for a in corpus]

    def test_legacy_format_round_trip(self, tmp_path):
        corpus = _corpus(4)
        corpus.save(tmp_path / "corpus", format="legacy")
        assert not is_sharded_dir(tmp_path / "corpus")
        assert (tmp_path / "corpus" / "index.json").exists()
        loaded = GitTablesCorpus.load(tmp_path / "corpus")
        assert isinstance(loaded.store, InMemoryStore)
        assert [a.to_dict() for a in loaded] == [a.to_dict() for a in corpus]

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            _corpus(1).save(tmp_path / "corpus", format="parquet")


class TestLazyReads:
    def test_get_reads_only_its_own_shard(self, tmp_path):
        """Deleting every other shard must not break a single-table get."""
        corpus = _corpus(10)
        corpus.save(tmp_path / "corpus", shard_size=2)
        loaded = GitTablesCorpus.load(tmp_path / "corpus")
        manifest = loaded.store.manifest
        target = "t005"
        keep = manifest["shards"][manifest["tables"][target]["shard"]]["file"]
        for entry in manifest["shards"]:
            if entry["file"] != keep:
                (tmp_path / "corpus" / entry["file"]).unlink()
        assert loaded.get(target).table_id == target

    def test_metadata_answers_come_from_manifest(self, tmp_path):
        """topics/totals/repositories must not read any shard."""
        corpus = _corpus(10)
        corpus.save(tmp_path / "corpus", shard_size=2)
        loaded = GitTablesCorpus.load(tmp_path / "corpus")
        for entry in loaded.store.manifest["shards"]:
            (tmp_path / "corpus" / entry["file"]).unlink()
        assert loaded.topics() == corpus.topics()
        assert loaded.total_rows() == corpus.total_rows()
        assert loaded.total_columns() == corpus.total_columns()
        assert loaded.repositories() == corpus.repositories()
        assert len(loaded) == 10
        assert "t003" in loaded
        assert list(loaded.table_ids()) == [a.table_id for a in corpus]

    def test_shard_cache_is_bounded(self, tmp_path):
        corpus = _corpus(12)
        corpus.save(tmp_path / "corpus", shard_size=2)
        store = ShardedJsonlStore(tmp_path / "corpus", cache_shards=2)
        assert len(list(store)) == 12
        assert len(store._cache) <= 2

    def test_reader_is_read_only(self, tmp_path):
        _corpus(2).save(tmp_path / "corpus")
        loaded = GitTablesCorpus.load(tmp_path / "corpus")
        with pytest.raises(CorpusError):
            loaded.add(_annotated("t999"))

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(CorpusError):
            GitTablesCorpus.load(tmp_path / "does-not-exist")


class TestWriter:
    def test_commit_then_reopen_resumes(self, tmp_path):
        writer = ShardedCorpusWriter(tmp_path / "corpus", shard_size=2, name="w")
        writer.extend([_annotated("a"), _annotated("b"), _annotated("c")])
        assert writer.pending_count == 3
        writer.commit()
        assert writer.committed_count == 3

        resumed = ShardedCorpusWriter(tmp_path / "corpus")
        assert resumed.name == "w"
        assert resumed.shard_size == 2
        assert len(resumed) == 3
        resumed.add(_annotated("d"))
        resumed.commit()
        reader = resumed.as_reader()
        assert [a.table_id for a in reader] == ["a", "b", "c", "d"]

    def test_duplicate_ids_rejected_across_commits(self, tmp_path):
        writer = ShardedCorpusWriter(tmp_path / "corpus")
        writer.add(_annotated("a"))
        writer.commit()
        with pytest.raises(CorpusError):
            writer.add(_annotated("a"))
        writer.add(_annotated("b"))
        with pytest.raises(CorpusError):
            writer.add(_annotated("b"))

    def test_uncommitted_tail_is_healed_on_reopen(self, tmp_path):
        """Bytes appended after the last manifest commit are truncated."""
        writer = ShardedCorpusWriter(tmp_path / "corpus", shard_size=10)
        writer.extend([_annotated("a"), _annotated("b")])
        writer.commit()
        shard = tmp_path / "corpus" / "shard_00000.jsonl"
        with open(shard, "ab") as handle:
            handle.write(b'{"half-written garbage')
        healed = ShardedCorpusWriter(tmp_path / "corpus")
        assert len(healed) == 2
        assert [a.table_id for a in healed.as_reader()] == ["a", "b"]

    def test_orphan_shard_from_crashed_rollover_is_removed(self, tmp_path):
        """A shard file created after a rollover but never reaching the
        manifest must be deleted on reopen (byte-identity of resumes)."""
        writer = ShardedCorpusWriter(tmp_path / "corpus", shard_size=2)
        writer.extend([_annotated("a"), _annotated("b")])
        writer.commit()
        orphan = tmp_path / "corpus" / "shard_00001.jsonl"
        orphan.write_bytes(b'{"uncommitted rollover garbage"}\n')
        healed = ShardedCorpusWriter(tmp_path / "corpus")
        assert not orphan.exists()
        assert [a.table_id for a in healed] == ["a", "b"]

    def test_get_and_contains_cover_pending_and_committed(self, tmp_path):
        writer = ShardedCorpusWriter(tmp_path / "corpus")
        writer.add(_annotated("a"))
        writer.commit()
        writer.add(_annotated("b"))
        assert "a" in writer and "b" in writer
        assert writer.get("a").table_id == "a"
        assert writer.get("b").table_id == "b"
        assert writer.get("zzz") is None


class TestAtomicSave:
    def test_failed_save_preserves_existing_corpus(self, tmp_path, monkeypatch):
        target = tmp_path / "corpus"
        _corpus(4, name="original").save(target)

        def explode(self):
            raise RuntimeError("disk full")

        monkeypatch.setattr(ShardedCorpusWriter, "commit", explode)
        with pytest.raises(RuntimeError):
            _corpus(6, name="replacement").save(target)
        monkeypatch.undo()

        survivor = GitTablesCorpus.load(target)
        assert survivor.name == "original"
        assert len(survivor) == 4
        # No staging litter left behind.
        assert [n for n in os.listdir(tmp_path) if n.startswith(".corpus")] == []

    def test_save_overwrites_existing_corpus(self, tmp_path):
        target = tmp_path / "corpus"
        _corpus(4, name="old").save(target)
        _corpus(7, name="new").save(target)
        loaded = GitTablesCorpus.load(target)
        assert loaded.name == "new"
        assert len(loaded) == 7


class TestProvenanceNames:
    def test_topic_subset_name(self):
        corpus = _corpus(4, name="gittables")
        subset = corpus.topic_subset("organism")
        assert subset.name == "gittables/topic=organism"
        assert all(annotated.topic == "organism" for annotated in subset)

    def test_filter_default_and_explicit_names(self):
        corpus = _corpus(4, name="gittables")
        assert corpus.filter(lambda a: True).name == "gittables/filtered"
        assert corpus.filter(lambda a: True, name="gittables/mit-only").name == "gittables/mit-only"

    def test_names_nest_across_derivations(self):
        corpus = _corpus(6, name="gittables")
        nested = corpus.topic_subset("organism").filter(lambda a: True)
        assert nested.name == "gittables/topic=organism/filtered"


class TestResumeSkipStage:
    def test_skips_only_known_urls(self):
        class Extracted:
            def __init__(self, url):
                self.url = url

        stage = ResumeSkipStage({"u1", "u3"})
        outcome = Pipeline([stage]).run([Extracted(f"u{i}") for i in range(5)])
        assert [item.url for item in outcome.items] == ["u0", "u2", "u4"]
        assert outcome.report.stage("resume-skip").items_dropped == 2


class TestCounterReconciliation:
    def test_combine_counters_sums_stagewise(self):
        base = {
            "sessions": 1,
            "batches": 2,
            "items_collected": 8,
            "total_seconds": 1.0,
            "stages": {"parsing": {"items_in": 10, "items_out": 8, "cumulative_seconds": 0.5}},
        }
        current = {
            "sessions": 1,
            "batches": 3,
            "items_collected": 9,
            "total_seconds": 2.0,
            "stages": {
                "parsing": {"items_in": 5, "items_out": 5, "cumulative_seconds": 0.25},
                "curation": {"items_in": 5, "items_out": 5, "cumulative_seconds": 0.3},
            },
        }
        merged = combine_counters(base, current)
        assert merged["sessions"] == 2
        assert merged["batches"] == 5
        assert merged["items_collected"] == 17
        assert merged["stages"]["parsing"] == {
            "items_in": 15,
            "items_out": 13,
            "cumulative_seconds": 0.75,
        }
        assert merged["stages"]["curation"]["items_in"] == 5

    def test_report_merge_counters(self):
        report = PipelineReport()
        metrics = report.register_stage("parsing")
        metrics.items_in = 5
        metrics.items_out = 4
        report.merge_counters(
            {
                "sessions": 2,
                "batches": 4,
                "items_collected": 10,
                "stages": {"parsing": {"items_in": 7, "items_out": 6, "cumulative_seconds": 1.0}},
            }
        )
        assert report.sessions == 3
        assert report.stage("parsing").items_in == 12
        assert report.stage("parsing").items_out == 10
        assert report.items_collected == 10


#: Chosen so the corpus contains PII-scrubbed tables both *before* and
#: *after* the interrupt point of the resume test (positions 9/13/15 and
#: 19 of 24) — scrubbing is the path where fake-value RNG state could
#: diverge between a resumed and a one-shot build.
@pytest.fixture(scope="module")
def resume_config():
    return PipelineConfig(target_tables=24, seed=7)


@pytest.fixture(scope="module")
def resume_generator():
    return GeneratorConfig(n_repositories=100, mean_rows=25, seed=7)


class TestResumableBuild:
    def test_interrupted_build_resumes_byte_identical(
        self, tmp_path, monkeypatch, resume_config, resume_generator
    ):
        """Kill a sharded build mid-stream; the resumed directory must be
        byte-identical to an uninterrupted run and the merged report must
        account for every table exactly once."""
        one_shot = tmp_path / "one-shot"
        interrupted = tmp_path / "interrupted"
        build_corpus(
            resume_config,
            generator_config=resume_generator,
            batch_size=4,
            store_dir=one_shot,
            shard_size=8,
        )

        original_commit = ShardedCorpusWriter.commit
        calls = {"n": 0}

        def killed_commit(self):
            calls["n"] += 1
            if calls["n"] > 4:
                raise KeyboardInterrupt("simulated kill")
            return original_commit(self)

        monkeypatch.setattr(ShardedCorpusWriter, "commit", killed_commit)
        with pytest.raises(KeyboardInterrupt):
            build_corpus(
                resume_config,
                generator_config=resume_generator,
                batch_size=4,
                store_dir=interrupted,
                shard_size=8,
            )
        monkeypatch.undo()

        # The interrupted directory is a valid partial corpus with a
        # checkpoint describing the committed progress.
        checkpoint = BuildCheckpoint.load(interrupted)
        assert checkpoint is not None
        partial = GitTablesCorpus.load(interrupted)
        assert 0 < len(partial) < resume_config.target_tables
        assert checkpoint.counters["items_collected"] == len(partial)

        # The scenario must exercise PII scrubbing on both sides of the
        # interrupt — the path where resumed fake-value RNG state could
        # diverge from a one-shot run. Guards against a fixture change
        # silently degrading this test.
        one_shot_corpus = list(GitTablesCorpus.load(one_shot))
        scrubbed = [
            position
            for position, annotated in enumerate(one_shot_corpus)
            if annotated.table.metadata.get("pii_scrubbed_columns")
        ]
        assert any(position < len(partial) for position in scrubbed)
        assert any(position >= len(partial) for position in scrubbed)

        result = build_corpus(
            resume_config,
            generator_config=resume_generator,
            batch_size=4,
            store_dir=interrupted,
            shard_size=8,
        )
        report = result.pipeline_report
        assert len(result.corpus) == resume_config.target_tables
        assert report.sessions == 2
        # Every table was annotated exactly once across the two sessions.
        assert report.stage("annotation").items_in == resume_config.target_tables
        assert report.stage("curation").items_out == resume_config.target_tables
        assert report.stage("resume-skip").items_dropped == len(partial)
        assert report.items_collected == resume_config.target_tables
        # Checkpoint is gone and the directory is byte-identical to the
        # one-shot build.
        assert BuildCheckpoint.load(interrupted) is None
        assert _dir_bytes(one_shot) == _dir_bytes(interrupted)

    def test_sharded_build_equals_in_memory_build(
        self, tmp_path, resume_config, resume_generator
    ):
        memory = build_corpus(resume_config, generator_config=resume_generator)
        sharded = build_corpus(
            resume_config,
            generator_config=resume_generator,
            store_dir=tmp_path / "store",
            shard_size=8,
        )
        assert isinstance(sharded.corpus.store, ShardedJsonlStore)
        assert [a.to_dict() for a in sharded.corpus] == [a.to_dict() for a in memory.corpus]
        # Saving the in-memory corpus produces the same corpus bytes the
        # streaming sharded build wrote (build.json is build provenance,
        # not corpus data — save() has no build config to record).
        memory.corpus.save(tmp_path / "saved", shard_size=8)
        built = _dir_bytes(tmp_path / "store")
        built.pop("build.json")
        assert _dir_bytes(tmp_path / "saved") == built

    def test_build_on_completed_store_reuses_it(
        self, tmp_path, resume_config, resume_generator
    ):
        store = tmp_path / "store"
        first = build_corpus(
            resume_config, generator_config=resume_generator, store_dir=store, shard_size=8
        )
        manifest_mtime = (store / "manifest.json").stat().st_mtime_ns
        again = build_corpus(
            resume_config, generator_config=resume_generator, store_dir=store, shard_size=8
        )
        assert len(again.corpus) == len(first.corpus)
        # Nothing was rebuilt or rewritten.
        assert (store / "manifest.json").stat().st_mtime_ns == manifest_mtime
        # Curation statistics are rebuilt from table metadata, so Table-3
        # style reports do not silently degrade to zeros on reuse.
        assert again.curation_report.tables_processed == len(first.corpus)
        assert again.curation_report.columns_total == first.curation_report.columns_total
        assert again.curation_report.columns_scrubbed == first.curation_report.columns_scrubbed
        assert again.curation_report.scrubbed_by_type == first.curation_report.scrubbed_by_type

    def test_resume_with_different_config_rejected(
        self, tmp_path, monkeypatch, resume_config, resume_generator
    ):
        store = tmp_path / "store"
        original_commit = ShardedCorpusWriter.commit
        calls = {"n": 0}

        def killed_commit(self):
            calls["n"] += 1
            if calls["n"] > 1:
                raise KeyboardInterrupt("simulated kill")
            return original_commit(self)

        monkeypatch.setattr(ShardedCorpusWriter, "commit", killed_commit)
        with pytest.raises(KeyboardInterrupt):
            build_corpus(
                resume_config,
                generator_config=resume_generator,
                batch_size=4,
                store_dir=store,
                shard_size=8,
            )
        monkeypatch.undo()

        different = PipelineConfig(target_tables=30, seed=14)
        with pytest.raises(CorpusError):
            build_corpus(different, generator_config=resume_generator, store_dir=store)

    def test_completed_store_with_different_config_rejected(
        self, tmp_path, resume_config, resume_generator
    ):
        """build.json outlives the checkpoint: even a *finished* store is
        validated, never silently returned for a different config."""
        store = tmp_path / "store"
        build_corpus(
            resume_config, generator_config=resume_generator, store_dir=store, shard_size=8
        )
        with pytest.raises(CorpusError):
            build_corpus(
                resume_config.replace(seed=99), generator_config=resume_generator, store_dir=store
            )

    def test_store_without_build_metadata_rejected(self, tmp_path, resume_config):
        """A plain save()'d directory has no provenance to verify against."""
        _corpus(5).save(tmp_path / "store")
        with pytest.raises(CorpusError):
            build_corpus(resume_config, store_dir=tmp_path / "store")

    def test_prebuilt_instance_store_never_reused(
        self, tmp_path, resume_config, resume_generator
    ):
        """Pre-built instances cannot be fingerprinted, so their stores
        must never be resumed or silently reused (two different sources
        would compare equal)."""
        from repro.github.instance import build_instance

        instance = build_instance(resume_generator)
        store = tmp_path / "store"
        build_corpus(resume_config, instance=instance, store_dir=store, shard_size=8)
        with pytest.raises(CorpusError):
            build_corpus(resume_config, instance=instance, store_dir=store)

    def test_self_save_preserves_build_provenance(
        self, tmp_path, resume_config, resume_generator
    ):
        """Re-saving a store's own corpus onto its directory must not
        brick the store for later build(store_dir=...) reuse."""
        store = tmp_path / "store"
        build_corpus(
            resume_config, generator_config=resume_generator, store_dir=store, shard_size=8
        )
        corpus = GitTablesCorpus.load(store)
        corpus.save(store, shard_size=8)
        assert (store / "build.json").exists()
        reused = build_corpus(
            resume_config, generator_config=resume_generator, store_dir=store, shard_size=8
        )
        assert len(reused.corpus) == resume_config.target_tables

    def test_leftover_checkpoint_completion_rebuilds_curation_report(
        self, tmp_path, resume_config, resume_generator
    ):
        """Killed between the final commit and checkpoint clear: the next
        build does no work but must still report real curation stats."""
        store = tmp_path / "store"
        first = build_corpus(
            resume_config, generator_config=resume_generator, store_dir=store, shard_size=8
        )
        # Reinstate a checkpoint as if the clear never happened.
        BuildCheckpoint(
            fingerprint=json.load(open(store / "build.json"))["fingerprint"],
            sessions=1,
            counters=first.pipeline_report.counters(),
        ).save(store)
        completed = build_corpus(
            resume_config, generator_config=resume_generator, store_dir=store, shard_size=8
        )
        assert completed.curation_report.tables_processed == len(first.corpus)
        assert completed.curation_report.scrubbed_by_type == (
            first.curation_report.scrubbed_by_type
        )
        assert BuildCheckpoint.load(store) is None

    def test_builder_facade_store_dir(self, tmp_path, resume_config, resume_generator):
        from repro.api import GitTables

        gt = GitTables.build(
            resume_config,
            generator_config=resume_generator,
            store_dir=tmp_path / "store",
            shard_size=8,
        )
        assert len(gt) == resume_config.target_tables
        loaded = GitTables.load(tmp_path / "store")
        assert isinstance(loaded.corpus.store, ShardedJsonlStore)
        assert len(loaded) == len(gt)
        assert loaded.topics() == gt.topics()


class TestManifestDeltaLog:
    """Commit-per-batch builds are O(batch): commits append one delta
    record to manifest.log; compaction folds the log into manifest.json
    every K commits and on finalize."""

    def test_commits_append_deltas_not_manifest_rewrites(self, tmp_path):
        writer = ShardedCorpusWriter(tmp_path / "corpus", shard_size=2)
        writer.extend([_annotated("t1"), _annotated("t2")])
        writer.commit()  # first commit establishes the base manifest
        manifest_path = tmp_path / "corpus" / "manifest.json"
        base_bytes = manifest_path.read_bytes()
        for index in range(3, 6):
            writer.add(_annotated(f"t{index}"))
            writer.commit()
        # The base manifest was not rewritten; the log carries the tail.
        assert manifest_path.read_bytes() == base_bytes
        log_lines = (tmp_path / "corpus" / "manifest.log").read_bytes().splitlines()
        assert len(log_lines) == 3
        # Each record is O(batch): exactly one table here.
        assert all(len(json.loads(line)["tables"]) == 1 for line in log_lines)

    def test_reader_replays_uncompacted_tail(self, tmp_path):
        writer = ShardedCorpusWriter(tmp_path / "corpus", shard_size=2)
        writer.extend([_annotated("t1"), _annotated("t2")])
        writer.commit()
        writer.extend([_annotated("t3"), _annotated("t4"), _annotated("t5")])
        writer.commit()
        store = ShardedJsonlStore(tmp_path / "corpus")
        assert [a.table_id for a in store] == ["t1", "t2", "t3", "t4", "t5"]
        assert store.get("t4").table_id == "t4"
        assert store.stats_hint()["total_rows"] == 10  # 2 rows per table
        assert store.stats_hint()["topics"] == {"id": 5}

    def test_writer_resumes_from_log_tail(self, tmp_path):
        writer = ShardedCorpusWriter(tmp_path / "corpus", shard_size=2)
        writer.extend([_annotated("t1"), _annotated("t2")])
        writer.commit()
        writer.add(_annotated("t3"))
        writer.commit()
        resumed = ShardedCorpusWriter(tmp_path / "corpus")
        assert len(resumed) == 3
        resumed.add(_annotated("t4"))
        resumed.commit()
        assert [a.table_id for a in resumed.as_reader()] == ["t1", "t2", "t3", "t4"]

    def test_torn_log_tail_ignored_and_truncated(self, tmp_path):
        writer = ShardedCorpusWriter(tmp_path / "corpus", shard_size=2)
        writer.extend([_annotated("t1"), _annotated("t2")])
        writer.commit()
        writer.add(_annotated("t3"))
        writer.commit()
        log_path = tmp_path / "corpus" / "manifest.log"
        intact = log_path.read_bytes()
        with open(log_path, "ab") as handle:
            handle.write(b'{"torn half record')
        # Readers ignore the torn tail.
        assert len(ShardedJsonlStore(tmp_path / "corpus")) == 3
        # Writers truncate it away and keep appending cleanly.
        healed = ShardedCorpusWriter(tmp_path / "corpus")
        assert log_path.read_bytes() == intact
        assert len(healed) == 3

    def test_compaction_every_k_commits(self, tmp_path):
        writer = ShardedCorpusWriter(tmp_path / "corpus", shard_size=4, compact_every=3)
        log_path = tmp_path / "corpus" / "manifest.log"
        for index in range(6):
            writer.add(_annotated(f"t{index}"))
            writer.commit()
        # Commits: #1 base manifest, #2-#3 deltas, #4 compaction (2+1
        # reaches compact_every), #5-#6 deltas.
        assert log_path.exists()
        assert len(log_path.read_bytes().splitlines()) == 2
        manifest = json.loads((tmp_path / "corpus" / "manifest.json").read_text())
        assert manifest["table_count"] == 4

    def test_finalize_compacts_and_result_is_cadence_independent(self, tmp_path):
        """The finished directory is byte-identical no matter how many
        commits produced it."""
        one = ShardedCorpusWriter(tmp_path / "one", shard_size=2)
        for index in range(5):
            one.add(_annotated(f"t{index}"))
            one.commit()
        one.finalize()
        two = ShardedCorpusWriter(tmp_path / "two", shard_size=2)
        two.extend([_annotated(f"t{index}") for index in range(5)])
        two.finalize()
        assert not (tmp_path / "one" / "manifest.log").exists()
        assert _dir_bytes(tmp_path / "one") == _dir_bytes(tmp_path / "two")

    def test_stale_log_after_crashed_compaction_not_double_applied(self, tmp_path):
        """A compaction that wrote manifest.json but crashed before
        deleting the log must not double-count on the next open."""
        writer = ShardedCorpusWriter(tmp_path / "corpus", shard_size=2)
        writer.extend([_annotated("t1"), _annotated("t2")])
        writer.commit()
        writer.add(_annotated("t3"))
        writer.commit()
        stale_log = (tmp_path / "corpus" / "manifest.log").read_bytes()
        writer.finalize()
        # Resurrect the log as if the unlink never happened.
        (tmp_path / "corpus" / "manifest.log").write_bytes(stale_log)
        store = ShardedJsonlStore(tmp_path / "corpus")
        assert len(store) == 3
        assert store.stats_hint()["total_rows"] == 6
        reopened = ShardedCorpusWriter(tmp_path / "corpus")
        assert len(reopened) == 3
        assert reopened.stats_hint()["total_rows"] == 6

    def test_content_fingerprint_tracks_commits(self, tmp_path):
        writer = ShardedCorpusWriter(tmp_path / "corpus", shard_size=2)
        writer.extend([_annotated("t1"), _annotated("t2")])
        writer.finalize()
        first = ShardedJsonlStore(tmp_path / "corpus").content_fingerprint()
        assert first == ShardedJsonlStore(tmp_path / "corpus").content_fingerprint()
        again = ShardedCorpusWriter(tmp_path / "corpus")
        again.add(_annotated("t3"))
        again.finalize()
        assert ShardedJsonlStore(tmp_path / "corpus").content_fingerprint() != first


class TestCheckpointUnit:
    def test_round_trip_and_clear(self, tmp_path):
        checkpoint = BuildCheckpoint(
            fingerprint={"config": {"seed": 1}}, sessions=2, counters={"batches": 3}
        )
        checkpoint.save(tmp_path)
        loaded = BuildCheckpoint.load(tmp_path)
        assert loaded.fingerprint == {"config": {"seed": 1}}
        assert loaded.sessions == 2
        assert loaded.counters == {"batches": 3}
        BuildCheckpoint.clear(tmp_path)
        assert BuildCheckpoint.load(tmp_path) is None

    def test_fingerprint_ignores_workers(self):
        from repro.storage import config_fingerprint

        base = PipelineConfig(target_tables=10, seed=5)
        assert config_fingerprint(base) == config_fingerprint(base.replace(workers=4))
        assert config_fingerprint(base) != config_fingerprint(base.replace(seed=6))

    def test_fingerprint_ignores_processes(self):
        """Regression: ``processes`` is content-neutral, exactly like
        ``workers`` — a build killed under one process count must be
        resumable under another, while real config drift still raises."""
        from repro.storage import config_fingerprint

        base = PipelineConfig(target_tables=10, seed=5)
        assert config_fingerprint(base) == config_fingerprint(base.replace(processes=4))
        assert config_fingerprint(base.replace(processes=2)) == config_fingerprint(
            base.replace(processes=8, workers=3)
        )
        assert config_fingerprint(base.replace(processes=2)) != config_fingerprint(
            base.replace(processes=2, target_tables=11)
        )
        # The excluded knobs never leak into the stored payload.
        payload = config_fingerprint(base)["config"]
        assert "processes" not in payload
        assert "workers" not in payload
