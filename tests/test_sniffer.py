"""Unit tests for CSV dialect sniffing (repro.dataframe.sniffer)."""

import pytest

from repro.dataframe.sniffer import Dialect, sniff_dialect, split_line
from repro.errors import SnifferError


class TestSniffDialect:
    def test_comma(self):
        text = "a,b,c\n1,2,3\n4,5,6\n"
        assert sniff_dialect(text).delimiter == ","

    def test_semicolon(self):
        text = "a;b;c\n1;2;3\n"
        assert sniff_dialect(text).delimiter == ";"

    def test_tab(self):
        text = "a\tb\tc\n1\t2\t3\n"
        assert sniff_dialect(text).delimiter == "\t"

    def test_pipe(self):
        text = "a|b|c\n1|2|3\n"
        assert sniff_dialect(text).delimiter == "|"

    def test_prefers_consistent_delimiter(self):
        # Commas appear inside one field, but semicolons split every line evenly.
        text = "name;note\nalice;hello, world\nbob;x, y and z\n"
        assert sniff_dialect(text).delimiter == ";"

    def test_quoted_commas_do_not_confuse(self):
        text = 'a,b\n"x, y",2\n"z, w",3\n'
        dialect = sniff_dialect(text)
        assert dialect.delimiter == ","
        assert split_line('"x, y",2', dialect) == ["x, y", "2"]

    def test_empty_payload_raises(self):
        with pytest.raises(SnifferError):
            sniff_dialect("")

    def test_no_delimiter_raises(self):
        with pytest.raises(SnifferError):
            sniff_dialect("justoneword\nanother\n")

    def test_consistency_reported(self):
        text = "a,b\n1,2\n3,4\n5\n"
        dialect = sniff_dialect(text)
        assert 0.5 < dialect.consistency <= 1.0


class TestDialect:
    def test_multichar_delimiter_rejected(self):
        with pytest.raises(SnifferError):
            Dialect(delimiter=",,")

    def test_split_line_handles_escaped_quotes(self):
        dialect = Dialect(delimiter=",")
        assert split_line('"say ""hi""",2', dialect) == ['say "hi"', "2"]

    def test_split_line_trailing_delimiter(self):
        dialect = Dialect(delimiter=",")
        assert split_line("a,b,", dialect) == ["a", "b", ""]
