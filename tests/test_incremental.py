"""Incremental epoch growth: delta builds, artifact refresh, crash safety.

The contract under test (see ``GitTables.extend``): growing a sealed
corpus directory appends a new **epoch** whose tables are produced by
resuming the deterministic construction stream exactly where the sealed
store left off — O(new tables) of pipeline work — and the resulting
directory is byte-identical to a from-scratch build of the larger
configuration, modulo the manifest's epoch trailer. Crashes at any
commit point of an extension (serial or parallel, worker or
coordinator) must leave a resumable directory that converges to those
same bytes. Superseded index artifacts must survive until every engine
has delta-refreshed from them (the prune-ordering window).
"""

from __future__ import annotations

import importlib.util
import json
import shutil
import sys
from pathlib import Path
from types import SimpleNamespace

import pytest

from repro.api import GitTables
from repro.applications.data_search import SEARCH_ARTIFACT
from repro.applications.schema_completion import COMPLETION_ARTIFACT
from repro.config import PipelineConfig
from repro.core.annotation import ColumnAnnotation, TableAnnotations
from repro.core.corpus import AnnotatedTable
from repro.core.pipeline import build_corpus
from repro.core.annotation import AnnotationMethod
from repro.dataframe.table import Table
from repro.errors import CorpusError
from repro.github.content import GeneratorConfig
from repro.pipeline.stages import ResumeSkipStage
from repro.serving.metrics import ServiceMetrics
from repro.storage._io import directory_file_bytes
from repro.storage.artifacts import IndexArtifactStore
from repro.storage.columnar import PROJECTION_ARTIFACT
from repro.storage.parallel import ParallelCorpusBuilder
from repro.core.pipeline import CorpusBuilder
from repro.storage.sharded import (
    ShardedCorpusWriter,
    ShardedJsonlStore,
    read_store_epoch,
)

BASE_TABLES = 24
GROWN_TABLES = 30
SHARDS = 8
BATCH = 4
SEED = 7


@pytest.fixture(scope="module")
def grow_generator():
    return GeneratorConfig(n_repositories=200, mean_rows=25, seed=SEED)


@pytest.fixture(scope="module")
def base_config():
    return PipelineConfig(target_tables=BASE_TABLES, seed=SEED)


@pytest.fixture(scope="module")
def grown_config(base_config):
    return base_config.replace(target_tables=GROWN_TABLES)


@pytest.fixture(scope="module")
def base_store(tmp_path_factory, base_config, grow_generator):
    """A sealed base-epoch directory with warmed (published) artifacts."""
    directory = tmp_path_factory.mktemp("incremental") / "base"
    session = GitTables.build(
        base_config,
        generator_config=grow_generator,
        batch_size=BATCH,
        store_dir=directory,
        shard_size=SHARDS,
    )
    _ = session.search_engine
    _ = session.completer
    return directory


@pytest.fixture(scope="module")
def grown_reference(tmp_path_factory, grown_config, grow_generator):
    """A one-shot build of the grown configuration, engines warmed."""
    directory = tmp_path_factory.mktemp("incremental") / "one-shot"
    session = GitTables.build(
        grown_config,
        generator_config=grow_generator,
        batch_size=BATCH,
        store_dir=directory,
        shard_size=SHARDS,
    )
    _ = session.search_engine
    _ = session.completer
    return directory


@pytest.fixture(scope="module")
def extended_reference(tmp_path_factory, base_store, grow_generator):
    """The base directory grown in place through the public facade."""
    directory = tmp_path_factory.mktemp("incremental") / "extended"
    shutil.copytree(base_store, directory)
    GitTables.load(directory).extend(target_tables=GROWN_TABLES, shard_size=SHARDS)
    return directory


def _answers(session: GitTables) -> tuple:
    searches = tuple(
        tuple(session.search(query, k=5))
        for query in ("status and total price per order", "population by city")
    )
    completions = tuple(
        tuple(session.complete_schema(prefix, k=5)) for prefix in (("id",), ("name", "city"))
    )
    return searches, completions, session.stats(), session.annotation_stats()


def _manifest_sans_epochs(directory: Path) -> dict:
    manifest = json.loads((Path(directory) / "manifest.json").read_text())
    manifest.pop("epoch", None)
    manifest.pop("epochs", None)
    return manifest


def _extracted(url: str) -> SimpleNamespace:
    return SimpleNamespace(url=url)


def _annotated(table_id: str) -> AnnotatedTable:
    table = Table(["id", "status"], [["1", "OPEN"]], table_id=table_id)
    annotations = TableAnnotations(table_id=table_id)
    annotations.add(
        ColumnAnnotation("status", "status", "dbpedia", AnnotationMethod.SYNTACTIC, 1.0)
    )
    return AnnotatedTable(
        table=table,
        annotations=annotations,
        topic="id",
        repository="octo/data",
        source_url=f"https://github.com/octo/data/blob/main/{table_id}.csv",
        license_key="mit",
    )


class TestEpochGrowthEquality:
    def test_extend_matches_one_shot_build(self, extended_reference, grown_reference):
        assert read_store_epoch(extended_reference) == (2, True)
        assert read_store_epoch(grown_reference) == (1, True)
        assert (
            ShardedJsonlStore(extended_reference).content_fingerprint()
            == ShardedJsonlStore(grown_reference).content_fingerprint()
        )
        # Byte-identical modulo the manifest's epoch trailer.
        extended_bytes = directory_file_bytes(extended_reference)
        one_shot_bytes = directory_file_bytes(grown_reference)
        extended_bytes.pop("manifest.json")
        one_shot_bytes.pop("manifest.json")
        assert extended_bytes == one_shot_bytes
        assert _manifest_sans_epochs(extended_reference) == _manifest_sans_epochs(grown_reference)

    def test_extended_session_serves_identical_answers(
        self, extended_reference, grown_reference
    ):
        assert _answers(GitTables.load(extended_reference)) == _answers(
            GitTables.load(grown_reference)
        )

    def test_delta_refreshed_artifacts_converge(self, extended_reference, grown_reference):
        """Appending embeddings to prior-epoch artifacts reproduces the
        from-scratch artifacts bit for bit."""
        for name in (SEARCH_ARTIFACT, COMPLETION_ARTIFACT, PROJECTION_ARTIFACT):
            assert directory_file_bytes(
                Path(extended_reference) / "artifacts" / name
            ) == directory_file_bytes(Path(grown_reference) / "artifacts" / name), name

    def test_extension_parse_work_is_one_pass_over_the_tail(
        self, tmp_path, base_store, base_config, grown_config, grow_generator
    ):
        """The extension fast-forwards past the sealed epoch's stream
        prefix: topics the base build finished are never re-searched and
        the pre-marker stream is never re-parsed, so parse work is one
        pass over the post-marker tail. The only admissible excess over
        the one-shot delta is files the base *rejected* under an earlier
        (now skipped) topic resurfacing under a later one — bounded by
        the one-shot run's duplicate-URL count."""
        base_run = build_corpus(base_config, generator_config=grow_generator, batch_size=BATCH)
        grown_run = build_corpus(grown_config, generator_config=grow_generator, batch_size=BATCH)
        base_parses = base_run.parsing_report.attempted
        grown_parses = grown_run.parsing_report.attempted
        directory = tmp_path / "store"
        shutil.copytree(base_store, directory)
        extension = build_corpus(
            grown_config,
            generator_config=grow_generator,
            batch_size=BATCH,
            store_dir=directory,
            shard_size=SHARDS,
            extend=True,
        )
        delta = grown_parses - base_parses
        assert delta <= extension.parsing_report.attempted
        assert (
            extension.parsing_report.attempted
            <= delta + grown_run.extraction_report.duplicate_urls
        )
        # The sealed build's finished topics are skipped outright: the
        # extension's topic list is a suffix of the one-shot run's.
        grown_topics = grown_run.extraction_report.topics
        ext_topics = extension.extraction_report.topics
        assert ext_topics == grown_topics[len(grown_topics) - len(ext_topics) :]
        assert extension.pipeline_report.stage("resume-skip").items_dropped > 0

    def test_degenerate_extension_reuses_sealed_store(self, tmp_path, base_store):
        directory = tmp_path / "store"
        shutil.copytree(base_store, directory)
        before = directory_file_bytes(directory)
        session = GitTables.load(directory).extend(target_tables=BASE_TABLES)
        assert read_store_epoch(directory) == (1, True)
        assert directory_file_bytes(directory) == before
        assert len(session.corpus) == BASE_TABLES

    def test_extend_requires_store_backing(self, grow_generator):
        session = GitTables.build(
            PipelineConfig(target_tables=6, seed=SEED), generator_config=grow_generator
        )
        with pytest.raises(CorpusError, match="store"):
            session.extend(target_tables=8)

    def test_shrinking_extension_rejected(self, tmp_path, base_store):
        directory = tmp_path / "store"
        shutil.copytree(base_store, directory)
        with pytest.raises(CorpusError):
            GitTables.load(directory).extend(target_tables=BASE_TABLES - 8)

    def test_extension_without_build_meta_rejected(self, tmp_path, base_store):
        directory = tmp_path / "store"
        shutil.copytree(base_store, directory)
        (directory / "build.json").unlink()
        with pytest.raises(CorpusError):
            GitTables.load(directory).extend(target_tables=GROWN_TABLES)


class TestSerialExtensionCrash:
    def test_interrupted_extension_resumes_byte_identical(
        self, tmp_path, monkeypatch, base_store, grown_config, grow_generator, extended_reference
    ):
        """Kill a serial extension between commits; resuming with
        ``extend=True`` converges to the uninterrupted extension bytes."""
        directory = tmp_path / "store"
        shutil.copytree(base_store, directory)

        original_commit = ShardedCorpusWriter.commit
        calls = {"n": 0}

        def killed_commit(writer):
            calls["n"] += 1
            if calls["n"] > 1:
                raise KeyboardInterrupt("simulated kill")
            return original_commit(writer)

        monkeypatch.setattr(ShardedCorpusWriter, "commit", killed_commit)
        with pytest.raises(KeyboardInterrupt):
            build_corpus(
                grown_config,
                generator_config=grow_generator,
                batch_size=BATCH,
                store_dir=directory,
                shard_size=SHARDS,
                extend=True,
            )
        monkeypatch.undo()

        # The wreckage: epoch 2 is open but unsealed, with a partial
        # batch of new tables committed.
        assert read_store_epoch(directory) == (2, False)
        partial = len(ShardedJsonlStore(directory))
        assert BASE_TABLES <= partial < GROWN_TABLES

        build_corpus(
            grown_config,
            generator_config=grow_generator,
            batch_size=BATCH,
            store_dir=directory,
            shard_size=SHARDS,
            extend=True,
        )
        assert read_store_epoch(directory) == (2, True)
        assert directory_file_bytes(directory) == directory_file_bytes(extended_reference)


def _crash_parallel_extension(
    directory, base_store, config, generator, fault, attempts=8
):
    """Run a worker-faulted extension until the fault actually fires.

    Fast-forwarded extensions dispatch only the post-marker tail, so the
    fault's victim worker occasionally draws no wave at all (assignment
    is load-driven) and survives; rebuild the directory and retry — the
    property under test is the *resume* after the crash, not the odds of
    crashing.
    """
    for _ in range(attempts):
        if directory.exists():
            shutil.rmtree(directory)
        shutil.copytree(base_store, directory)
        builder = CorpusBuilder(config=config, generator_config=generator, batch_size=BATCH)
        try:
            ParallelCorpusBuilder(builder, processes=2, fault=fault).build(
                directory, shard_size=SHARDS, extend=True
            )
        except CorpusError as error:
            assert "worker 0 died" in str(error)
            return
    pytest.fail(f"fault {fault.point!r} never fired in {attempts} attempts")


class TestParallelExtensionCrash:
    def _extend_parallel(self, directory, config, generator, processes=2, fault=None):
        builder = CorpusBuilder(
            config=config, generator_config=generator, batch_size=BATCH
        )
        return ParallelCorpusBuilder(builder, processes=processes, fault=fault).build(
            directory, shard_size=SHARDS, extend=True
        )

    def test_parallel_extension_matches_serial_bytes(
        self, tmp_path, base_store, grown_config, grow_generator, extended_reference
    ):
        directory = tmp_path / "store"
        shutil.copytree(base_store, directory)
        result = self._extend_parallel(directory, grown_config, grow_generator)
        assert result.table_count == GROWN_TABLES
        assert read_store_epoch(directory) == (2, True)
        assert directory_file_bytes(directory) == directory_file_bytes(extended_reference)

    @pytest.mark.parametrize(
        "point",
        ["before-shard-append", "before-log-append", "torn-log-append", "after-log-append"],
    )
    def test_worker_killed_mid_extension_then_resume(
        self,
        tmp_path,
        base_store,
        grown_config,
        grow_generator,
        fault_injector,
        extended_reference,
        point,
    ):
        directory = tmp_path / "store"
        fault = fault_injector(commit_n=1, worker=0, point=point)
        _crash_parallel_extension(directory, base_store, grown_config, grow_generator, fault)
        # Resume the crashed extension; same final bytes as the serial
        # uninterrupted extension.
        result = self._extend_parallel(directory, grown_config, grow_generator)
        assert result.table_count == GROWN_TABLES
        assert read_store_epoch(directory) == (2, True)
        assert directory_file_bytes(directory) == directory_file_bytes(extended_reference)

    def test_coordinator_killed_before_manifest_publish_then_resume(
        self,
        tmp_path,
        base_store,
        grown_config,
        grow_generator,
        fault_injector,
        parallel_build_subprocess,
        extended_reference,
    ):
        directory = tmp_path / "store"
        shutil.copytree(base_store, directory)
        fault = fault_injector(commit_n=1, worker=None, point="before-manifest-publish")
        crashed = parallel_build_subprocess(
            directory,
            grown_config,
            grow_generator,
            processes=2,
            fault=fault,
            batch_size=BATCH,
            shard_size=SHARDS,
            extend=True,
        )
        assert crashed.exitcode != 0
        resumed = parallel_build_subprocess(
            directory,
            grown_config,
            grow_generator,
            processes=2,
            batch_size=BATCH,
            shard_size=SHARDS,
            extend=True,
        )
        assert resumed.exitcode == 0
        assert read_store_epoch(directory) == (2, True)
        assert directory_file_bytes(directory) == directory_file_bytes(extended_reference)


class TestParallelFastForward:
    """The coordinator's mirror of the serial ``ResumeSkipStage``
    high-water mark: when the canonical portion is exactly a sealed
    epoch, stream enumeration fast-forwards to the sealed build's last
    committed URL, resolving the prefix's rejected URLs *without
    dispatching them to workers* — so extension parse work is one pass
    over the post-marker tail, not a re-parse of the whole stream."""

    def _extend_parallel(self, directory, config, generator, fault=None):
        builder = CorpusBuilder(
            config=config, generator_config=generator, batch_size=BATCH
        )
        return ParallelCorpusBuilder(builder, processes=2, fault=fault).build(
            directory, shard_size=SHARDS, extend=True
        )

    @pytest.fixture()
    def parse_budget(self, base_config, grown_config, grow_generator):
        """(tail delta, duplicate-URL slack) of the one-shot serial runs."""
        base_run = build_corpus(
            base_config, generator_config=grow_generator, batch_size=BATCH
        )
        grown_run = build_corpus(
            grown_config, generator_config=grow_generator, batch_size=BATCH
        )
        delta = grown_run.parsing_report.attempted - base_run.parsing_report.attempted
        return delta, grown_run.extraction_report.duplicate_urls

    def test_parallel_extension_parse_work_is_one_pass_over_the_tail(
        self, tmp_path, base_store, grown_config, grow_generator, parse_budget
    ):
        delta, duplicates = parse_budget
        directory = tmp_path / "store"
        shutil.copytree(base_store, directory)
        extension = self._extend_parallel(directory, grown_config, grow_generator)
        assert len(extension.corpus) == GROWN_TABLES
        # Parallel parse work lives in the merged cross-worker stage
        # counters (the sealed base build's checkpoints were cleared at
        # its finalize, so this is exactly the extension's own work).
        # The only admissible excess over the one-shot delta is prefix
        # URLs the base *rejected* resurfacing under post-marker topics
        # — bounded by the one-shot run's duplicate-URL count.
        attempted = extension.pipeline_report.stage("parsing").items_in
        assert 0 < attempted <= delta + duplicates

    def test_resumed_crashed_extension_parse_work_is_o_tail(
        self, tmp_path, base_store, grown_config, grow_generator, fault_injector, parse_budget
    ):
        delta, duplicates = parse_budget
        directory = tmp_path / "store"
        fault = fault_injector(commit_n=1, worker=0, point="before-log-append")
        _crash_parallel_extension(directory, base_store, grown_config, grow_generator, fault)
        # The resume fast-forwards too: with the canonical portion still
        # exactly the sealed base epoch, the crashed attempt plus the
        # resume together parse at most two passes over the tail — never
        # the O(corpus) re-parse of the pre-marker stream.
        resumed = self._extend_parallel(directory, grown_config, grow_generator)
        assert len(resumed.corpus) == GROWN_TABLES
        attempted = resumed.pipeline_report.stage("parsing").items_in
        assert 0 < attempted <= 2 * (delta + duplicates)


class TestPruneOrderingWindow:
    def test_prior_epoch_artifacts_survive_until_engines_republish(
        self, tmp_path, base_store, grown_config, grow_generator
    ):
        """An extension's finalize publishes the new projection but must
        NOT prune the superseded search/completion artifacts: the
        engines delta-refresh *from* them. Only after every engine has
        republished is the prior epoch's state garbage."""
        directory = tmp_path / "store"
        shutil.copytree(base_store, directory)
        old_fingerprint = ShardedJsonlStore(directory).content_fingerprint()

        build_corpus(
            grown_config,
            generator_config=grow_generator,
            batch_size=BATCH,
            store_dir=directory,
            shard_size=SHARDS,
            extend=True,
        )
        new_fingerprint = ShardedJsonlStore(directory).content_fingerprint()
        assert new_fingerprint != old_fingerprint

        artifacts = IndexArtifactStore.for_corpus_dir(directory)
        # The crash window: the store already describes the new epoch,
        # yet the superseded engine artifacts are still on disk — a
        # session starting here can still delta-refresh.
        for name in (SEARCH_ARTIFACT, COMPLETION_ARTIFACT):
            stale = artifacts.load_any(name)
            assert stale is not None, name
            assert stale.fingerprint["corpus"] == old_fingerprint, name
        projection = artifacts.load_any(PROJECTION_ARTIFACT)
        assert projection is not None
        assert projection.fingerprint["corpus"] == new_fingerprint

        session = GitTables.load(directory)
        _ = session.search_engine
        _ = session.completer
        for name in (SEARCH_ARTIFACT, COMPLETION_ARTIFACT):
            refreshed = artifacts.load_any(name)
            assert refreshed.fingerprint["corpus"] == new_fingerprint, name
        # Everything now keys to the grown corpus: nothing left to prune.
        assert artifacts.prune(new_fingerprint) == []


class TestFastForwardSkip:
    def test_marker_drops_unprocessed_rejects_in_prefix(self):
        stage = ResumeSkipStage({"a", "b"}, fast_forward_past="b")
        items = [_extracted(url) for url in ("a", "x", "b", "c", "d")]
        assert [item.url for item in stage.process(iter(items), None)] == ["c", "d"]

    def test_membership_only_without_marker(self):
        stage = ResumeSkipStage({"a"})
        items = [_extracted(url) for url in ("a", "x", "b")]
        assert [item.url for item in stage.process(iter(items), None)] == ["x", "b"]

    def test_membership_still_applies_after_marker(self):
        stage = ResumeSkipStage({"a", "b", "c"}, fast_forward_past="b")
        items = [_extracted(url) for url in ("a", "b", "c", "d")]
        assert [item.url for item in stage.process(iter(items), None)] == ["d"]

    def test_writer_last_source_url(self, tmp_path):
        writer = ShardedCorpusWriter(tmp_path / "store", shard_size=SHARDS)
        assert writer.last_source_url() is None
        writer.extend([_annotated("t000"), _annotated("t001")])
        writer.commit()
        reopened = ShardedCorpusWriter(tmp_path / "store", shard_size=SHARDS)
        assert reopened.last_source_url() == (
            "https://github.com/octo/data/blob/main/t001.csv"
        )
        assert reopened.last_committed_table().table_id == "t001"


class TestSealedPrefixBoundary:
    """The store recognizes prior sealed epochs by manifest fingerprint."""

    def test_boundary_recovers_the_sealed_epoch(self, tmp_path, base_store, extended_reference):
        base_key = ShardedJsonlStore(base_store).content_fingerprint()
        extended = ShardedJsonlStore(extended_reference)
        assert extended.sealed_prefix_boundary(base_key) == BASE_TABLES
        # The current state is not a *prior* epoch, and junk matches nothing.
        assert extended.sealed_prefix_boundary(extended.content_fingerprint()) is None
        assert extended.sealed_prefix_boundary("not-a-fingerprint") is None
        assert extended.sealed_prefix_boundary(None) is None

    def test_boundary_inside_a_partially_filled_shard(self, tmp_path):
        """Extensions fill the sealed epoch's partial final shard before
        rolling new ones, so the seal boundary usually falls *inside* a
        shard; the reconstruction must truncate that shard's entry to
        the lines the earlier epoch had committed."""
        directory = tmp_path / "store"
        writer = ShardedCorpusWriter(directory, shard_size=7)
        writer.extend([_annotated(f"t{i:03d}") for i in range(10)])
        writer.commit()
        writer.finalize()
        base_key = ShardedJsonlStore(directory).content_fingerprint()
        extension = ShardedCorpusWriter(directory, shard_size=7, extend=True)
        extension.begin_extension()
        extension.extend([_annotated(f"t{i:03d}") for i in range(10, 13)])
        extension.commit()
        extension.finalize()
        store = ShardedJsonlStore(directory)
        assert [e["count"] for e in store._manifest["shards"]] == [7, 6]
        assert store.sealed_prefix_boundary(base_key) == 10

    def test_iter_from_matches_full_iteration_tail(self, extended_reference):
        store = ShardedJsonlStore(extended_reference)
        everything = [annotated.table_id for annotated in store]
        tail = [annotated.table_id for annotated in store.iter_from(BASE_TABLES)]
        assert tail == everything[BASE_TABLES:]
        assert list(store.iter_from(len(store))) == []

    def test_iter_schemas_start_skips_prefix_shards(self, extended_reference):
        from repro.core.corpus import GitTablesCorpus

        corpus = GitTablesCorpus(store=ShardedJsonlStore(extended_reference))
        full = list(corpus.iter_schemas())
        assert list(corpus.iter_schemas(start=BASE_TABLES)) == full[BASE_TABLES:]


class TestMetricsEpochSurface:
    def test_snapshot_reports_store_epoch_and_reloads(self):
        metrics = ServiceMetrics()
        metrics.record_worker_store("worker-00", {"epoch": 2, "reloads": 1})
        metrics.record_worker_store("worker-01", {"epoch": 1, "reloads": 0})
        workers = metrics.snapshot(workers={"configured": 2}, store_epoch=2)["workers"]
        assert workers["store_epoch"] == 2
        assert workers["epochs"] == {"worker-00": 2, "worker-01": 1}
        assert workers["artifact_reloads"] == {"worker-00": 1, "worker-01": 0}


class TestBenchRegressionGate:
    @pytest.fixture()
    def bench_module(self):
        root = Path(__file__).resolve().parent.parent
        sys.path.insert(0, str(root))
        try:
            spec = importlib.util.spec_from_file_location(
                "bench_script", root / "scripts" / "bench.py"
            )
            module = importlib.util.module_from_spec(spec)
            spec.loader.exec_module(module)
            yield module
        finally:
            sys.path.remove(str(root))

    def test_compare_flags_only_throughput_regressions(self, bench_module, tmp_path):
        baseline = tmp_path / "BENCH_x.json"
        baseline.write_text(
            json.dumps(
                {
                    "tables_per_second": 100.0,
                    "search_qps": 50.0,
                    "build_seconds": 10.0,
                    "results_equal": True,
                }
            )
        )
        fresh = {
            "tables_per_second": 75.0,  # -25% — beyond the 20% tolerance
            "search_qps": 45.0,  # -10% — within tolerance
            "build_seconds": 99.0,  # absolute seconds are never gated
            "results_equal": False,  # booleans are never gated
        }
        regressions = bench_module.compare_against_baseline(baseline, fresh)
        assert len(regressions) == 1
        assert regressions[0].startswith("tables_per_second")

    def test_compare_passes_within_tolerance(self, bench_module, tmp_path):
        baseline = tmp_path / "BENCH_x.json"
        baseline.write_text(json.dumps({"tables_per_second": 100.0}))
        assert bench_module.compare_against_baseline(baseline, {"tables_per_second": 90.0}) == []
