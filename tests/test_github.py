"""Unit tests for the GitHub simulator (repro.github)."""

import pytest

from repro.config import GITHUB_MAX_FILE_SIZE
from repro.dataframe.parser import parse_csv
from repro.errors import CSVParseError, RateLimitExceeded, ResultWindowExceeded, SearchQueryError
from repro.github.client import GitHubClient, RateLimiter
from repro.github.content import ContentGenerator, GeneratorConfig, TABLE_TEMPLATES
from repro.github.instance import build_instance
from repro.github.licenses import LICENSES, is_permissive, license_by_key
from repro.github.models import RepoFile, Repository
from repro.github.search import SearchAPI, SearchQuery


class TestLicenses:
    def test_catalogue_contains_mit(self):
        assert license_by_key("mit").permissive

    def test_non_permissive_licenses_exist(self):
        assert any(not license.permissive for license in LICENSES)

    def test_is_permissive_accepts_objects_keys_and_none(self):
        assert is_permissive("apache-2.0")
        assert is_permissive(license_by_key("mit"))
        assert not is_permissive(None)
        assert not is_permissive("proprietary")
        assert not is_permissive("not-a-license")


class TestModels:
    def test_file_size_and_extension(self):
        file = RepoFile(path="data/x.CSV", content="a,b\n1,2\n")
        assert file.size_bytes == len("a,b\n1,2\n")
        assert file.extension == "csv"

    def test_repository_url(self):
        repo = Repository(owner="octo", name="data")
        file = RepoFile(path="d.csv", content="a\n")
        assert repo.url_for(file) == "https://github.com/octo/data/blob/main/d.csv"


class TestContentGenerator:
    def test_repository_count(self):
        generator = ContentGenerator(GeneratorConfig(n_repositories=40, seed=1))
        repos = generator.generate_repositories()
        assert len(repos) == 40

    def test_forks_reference_their_source(self):
        generator = ContentGenerator(GeneratorConfig(n_repositories=60, fork_fraction=0.2, seed=2))
        repos = generator.generate_repositories()
        forks = [repo for repo in repos if repo.is_fork]
        assert forks, "expected some forked repositories"
        originals = {repo.full_name for repo in repos if not repo.is_fork}
        assert all(fork.forked_from in originals for fork in forks)

    def test_generated_files_are_mostly_parseable(self):
        instance = build_instance(GeneratorConfig(n_repositories=60, seed=3))
        parsed = 0
        failed = 0
        for _, file in instance.iter_files():
            try:
                parse_csv(file.content)
                parsed += 1
            except CSVParseError:
                failed += 1
        assert parsed / (parsed + failed) > 0.9

    def test_generation_is_deterministic(self):
        config = GeneratorConfig(n_repositories=20, seed=4)
        first = build_instance(config)
        second = build_instance(config)
        assert first.file_count == second.file_count
        url = next(iter(first.iter_files()))[0].url_for(next(iter(first.iter_files()))[1])
        assert first.raw_content(url) == second.raw_content(url)

    def test_templates_cover_expected_domains(self):
        keys = {template.key for template in TABLE_TEMPLATES}
        assert {"biology", "orders", "employees", "sensor", "census"} <= keys

    def test_scaled_to_files(self):
        config = GeneratorConfig().scaled_to_files(700)
        assert config.n_repositories == int(700 / GeneratorConfig().mean_files_per_repo)


class TestInstance:
    def test_file_lookup_by_url(self, github_instance):
        repository, file = next(iter(github_instance.iter_files()))
        url = repository.url_for(file)
        assert github_instance.raw_content(url) == file.content
        assert github_instance.file_at(url)[1] is file

    def test_unknown_url_raises(self, github_instance):
        with pytest.raises(KeyError):
            github_instance.raw_content("https://github.com/nobody/none/blob/main/x.csv")

    def test_repository_lookup(self, github_instance):
        repository, _ = next(iter(github_instance.iter_files()))
        assert github_instance.repository(repository.full_name) is repository
        assert github_instance.repository("nobody/none") is None

    def test_csv_file_count(self, github_instance):
        assert github_instance.csv_file_count() <= github_instance.file_count


class TestSearchQuery:
    def test_parse_full_query(self):
        query = SearchQuery.parse('q="id" extension:csv size:50..100 fork:false')
        assert query.term == "id"
        assert query.extension == "csv"
        assert (query.size_min, query.size_max) == (50, 100)
        assert not query.include_forks

    def test_round_trip_to_string(self):
        query = SearchQuery(term="object", size_min=0, size_max=10)
        assert SearchQuery.parse(query.to_string()) == query

    def test_empty_term_rejected(self):
        with pytest.raises(SearchQueryError):
            SearchQuery(term="  ")

    def test_inconsistent_size_range_rejected(self):
        with pytest.raises(SearchQueryError):
            SearchQuery(term="id", size_min=10, size_max=None)
        with pytest.raises(SearchQueryError):
            SearchQuery(term="id", size_min=10, size_max=5)

    def test_with_size_range(self):
        segmented = SearchQuery(term="id").with_size_range(0, 99)
        assert (segmented.size_min, segmented.size_max) == (0, 99)


class TestSearchAPI:
    def test_id_query_returns_results(self, github_instance):
        api = SearchAPI(github_instance)
        response = api.search(SearchQuery(term="id"))
        assert response.total_count > 0
        assert all(item.url.startswith("https://github.com/") for item in response.items)

    def test_size_qualifier_filters(self, github_instance):
        api = SearchAPI(github_instance)
        response = api.search(SearchQuery(term="id", size_min=0, size_max=500))
        assert all(item.size_bytes <= 500 for item in response.items)

    def test_large_files_never_returned(self, github_instance):
        api = SearchAPI(github_instance)
        response = api.search(SearchQuery(term="id"))
        assert all(item.size_bytes <= GITHUB_MAX_FILE_SIZE for item in response.items)

    def test_fork_exclusion_reduces_results(self, github_instance):
        api = SearchAPI(github_instance)
        with_forks = api.total_count(SearchQuery(term="id", include_forks=True))
        without_forks = api.total_count(SearchQuery(term="id", include_forks=False))
        assert without_forks <= with_forks

    def test_result_window_is_enforced(self, github_instance):
        api = SearchAPI(github_instance, result_window=10, page_size=5)
        query = SearchQuery(term="id")
        total = api.total_count(query)
        if total > 10:
            response = api.search(query, page=1)
            assert response.incomplete_results
            with pytest.raises(ResultWindowExceeded):
                api.search(query, page=4)

    def test_pagination_traverses_window(self, github_instance):
        api = SearchAPI(github_instance, result_window=30, page_size=10)
        items = api.search_all_pages(SearchQuery(term="id"))
        assert len(items) <= 30
        assert len({item.url for item in items}) == len(items)

    def test_invalid_page_rejected(self, github_instance):
        api = SearchAPI(github_instance)
        with pytest.raises(SearchQueryError):
            api.search(SearchQuery(term="id"), page=0)


class TestRateLimiter:
    def test_allows_up_to_budget(self):
        limiter = RateLimiter(requests_per_window=3, window_seconds=60)
        for _ in range(3):
            limiter.check()
        with pytest.raises(RateLimitExceeded):
            limiter.check()

    def test_budget_recovers_after_window(self):
        limiter = RateLimiter(requests_per_window=2, window_seconds=10)
        limiter.check()
        limiter.check()
        assert limiter.wait_time() > 0
        limiter.advance(11)
        assert limiter.wait_time() == 0
        limiter.check()

    def test_cannot_move_clock_backwards(self):
        with pytest.raises(ValueError):
            RateLimiter().advance(-1)


class TestGitHubClient:
    def test_client_paces_itself_instead_of_failing(self, github_instance):
        client = GitHubClient(
            github_instance,
            rate_limiter=RateLimiter(requests_per_window=5, window_seconds=60),
            seconds_per_request=1.0,
        )
        query = SearchQuery(term="id")
        for _ in range(12):
            client.total_count(query)
        assert client.request_count == 12
        assert client.total_wait_seconds > 0

    def test_raw_content_roundtrip(self, github_instance):
        client = GitHubClient(github_instance)
        repository, file = next(iter(github_instance.iter_files()))
        assert client.raw_content(repository.url_for(file)) == file.content
