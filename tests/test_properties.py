"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._rand import derive_seed, stable_hash
from repro.config import AnnotationConfig
from repro.core.annotation import AnnotationPipeline
from repro.dataframe.dtypes import AtomicType, infer_column_type, infer_value_type
from repro.dataframe.io import table_to_csv
from repro.dataframe.parser import parse_csv
from repro.dataframe.table import Table
from repro.embeddings.fasttext import FastTextModel
from repro.embeddings.sentence import SentenceEncoder
from repro.embeddings.similarity import NearestNeighbourIndex, cosine_similarity
from repro.ontology.types import normalize_label

# Cell text without characters that require CSV quoting and without
# missing-value tokens; used for round-trip properties.
_plain_cell = st.text(
    alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd"), max_codepoint=0x7F),
    min_size=1,
    max_size=12,
).filter(lambda s: s.strip() and s.strip().lower() not in {"na", "nan", "null", "none"})

_header_name = st.text(
    alphabet=st.characters(whitelist_categories=("Ll",), max_codepoint=0x7F),
    min_size=1,
    max_size=10,
)

_word = st.text(
    alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd"), max_codepoint=0x7F),
    min_size=1,
    max_size=16,
)


class TestCSVRoundTripProperties:
    # Single-column CSV files contain no delimiter at all, so the sniffer
    # cannot (and should not) guess one; round-trip properties therefore
    # start at two columns.
    @given(
        header=st.lists(_header_name, min_size=2, max_size=6, unique=True),
        n_rows=st.integers(min_value=1, max_value=8),
        data=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_serialise_then_parse_preserves_shape_and_values(self, header, n_rows, data):
        rows = [
            [data.draw(_plain_cell) for _ in header]
            for _ in range(n_rows)
        ]
        table = Table(header, rows)
        parsed, _ = parse_csv(table_to_csv(table))
        assert parsed.num_rows == table.num_rows
        assert parsed.num_columns == table.num_columns
        assert [list(row) for row in parsed.rows] == [list(row) for row in table.rows]

    @given(
        header=st.lists(_header_name, min_size=2, max_size=5, unique=True),
        n_rows=st.integers(min_value=1, max_value=5),
        data=st.data(),
    )
    @settings(max_examples=25, deadline=None)
    def test_cells_containing_delimiters_survive_round_trip(self, header, n_rows, data):
        rows = [
            [data.draw(_plain_cell) + ", extra" for _ in header]
            for _ in range(n_rows)
        ]
        table = Table(header, rows)
        parsed, _ = parse_csv(table_to_csv(table))
        assert parsed.rows == table.rows


class TestDtypeProperties:
    @given(st.lists(st.integers(min_value=-10**9, max_value=10**9), min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_integer_columns_infer_numeric(self, values):
        inferred = infer_column_type([str(value) for value in values])
        assert inferred.is_numeric

    @given(st.lists(st.floats(allow_nan=False, allow_infinity=False, width=32), min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_float_columns_infer_numeric(self, values):
        inferred = infer_column_type([repr(float(value)) for value in values])
        assert inferred.is_numeric

    @given(_word)
    @settings(max_examples=60, deadline=None)
    def test_every_value_gets_exactly_one_atomic_type(self, value):
        assert infer_value_type(value) in AtomicType

    @given(st.lists(_word, min_size=1, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_column_type_is_stable_under_repetition(self, values):
        assert infer_column_type(values) == infer_column_type(values * 2)


class TestNormalizationProperties:
    @given(_word)
    @settings(max_examples=60, deadline=None)
    def test_normalize_is_idempotent(self, text):
        once = normalize_label(text)
        assert normalize_label(once) == once

    @given(_word)
    @settings(max_examples=60, deadline=None)
    def test_normalize_is_case_insensitive(self, text):
        assert normalize_label(text.upper()) == normalize_label(text.lower())

    @given(st.lists(_word, min_size=1, max_size=4))
    @settings(max_examples=40, deadline=None)
    def test_separator_choice_does_not_matter(self, tokens):
        with_underscores = "_".join(tokens)
        with_hyphens = "-".join(tokens)
        assert normalize_label(with_underscores) == normalize_label(with_hyphens)


class TestEmbeddingProperties:
    @given(_word)
    @settings(max_examples=40, deadline=None)
    def test_embedding_is_deterministic(self, text):
        model = FastTextModel(dim=32)
        assert np.allclose(model.embed(text), model.embed(text))

    @given(_word)
    @settings(max_examples=40, deadline=None)
    def test_self_similarity_is_one_for_nonempty_tokens(self, text):
        model = FastTextModel(dim=32)
        if model.embed(text).any():
            assert model.similarity(text, text) > 0.999

    @given(_word, _word)
    @settings(max_examples=40, deadline=None)
    def test_similarity_is_symmetric_and_bounded(self, left, right):
        model = FastTextModel(dim=32)
        forward = model.similarity(left, right)
        backward = model.similarity(right, left)
        assert abs(forward - backward) < 1e-9
        assert -1.0 - 1e-9 <= forward <= 1.0 + 1e-9

    @given(st.lists(_word, min_size=1, max_size=5))
    @settings(max_examples=30, deadline=None)
    def test_schema_embeddings_are_unit_or_zero(self, attributes):
        encoder = SentenceEncoder(dim=32)
        vector = encoder.embed_schema(attributes)
        norm = np.linalg.norm(vector)
        assert norm == 0.0 or abs(norm - 1.0) < 1e-9

    @given(_word, _word)
    @settings(max_examples=30, deadline=None)
    def test_cosine_similarity_bounds(self, left, right):
        model = FastTextModel(dim=16)
        similarity = cosine_similarity(model.embed(left), model.embed(right))
        assert -1.0 - 1e-9 <= similarity <= 1.0 + 1e-9


#: Column-name alphabet mixing letters, digits, separators and spaces so
#: the strategies hit the skip rules (digits, empty, normalisation).
_column_name = st.text(
    alphabet=st.sampled_from(list("abcdefgh_- 0123XY")), min_size=0, max_size=14
)

#: One shared pipeline: building one embeds every ontology label.
_BATCH_PIPELINE = AnnotationPipeline(AnnotationConfig())


class TestBatchAnnotationProperties:
    @given(
        headers=st.lists(
            st.lists(_column_name, min_size=1, max_size=6), min_size=1, max_size=4
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_annotate_batch_equals_per_column_annotate(self, headers):
        tables = [
            Table(
                header=header,
                rows=[["x"] * len(header)],
                table_id=f"prop-{i}",
            )
            for i, header in enumerate(headers)
        ]
        batched = _BATCH_PIPELINE.annotate_batch(tables)
        assert batched == [_BATCH_PIPELINE.annotate(table) for table in tables]
        for table, annotations in zip(tables, batched):
            for group in (_BATCH_PIPELINE.syntactic, _BATCH_PIPELINE.semantic):
                for annotator in group.values():
                    expected = [
                        annotation
                        for annotation in (
                            annotator.annotate_column(name) for name in table.header
                        )
                        if annotation is not None
                    ]
                    produced = [
                        annotation
                        for annotation in annotations.for_method(
                            annotator.method, annotator.ontology.name
                        )
                    ]
                    assert produced == expected


class TestQueryBatchProperties:
    @given(
        n_labels=st.integers(min_value=0, max_value=12),
        n_queries=st.integers(min_value=0, max_value=8),
        top_k=st.integers(min_value=1, max_value=15),
        seed=st.integers(min_value=0, max_value=2**16),
        zero_rows=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_query_batch_equals_row_wise_query(
        self, n_labels, n_queries, top_k, seed, zero_rows
    ):
        rng = np.random.default_rng(seed)
        vectors = rng.standard_normal((n_labels, 8))
        index = NearestNeighbourIndex([f"l{i}" for i in range(n_labels)], vectors)
        queries = rng.standard_normal((n_queries, 8))
        if zero_rows and n_queries:
            queries[0] = 0.0
        batched = index.query_batch(queries, top_k=top_k)
        assert batched == [index.query(queries[i], top_k=top_k) for i in range(n_queries)]
        for row in batched:
            assert len(row) == min(top_k, n_labels)
            scores = [score for _, score in row]
            assert scores == sorted(scores, reverse=True)


class TestSeedingProperties:
    @given(st.text(max_size=20), st.text(max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_stable_hash_is_deterministic(self, a, b):
        assert stable_hash(a, b) == stable_hash(a, b)

    @given(st.integers(min_value=0, max_value=2**31 - 1), st.text(max_size=10))
    @settings(max_examples=50, deadline=None)
    def test_derived_seeds_are_32_bit(self, seed, namespace):
        derived = derive_seed(seed, namespace)
        assert 0 <= derived < 2**32


class TestTableInvariants:
    @given(
        header=st.lists(_header_name, min_size=1, max_size=6, unique=True),
        n_rows=st.integers(min_value=0, max_value=10),
        data=st.data(),
    )
    @settings(max_examples=30, deadline=None)
    def test_columns_are_consistent_with_rows(self, header, n_rows, data):
        rows = [[data.draw(_plain_cell) for _ in header] for _ in range(n_rows)]
        table = Table(header, rows)
        assert len(table.columns) == len(header)
        for position, column in enumerate(table.columns):
            assert list(column.values) == [row[position] for row in rows]
        assert table.num_cells == table.num_rows * table.num_columns
