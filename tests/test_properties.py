"""Property-based tests (hypothesis) on core data structures and invariants."""

import json
from pathlib import Path

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._rand import derive_seed, stable_hash
from repro.config import AnnotationConfig
from repro.core.annotation import AnnotationPipeline
from repro.dataframe.dtypes import AtomicType, infer_column_type, infer_value_type
from repro.dataframe.io import table_to_csv
from repro.dataframe.parser import parse_csv
from repro.dataframe.table import Table
from repro.embeddings.fasttext import FastTextModel
from repro.embeddings.sentence import SentenceEncoder
from repro.embeddings.similarity import NearestNeighbourIndex, cosine_similarity
from repro.ontology.types import normalize_label

# Cell text without characters that require CSV quoting and without
# missing-value tokens; used for round-trip properties.
_plain_cell = st.text(
    alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd"), max_codepoint=0x7F),
    min_size=1,
    max_size=12,
).filter(lambda s: s.strip() and s.strip().lower() not in {"na", "nan", "null", "none"})

_header_name = st.text(
    alphabet=st.characters(whitelist_categories=("Ll",), max_codepoint=0x7F),
    min_size=1,
    max_size=10,
)

_word = st.text(
    alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd"), max_codepoint=0x7F),
    min_size=1,
    max_size=16,
)


class TestCSVRoundTripProperties:
    # Single-column CSV files contain no delimiter at all, so the sniffer
    # cannot (and should not) guess one; round-trip properties therefore
    # start at two columns.
    @given(
        header=st.lists(_header_name, min_size=2, max_size=6, unique=True),
        n_rows=st.integers(min_value=1, max_value=8),
        data=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_serialise_then_parse_preserves_shape_and_values(self, header, n_rows, data):
        rows = [
            [data.draw(_plain_cell) for _ in header]
            for _ in range(n_rows)
        ]
        table = Table(header, rows)
        parsed, _ = parse_csv(table_to_csv(table))
        assert parsed.num_rows == table.num_rows
        assert parsed.num_columns == table.num_columns
        assert [list(row) for row in parsed.rows] == [list(row) for row in table.rows]

    @given(
        header=st.lists(_header_name, min_size=2, max_size=5, unique=True),
        n_rows=st.integers(min_value=1, max_value=5),
        data=st.data(),
    )
    @settings(max_examples=25, deadline=None)
    def test_cells_containing_delimiters_survive_round_trip(self, header, n_rows, data):
        rows = [
            [data.draw(_plain_cell) + ", extra" for _ in header]
            for _ in range(n_rows)
        ]
        table = Table(header, rows)
        parsed, _ = parse_csv(table_to_csv(table))
        assert parsed.rows == table.rows


class TestDtypeProperties:
    @given(st.lists(st.integers(min_value=-10**9, max_value=10**9), min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_integer_columns_infer_numeric(self, values):
        inferred = infer_column_type([str(value) for value in values])
        assert inferred.is_numeric

    @given(st.lists(st.floats(allow_nan=False, allow_infinity=False, width=32), min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_float_columns_infer_numeric(self, values):
        inferred = infer_column_type([repr(float(value)) for value in values])
        assert inferred.is_numeric

    @given(_word)
    @settings(max_examples=60, deadline=None)
    def test_every_value_gets_exactly_one_atomic_type(self, value):
        assert infer_value_type(value) in AtomicType

    @given(st.lists(_word, min_size=1, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_column_type_is_stable_under_repetition(self, values):
        assert infer_column_type(values) == infer_column_type(values * 2)


class TestNormalizationProperties:
    @given(_word)
    @settings(max_examples=60, deadline=None)
    def test_normalize_is_idempotent(self, text):
        once = normalize_label(text)
        assert normalize_label(once) == once

    @given(_word)
    @settings(max_examples=60, deadline=None)
    def test_normalize_is_case_insensitive(self, text):
        assert normalize_label(text.upper()) == normalize_label(text.lower())

    @given(st.lists(_word, min_size=1, max_size=4))
    @settings(max_examples=40, deadline=None)
    def test_separator_choice_does_not_matter(self, tokens):
        with_underscores = "_".join(tokens)
        with_hyphens = "-".join(tokens)
        assert normalize_label(with_underscores) == normalize_label(with_hyphens)


class TestEmbeddingProperties:
    @given(_word)
    @settings(max_examples=40, deadline=None)
    def test_embedding_is_deterministic(self, text):
        model = FastTextModel(dim=32)
        assert np.allclose(model.embed(text), model.embed(text))

    @given(_word)
    @settings(max_examples=40, deadline=None)
    def test_self_similarity_is_one_for_nonempty_tokens(self, text):
        model = FastTextModel(dim=32)
        if model.embed(text).any():
            assert model.similarity(text, text) > 0.999

    @given(_word, _word)
    @settings(max_examples=40, deadline=None)
    def test_similarity_is_symmetric_and_bounded(self, left, right):
        model = FastTextModel(dim=32)
        forward = model.similarity(left, right)
        backward = model.similarity(right, left)
        assert abs(forward - backward) < 1e-9
        assert -1.0 - 1e-9 <= forward <= 1.0 + 1e-9

    @given(st.lists(_word, min_size=1, max_size=5))
    @settings(max_examples=30, deadline=None)
    def test_schema_embeddings_are_unit_or_zero(self, attributes):
        encoder = SentenceEncoder(dim=32)
        vector = encoder.embed_schema(attributes)
        norm = np.linalg.norm(vector)
        assert norm == 0.0 or abs(norm - 1.0) < 1e-9

    @given(_word, _word)
    @settings(max_examples=30, deadline=None)
    def test_cosine_similarity_bounds(self, left, right):
        model = FastTextModel(dim=16)
        similarity = cosine_similarity(model.embed(left), model.embed(right))
        assert -1.0 - 1e-9 <= similarity <= 1.0 + 1e-9


#: Column-name alphabet mixing letters, digits, separators and spaces so
#: the strategies hit the skip rules (digits, empty, normalisation).
_column_name = st.text(
    alphabet=st.sampled_from(list("abcdefgh_- 0123XY")), min_size=0, max_size=14
)

#: One shared pipeline: building one embeds every ontology label.
_BATCH_PIPELINE = AnnotationPipeline(AnnotationConfig())


class TestBatchAnnotationProperties:
    @given(
        headers=st.lists(
            st.lists(_column_name, min_size=1, max_size=6), min_size=1, max_size=4
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_annotate_batch_equals_per_column_annotate(self, headers):
        tables = [
            Table(
                header=header,
                rows=[["x"] * len(header)],
                table_id=f"prop-{i}",
            )
            for i, header in enumerate(headers)
        ]
        batched = _BATCH_PIPELINE.annotate_batch(tables)
        assert batched == [_BATCH_PIPELINE.annotate(table) for table in tables]
        for table, annotations in zip(tables, batched):
            for group in (_BATCH_PIPELINE.syntactic, _BATCH_PIPELINE.semantic):
                for annotator in group.values():
                    expected = [
                        annotation
                        for annotation in (
                            annotator.annotate_column(name) for name in table.header
                        )
                        if annotation is not None
                    ]
                    produced = [
                        annotation
                        for annotation in annotations.for_method(
                            annotator.method, annotator.ontology.name
                        )
                    ]
                    assert produced == expected


class TestQueryBatchProperties:
    @given(
        n_labels=st.integers(min_value=0, max_value=12),
        n_queries=st.integers(min_value=0, max_value=8),
        top_k=st.integers(min_value=1, max_value=15),
        seed=st.integers(min_value=0, max_value=2**16),
        zero_rows=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_query_batch_equals_row_wise_query(
        self, n_labels, n_queries, top_k, seed, zero_rows
    ):
        rng = np.random.default_rng(seed)
        vectors = rng.standard_normal((n_labels, 8))
        index = NearestNeighbourIndex([f"l{i}" for i in range(n_labels)], vectors)
        queries = rng.standard_normal((n_queries, 8))
        if zero_rows and n_queries:
            queries[0] = 0.0
        batched = index.query_batch(queries, top_k=top_k)
        assert batched == [index.query(queries[i], top_k=top_k) for i in range(n_queries)]
        for row in batched:
            assert len(row) == min(top_k, n_labels)
            scores = [score for _, score in row]
            assert scores == sorted(scores, reverse=True)


_SERVING_STATE: dict = {}


def _serving_state(corpus):
    """One session + in-process service shared across hypothesis examples."""
    if "service" not in _SERVING_STATE:
        from repro import GitTables

        session = GitTables.from_corpus(corpus)
        _SERVING_STATE["session"] = session
        _SERVING_STATE["service"] = session.serve(workers=0, max_wait_ms=5.0)
    return _SERVING_STATE["session"], _SERVING_STATE["service"]


class TestServingBitIdentityProperties:
    """Micro-batched serving must be bit-identical to single-shot calls.

    The batcher may coalesce the submitted queries into any window
    split; whatever the grouping, each response must equal the result
    of calling the session directly with the same arguments.
    """

    @given(
        queries=st.lists(_word, min_size=1, max_size=6),
        k=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=25, deadline=None)
    def test_batched_search_equals_single_shot(self, gittables_corpus, queries, k):
        session, service = _serving_state(gittables_corpus)
        futures = [service.submit_search(query, k=k) for query in queries]
        results = [future.result(timeout=60) for future in futures]
        assert results == [session.search(query, k=k) for query in queries]

    @given(
        prefix=st.lists(_header_name, min_size=1, max_size=4),
        k=st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=15, deadline=None)
    def test_batched_completion_equals_single_shot(self, gittables_corpus, prefix, k):
        session, service = _serving_state(gittables_corpus)
        served = service.complete_schema(prefix, k=k)
        assert served == session.complete_schema(prefix, k=k)


class TestSeedingProperties:
    @given(st.text(max_size=20), st.text(max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_stable_hash_is_deterministic(self, a, b):
        assert stable_hash(a, b) == stable_hash(a, b)

    @given(st.integers(min_value=0, max_value=2**31 - 1), st.text(max_size=10))
    @settings(max_examples=50, deadline=None)
    def test_derived_seeds_are_32_bit(self, seed, namespace):
        derived = derive_seed(seed, namespace)
        assert 0 <= derived < 2**32


class TestTableInvariants:
    @given(
        header=st.lists(_header_name, min_size=1, max_size=6, unique=True),
        n_rows=st.integers(min_value=0, max_value=10),
        data=st.data(),
    )
    @settings(max_examples=30, deadline=None)
    def test_columns_are_consistent_with_rows(self, header, n_rows, data):
        rows = [[data.draw(_plain_cell) for _ in header] for _ in range(n_rows)]
        table = Table(header, rows)
        assert len(table.columns) == len(header)
        for position, column in enumerate(table.columns):
            assert list(column.values) == [row[position] for row in rows]
        assert table.num_cells == table.num_rows * table.num_columns


class TestManifestLogMergeProperties:
    """Per-worker delta-log merging (process-parallel builds).

    Workers append commit records to disjoint ``manifest-<k>.log`` files;
    the coordinator merges them in deterministic (worker id, commit seq)
    order. The properties: *any* interleaving of worker commits merges
    to the identical manifest; the merged statistics equal a serial
    accumulation over the same tables; every table location in the
    merged manifest resolves to the right bytes; and a torn final record
    in one worker's log is invisible to every other worker.
    """

    SHARD_SIZE = 3

    @staticmethod
    def _table(index: int):
        from repro.core.annotation import TableAnnotations
        from repro.core.corpus import AnnotatedTable

        table = Table(
            ["id", "status", "note"][: 2 + index % 2],
            [["1", "OPEN", "x"][: 2 + index % 2]] * (1 + index % 3),
            table_id=f"t{index:03d}",
        )
        return AnnotatedTable(
            table=table,
            annotations=TableAnnotations(table_id=table.table_id),
            topic=("order", "organism", "vehicle")[index % 3],
            repository=f"octo/repo{index % 2}",
            source_url=f"https://github.com/octo/data/blob/main/t{index}.csv",
            license_key="mit",
        )

    def _plan(self, data, n_workers: int, n_tables: int):
        """Draw per-worker commit chunks plus a legal interleaving."""
        owners = [
            data.draw(st.integers(min_value=0, max_value=n_workers - 1))
            for _ in range(n_tables)
        ]
        per_worker: dict[int, list[int]] = {w: [] for w in range(n_workers)}
        for index, owner in enumerate(owners):
            per_worker[owner].append(index)
        commits: dict[int, list[list[int]]] = {}
        for worker, indices in per_worker.items():
            chunks: list[list[int]] = []
            cursor = 0
            while cursor < len(indices):
                size = data.draw(st.integers(min_value=1, max_value=4))
                chunks.append(indices[cursor : cursor + size])
                cursor += size
            commits[worker] = chunks
        return commits

    def _draw_interleaving(self, data, commits):
        remaining = {worker: list(chunks) for worker, chunks in commits.items()}
        order: list[tuple[int, list[int]]] = []
        while any(remaining.values()):
            ready = sorted(worker for worker, chunks in remaining.items() if chunks)
            worker = data.draw(st.sampled_from(ready))
            order.append((worker, remaining[worker].pop(0)))
        return order

    def _execute(self, directory, order):
        from repro.storage.parallel import WorkerShardWriter

        writers: dict[int, WorkerShardWriter] = {}
        for worker, chunk in order:
            writer = writers.get(worker)
            if writer is None:
                writer = writers[worker] = WorkerShardWriter(
                    directory, worker=worker, shard_size=self.SHARD_SIZE
                )
            tables = [self._table(index) for index in chunk]
            writer.extend(tables)
            writer.commit(
                done=chunk, indices={t.source_url: i for t, i in zip(tables, chunk)}
            )
        for writer in writers.values():
            writer.close()

    def _merged(self, directory):
        from repro.storage.parallel import _read_store_state, merge_worker_manifests

        state = _read_store_state(Path(directory))
        return merge_worker_manifests(state, shard_size=self.SHARD_SIZE)

    @given(data=st.data())
    @settings(max_examples=15, deadline=None)
    def test_merge_is_invariant_under_commit_interleaving(self, data, tmp_path_factory):
        n_workers = data.draw(st.integers(min_value=1, max_value=3))
        n_tables = data.draw(st.integers(min_value=0, max_value=14))
        commits = self._plan(data, n_workers, n_tables)
        manifests = []
        for _attempt in range(2):
            directory = tmp_path_factory.mktemp("merge")
            order = self._draw_interleaving(data, commits)
            self._execute(directory, order)
            manifests.append(self._merged(directory))
        # Identical bytes-in-the-making, ordering included.
        assert json.dumps(manifests[0], sort_keys=False) == json.dumps(
            manifests[1], sort_keys=False
        )
        merged = manifests[0]
        assert set(merged["tables"]) == {f"t{i:03d}" for i in range(n_tables)}
        # Statistics equal a serial accumulation over the same tables.
        expected = {"total_rows": 0, "total_columns": 0, "topics": {}, "repositories": {}}
        for index in range(n_tables):
            annotated = self._table(index)
            expected["total_rows"] += annotated.table.num_rows
            expected["total_columns"] += annotated.table.num_columns
            expected["topics"][annotated.topic] = (
                expected["topics"].get(annotated.topic, 0) + 1
            )
            expected["repositories"][annotated.repository] = (
                expected["repositories"].get(annotated.repository, 0) + 1
            )
        assert merged["stats"] == expected
        # Shard states are consistent: counts sum to the table count and
        # byte counts match the files on disk.
        assert sum(entry["count"] for entry in merged["shards"]) == n_tables

    @given(data=st.data())
    @settings(max_examples=15, deadline=None)
    def test_merged_locations_resolve_to_the_right_tables(self, data, tmp_path_factory):
        from repro.storage import ShardedJsonlStore
        from repro.storage.sharded import _write_manifest

        n_workers = data.draw(st.integers(min_value=1, max_value=3))
        n_tables = data.draw(st.integers(min_value=1, max_value=12))
        commits = self._plan(data, n_workers, n_tables)
        directory = tmp_path_factory.mktemp("resolve")
        self._execute(directory, self._draw_interleaving(data, commits))
        merged = self._merged(directory)
        _write_manifest(directory, merged)
        store = ShardedJsonlStore(directory)
        for index in range(n_tables):
            annotated = store.get(f"t{index:03d}")
            assert annotated is not None
            assert annotated.to_dict() == self._table(index).to_dict()

    @given(data=st.data())
    @settings(max_examples=15, deadline=None)
    def test_torn_final_record_only_affects_its_worker(self, data, tmp_path_factory):
        from repro.storage.parallel import _read_store_state, worker_log_filename

        n_workers = data.draw(st.integers(min_value=2, max_value=3))
        n_tables = data.draw(st.integers(min_value=2, max_value=12))
        commits = self._plan(data, n_workers, n_tables)
        directory = tmp_path_factory.mktemp("torn")
        self._execute(directory, self._draw_interleaving(data, commits))
        intact = _read_store_state(Path(directory))
        victims = [worker for worker, chunks in commits.items() if chunks]
        if not victims:
            return
        victim = data.draw(st.sampled_from(sorted(victims)))
        log_path = Path(directory) / worker_log_filename(victim)
        lines = log_path.read_bytes().splitlines(keepends=True)
        cut = data.draw(st.integers(min_value=1, max_value=max(1, len(lines[-1]) - 1)))
        log_path.write_bytes(b"".join(lines[:-1]) + lines[-1][:cut])
        torn = _read_store_state(Path(directory))
        # Every other worker's state is untouched...
        for worker in torn.worker_states:
            if worker != victim:
                assert torn.worker_states[worker] == intact.worker_states[worker]
                assert torn.worker_done[worker] == intact.worker_done[worker]
        # ...and the victim lost exactly its final record.
        lost = commits[victim][-1]
        assert torn.worker_done[victim] == intact.worker_done[victim] - set(lost)
        surviving = set(torn.worker_states[victim]["tables"])
        assert surviving == set(intact.worker_states[victim]["tables"]) - {
            f"t{i:03d}" for i in lost
        }


class TestTopKSelectionProperties:
    """The vectorized top-k kernel against the per-row reference.

    ``top_k_ids_scores`` replaced a per-query Python loop (argpartition
    + per-row lexsort). The property: for any similarity matrix — ties,
    duplicates, negatives, zero rows included — the batched single-
    lexsort kernel returns byte-for-byte what the loop returned.
    """

    @staticmethod
    def _reference(similarities: np.ndarray, top_k: int) -> list:
        """The pre-vectorization per-row selection, verbatim semantics."""
        n_queries, n = similarities.shape
        if n == 0:
            return [[] for _ in range(n_queries)]
        top_k = min(top_k, n)
        if top_k == 1:
            best = np.argmax(similarities, axis=1)
            return [
                [(int(index), float(row[index]))]
                for index, row in zip(best, similarities)
            ]
        if top_k < n:
            candidates = np.argpartition(-similarities, top_k - 1, axis=1)[:, :top_k]
        else:
            candidates = np.tile(np.arange(n), (n_queries, 1))
        results = []
        for row, row_candidates in zip(similarities, candidates):
            scores = row[row_candidates]
            order = np.lexsort((row_candidates, -scores))
            results.append([(int(row_candidates[i]), float(scores[i])) for i in order])
        return results

    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_vectorized_selection_matches_per_row_reference(self, data):
        from repro.embeddings.similarity import top_k_ids_scores

        n_queries = data.draw(st.integers(min_value=1, max_value=6))
        n = data.draw(st.integers(min_value=1, max_value=12))
        top_k = data.draw(st.integers(min_value=1, max_value=15))
        # Coarse values on purpose: quantizing to eighths forces score
        # ties, the regime where tie-break order actually matters.
        cells = data.draw(
            st.lists(
                st.integers(min_value=-8, max_value=8),
                min_size=n_queries * n,
                max_size=n_queries * n,
            )
        )
        similarities = np.array(cells, dtype=float).reshape(n_queries, n) / 8.0
        assert top_k_ids_scores(similarities, min(top_k, n)) == self._reference(
            similarities, top_k
        )

    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_partitioned_rerank_scores_match_flat_bitwise(self, data):
        from repro.config import IndexConfig
        from repro.embeddings.ann import PartitionedIndex

        rng = np.random.default_rng(data.draw(st.integers(min_value=0, max_value=2**31)))
        n = data.draw(st.integers(min_value=1, max_value=40))
        dim = data.draw(st.integers(min_value=2, max_value=8))
        n_partitions = data.draw(st.integers(min_value=1, max_value=8))
        nprobe = data.draw(st.integers(min_value=1, max_value=8))
        vectors = rng.standard_normal((n, dim))
        flat = NearestNeighbourIndex(list(range(n)), vectors)
        ann = PartitionedIndex.from_flat(
            flat,
            IndexConfig(
                min_rows=1, n_partitions=n_partitions, nprobe=nprobe, holdout_queries=0
            ),
        )
        queries = rng.standard_normal((3, dim))
        exact = flat.top_k_batch(queries, top_k=n)
        for exact_row, approx_row in zip(exact, ann.top_k_batch(queries, top_k=n)):
            exact_scores = dict(exact_row)
            for label, score in approx_row:
                assert score == exact_scores[label]
        # Full probe is not merely bit-identical on shared hits: it IS
        # the flat result, boundary ties included.
        assert ann.top_k_batch(queries, top_k=5, nprobe=n_partitions) == flat.top_k_batch(
            queries, top_k=5
        )
