"""Tests for the partitioned ANN tier (``repro.embeddings.ann``).

The contract under test: k-means builds are deterministic byte-for-byte,
an effective ``nprobe >= n_partitions`` reproduces the flat index's
output exactly (argpartition boundary ties included), every hit the two
tiers share carries a bit-identical score at any nprobe, persisted and
mmap'd copies answer identically, and the :func:`build_index` scale
gate keeps small corpora on the flat tier so existing results never
silently change.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api import GitTables
from repro.config import IndexConfig, PipelineConfigError
from repro.embeddings import NearestNeighbourIndex, PartitionedIndex, build_index
from repro.embeddings.ann import _cluster, _validate_partition_tables
from repro.embeddings.persist import load_index, publish_index
from repro.storage.artifacts import IndexArtifactStore


def _corpus(n_rows: int, dim: int = 16, seed: int = 3, clusters: int = 8) -> np.ndarray:
    """Clustered rows (unit centres + noise) — the regime probing favours."""
    rng = np.random.default_rng(seed)
    centres = rng.standard_normal((clusters, dim))
    centres /= np.linalg.norm(centres, axis=1, keepdims=True)
    picks = rng.integers(0, clusters, size=n_rows)
    return centres[picks] + rng.standard_normal((n_rows, dim)) * 0.1


@pytest.fixture(scope="module")
def vectors() -> np.ndarray:
    return _corpus(400)

@pytest.fixture(scope="module")
def labels(vectors) -> list[int]:
    return list(range(len(vectors)))


@pytest.fixture(scope="module")
def flat(labels, vectors) -> NearestNeighbourIndex:
    return NearestNeighbourIndex(labels, vectors)


@pytest.fixture(scope="module")
def ann(flat) -> PartitionedIndex:
    return PartitionedIndex.from_flat(flat, IndexConfig(min_rows=1, nprobe=3))


class TestIndexConfig:
    def test_defaults_validate(self):
        config = IndexConfig()
        assert config.min_rows == 10_000
        assert config.nprobe == 8

    @pytest.mark.parametrize(
        "overrides",
        [
            {"min_rows": -1},
            {"n_partitions": 0},
            {"nprobe": 0},
            {"kmeans_iters": -1},
            {"holdout_queries": -1},
            {"recall_k": 0},
        ],
    )
    def test_invalid_values_rejected(self, overrides):
        with pytest.raises(PipelineConfigError):
            IndexConfig(**overrides)

    def test_tier_gate(self):
        config = IndexConfig(min_rows=100)
        assert not config.tier_active(99)
        assert config.tier_active(100)

    def test_partition_heuristic_is_about_sqrt(self):
        config = IndexConfig()
        assert config.resolve_partitions(10_000) == 100
        assert config.resolve_partitions(1) == 1
        assert IndexConfig(n_partitions=7).resolve_partitions(3) == 3

    def test_nprobe_not_in_build_fingerprint(self):
        fingerprint = IndexConfig().build_fingerprint()
        assert "nprobe" not in fingerprint
        assert IndexConfig(nprobe=2).build_fingerprint() == fingerprint
        assert IndexConfig(min_rows=5).build_fingerprint() != fingerprint


class TestDeterministicClustering:
    def test_build_twice_is_byte_identical(self, labels, vectors):
        config = IndexConfig(min_rows=1)
        first = PartitionedIndex.build(labels, vectors, config)
        second = PartitionedIndex.build(labels, vectors, config)
        assert first._centroids.tobytes() == second._centroids.tobytes()
        assert first._row_ids.tobytes() == second._row_ids.tobytes()
        assert first._offsets.tobytes() == second._offsets.tobytes()

    def test_partitions_cover_every_row_once(self, ann):
        assert sorted(ann._row_ids.tolist()) == list(range(len(ann.labels)))
        assert ann._offsets[0] == 0
        assert ann._offsets[-1] == len(ann.labels)

    def test_row_ids_ascend_within_each_partition(self, ann):
        for p in range(ann.n_partitions):
            part = ann._row_ids[ann._offsets[p] : ann._offsets[p + 1]]
            assert np.all(np.diff(part) > 0)

    def test_duplicate_rows_collapse_seeds(self):
        # 4 distinct vectors but 8 partitions requested: the seeder only
        # finds 4 distinct seeds, so at most 4 partitions materialise.
        base = np.eye(4)
        vectors = np.vstack([base, base, base])
        centroids, row_ids, offsets = _cluster(vectors, 8, iters=4)
        assert len(centroids) <= 4
        assert sorted(row_ids.tolist()) == list(range(12))
        _validate_partition_tables(row_ids, offsets, len(centroids), 12)

    def test_constructor_is_blocked(self):
        with pytest.raises(TypeError):
            PartitionedIndex(["a"], np.ones((1, 4)))


class TestExactness:
    @pytest.mark.parametrize("top_k", [1, 3, 10, 400, 1000])
    def test_full_probe_equals_flat_exactly(self, flat, ann, top_k):
        queries = _corpus(32, seed=9)
        expected = flat.top_k_batch(queries, top_k=top_k)
        assert ann.top_k_batch(queries, top_k=top_k, nprobe=ann.n_partitions) == expected

    def test_default_nprobe_at_or_above_partitions_degrades_to_flat(self, flat, vectors):
        config = IndexConfig(min_rows=1, n_partitions=4, nprobe=100)
        ann = PartitionedIndex.from_flat(flat, config)
        queries = _corpus(16, seed=11)
        assert ann.top_k_batch(queries, top_k=5) == flat.top_k_batch(queries, top_k=5)
        assert ann.recall["recall_at_k"] == 1.0

    @pytest.mark.parametrize("nprobe", [1, 2, 3])
    def test_shared_hits_are_bit_identical(self, flat, ann, nprobe):
        queries = _corpus(24, seed=13)
        exact = flat.top_k_batch(queries, top_k=10)
        approx = ann.top_k_batch(queries, top_k=10, nprobe=nprobe)
        for exact_row, approx_row in zip(exact, approx):
            exact_scores = dict(exact_row)
            shared = [label for label, _ in approx_row if label in exact_scores]
            assert shared, "clustered queries should share hits with flat"
            for label, score in approx_row:
                if label in exact_scores:
                    assert score == exact_scores[label]

    def test_partial_probe_results_are_sorted_and_deduplicated(self, ann):
        queries = _corpus(8, seed=17)
        for row in ann.top_k_batch(queries, top_k=10, nprobe=2):
            labels = [label for label, _ in row]
            scores = [score for _, score in row]
            assert len(set(labels)) == len(labels)
            assert scores == sorted(scores, reverse=True)

    def test_query_and_best_inherit_probing(self, flat, ann):
        query = _corpus(1, seed=19)[0]
        assert ann.query(query, top_k=5)[0] == flat.query(query, top_k=5)[0]


class TestEdgeCases:
    def test_single_partition(self, flat, vectors):
        ann = PartitionedIndex.from_flat(flat, IndexConfig(min_rows=1, n_partitions=1))
        queries = _corpus(8, seed=23)
        assert ann.top_k_batch(queries, top_k=3) == flat.top_k_batch(queries, top_k=3)

    def test_singleton_partitions(self):
        vectors = np.eye(6)
        flat = NearestNeighbourIndex(list(range(6)), vectors)
        ann = PartitionedIndex.from_flat(
            flat, IndexConfig(min_rows=1, n_partitions=6, nprobe=1)
        )
        assert ann.n_partitions == 6
        for i in range(6):
            assert ann.top_k_batch(vectors[i : i + 1], top_k=1)[0][0][0] == i

    def test_zero_vector_query(self, ann, flat):
        queries = np.zeros((2, 16))
        approx = ann.top_k_batch(queries, top_k=3, nprobe=2)
        assert all(score == 0.0 for row in approx for _, score in row)
        full = ann.top_k_batch(queries, top_k=3, nprobe=ann.n_partitions)
        assert full == flat.top_k_batch(queries, top_k=3)

    def test_empty_index(self):
        ann = PartitionedIndex.build([], np.zeros((0, 8)), IndexConfig(min_rows=1))
        assert ann.n_partitions == 0
        assert ann.top_k_batch(np.ones((2, 8)), top_k=3) == [[], []]
        assert ann.probe_batch(np.ones((2, 8))) == [
            pytest.approx(np.zeros(0)),
            pytest.approx(np.zeros(0)),
        ]
        assert ann.recall is None

    def test_empty_query_batch(self, ann):
        assert ann.top_k_batch(np.zeros((0, 16)), top_k=3) == []

    def test_nprobe_knob_validation(self, ann):
        with pytest.raises(ValueError):
            ann.nprobe = 0


class TestProbeBatch:
    def test_candidates_are_ascending_row_ids(self, ann):
        queries = _corpus(6, seed=29)
        for candidates in ann.probe_batch(queries, nprobe=2):
            assert np.all(np.diff(candidates) > 0)
            assert candidates.dtype == np.int64

    def test_full_probe_returns_every_row(self, ann):
        queries = _corpus(2, seed=31)
        for candidates in ann.probe_batch(queries, nprobe=ann.n_partitions):
            assert candidates.tolist() == list(range(len(ann.labels)))

    def test_candidates_contain_probed_partitions_exactly(self, ann):
        queries = _corpus(4, seed=37)
        for candidates in ann.probe_batch(queries, nprobe=2):
            sizes = np.diff(ann._offsets)
            # Each candidate list is a union of whole partitions.
            assert len(candidates) in {
                int(sizes[i] + sizes[j])
                for i in range(ann.n_partitions)
                for j in range(ann.n_partitions)
                if i != j
            }


class TestStats:
    def test_counters_accumulate(self, flat):
        ann = PartitionedIndex.from_flat(flat, IndexConfig(min_rows=1, nprobe=2))
        queries = _corpus(5, seed=41)
        ann.top_k_batch(queries, top_k=3)
        ann.top_k_batch(queries, top_k=3, nprobe=ann.n_partitions)
        stats = ann.stats()
        assert stats["tier"] == "partitioned"
        assert stats["queries"] == 10
        assert stats["probed_partitions"]["2"] == 5
        assert stats["probed_partitions"][str(ann.n_partitions)] == 5
        assert 0.0 < stats["mean_candidate_fraction"] <= 1.0
        assert stats["recall"]["k"] == 10

    def test_flat_tier_stats(self, flat):
        assert flat.stats() == {"tier": "flat", "rows": len(flat.labels)}

    def test_recall_measurement_bounds(self, ann):
        recall = ann.recall
        assert 0.0 <= recall["recall_at_k"] <= 1.0
        assert recall["nprobe"] == 3
        assert recall["holdout_queries"] <= 64


class TestPersistence:
    def test_save_mmap_round_trip_is_identical(self, ann, tmp_path):
        ann.save(tmp_path / "ivf")
        mapped = PartitionedIndex.mmap(tmp_path / "ivf")
        assert mapped.labels == ann.labels
        assert mapped.n_partitions == ann.n_partitions
        assert mapped.nprobe == ann.nprobe
        assert mapped.recall == ann.recall
        queries = _corpus(12, seed=43)
        for top_k in (1, 5):
            assert mapped.top_k_batch(queries, top_k=top_k) == ann.top_k_batch(
                queries, top_k=top_k
            )
        full = mapped.top_k_batch(queries, top_k=5, nprobe=mapped.n_partitions)
        assert full == ann.top_k_batch(queries, top_k=5, nprobe=ann.n_partitions)

    def test_mmap_vectors_stay_memory_mapped(self, ann, tmp_path):
        ann.save(tmp_path / "ivf")
        mapped = PartitionedIndex.mmap(tmp_path / "ivf")
        assert isinstance(mapped._unit_vectors, np.memmap)

    def test_tampered_metadata_rejected(self, ann, tmp_path):
        ann.save(tmp_path / "ivf")
        meta_path = tmp_path / "ivf" / "index.json"
        meta = json.loads(meta_path.read_text())
        meta["centroids_shape"][0] += 1
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(ValueError):
            PartitionedIndex.mmap(tmp_path / "ivf")

    def test_truncated_partition_table_rejected(self, ann, tmp_path):
        ann.save(tmp_path / "ivf")
        target = tmp_path / "ivf" / "partition_row_ids.npy"
        truncated = ann._row_ids[:-3]
        meta_path = tmp_path / "ivf" / "index.json"
        meta = json.loads(meta_path.read_text())
        meta["n_row_ids"] = len(truncated)
        meta_path.write_text(json.dumps(meta))
        np.save(target, truncated)
        with pytest.raises(ValueError):
            PartitionedIndex.mmap(tmp_path / "ivf")

    def test_wrong_format_rejected(self, flat, tmp_path):
        flat.save(tmp_path / "flat")
        with pytest.raises(ValueError):
            PartitionedIndex.mmap(tmp_path / "flat")

    def test_empty_index_round_trip(self, tmp_path):
        ann = PartitionedIndex.build([], np.zeros((0, 8)), IndexConfig(min_rows=1))
        ann.save(tmp_path / "ivf")
        mapped = PartitionedIndex.mmap(tmp_path / "ivf")
        assert mapped.labels == []
        assert mapped.top_k_batch(np.ones((1, 8))) == [[]]

    def test_artifact_publish_load_round_trip(self, ann, tmp_path):
        store = IndexArtifactStore(tmp_path / "artifacts")
        publish_index(store, "schemas", {"v": 1}, ann, payload={"extra": 5})
        resolved = load_index(store, "schemas", {"v": 1})
        assert resolved is not None
        loaded, payload = resolved
        assert isinstance(loaded, PartitionedIndex)
        assert payload["extra"] == 5
        assert payload["ann"]["n_partitions"] == ann.n_partitions
        queries = _corpus(8, seed=47)
        assert loaded.top_k_batch(queries, top_k=5) == ann.top_k_batch(queries, top_k=5)

    def test_flat_artifact_stays_flat(self, flat, tmp_path):
        store = IndexArtifactStore(tmp_path / "artifacts")
        publish_index(store, "schemas", {"v": 1}, flat)
        loaded, _ = load_index(store, "schemas", {"v": 1})
        assert type(loaded) is NearestNeighbourIndex


class TestBuildIndexGate:
    def test_small_corpus_stays_flat(self, labels, vectors):
        index = build_index(labels, vectors, IndexConfig(min_rows=1000))
        assert type(index) is NearestNeighbourIndex

    def test_large_corpus_goes_partitioned(self, labels, vectors):
        index = build_index(labels, vectors, IndexConfig(min_rows=100))
        assert isinstance(index, PartitionedIndex)

    def test_n_rows_override_controls_the_gate(self, labels, vectors):
        config = IndexConfig(min_rows=1000)
        assert isinstance(
            build_index(labels, vectors, config, n_rows=5000), PartitionedIndex
        )
        assert (
            type(build_index(labels, vectors, IndexConfig(min_rows=100), n_rows=5))
            is NearestNeighbourIndex
        )


class TestEngineIntegration:
    """The consumer-facing contract over a real (small) corpus."""

    def test_facade_results_identical_across_tiers(self, gittables_corpus):
        default = GitTables.from_corpus(gittables_corpus)
        forced = GitTables.from_corpus(
            gittables_corpus, index_config=IndexConfig(min_rows=1, nprobe=10**6)
        )
        query = "temperature sensor readings"
        assert forced.search(query, k=5) == default.search(query, k=5)
        prefix = ["id", "name"]
        assert forced.complete_schema(prefix, k=3) == default.complete_schema(prefix, k=3)

    def test_facade_index_stats_report_tier(self, gittables_corpus):
        session = GitTables.from_corpus(
            gittables_corpus, index_config=IndexConfig(min_rows=1, nprobe=2)
        )
        session.search("temperature", k=3)
        stats = session.index_stats()
        assert stats["search"]["tier"] == "partitioned"
        assert stats["search"]["queries"] >= 1
        flat_session = GitTables.from_corpus(gittables_corpus)
        flat_session.search("temperature", k=3)
        assert flat_session.index_stats()["search"]["tier"] == "flat"

    def test_small_corpus_fingerprint_has_no_ann_section(self, gittables_corpus):
        session = GitTables.from_corpus(gittables_corpus)
        engine = session.search_engine
        assert "ann" not in engine._fingerprint()
        forced = GitTables.from_corpus(
            gittables_corpus, index_config=IndexConfig(min_rows=1)
        )
        assert "ann" in forced.search_engine._fingerprint()

    def test_store_round_trip_keeps_tier_and_results(self, gittables_corpus, tmp_path):
        directory = tmp_path / "corpus"
        config = IndexConfig(min_rows=1, nprobe=10**6)
        GitTables.from_corpus(gittables_corpus).save(directory)
        warm = GitTables.load(directory, index_config=config)
        warm.warm()
        baseline = GitTables.load(directory).search("temperature", k=5)
        cold = GitTables.load(directory, index_config=config)
        assert cold.search("temperature", k=5) == baseline
        assert cold.index_stats()["search"]["tier"] == "partitioned"

    def test_completion_coarse_tier_full_probe_matches_default(self, gittables_corpus):
        default = GitTables.from_corpus(gittables_corpus)
        forced = GitTables.from_corpus(
            gittables_corpus, index_config=IndexConfig(min_rows=1, nprobe=10**6)
        )
        prefix = ["date", "value"]
        assert forced.complete_schema(prefix, k=5) == default.complete_schema(prefix, k=5)
        stats = forced.index_stats()
        assert stats.get("completion", {}).get("tier") == "partitioned"
