"""Unit tests for the tolerant CSV parser (repro.dataframe.parser)."""

import pytest

from repro.dataframe.parser import parse_csv
from repro.errors import CSVParseError


class TestBasicParsing:
    def test_simple_table(self):
        table, report = parse_csv("a,b\n1,2\n3,4\n")
        assert table.header == ("a", "b")
        assert table.num_rows == 2
        assert report.parsed_rows == 2
        assert report.dialect.delimiter == ","

    def test_semicolon_table(self):
        table, _ = parse_csv("x;y;z\n1;2;3\n")
        assert table.num_columns == 3

    def test_table_id_and_metadata_attached(self):
        table, _ = parse_csv("a,b\n1,2\n", table_id="t1", metadata={"topic": "id"})
        assert table.table_id == "t1"
        assert table.metadata["topic"] == "id"

    def test_header_only_file_parses_to_empty_table(self):
        table, _ = parse_csv("a,b,c\n")
        assert table.num_rows == 0
        assert table.header == ("a", "b", "c")


class TestLeadingLines:
    def test_skips_comment_preamble(self):
        text = "# exported at 2021\n\na,b\n1,2\n"
        table, report = parse_csv(text)
        assert table.header == ("a", "b")
        assert report.skipped_leading_lines == 2

    def test_only_comments_raises(self):
        with pytest.raises(CSVParseError):
            parse_csv("# nothing\n# here\n")

    def test_empty_payload_raises(self):
        with pytest.raises(CSVParseError):
            parse_csv("   \n  ")


class TestBadLines:
    def test_drops_rows_with_extra_delimiters(self):
        text = "a,b\n1,2\n1,2,3,4\n5,6\n"
        table, report = parse_csv(text)
        assert table.num_rows == 2
        assert report.dropped_bad_lines == 1

    def test_drops_commented_rows_in_body(self):
        text = "a,b\n1,2\n# comment\n3,4\n"
        table, report = parse_csv(text)
        assert table.num_rows == 2
        assert report.dropped_bad_lines == 1

    def test_all_rows_bad_raises(self):
        text = "a,b\n1,2,3\n4,5,6\n"
        with pytest.raises(CSVParseError):
            parse_csv(text)


class TestTrailingSeparatorRealignment:
    def test_rows_with_trailing_separator(self):
        text = "a,b\n1,2,\n3,4,\n"
        table, report = parse_csv(text)
        assert table.num_rows == 2
        assert table.num_columns == 2
        assert report.realigned_trailing_separator

    def test_header_with_trailing_separator(self):
        text = "a,b,\n1,2\n3,4\n"
        table, report = parse_csv(text)
        assert table.header == ("a", "b")
        assert report.realigned_trailing_separator

    def test_unnamed_trailing_columns_are_preserved(self):
        # Header ends with empty names but rows carry real data there: the
        # realignment must NOT cut the last column.
        text = "a,b,,\n1,2,3,4\n5,6,7,8\n"
        table, _ = parse_csv(text)
        assert table.num_columns == 4
        assert table.num_rows == 2


class TestHeaderHandling:
    def test_duplicate_column_names_are_deduplicated(self):
        table, _ = parse_csv("x,x,x\n1,2,3\n")
        assert table.header == ("x", "x.1", "x.2")

    def test_blank_column_names_become_unnamed(self):
        table, _ = parse_csv("a,,c\n1,2,3\n")
        assert table.header[1].startswith("unnamed")

    def test_quoted_header_fields(self):
        table, _ = parse_csv('"first name","last name"\nAda,Lovelace\n')
        assert table.header == ("first name", "last name")

    def test_quoted_values_with_delimiter(self):
        table, _ = parse_csv('name,note\nAda,"likes math, a lot"\n')
        assert table.rows[0][1] == "likes math, a lot"


class TestParseReport:
    def test_bad_line_fraction(self):
        text = "a,b\n1,2\nbad,line,here\n3,4\n"
        _, report = parse_csv(text)
        assert 0 < report.bad_line_fraction < 1

    def test_total_lines_counted(self):
        _, report = parse_csv("a,b\n1,2\n3,4\n")
        assert report.total_lines == 3
