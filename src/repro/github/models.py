"""Data model of the simulated GitHub instance."""

from __future__ import annotations

from dataclasses import dataclass, field

from .licenses import License

__all__ = ["RepoFile", "Repository", "SearchResultItem", "SearchResponse"]


@dataclass
class RepoFile:
    """A file stored in a repository."""

    path: str
    content: str
    #: Search topics this file is indexed under (derived from its content
    #: by the generator; the search API also falls back to scanning the
    #: content for the query term).
    topics: frozenset[str] = frozenset()

    @property
    def size_bytes(self) -> int:
        return len(self.content.encode("utf-8"))

    @property
    def extension(self) -> str:
        _, _, ext = self.path.rpartition(".")
        return ext.lower() if ext != self.path else ""


@dataclass
class Repository:
    """A repository: owner/name, license, fork flag, and files."""

    owner: str
    name: str
    license: License | None = None
    is_fork: bool = False
    #: For forks: full name of the repository this one was forked from.
    forked_from: str | None = None
    files: list[RepoFile] = field(default_factory=list)
    #: Dominant topical domain of the repository (informational).
    domain: str = "general"

    @property
    def full_name(self) -> str:
        return f"{self.owner}/{self.name}"

    def url_for(self, file: RepoFile) -> str:
        return f"https://github.com/{self.full_name}/blob/main/{file.path}"

    def add_file(self, file: RepoFile) -> None:
        self.files.append(file)


@dataclass(frozen=True)
class SearchResultItem:
    """One item of a search response: a pointer to a repository file."""

    repository: str
    path: str
    url: str
    size_bytes: int


@dataclass(frozen=True)
class SearchResponse:
    """A page of search results."""

    #: Total number of matches for the query (before the result window cap).
    total_count: int
    items: tuple[SearchResultItem, ...]
    page: int
    #: True when more pages are retrievable within the result window.
    has_next_page: bool
    #: True when the total count exceeds the retrievable result window,
    #: i.e. the query must be segmented to retrieve everything.
    incomplete_results: bool
