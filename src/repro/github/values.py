"""Value pools and cell-value generators for synthetic tables.

Shared by the GitHub content generator and the synthetic Web-table
corpora in :mod:`repro.benchdata.webtables`. Pools are weighted where the
paper reports specific frequent values (Table 6: country, city, gender,
ethnicity, race, nationality skew towards Western / English-speaking
values).
"""

from __future__ import annotations

import numpy as np

__all__ = ["ValuePools", "generate_values", "VALUE_KINDS"]


class ValuePools:
    """Weighted string pools used to generate categorical cell values."""

    FIRST_NAMES = (
        "James", "Mary", "John", "Patricia", "Robert", "Jennifer", "Michael",
        "Linda", "William", "Elizabeth", "David", "Barbara", "Richard", "Susan",
        "Joseph", "Jessica", "Thomas", "Sarah", "Charles", "Karen", "Wei", "Ana",
        "Mohammed", "Yuki", "Carlos", "Fatima", "Lars", "Priya",
    )
    LAST_NAMES = (
        "Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller",
        "Davis", "Rodriguez", "Martinez", "Hernandez", "Lopez", "Gonzalez",
        "Wilson", "Anderson", "Thomas", "Taylor", "Moore", "Jackson", "Martin",
        "Nguyen", "Kim", "Chen", "Singh", "Kumar", "Ali", "Khan", "Ivanov",
    )
    # Table 6: "United States, Canada, Belgium, Germany" top the country values.
    COUNTRIES = (
        ("United States", 30), ("USA", 12), ("Canada", 14), ("Belgium", 10),
        ("Germany", 9), ("United Kingdom", 8), ("France", 6), ("Australia", 5),
        ("Netherlands", 4), ("Spain", 3), ("Italy", 3), ("Vietnam", 2),
        ("Brazil", 2), ("India", 2), ("Japan", 2), ("China", 2), ("Mexico", 1),
        ("Nigeria", 1), ("Kenya", 1), ("Sweden", 1),
    )
    CITIES = (
        ("New York", 22), ("London", 16), ("Coquitlam", 8), ("Cambridge", 8),
        ("Toronto", 6), ("Chicago", 6), ("Los Angeles", 6), ("Boston", 5),
        ("Berlin", 4), ("Paris", 4), ("Brussels", 4), ("Amsterdam", 3),
        ("San Francisco", 3), ("Seattle", 3), ("Sydney", 2), ("Vancouver", 2),
        ("Hanoi", 1), ("Tokyo", 1), ("Mumbai", 1), ("Lagos", 1),
    )
    GENDERS = (("Male", 30), ("Female", 28), ("F", 16), ("M", 16), ("Other", 2), ("Unknown", 2))
    ETHNICITIES = (
        ("French", 18), ("Dutch", 16), ("Spanish", 14), ("Mexican", 12),
        ("German", 8), ("Irish", 7), ("Italian", 6), ("English", 6),
        ("Chinese", 4), ("Indian", 3), ("Vietnamese", 2), ("Nigerian", 1),
    )
    RACES = (("Men", 20), ("Human", 18), ("White", 16), ("Black", 6), ("Asian", 6), ("Women", 5))
    NATIONALITIES = (
        ("Hispanic", 20), ("White", 18), ("Caucasian (White)", 12), ("American", 10),
        ("British", 6), ("Canadian", 6), ("German", 4), ("Dutch", 4), ("Indian", 2),
    )
    STATES = (
        "California", "Texas", "New York", "Florida", "Ontario", "Quebec",
        "Bavaria", "Flanders", "nan", "nan", "nan",
    )
    STATUSES = (
        "ACTIVE", "INACTIVE", "PENDING", "AVAILABLE", "CLOSED", "OPEN",
        "COMPLETED", "CANCELLED", "SHIPPED", "FAILED", "PASSED", "NEW",
    )
    CATEGORIES = (
        "electronics", "clothing", "food", "books", "tools", "sports",
        "health", "automotive", "garden", "toys", "office", "music",
    )
    PRIORITIES = ("low", "medium", "high", "critical")
    BOOLEANS = ("true", "false", "yes", "no", "0", "1")
    SPECIES = (
        "Enterococcus faecium", "Escherichia coli", "Staphylococcus aureus",
        "Klebsiella pneumoniae", "Pseudomonas aeruginosa", "Homo sapiens",
        "Mus musculus", "Drosophila melanogaster", "Arabidopsis thaliana",
        "Danio rerio", "Saccharomyces cerevisiae", "Candida albicans",
    )
    GENERA = (
        "Enterococcus", "Escherichia", "Staphylococcus", "Klebsiella",
        "Pseudomonas", "Homo", "Mus", "Drosophila", "Arabidopsis", "Danio",
    )
    ORGANISM_GROUPS = (
        "Enterococcus spp", "Enterobacteriaceae", "Non-fermenters",
        "Staphylococcus spp", "Streptococcus spp", "Candida spp",
    )
    STUDIES = ("TEST", "SENTRY", "ATLAS", "SMART", "BASELINE", "PILOT")
    AGE_GROUPS = ("0 to 18 Years", "19 to 64 Years", "65 and Over", "Unknown")
    TEAMS = (
        "Eagles", "Tigers", "Sharks", "Wolves", "Falcons", "Lions", "Bears",
        "Hawks", "Panthers", "Dragons", "Rovers", "United", "City", "Athletic",
    )
    POSITIONS = ("Forward", "Midfielder", "Defender", "Goalkeeper", "Guard", "Center")
    DEPARTMENTS = (
        "Engineering", "Sales", "Marketing", "Finance", "Human Resources",
        "Operations", "Research", "Support", "Legal", "Procurement",
    )
    JOB_TITLES = (
        "Engineer", "Senior Engineer", "Manager", "Analyst", "Director",
        "Technician", "Consultant", "Specialist", "Coordinator", "Intern",
    )
    PRODUCTS = (
        "Widget", "Gadget", "Sprocket", "Gizmo", "Bracket", "Module", "Sensor",
        "Cable", "Battery", "Adapter", "Panel", "Valve", "Filter", "Pump",
    )
    BRANDS = ("Acme", "Globex", "Initech", "Umbrella", "Stark", "Wayne", "Wonka", "Hooli")
    CURRENCIES = ("USD", "EUR", "GBP", "CAD", "JPY", "AUD")
    GENRES = ("rock", "pop", "jazz", "classical", "hip hop", "electronic", "folk", "metal")
    ARTISTS = (
        "The Blue Notes", "Silver Echo", "Crimson Tide Band", "Northern Lights",
        "The Wanderers", "Golden Hour", "Velvet Sky", "Iron Valley",
    )
    LANGUAGES = ("English", "Spanish", "German", "French", "Dutch", "Mandarin", "Hindi")
    SENSOR_UNITS = ("C", "F", "Pa", "hPa", "%", "m/s", "V", "A")
    COURSES = (
        "Mathematics", "Physics", "Chemistry", "Biology", "History",
        "Computer Science", "Economics", "Literature", "Statistics",
    )
    COMMENT_SNIPPETS = (
        "needs review", "approved by manager", "duplicate entry", "verified",
        "see attached report", "pending confirmation", "legacy record",
        "imported from backup", "flagged for follow up", "ok",
    )
    TITLE_WORDS = (
        "annual", "quarterly", "regional", "global", "daily", "monthly",
        "summary", "report", "analysis", "overview", "survey", "inventory",
        "results", "performance", "forecast", "baseline", "snapshot",
    )
    STREETS = (
        "Main Street", "High Street", "Park Avenue", "Oak Lane", "Maple Road",
        "Church Street", "Mill Road", "Station Road", "King Street", "Queen Street",
    )
    EMAIL_DOMAINS = ("example.com", "mail.com", "test.org", "company.io", "uni.edu")


def _weighted_choice(rng: np.random.Generator, pool, size: int) -> list[str]:
    """Sample ``size`` values from a pool of (value, weight) or plain strings."""
    if pool and isinstance(pool[0], tuple):
        values = [item[0] for item in pool]
        weights = np.array([item[1] for item in pool], dtype=float)
        weights = weights / weights.sum()
        picks = rng.choice(len(values), size=size, p=weights)
    else:
        values = list(pool)
        picks = rng.integers(0, len(values), size=size)
    return [values[i] for i in picks]


def _person_names(rng: np.random.Generator, size: int) -> list[str]:
    firsts = _weighted_choice(rng, ValuePools.FIRST_NAMES, size)
    lasts = _weighted_choice(rng, ValuePools.LAST_NAMES, size)
    return [f"{first} {last}" for first, last in zip(firsts, lasts)]


def _emails(rng: np.random.Generator, size: int) -> list[str]:
    firsts = _weighted_choice(rng, ValuePools.FIRST_NAMES, size)
    lasts = _weighted_choice(rng, ValuePools.LAST_NAMES, size)
    domains = _weighted_choice(rng, ValuePools.EMAIL_DOMAINS, size)
    return [
        f"{first.lower()}.{last.lower()}@{domain}"
        for first, last, domain in zip(firsts, lasts, domains)
    ]


def _addresses(rng: np.random.Generator, size: int) -> list[str]:
    numbers = rng.integers(1, 9999, size=size)
    streets = _weighted_choice(rng, ValuePools.STREETS, size)
    return [f"{number} {street}" for number, street in zip(numbers, streets)]


def _dates(rng: np.random.Generator, size: int, start_year: int = 1990, end_year: int = 2022) -> list[str]:
    years = rng.integers(start_year, end_year + 1, size=size)
    months = rng.integers(1, 13, size=size)
    days = rng.integers(1, 29, size=size)
    return [f"{y:04d}-{m:02d}-{d:02d}" for y, m, d in zip(years, months, days)]


def _timestamps(rng: np.random.Generator, size: int) -> list[str]:
    dates = _dates(rng, size, start_year=2015, end_year=2022)
    hours = rng.integers(0, 24, size=size)
    minutes = rng.integers(0, 60, size=size)
    seconds = rng.integers(0, 60, size=size)
    return [
        f"{date} {h:02d}:{m:02d}:{s:02d}"
        for date, h, m, s in zip(dates, hours, minutes, seconds)
    ]


def _sequential_ids(rng: np.random.Generator, size: int) -> list[str]:
    start = int(rng.integers(1, 100000))
    return [str(start + i) for i in range(size)]


def _codes(rng: np.random.Generator, size: int) -> list[str]:
    letters = rng.integers(65, 91, size=(size, 3))
    numbers = rng.integers(0, 10000, size=size)
    return [
        "".join(chr(c) for c in row) + f"-{number:04d}"
        for row, number in zip(letters, numbers)
    ]


def _urls(rng: np.random.Generator, size: int) -> list[str]:
    slugs = rng.integers(1000, 999999, size=size)
    domains = _weighted_choice(rng, ValuePools.EMAIL_DOMAINS, size)
    return [f"https://{domain}/item/{slug}" for domain, slug in zip(domains, slugs)]


def _titles(rng: np.random.Generator, size: int) -> list[str]:
    first = _weighted_choice(rng, ValuePools.TITLE_WORDS, size)
    second = _weighted_choice(rng, ValuePools.TITLE_WORDS, size)
    return [f"{a} {b}".title() for a, b in zip(first, second)]


def _descriptions(rng: np.random.Generator, size: int) -> list[str]:
    first = _weighted_choice(rng, ValuePools.TITLE_WORDS, size)
    snippets = _weighted_choice(rng, ValuePools.COMMENT_SNIPPETS, size)
    return [f"{a} record, {b}" for a, b in zip(first, snippets)]


def _numeric(
    rng: np.random.Generator,
    size: int,
    low: float,
    high: float,
    integer: bool = False,
    decimals: int = 2,
) -> list[str]:
    values = rng.uniform(low, high, size=size)
    if integer:
        return [str(int(value)) for value in values]
    return [f"{value:.{decimals}f}" for value in values]


#: kind → callable(rng, size) -> list[str]
VALUE_KINDS = {
    "id": _sequential_ids,
    "code": _codes,
    "person_name": _person_names,
    "first_name": lambda rng, n: _weighted_choice(rng, ValuePools.FIRST_NAMES, n),
    "last_name": lambda rng, n: _weighted_choice(rng, ValuePools.LAST_NAMES, n),
    "email": _emails,
    "address": _addresses,
    "city": lambda rng, n: _weighted_choice(rng, ValuePools.CITIES, n),
    "country": lambda rng, n: _weighted_choice(rng, ValuePools.COUNTRIES, n),
    "state": lambda rng, n: _weighted_choice(rng, ValuePools.STATES, n),
    "gender": lambda rng, n: _weighted_choice(rng, ValuePools.GENDERS, n),
    "ethnicity": lambda rng, n: _weighted_choice(rng, ValuePools.ETHNICITIES, n),
    "race": lambda rng, n: _weighted_choice(rng, ValuePools.RACES, n),
    "nationality": lambda rng, n: _weighted_choice(rng, ValuePools.NATIONALITIES, n),
    "age_group": lambda rng, n: _weighted_choice(rng, ValuePools.AGE_GROUPS, n),
    "date": _dates,
    "birth_date": lambda rng, n: _dates(rng, n, start_year=1950, end_year=2005),
    "timestamp": _timestamps,
    "year": lambda rng, n: _numeric(rng, n, 1950, 2023, integer=True),
    "status": lambda rng, n: _weighted_choice(rng, ValuePools.STATUSES, n),
    "category": lambda rng, n: _weighted_choice(rng, ValuePools.CATEGORIES, n),
    "priority": lambda rng, n: _weighted_choice(rng, ValuePools.PRIORITIES, n),
    "boolean": lambda rng, n: _weighted_choice(rng, ValuePools.BOOLEANS, n),
    "species": lambda rng, n: _weighted_choice(rng, ValuePools.SPECIES, n),
    "genus": lambda rng, n: _weighted_choice(rng, ValuePools.GENERA, n),
    "organism_group": lambda rng, n: _weighted_choice(rng, ValuePools.ORGANISM_GROUPS, n),
    "study": lambda rng, n: _weighted_choice(rng, ValuePools.STUDIES, n),
    "team": lambda rng, n: _weighted_choice(rng, ValuePools.TEAMS, n),
    "position": lambda rng, n: _weighted_choice(rng, ValuePools.POSITIONS, n),
    "department": lambda rng, n: _weighted_choice(rng, ValuePools.DEPARTMENTS, n),
    "job_title": lambda rng, n: _weighted_choice(rng, ValuePools.JOB_TITLES, n),
    "product": lambda rng, n: _weighted_choice(rng, ValuePools.PRODUCTS, n),
    "brand": lambda rng, n: _weighted_choice(rng, ValuePools.BRANDS, n),
    "currency": lambda rng, n: _weighted_choice(rng, ValuePools.CURRENCIES, n),
    "genre": lambda rng, n: _weighted_choice(rng, ValuePools.GENRES, n),
    "artist": lambda rng, n: _weighted_choice(rng, ValuePools.ARTISTS, n),
    "language": lambda rng, n: _weighted_choice(rng, ValuePools.LANGUAGES, n),
    "unit": lambda rng, n: _weighted_choice(rng, ValuePools.SENSOR_UNITS, n),
    "course": lambda rng, n: _weighted_choice(rng, ValuePools.COURSES, n),
    "comment": lambda rng, n: _weighted_choice(rng, ValuePools.COMMENT_SNIPPETS, n),
    "title": _titles,
    "description": _descriptions,
    "url": _urls,
    "price": lambda rng, n: _numeric(rng, n, 0.5, 5000.0),
    "amount": lambda rng, n: _numeric(rng, n, 1.0, 100000.0),
    "quantity": lambda rng, n: _numeric(rng, n, 1, 1000, integer=True),
    "count": lambda rng, n: _numeric(rng, n, 0, 10000, integer=True),
    "score": lambda rng, n: _numeric(rng, n, 0.0, 100.0),
    "rating": lambda rng, n: _numeric(rng, n, 1.0, 5.0, decimals=1),
    "rank": lambda rng, n: _numeric(rng, n, 1, 500, integer=True),
    "age": lambda rng, n: _numeric(rng, n, 1, 99, integer=True),
    "salary": lambda rng, n: _numeric(rng, n, 20000, 200000, integer=True),
    "percentage": lambda rng, n: _numeric(rng, n, 0.0, 100.0),
    "latitude": lambda rng, n: _numeric(rng, n, -90.0, 90.0, decimals=5),
    "longitude": lambda rng, n: _numeric(rng, n, -180.0, 180.0, decimals=5),
    "temperature": lambda rng, n: _numeric(rng, n, -30.0, 45.0, decimals=1),
    "humidity": lambda rng, n: _numeric(rng, n, 0.0, 100.0, decimals=1),
    "pressure": lambda rng, n: _numeric(rng, n, 950.0, 1050.0, decimals=1),
    "measurement": lambda rng, n: _numeric(rng, n, 0.0, 1000.0, decimals=3),
    "population": lambda rng, n: _numeric(rng, n, 1000, 10000000, integer=True),
    "area": lambda rng, n: _numeric(rng, n, 1.0, 100000.0),
    "distance": lambda rng, n: _numeric(rng, n, 0.1, 10000.0),
    "duration": lambda rng, n: _numeric(rng, n, 1, 7200, integer=True),
    "weight": lambda rng, n: _numeric(rng, n, 0.1, 500.0),
    "height": lambda rng, n: _numeric(rng, n, 50, 220, integer=True),
    "goals": lambda rng, n: _numeric(rng, n, 0, 60, integer=True),
    "points": lambda rng, n: _numeric(rng, n, 0, 120, integer=True),
    "wins": lambda rng, n: _numeric(rng, n, 0, 40, integer=True),
    "losses": lambda rng, n: _numeric(rng, n, 0, 40, integer=True),
    "grade": lambda rng, n: _weighted_choice(rng, ("A", "B", "C", "D", "F", "A-", "B+"), n),
    "postcode": lambda rng, n: [str(v) for v in rng.integers(10000, 99999, size=n)],
    "phone": lambda rng, n: [
        f"+1-555-{a:03d}-{b:04d}"
        for a, b in zip(rng.integers(100, 999, size=n), rng.integers(1000, 9999, size=n))
    ],
    "twitter_handle": lambda rng, n: [
        f"@user{v}" for v in rng.integers(100, 99999, size=n)
    ],
    "value": lambda rng, n: _numeric(rng, n, 0.0, 10000.0, decimals=3),
    "min": lambda rng, n: _numeric(rng, n, 0.0, 100.0, decimals=3),
    "max": lambda rng, n: _numeric(rng, n, 100.0, 1000.0, decimals=3),
    "mean": lambda rng, n: _numeric(rng, n, 10.0, 500.0, decimals=3),
    "error": lambda rng, n: _numeric(rng, n, 0.0, 1.0, decimals=5),
    "line": lambda rng, n: _numeric(rng, n, 1, 10000, integer=True),
    "text": _descriptions,
    "lyrics": _descriptions,
    "abstract": _descriptions,
    "note": lambda rng, n: _weighted_choice(rng, ValuePools.COMMENT_SNIPPETS, n),
}


def generate_values(kind: str, rng: np.random.Generator, size: int) -> list[str]:
    """Generate ``size`` cell values of the given kind."""
    generator = VALUE_KINDS.get(kind)
    if generator is None:
        raise KeyError(f"unknown value kind {kind!r}")
    return generator(rng, size)
