"""The simulated GitHub Search API.

Reproduces the behaviours the paper's extraction stage works around
(§3.2):

* a query matches files whose content/topics contain the query term and
  whose extension matches the ``extension:`` qualifier;
* results can be narrowed with a ``size:MIN..MAX`` qualifier (bytes);
* files larger than 438 kB are never returned;
* at most 1000 results are retrievable per query (the "result window"),
  paginated in fixed-size pages; the response reports the *true* total
  count so callers can detect that segmentation is needed;
* forked repositories can be excluded with ``fork:false``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..config import GITHUB_MAX_FILE_SIZE, GITHUB_PAGE_SIZE, GITHUB_RESULT_WINDOW
from ..errors import ResultWindowExceeded, SearchQueryError
from .instance import GitHubInstance
from .models import SearchResponse, SearchResultItem

__all__ = ["SearchQuery", "SearchAPI"]

_QUERY_RE = re.compile(r'^\s*(?:q=)?"?(?P<term>[^"\s]+)"?\s*(?P<qualifiers>.*)$')
_SIZE_RE = re.compile(r"size:(?P<low>\d+)\.\.(?P<high>\d+)")
_EXT_RE = re.compile(r"extension:(?P<ext>\w+)")
_FORK_RE = re.compile(r"fork:(?P<fork>true|false)")


@dataclass(frozen=True)
class SearchQuery:
    """A parsed search query."""

    term: str
    extension: str | None = "csv"
    size_min: int | None = None
    size_max: int | None = None
    include_forks: bool = False

    def __post_init__(self) -> None:
        if not self.term or not self.term.strip():
            raise SearchQueryError("query term must not be empty")
        if (self.size_min is None) != (self.size_max is None):
            raise SearchQueryError("size_min and size_max must be set together")
        if self.size_min is not None and self.size_max is not None and self.size_min > self.size_max:
            raise SearchQueryError("size_min must not exceed size_max")

    @classmethod
    def parse(cls, raw: str) -> "SearchQuery":
        """Parse a query string like ``q="id" extension:csv size:50..100``."""
        match = _QUERY_RE.match(raw)
        if not match:
            raise SearchQueryError(f"malformed query: {raw!r}")
        term = match.group("term")
        qualifiers = match.group("qualifiers") or ""
        extension = None
        ext_match = _EXT_RE.search(qualifiers)
        if ext_match:
            extension = ext_match.group("ext").lower()
        size_min = size_max = None
        size_match = _SIZE_RE.search(qualifiers)
        if size_match:
            size_min = int(size_match.group("low"))
            size_max = int(size_match.group("high"))
        include_forks = True
        fork_match = _FORK_RE.search(qualifiers)
        if fork_match:
            include_forks = fork_match.group("fork") == "true"
        return cls(
            term=term,
            extension=extension,
            size_min=size_min,
            size_max=size_max,
            include_forks=include_forks,
        )

    def to_string(self) -> str:
        """Serialise back to the GitHub query syntax."""
        parts = [f'q="{self.term}"']
        if self.extension:
            parts.append(f"extension:{self.extension}")
        if self.size_min is not None and self.size_max is not None:
            parts.append(f"size:{self.size_min}..{self.size_max}")
        if not self.include_forks:
            parts.append("fork:false")
        return " ".join(parts)

    def with_size_range(self, size_min: int, size_max: int) -> "SearchQuery":
        """A copy of this query restricted to a byte-size range."""
        return SearchQuery(
            term=self.term,
            extension=self.extension,
            size_min=size_min,
            size_max=size_max,
            include_forks=self.include_forks,
        )


class SearchAPI:
    """Code-search endpoint of the simulated GitHub instance."""

    def __init__(
        self,
        instance: GitHubInstance,
        result_window: int = GITHUB_RESULT_WINDOW,
        page_size: int = GITHUB_PAGE_SIZE,
        max_file_size: int = GITHUB_MAX_FILE_SIZE,
    ) -> None:
        self.instance = instance
        self.result_window = result_window
        self.page_size = page_size
        self.max_file_size = max_file_size
        self._query_count = 0

    @property
    def query_count(self) -> int:
        """Number of search calls served (used to study segmentation cost)."""
        return self._query_count

    def _matches(self, query: SearchQuery, repository, file) -> bool:
        if query.extension and file.extension != query.extension:
            return False
        size = file.size_bytes
        if size > self.max_file_size:
            return False
        if query.size_min is not None and not (query.size_min <= size <= query.size_max):
            return False
        if not query.include_forks and repository.is_fork:
            return False
        term = query.term.lower()
        if term in file.topics:
            return True
        # Fall back to scanning the file path and header line, mirroring
        # GitHub code search matching on file contents.
        if term in file.path.lower():
            return True
        first_line = file.content.split("\n", 1)[0].lower()
        return term in first_line

    def _all_matches(self, query: SearchQuery) -> list[SearchResultItem]:
        items: list[SearchResultItem] = []
        for repository, file in self.instance.iter_files():
            if self._matches(query, repository, file):
                items.append(
                    SearchResultItem(
                        repository=repository.full_name,
                        path=file.path,
                        url=repository.url_for(file),
                        size_bytes=file.size_bytes,
                    )
                )
        # Deterministic ordering: by size then URL (GitHub orders by
        # relevance; any stable order works for the pipeline).
        items.sort(key=lambda item: (item.size_bytes, item.url))
        return items

    def total_count(self, query: SearchQuery) -> int:
        """The number of files matching ``query`` (no window applied)."""
        self._query_count += 1
        return len(self._all_matches(query))

    def search(self, query: SearchQuery, page: int = 1) -> SearchResponse:
        """Return one page of search results.

        Pages beyond the result window raise
        :class:`~repro.errors.ResultWindowExceeded`, mirroring GitHub's
        refusal to paginate past the first 1000 results.
        """
        if page < 1:
            raise SearchQueryError("page numbers start at 1")
        self._query_count += 1
        matches = self._all_matches(query)
        total = len(matches)
        window = matches[: self.result_window]

        start = (page - 1) * self.page_size
        if start >= self.result_window and start < total:
            raise ResultWindowExceeded(
                f"cannot retrieve page {page}: only the first {self.result_window} "
                f"results of {total} are accessible"
            )
        page_items = tuple(window[start : start + self.page_size])
        has_next = start + self.page_size < len(window)
        return SearchResponse(
            total_count=total,
            items=page_items,
            page=page,
            has_next_page=has_next,
            incomplete_results=total > self.result_window,
        )

    def search_all_pages(self, query: SearchQuery) -> list[SearchResultItem]:
        """Traverse all retrievable pages of ``query`` (within the window)."""
        items: list[SearchResultItem] = []
        page = 1
        while True:
            response = self.search(query, page=page)
            items.extend(response.items)
            if not response.has_next_page:
                break
            page += 1
        return items
