"""Repository license catalogue.

The curation stage only publishes tables from repositories whose license
allows redistribution of the contents (paper §3.3, ~16% of tables). We
model a small catalogue of real license identifiers with a permissive
flag and the relative frequency used by the content generator.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["License", "LICENSES", "is_permissive", "license_by_key"]


@dataclass(frozen=True)
class License:
    """A repository license."""

    key: str
    name: str
    #: Whether the license allows redistribution of repository contents.
    permissive: bool
    #: Relative sampling weight used by the synthetic content generator.
    weight: float


#: The catalogue. ``None`` (no license) is handled separately by the
#: generator and is by far the most common case on GitHub, which is what
#: produces the paper's ~16% retention rate.
LICENSES: tuple[License, ...] = (
    License("mit", "MIT License", True, 5.0),
    License("apache-2.0", "Apache License 2.0", True, 3.0),
    License("bsd-3-clause", "BSD 3-Clause License", True, 1.0),
    License("bsd-2-clause", "BSD 2-Clause License", True, 0.5),
    License("cc0-1.0", "Creative Commons Zero v1.0", True, 0.7),
    License("cc-by-4.0", "Creative Commons Attribution 4.0", True, 0.8),
    License("unlicense", "The Unlicense", True, 0.3),
    License("gpl-3.0", "GNU General Public License v3.0", True, 2.0),
    License("gpl-2.0", "GNU General Public License v2.0", True, 0.8),
    License("lgpl-3.0", "GNU Lesser General Public License v3.0", True, 0.4),
    License("mpl-2.0", "Mozilla Public License 2.0", True, 0.4),
    License("epl-2.0", "Eclipse Public License 2.0", True, 0.2),
    License("proprietary", "All rights reserved", False, 1.5),
    License("custom-restricted", "Custom non-redistributable license", False, 0.6),
)

_BY_KEY = {license.key: license for license in LICENSES}


def license_by_key(key: str) -> License | None:
    """Look up a license by its key (e.g. ``"mit"``)."""
    return _BY_KEY.get(key)


def is_permissive(license: License | str | None) -> bool:
    """True when the license allows redistribution of repository contents."""
    if license is None:
        return False
    if isinstance(license, License):
        return license.permissive
    found = _BY_KEY.get(license)
    return bool(found and found.permissive)
