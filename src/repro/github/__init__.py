"""GitHub simulator.

The paper extracts CSV files through the GitHub Search API, which imposes
constraints the pipeline has to engineer around (result window of 1000
files per query, 438 kB file-size cap, rate limits, forked repositories,
license availability). This subpackage provides an in-memory GitHub
instance with the same observable behaviour:

* :class:`~repro.github.instance.GitHubInstance` hosts repositories and
  exposes a :class:`~repro.github.search.SearchAPI`,
* :class:`~repro.github.content.ContentGenerator` synthesises repositories
  and CSV files whose dimension/type/topic distributions follow the
  long-tailed shapes reported in the paper,
* :class:`~repro.github.client.GitHubClient` is a rate-limit-aware client
  used by the extraction stage.
"""

from .client import GitHubClient
from .content import ContentGenerator, GeneratorConfig
from .instance import GitHubInstance, build_instance
from .licenses import LICENSES, License, is_permissive
from .models import RepoFile, Repository, SearchResponse, SearchResultItem
from .search import SearchAPI, SearchQuery

__all__ = [
    "ContentGenerator",
    "GeneratorConfig",
    "GitHubClient",
    "GitHubInstance",
    "LICENSES",
    "License",
    "RepoFile",
    "Repository",
    "SearchAPI",
    "SearchQuery",
    "SearchResponse",
    "SearchResultItem",
    "build_instance",
    "is_permissive",
]
