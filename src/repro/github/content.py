"""Synthetic GitHub content generator.

Builds repositories populated with CSV files whose structure follows the
distributions the paper reports for GitTables: long-tailed row/column
counts (mean ≈ 142 rows × 12 columns), ~58% numeric columns, database-like
column names dominated by identifiers, a licensing mix in which only a
minority of repositories carries a redistribution-permitting license, a
small share of forks, and "snapshot" repositories holding many
near-identical files. A configurable fraction of files is deliberately
messy (leading comments, trailing delimiters, bad lines) or unparseable,
exercising the parser's §3.3 rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._rand import derive_rng
from .licenses import LICENSES, License
from .models import RepoFile, Repository
from .values import generate_values

__all__ = ["ColumnSpec", "TableTemplate", "GeneratorConfig", "ContentGenerator", "TABLE_TEMPLATES"]


@dataclass(frozen=True)
class ColumnSpec:
    """One column of a table template: header name and value kind."""

    name: str
    kind: str


@dataclass(frozen=True)
class TableTemplate:
    """A domain-specific table shape."""

    key: str
    domain: str
    #: Columns always present.
    core: tuple[ColumnSpec, ...]
    #: Columns added as the table gets wider.
    optional: tuple[ColumnSpec, ...]
    #: Relative frequency among generated files.
    weight: float
    #: WordNet-style topic nouns associated with this template (used by
    #: the search index so topic queries surface matching files).
    topics: tuple[str, ...]


def _c(name: str, kind: str) -> ColumnSpec:
    return ColumnSpec(name, kind)


TABLE_TEMPLATES: tuple[TableTemplate, ...] = (
    TableTemplate(
        key="biology",
        domain="noun.animal",
        core=(
            _c("Isolate Id", "id"), _c("Study", "study"), _c("Species", "species"),
            _c("Organism Group", "organism_group"), _c("Country", "country"),
        ),
        optional=(
            _c("State", "state"), _c("Gender", "gender"), _c("Age Group", "age_group"),
            _c("Genus", "genus"), _c("Class", "category"), _c("Year", "year"),
            _c("Sample Count", "count"), _c("Resistance", "percentage"),
            _c("Phenotype", "category"), _c("Measurement", "measurement"),
            _c("Mic Value", "value"),
        ),
        weight=1.2,
        topics=("organism", "species", "sample", "study", "isolate", "animal", "group"),
    ),
    TableTemplate(
        key="orders",
        domain="noun.possession",
        core=(
            _c("order_id", "id"), _c("order_date", "date"), _c("status", "status"),
            _c("quantity", "quantity"), _c("total_price", "price"),
        ),
        optional=(
            _c("product_id", "id"), _c("customer_id", "id"), _c("required_date", "date"),
            _c("shipped_date", "date"), _c("discount", "percentage"),
            _c("currency", "currency"), _c("tracking_number", "code"),
            _c("warehouse", "category"), _c("unit_price", "price"), _c("tax", "amount"),
        ),
        weight=1.5,
        topics=("order", "sale", "sales", "product", "price", "payment", "transaction", "id"),
    ),
    TableTemplate(
        key="products",
        domain="noun.artifact",
        core=(
            _c("product_id", "id"), _c("name", "product"), _c("price", "price"),
            _c("category", "category"),
        ),
        optional=(
            _c("brand", "brand"), _c("stock", "quantity"), _c("sku", "code"),
            _c("rating", "rating"), _c("weight", "weight"), _c("description", "description"),
            _c("supplier", "brand"), _c("discount", "percentage"), _c("url", "url"),
            _c("currency", "currency"), _c("reorder_level", "count"),
        ),
        weight=1.3,
        topics=("product", "item", "inventory", "stock", "price", "brand", "store"),
    ),
    TableTemplate(
        key="employees",
        domain="noun.person",
        core=(
            _c("emp_no", "id"), _c("first_name", "first_name"), _c("last_name", "last_name"),
            _c("hire_date", "date"),
        ),
        optional=(
            _c("address", "address"), _c("gender", "gender"), _c("salary", "salary"),
            _c("birth_date", "birth_date"), _c("email", "email"), _c("city", "city"),
            _c("country", "country"), _c("title", "job_title"), _c("department", "department"),
            _c("phone", "phone"), _c("manager_id", "id"), _c("status", "status"),
        ),
        weight=1.2,
        topics=("employee", "person", "people", "worker", "name", "salary", "job", "id"),
    ),
    TableTemplate(
        key="sensor",
        domain="noun.phenomenon",
        core=(
            _c("timestamp", "timestamp"), _c("sensor_id", "id"), _c("value", "value"),
        ),
        optional=(
            _c("temperature", "temperature"), _c("humidity", "humidity"),
            _c("pressure", "pressure"), _c("unit", "unit"), _c("status", "status"),
            _c("battery", "percentage"), _c("latitude", "latitude"),
            _c("longitude", "longitude"), _c("min", "min"), _c("max", "max"),
            _c("mean", "mean"), _c("error", "error"), _c("station", "code"),
        ),
        weight=1.4,
        topics=("sensor", "measurement", "temperature", "time", "value", "observation",
                "station", "device", "weather"),
    ),
    TableTemplate(
        key="sports",
        domain="noun.act",
        core=(
            _c("team", "team"), _c("player", "person_name"), _c("position", "position"),
            _c("points", "points"),
        ),
        optional=(
            _c("goals", "goals"), _c("wins", "wins"), _c("losses", "losses"),
            _c("season", "year"), _c("rank", "rank"), _c("matches", "count"),
            _c("age", "age"), _c("nationality", "nationality"), _c("height", "height"),
            _c("salary", "salary"), _c("club", "team"),
        ),
        weight=1.0,
        topics=("sport", "game", "match", "team", "player", "league", "score", "season"),
    ),
    TableTemplate(
        key="geo",
        domain="noun.location",
        core=(
            _c("country", "country"), _c("city", "city"), _c("latitude", "latitude"),
            _c("longitude", "longitude"),
        ),
        optional=(
            _c("population", "population"), _c("area", "area"), _c("region", "state"),
            _c("capital", "city"), _c("elevation", "distance"), _c("postal_code", "postcode"),
            _c("country_code", "code"), _c("time_zone", "category"), _c("density", "value"),
        ),
        weight=0.9,
        topics=("country", "city", "place", "location", "region", "population", "area", "map"),
    ),
    TableTemplate(
        key="issues",
        domain="noun.communication",
        core=(
            _c("id", "id"), _c("title", "title"), _c("status", "status"),
            _c("created", "timestamp"),
        ),
        optional=(
            _c("updated", "timestamp"), _c("author", "person_name"), _c("priority", "priority"),
            _c("label", "category"), _c("comment", "comment"), _c("assignee", "person_name"),
            _c("milestone", "code"), _c("closed", "boolean"), _c("url", "url"),
            _c("line", "line"), _c("version", "code"),
        ),
        weight=1.4,
        topics=("issue", "ticket", "task", "project", "bug", "comment", "status", "id",
                "software", "version"),
    ),
    TableTemplate(
        key="finance",
        domain="noun.possession",
        core=(
            _c("transaction_id", "id"), _c("date", "date"), _c("amount", "amount"),
            _c("balance", "amount"),
        ),
        optional=(
            _c("account_id", "id"), _c("currency", "currency"), _c("type", "category"),
            _c("description", "description"), _c("fee", "price"), _c("status", "status"),
            _c("merchant", "brand"), _c("category", "category"), _c("reference", "code"),
        ),
        weight=1.0,
        topics=("transaction", "account", "money", "amount", "bank", "payment", "balance",
                "finance", "budget"),
    ),
    TableTemplate(
        key="education",
        domain="noun.act",
        core=(
            _c("student_id", "id"), _c("name", "person_name"), _c("course", "course"),
            _c("grade", "grade"),
        ),
        optional=(
            _c("class", "category"), _c("score", "score"), _c("year", "year"),
            _c("school", "department"), _c("teacher", "person_name"), _c("credits", "count"),
            _c("semester", "category"), _c("email", "email"), _c("age", "age"),
            _c("attendance", "percentage"),
        ),
        weight=0.9,
        topics=("student", "course", "school", "grade", "education", "exam", "class", "score"),
    ),
    TableTemplate(
        key="media",
        domain="noun.communication",
        core=(
            _c("title", "title"), _c("artist", "artist"), _c("year", "year"),
            _c("genre", "genre"),
        ),
        optional=(
            _c("album", "title"), _c("duration", "duration"), _c("rating", "rating"),
            _c("lyrics", "lyrics"), _c("language", "language"), _c("plays", "count"),
            _c("label", "brand"), _c("track", "rank"), _c("url", "url"),
        ),
        weight=0.8,
        topics=("song", "music", "artist", "album", "film", "movie", "title", "genre", "lyrics"),
    ),
    TableTemplate(
        key="experiment",
        domain="noun.act",
        core=(
            _c("id", "id"), _c("run", "count"), _c("parameter", "category"),
            _c("value", "value"),
        ),
        optional=(
            _c("iteration", "count"), _c("min", "min"), _c("max", "max"), _c("mean", "mean"),
            _c("error", "error"), _c("time", "timestamp"), _c("epoch", "count"),
            _c("loss", "error"), _c("accuracy", "percentage"), _c("seed", "count"),
            _c("model", "code"), _c("dataset", "category"), _c("metric", "value"),
        ),
        weight=1.3,
        topics=("experiment", "test", "result", "value", "model", "parameter", "measurement",
                "analysis", "iteration", "dataset", "thing", "object"),
    ),
    TableTemplate(
        key="census",
        domain="noun.group",
        core=(
            _c("region", "state"), _c("population", "population"), _c("gender", "gender"),
            _c("age_group", "age_group"),
        ),
        optional=(
            _c("country", "country"), _c("city", "city"), _c("ethnicity", "ethnicity"),
            _c("race", "race"), _c("nationality", "nationality"), _c("income", "salary"),
            _c("households", "count"), _c("year", "year"), _c("education", "category"),
        ),
        weight=0.35,
        topics=("population", "census", "people", "group", "community", "gender",
                "ethnicity", "race", "country"),
    ),
    TableTemplate(
        key="vehicles",
        domain="noun.artifact",
        core=(
            _c("vehicle_id", "id"), _c("model", "product"), _c("year", "year"),
            _c("price", "price"),
        ),
        optional=(
            _c("brand", "brand"), _c("mileage", "distance"), _c("fuel", "category"),
            _c("color", "category"), _c("owner", "person_name"), _c("registration", "code"),
            _c("weight", "weight"), _c("engine", "code"), _c("status", "status"),
        ),
        weight=0.7,
        topics=("vehicle", "car", "engine", "model", "fuel", "price", "object", "thing"),
    ),
)

#: Generic filler columns appended when a table is wider than its
#: template; their names mimic the unnamed/auto-generated columns and
#: generic measures common in database exports.
_FILLER_COLUMNS: tuple[ColumnSpec, ...] = (
    _c("value", "value"), _c("count", "count"), _c("flag", "boolean"),
    _c("code", "code"), _c("note", "note"), _c("score", "score"),
    _c("ratio", "percentage"), _c("total", "amount"), _c("delta", "error"),
    _c("index", "rank"), _c("group", "category"), _c("label", "category"),
    _c("x", "value"), _c("y", "value"), _c("z", "value"),
    _c("field_1", "value"), _c("field_2", "value"), _c("field_3", "count"),
    _c("col_a", "measurement"), _c("col_b", "measurement"), _c("col_c", "count"),
    _c("extra", "note"), _c("misc", "code"), _c("ref", "code"),
)

#: Per-kind value-style variants: a column whose spec kind is the key is
#: generated with one of the alternative kinds some of the time, giving
#: the corpus within-type heterogeneity (real "status" columns are
#: sometimes words, sometimes numeric codes; "class" columns range from
#: categories to grades). Tuples are (kind, probability).
_KIND_VARIANTS: dict[str, tuple[tuple[str, float], ...]] = {
    "status": (("status", 0.7), ("count", 0.2), ("boolean", 0.1)),
    "category": (("category", 0.6), ("priority", 0.2), ("grade", 0.1), ("count", 0.1)),
    "description": (("description", 0.6), ("comment", 0.25), ("title", 0.15)),
    "address": (("address", 0.7), ("city", 0.3)),
    "person_name": (("person_name", 0.7), ("first_name", 0.2), ("last_name", 0.1)),
    "product": (("product", 0.7), ("title", 0.3)),
}

_NAMING_STYLES = ("snake", "lower", "camel", "title", "upper", "original")

_OWNER_PREFIXES = (
    "data", "open", "lab", "dev", "research", "ml", "geo", "bio", "civic", "city",
    "uni", "team", "project", "the", "py",
)
_OWNER_SUFFIXES = (
    "hub", "works", "lab", "group", "collective", "systems", "analytics", "io",
    "society", "team", "dev", "org",
)
_REPO_WORDS = (
    "data", "analysis", "pipeline", "dashboard", "scraper", "exports", "records",
    "tracker", "archive", "snapshots", "results", "models", "study", "survey",
    "catalog", "inventory", "monitor", "stats", "reports", "collection",
)


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs of the synthetic GitHub content generator."""

    #: Number of repositories to create.
    n_repositories: int = 600
    #: Mean number of CSV files per (non-snapshot) repository.
    mean_files_per_repo: float = 3.5
    #: Mean rows per table (long-tailed lognormal around this mean).
    mean_rows: float = 142.0
    #: Mean columns per table.
    mean_cols: float = 12.0
    #: Fraction of repositories that are forks (duplicating another repo's files).
    fork_fraction: float = 0.08
    #: Fraction of repositories carrying no license at all.
    no_license_fraction: float = 0.70
    #: Fraction of repositories that are "snapshot" repos with many files.
    snapshot_repo_fraction: float = 0.03
    #: Probability a file starts with comment/blank preamble lines.
    comment_preamble_probability: float = 0.10
    #: Probability a file carries a redundant trailing delimiter.
    trailing_delimiter_probability: float = 0.06
    #: Probability a file contains a few bad (mis-delimited) lines.
    bad_lines_probability: float = 0.08
    #: Probability a file is entirely unparseable (paper: 0.7% fail to parse).
    unparseable_probability: float = 0.007
    #: Probability a table contains a social-media column (filtered later).
    social_media_probability: float = 0.012
    #: Probability a table has too many unnamed columns (filtered later).
    unnamed_columns_probability: float = 0.02
    #: Probability a tiny (sub-minimum) table is generated (filtered later).
    tiny_table_probability: float = 0.03
    #: Probability a column name is mutated into a messier real-world form
    #: (abbreviation, prefix, suffix) that no longer matches an ontology
    #: label exactly. Drives the gap between syntactic and semantic
    #: annotation coverage (paper: 26% vs 71%).
    name_mutation_probability: float = 0.72
    #: Geometric decay applied to the inclusion probability of successive
    #: optional template columns (later columns are rarer).
    optional_column_decay: float = 0.78
    #: Delimiters and their sampling weights.
    delimiters: tuple[tuple[str, float], ...] = ((",", 0.82), (";", 0.10), ("\t", 0.06), ("|", 0.02))
    #: RNG seed.
    seed: int = 20230530

    @classmethod
    def small(cls, seed: int = 20230530) -> "GeneratorConfig":
        """A configuration sized for fast tests."""
        return cls(n_repositories=80, mean_rows=40.0, mean_cols=8.0, seed=seed)

    def scaled_to_files(self, target_files: int) -> "GeneratorConfig":
        """Return a copy sized so roughly ``target_files`` files exist."""
        repos = max(10, int(target_files / max(self.mean_files_per_repo, 1.0)))
        return GeneratorConfig(
            n_repositories=repos,
            mean_files_per_repo=self.mean_files_per_repo,
            mean_rows=self.mean_rows,
            mean_cols=self.mean_cols,
            fork_fraction=self.fork_fraction,
            no_license_fraction=self.no_license_fraction,
            snapshot_repo_fraction=self.snapshot_repo_fraction,
            comment_preamble_probability=self.comment_preamble_probability,
            trailing_delimiter_probability=self.trailing_delimiter_probability,
            bad_lines_probability=self.bad_lines_probability,
            unparseable_probability=self.unparseable_probability,
            social_media_probability=self.social_media_probability,
            unnamed_columns_probability=self.unnamed_columns_probability,
            tiny_table_probability=self.tiny_table_probability,
            name_mutation_probability=self.name_mutation_probability,
            optional_column_decay=self.optional_column_decay,
            delimiters=self.delimiters,
            seed=self.seed,
        )


class ContentGenerator:
    """Generates repositories and CSV files for the GitHub simulator."""

    def __init__(self, config: GeneratorConfig | None = None) -> None:
        self.config = config or GeneratorConfig()
        self._rng = derive_rng(self.config.seed, "github-content")
        weights = np.array([template.weight for template in TABLE_TEMPLATES])
        self._template_probs = weights / weights.sum()
        license_weights = np.array([license.weight for license in LICENSES])
        self._license_probs = license_weights / license_weights.sum()

    # -- repository level -------------------------------------------------

    def generate_repositories(self) -> list[Repository]:
        """Generate the full set of repositories (including forks)."""
        config = self.config
        repositories: list[Repository] = []
        n_originals = max(1, int(config.n_repositories * (1.0 - config.fork_fraction)))
        for index in range(n_originals):
            repositories.append(self._generate_repository(index))

        n_forks = config.n_repositories - n_originals
        for fork_index in range(n_forks):
            source = repositories[int(self._rng.integers(0, n_originals))]
            fork = Repository(
                owner=self._owner_name(n_originals + fork_index),
                name=source.name,
                license=source.license,
                is_fork=True,
                forked_from=source.full_name,
                files=list(source.files),
                domain=source.domain,
            )
            repositories.append(fork)
        return repositories

    def _owner_name(self, index: int) -> str:
        prefix = _OWNER_PREFIXES[int(self._rng.integers(0, len(_OWNER_PREFIXES)))]
        suffix = _OWNER_SUFFIXES[int(self._rng.integers(0, len(_OWNER_SUFFIXES)))]
        return f"{prefix}-{suffix}-{index}"

    def _repo_name(self) -> str:
        first = _REPO_WORDS[int(self._rng.integers(0, len(_REPO_WORDS)))]
        second = _REPO_WORDS[int(self._rng.integers(0, len(_REPO_WORDS)))]
        return f"{first}-{second}"

    def _sample_license(self) -> License | None:
        if self._rng.random() < self.config.no_license_fraction:
            return None
        pick = int(self._rng.choice(len(LICENSES), p=self._license_probs))
        return LICENSES[pick]

    def _generate_repository(self, index: int) -> Repository:
        config = self.config
        template_pick = int(self._rng.choice(len(TABLE_TEMPLATES), p=self._template_probs))
        template = TABLE_TEMPLATES[template_pick]
        repository = Repository(
            owner=self._owner_name(index),
            name=self._repo_name(),
            license=self._sample_license(),
            domain=template.domain,
        )
        if self._rng.random() < config.snapshot_repo_fraction:
            n_files = int(self._rng.integers(15, 45))
            snapshot = True
        else:
            n_files = max(1, int(self._rng.poisson(config.mean_files_per_repo)))
            snapshot = False

        # Snapshot repos reuse a single column layout across all files;
        # other repos mix templates with a bias towards the repo's own.
        snapshot_columns = self._sample_columns(template) if snapshot else None
        for file_index in range(n_files):
            file_template = template
            if not snapshot and self._rng.random() < 0.35:
                other = int(self._rng.choice(len(TABLE_TEMPLATES), p=self._template_probs))
                file_template = TABLE_TEMPLATES[other]
            columns = snapshot_columns or self._sample_columns(file_template)
            repo_file = self._generate_file(file_template, columns, file_index, snapshot)
            repository.add_file(repo_file)
        return repository

    # -- table / file level ------------------------------------------------

    def _sample_columns(self, template: TableTemplate) -> list[ColumnSpec]:
        config = self.config
        # Lognormal column count with the configured mean and a long tail.
        sigma = 0.55
        mu = float(np.log(max(config.mean_cols, 2.0))) - sigma**2 / 2
        n_cols = int(np.clip(round(self._rng.lognormal(mu, sigma)), 2, 60))

        columns = list(template.core)
        # Optional columns are included with geometrically decaying
        # probability, so later (rarer, often PII-bearing) template
        # columns appear in only a small share of tables.
        decay = config.optional_column_decay
        for index, spec in enumerate(template.optional):
            if len(columns) >= n_cols:
                break
            if self._rng.random() < decay ** (index + 1):
                columns.append(spec)
        # Start the filler cycle at a random offset so no single filler
        # name dominates the corpus-wide column-name distribution.
        filler_index = int(self._rng.integers(0, len(_FILLER_COLUMNS)))
        used = 0
        while len(columns) < n_cols:
            filler = _FILLER_COLUMNS[filler_index % len(_FILLER_COLUMNS)]
            suffix = used // len(_FILLER_COLUMNS)
            name = filler.name if suffix == 0 else f"{filler.name}_{suffix}"
            columns.append(ColumnSpec(name, filler.kind))
            filler_index += 1
            used += 1
        return columns[:n_cols]

    _NAME_PREFIXES = ("raw", "src", "db", "tbl", "old", "new", "tmp", "orig", "main")
    _NAME_SUFFIXES = ("val", "fld", "col", "attr", "info", "data", "str", "num")

    def _abbreviate(self, token: str) -> str:
        """Abbreviate a token the way real schemas do (qty, amt, dt, ...)."""
        known = {
            "quantity": "qty", "amount": "amt", "number": "num", "date": "dt",
            "description": "descr", "address": "addr", "average": "avg",
            "temperature": "temp", "department": "dept", "category": "cat",
            "percentage": "pct", "reference": "ref", "account": "acct",
            "transaction": "txn", "customer": "cust", "product": "prod",
            "position": "pos", "latitude": "lat", "longitude": "lon",
            "population": "pop", "measurement": "meas", "pressure": "press",
        }
        if token.lower() in known:
            return known[token.lower()]
        if len(token) <= 4:
            return token
        # Drop vowels after the first character, keep at most 5 characters.
        head, rest = token[0], token[1:]
        consonants = "".join(char for char in rest if char.lower() not in "aeiou")
        return (head + consonants)[:5]

    def _mutate_name(self, name: str) -> str:
        """Turn a clean column name into a messier real-world variant."""
        tokens = name.replace("-", " ").replace("_", " ").split()
        if not tokens:
            return name
        roll = self._rng.random()
        if roll < 0.40:
            mutated = [self._abbreviate(token) for token in tokens]
            return "_".join(mutated)
        if roll < 0.65:
            prefix = self._NAME_PREFIXES[int(self._rng.integers(0, len(self._NAME_PREFIXES)))]
            return "_".join([prefix, *tokens])
        if roll < 0.85:
            suffix = self._NAME_SUFFIXES[int(self._rng.integers(0, len(self._NAME_SUFFIXES)))]
            return "_".join([*tokens, suffix])
        # Glue the tokens together without separators ("orderdate").
        return "".join(tokens)

    def _style_name(self, name: str, style: str) -> str:
        tokens = name.replace("-", " ").replace("_", " ").split()
        if not tokens:
            return name
        if style == "snake":
            return "_".join(token.lower() for token in tokens)
        if style == "lower":
            return " ".join(token.lower() for token in tokens)
        if style == "camel":
            head, *rest = tokens
            return head.lower() + "".join(token.capitalize() for token in rest)
        if style == "title":
            return " ".join(token.capitalize() for token in tokens)
        if style == "upper":
            return "_".join(token.upper() for token in tokens)
        return name

    def _sample_rows(self) -> int:
        sigma = 1.1
        mu = float(np.log(max(self.config.mean_rows, 2.0))) - sigma**2 / 2
        return int(np.clip(round(self._rng.lognormal(mu, sigma)), 1, 12000))

    def _generate_file(
        self,
        template: TableTemplate,
        columns: list[ColumnSpec],
        file_index: int,
        snapshot: bool,
    ) -> RepoFile:
        config = self.config
        rng = self._rng

        if rng.random() < config.unparseable_probability:
            return self._generate_unparseable_file(template, file_index)

        columns = list(columns)
        if rng.random() < config.social_media_probability:
            columns.append(ColumnSpec("twitter_handle", "twitter_handle"))
        unnamed_heavy = rng.random() < config.unnamed_columns_probability

        n_rows = self._sample_rows()
        if rng.random() < config.tiny_table_probability:
            n_rows = int(rng.integers(0, 2))
        style = _NAMING_STYLES[int(rng.integers(0, len(_NAMING_STYLES)))]

        header: list[str] = []
        for position, spec in enumerate(columns):
            if unnamed_heavy and position >= max(1, len(columns) // 3):
                header.append("")
                continue
            name = spec.name
            if rng.random() < config.name_mutation_probability:
                name = self._mutate_name(name)
            header.append(self._style_name(name, style))

        column_values = []
        for spec in columns:
            kind = spec.kind
            variants = _KIND_VARIANTS.get(kind)
            if variants is not None:
                roll = rng.random()
                cumulative = 0.0
                for variant_kind, probability in variants:
                    cumulative += probability
                    if roll < cumulative:
                        kind = variant_kind
                        break
            column_values.append(generate_values(kind, rng, n_rows))

        delimiter = self._sample_delimiter()
        lines: list[str] = []
        if rng.random() < config.comment_preamble_probability:
            lines.append("# exported from internal database")
            lines.append("")
        trailing = rng.random() < config.trailing_delimiter_probability
        suffix = delimiter if trailing else ""

        def escape(cell: str) -> str:
            # Quote cells containing the delimiter, as real CSV writers do;
            # a small share of files is left unquoted on purpose (they end
            # up with mis-aligned rows the parser drops as bad lines).
            if delimiter in cell and rng.random() > 0.05:
                return '"' + cell.replace('"', '""') + '"'
            return cell

        lines.append(delimiter.join(escape(name) for name in header) + suffix)
        for row_index in range(n_rows):
            cells = [escape(column_values[c][row_index]) for c in range(len(columns))]
            lines.append(delimiter.join(cells) + suffix)

        if n_rows > 3 and rng.random() < config.bad_lines_probability:
            n_bad = int(rng.integers(1, 3))
            # Never insert before the header line (preamble + header), so
            # bad lines corrupt individual rows rather than the whole file.
            first_data_line = len(lines) - n_rows + 1
            for _ in range(n_bad):
                insert_at = int(rng.integers(first_data_line, len(lines) + 1))
                lines.insert(insert_at, delimiter.join(["corrupt"] * (len(columns) + 2)))

        content = "\n".join(lines) + "\n"
        topics = self._file_topics(template, columns)
        prefix = "snapshots/day" if snapshot else "data/export"
        path = f"{prefix}_{template.key}_{file_index}.csv"
        return RepoFile(path=path, content=content, topics=topics)

    def _generate_unparseable_file(self, template: TableTemplate, file_index: int) -> RepoFile:
        """A file the CSV parser should reject (free text, no delimiters)."""
        words = ["lorem", "ipsum", "dolor", "sit", "amet", "raw", "dump", "notes"]
        n_lines = int(self._rng.integers(3, 12))
        lines = []
        for _ in range(n_lines):
            count = int(self._rng.integers(1, 4))
            picks = self._rng.integers(0, len(words), size=count)
            lines.append(" ".join(words[i] for i in picks))
        content = "\n".join(lines) + "\n"
        return RepoFile(
            path=f"notes/raw_{template.key}_{file_index}.csv",
            content=content,
            topics=frozenset({"note", "text"}),
        )

    def _sample_delimiter(self) -> str:
        choices = [d for d, _ in self.config.delimiters]
        weights = np.array([w for _, w in self.config.delimiters])
        weights = weights / weights.sum()
        return choices[int(self._rng.choice(len(choices), p=weights))]

    def _file_topics(self, template: TableTemplate, columns: list[ColumnSpec]) -> frozenset[str]:
        topics = set(template.topics)
        for spec in columns:
            for token in spec.name.replace("-", " ").replace("_", " ").lower().split():
                topics.add(token)
        return frozenset(topics)
