"""The simulated GitHub instance: hosts repositories and serves content."""

from __future__ import annotations

from .content import ContentGenerator, GeneratorConfig
from .models import RepoFile, Repository

__all__ = ["GitHubInstance", "build_instance"]


class GitHubInstance:
    """An in-memory GitHub hosting a set of repositories.

    Provides raw-content retrieval by URL (the analogue of
    ``raw.githubusercontent.com``) plus repository metadata lookup; the
    Search API lives in :mod:`repro.github.search` and queries this
    instance.
    """

    def __init__(self, repositories: list[Repository]) -> None:
        self.repositories = list(repositories)
        self._by_full_name: dict[str, Repository] = {}
        self._file_index: dict[str, tuple[Repository, RepoFile]] = {}
        for repository in self.repositories:
            self._by_full_name[repository.full_name] = repository
            for file in repository.files:
                self._file_index[repository.url_for(file)] = (repository, file)

    # -- repository metadata ----------------------------------------------

    def __len__(self) -> int:
        return len(self.repositories)

    def repository(self, full_name: str) -> Repository | None:
        """Look up a repository by ``owner/name``."""
        return self._by_full_name.get(full_name)

    @property
    def file_count(self) -> int:
        """Total number of files across all repositories."""
        return len(self._file_index)

    def csv_file_count(self) -> int:
        """Number of files with a ``.csv`` extension."""
        return sum(1 for _, file in self._file_index.values() if file.extension == "csv")

    def iter_files(self):
        """Iterate over (repository, file) pairs."""
        return iter(self._file_index.values())

    # -- raw content ------------------------------------------------------

    def raw_content(self, url: str) -> str:
        """Return the raw contents of the file at ``url``.

        Raises ``KeyError`` for unknown URLs, mirroring a 404.
        """
        entry = self._file_index.get(url)
        if entry is None:
            raise KeyError(f"unknown file URL: {url}")
        return entry[1].content

    def file_at(self, url: str) -> tuple[Repository, RepoFile]:
        """Return the (repository, file) pair behind ``url``."""
        entry = self._file_index.get(url)
        if entry is None:
            raise KeyError(f"unknown file URL: {url}")
        return entry


#: Most recently generated instance, keyed by its (frozen, hashable)
#: generator config. Bounded to a single entry: the common repeat
#: pattern is many sessions over one configuration, not many configs.
_instance_cache: dict[GeneratorConfig, GitHubInstance] = {}


def build_instance(config: GeneratorConfig | None = None) -> GitHubInstance:
    """Generate a synthetic GitHub instance from a generator config.

    Memoized per config: generation is deterministic and instances are
    read-only once built, so repeated sessions in one process — an
    epoch extension reopening the corpus it grew from, a benchmark's
    rebuild arm, a worker pool warming per-worker sessions — share one
    instance instead of each paying the O(files) content generation.
    """
    key = config if config is not None else GeneratorConfig()
    cached = _instance_cache.get(key)
    if cached is not None:
        return cached
    generator = ContentGenerator(key)
    instance = GitHubInstance(generator.generate_repositories())
    _instance_cache.clear()
    _instance_cache[key] = instance
    return instance
