"""Rate-limit-aware GitHub client used by the extraction stage.

The real GitHub Search API allows 30 search requests per minute for
authenticated users; the paper's extraction has to pace itself
accordingly. The simulator enforces a request budget per sliding window
on a virtual clock so the pipeline's back-off logic can be exercised in
tests without real waiting.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..errors import RateLimitExceeded
from .instance import GitHubInstance
from .models import SearchResponse, SearchResultItem
from .search import SearchAPI, SearchQuery

__all__ = ["RateLimiter", "GitHubClient"]


@dataclass
class RateLimiter:
    """A sliding-window rate limiter over a virtual clock."""

    requests_per_window: int = 30
    window_seconds: float = 60.0
    #: Virtual clock (seconds); advanced by :meth:`advance`.
    now: float = 0.0
    _timestamps: list[float] = field(default_factory=list)

    def advance(self, seconds: float) -> None:
        """Advance the virtual clock."""
        if seconds < 0:
            raise ValueError("cannot move the clock backwards")
        self.now += seconds

    def _prune(self) -> None:
        cutoff = self.now - self.window_seconds
        self._timestamps = [t for t in self._timestamps if t > cutoff]

    @property
    def remaining(self) -> int:
        """Requests still allowed in the current window."""
        self._prune()
        return max(0, self.requests_per_window - len(self._timestamps))

    def check(self) -> None:
        """Record a request or raise :class:`RateLimitExceeded`."""
        self._prune()
        if len(self._timestamps) >= self.requests_per_window:
            oldest = min(self._timestamps)
            retry_after = (oldest + self.window_seconds) - self.now
            raise RateLimitExceeded(retry_after=max(retry_after, 0.0))
        self._timestamps.append(self.now)

    def wait_time(self) -> float:
        """Seconds to wait before the next request is allowed (0 if free)."""
        self._prune()
        if len(self._timestamps) < self.requests_per_window:
            return 0.0
        oldest = min(self._timestamps)
        return max(0.0, (oldest + self.window_seconds) - self.now)


class GitHubClient:
    """Client bundling search and raw-content access with rate limiting.

    When a search hits the rate limit, the client advances its virtual
    clock by the required wait (simulating a sleep) and retries, keeping
    track of the total simulated wait time — the quantity the query
    segmentation ablation reports.

    ``real_time_factor`` converts the virtual request time (per-request
    latency plus rate-limit waits) into an actual ``time.sleep``: a
    factor of ``0.01`` makes one virtual second cost 10 real
    milliseconds. The default ``0.0`` keeps the historical pure-virtual
    clock (tests never sleep). Benchmarks use a non-zero factor to model
    the production workload, where extraction is network-bound and
    rate-limited — the regime process-parallel builds are designed to
    overlap.
    """

    def __init__(
        self,
        instance: GitHubInstance,
        search_api: SearchAPI | None = None,
        rate_limiter: RateLimiter | None = None,
        seconds_per_request: float = 0.5,
        real_time_factor: float = 0.0,
    ) -> None:
        if real_time_factor < 0:
            raise ValueError("real_time_factor must be >= 0")
        self.instance = instance
        self.search_api = search_api or SearchAPI(instance)
        self.rate_limiter = rate_limiter or RateLimiter()
        self.seconds_per_request = seconds_per_request
        self.real_time_factor = real_time_factor
        self.total_wait_seconds = 0.0
        self.request_count = 0

    def _pace(self) -> None:
        wait = self.rate_limiter.wait_time()
        if wait > 0:
            self.total_wait_seconds += wait
            self.rate_limiter.advance(wait)
        self.rate_limiter.check()
        self.rate_limiter.advance(self.seconds_per_request)
        self.request_count += 1
        if self.real_time_factor > 0.0:
            time.sleep((wait + self.seconds_per_request) * self.real_time_factor)

    def search(self, query: SearchQuery, page: int = 1) -> SearchResponse:
        """One page of search results (rate limited)."""
        self._pace()
        return self.search_api.search(query, page=page)

    def total_count(self, query: SearchQuery) -> int:
        """The total result count of a query (rate limited)."""
        self._pace()
        return self.search_api.total_count(query)

    def search_all_pages(self, query: SearchQuery) -> list[SearchResultItem]:
        """All retrievable result items for a query (rate limited per page)."""
        items: list[SearchResultItem] = []
        page = 1
        while True:
            response = self.search(query, page=page)
            items.extend(response.items)
            if not response.has_next_page:
                break
            page += 1
        return items

    def raw_content(self, url: str) -> str:
        """Download the raw contents of a file (rate limited)."""
        self._pace()
        return self.instance.raw_content(url)
