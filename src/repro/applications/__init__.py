"""Applications of GitTables (paper §4.2 and §5).

* :mod:`~repro.applications.domain_classifier` — data-shift detection
  between GitTables and Web-table corpora (§4.2).
* :mod:`~repro.applications.type_detection` — Sherlock-style semantic
  column type detection trained on GitTables (§5.1, Table 7).
* :mod:`~repro.applications.schema_completion` — NearestCompletion
  (Algorithm 1) for schema prefixes (§5.2, Table 8).
* :mod:`~repro.applications.data_search` — natural-language table search
  over embedded schemas (§5.3, Figure 6b).
* :mod:`~repro.applications.kg_matching` — the curated table-to-KG
  matching benchmark and baseline matchers (§5.3, Figure 6a).
"""

from .data_search import SearchResult, TableSearchEngine
from .domain_classifier import DomainShiftResult, detect_data_shift, sample_corpus_columns
from .kg_matching import KGMatchingBenchmark, MatcherScore, PatternMatcher, ValueLinkingMatcher
from .schema_completion import NearestCompletion, SchemaCompletion
from .type_detection import TypeDetectionResult, TypeDetectionExperiment

__all__ = [
    "DomainShiftResult",
    "KGMatchingBenchmark",
    "MatcherScore",
    "NearestCompletion",
    "PatternMatcher",
    "SchemaCompletion",
    "SearchResult",
    "TableSearchEngine",
    "TypeDetectionExperiment",
    "TypeDetectionResult",
    "ValueLinkingMatcher",
    "detect_data_shift",
    "sample_corpus_columns",
]
