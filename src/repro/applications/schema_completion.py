"""Schema completion with NearestCompletion (paper §5.2, Algorithm 1).

Given a schema prefix of length N, the algorithm embeds its attributes
with a Universal-Sentence-Encoder-style model, computes the average
cosine distance to the first N attributes of every schema in GitTables,
and returns the k schemas with the smallest distance as completion
suggestions. Relevance is evaluated as the cosine similarity between the
embedding of the full original schema and the full schema of the best
suggestion (paper Table 8 reports values around 0.5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.corpus import GitTablesCorpus
from ..embeddings.sentence import SentenceEncoder
from ..embeddings.similarity import cosine_similarity

__all__ = ["SchemaCompletion", "NearestCompletion", "CompletionEvaluation"]


@dataclass(frozen=True)
class SchemaCompletion:
    """One suggested completion for a schema prefix."""

    table_id: str
    schema: tuple[str, ...]
    #: Average cosine distance between the prefix attributes and the first
    #: N attributes of this schema (lower is better).
    prefix_distance: float

    @property
    def completion_attributes(self) -> tuple[str, ...]:
        """The attributes this schema would add beyond the prefix length."""
        return self.schema


@dataclass(frozen=True)
class CompletionEvaluation:
    """Relevance of suggested completions for one target schema."""

    prefix: tuple[str, ...]
    best_completion: SchemaCompletion
    #: Cosine similarity between the full original schema and the most
    #: similar suggested full schema (the paper's Table 8 number).
    best_schema_similarity: float


class NearestCompletion:
    """Algorithm 1: k-nearest schema completions by prefix embedding distance."""

    def __init__(
        self,
        corpus: GitTablesCorpus,
        encoder: SentenceEncoder | None = None,
        min_schema_length: int = 4,
    ) -> None:
        self.encoder = encoder or SentenceEncoder()
        self.min_schema_length = min_schema_length
        self._schemas: list[tuple[str, tuple[str, ...]]] = [
            (table_id, schema)
            for table_id, schema in corpus.schemas()
            if len(schema) >= min_schema_length
        ]
        # Pre-embed every attribute of every schema once.
        self._attribute_embeddings: list[np.ndarray] = [
            self.encoder.embed_many(list(schema)) for _, schema in self._schemas
        ]

    def __len__(self) -> int:
        return len(self._schemas)

    def complete(self, prefix: list[str] | tuple[str, ...], k: int = 10) -> list[SchemaCompletion]:
        """Return the ``k`` nearest completions for ``prefix`` (Algorithm 1)."""
        if not prefix:
            raise ValueError("prefix must contain at least one attribute")
        if k < 1:
            raise ValueError("k must be >= 1")
        prefix = tuple(prefix)
        n = len(prefix)
        prefix_embeddings = self.encoder.embed_many(list(prefix))

        scored: list[SchemaCompletion] = []
        for (table_id, schema), embeddings in zip(self._schemas, self._attribute_embeddings):
            if len(schema) < n:
                continue
            # Average cosine distance between position-aligned attributes
            # (line 6 of Algorithm 1).
            distance = 0.0
            for i in range(n):
                distance += 1.0 - cosine_similarity(prefix_embeddings[i], embeddings[i])
            distance /= n
            scored.append(
                SchemaCompletion(table_id=table_id, schema=schema, prefix_distance=distance)
            )
        scored.sort(key=lambda completion: (completion.prefix_distance, completion.table_id))
        return scored[:k]

    def evaluate(
        self,
        full_schema: list[str] | tuple[str, ...],
        prefix_length: int = 3,
        k: int = 10,
    ) -> CompletionEvaluation:
        """Evaluate completions for a prefix of a known full schema.

        The relevance score is the highest cosine similarity between the
        embedding of the original full schema and the embeddings of the
        full schemas of the k suggestions (paper §5.2).
        """
        full_schema = tuple(full_schema)
        if prefix_length < 1 or prefix_length > len(full_schema):
            raise ValueError("prefix_length must be within [1, len(full_schema)]")
        prefix = full_schema[:prefix_length]
        suggestions = self.complete(prefix, k=k)
        if not suggestions:
            raise ValueError("no completions available (corpus too small)")

        target_embedding = self.encoder.embed_schema(list(full_schema))
        best_similarity = -1.0
        best_completion = suggestions[0]
        for suggestion in suggestions:
            similarity = cosine_similarity(
                target_embedding, self.encoder.embed_schema(list(suggestion.schema))
            )
            if similarity > best_similarity:
                best_similarity = similarity
                best_completion = suggestion
        return CompletionEvaluation(
            prefix=prefix,
            best_completion=best_completion,
            best_schema_similarity=float(best_similarity),
        )
