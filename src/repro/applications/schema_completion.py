"""Schema completion with NearestCompletion (paper §5.2, Algorithm 1).

Given a schema prefix of length N, the algorithm embeds its attributes
with a Universal-Sentence-Encoder-style model, computes the average
cosine distance to the first N attributes of every schema in GitTables,
and returns the k schemas with the smallest distance as completion
suggestions. Relevance is evaluated as the cosine similarity between the
embedding of the full original schema and the full schema of the best
suggestion (paper Table 8 reports values around 0.5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import DEFAULT_INDEX_CONFIG, IndexConfig
from ..core.corpus import GitTablesCorpus
from ..embeddings.ann import PartitionedIndex
from ..embeddings.persist import embedder_fingerprint
from ..embeddings.sentence import SentenceEncoder
from ..embeddings.similarity import cosine_similarity
from ..storage.artifacts import IndexArtifactStore, corpus_content_fingerprint, try_publish

__all__ = ["SchemaCompletion", "NearestCompletion", "CompletionEvaluation", "COMPLETION_ARTIFACT"]

#: Artifact name under which the flat attribute matrix is persisted.
COMPLETION_ARTIFACT = "completion-attributes"


@dataclass(frozen=True)
class SchemaCompletion:
    """One suggested completion for a schema prefix."""

    table_id: str
    schema: tuple[str, ...]
    #: Average cosine distance between the prefix attributes and the first
    #: N attributes of this schema (lower is better).
    prefix_distance: float

    @property
    def completion_attributes(self) -> tuple[str, ...]:
        """The attributes this schema would add beyond the prefix length."""
        return self.schema


@dataclass(frozen=True)
class CompletionEvaluation:
    """Relevance of suggested completions for one target schema."""

    prefix: tuple[str, ...]
    best_completion: SchemaCompletion
    #: Cosine similarity between the full original schema and the most
    #: similar suggested full schema (the paper's Table 8 number).
    best_schema_similarity: float


class NearestCompletion:
    """Algorithm 1: k-nearest schema completions by prefix embedding distance.

    With an ``artifacts`` store attached (and a disk-backed corpus), the
    per-attribute embedding matrix is resolved from a persisted
    mmap-backed artifact when its fingerprint (encoder config +
    ``min_schema_length`` + corpus content hash) matches, so
    construction costs one mmap and zero corpus-wide embedding calls;
    completions are bit-identical to a freshly embedded index. On a miss
    the matrix is built and republished.
    """

    def __init__(
        self,
        corpus: GitTablesCorpus,
        encoder: SentenceEncoder | None = None,
        min_schema_length: int = 4,
        artifacts: IndexArtifactStore | None = None,
        index_config: IndexConfig | None = None,
    ) -> None:
        self.encoder = encoder or SentenceEncoder()
        self.min_schema_length = min_schema_length
        self.artifacts = artifacts
        self.index_config = index_config if index_config is not None else DEFAULT_INDEX_CONFIG
        self._coarse: PartitionedIndex | None = None
        self._coarse_built = False
        self._corpus_fingerprint = (
            corpus_content_fingerprint(corpus) if artifacts is not None else None
        )
        self._corpus_size = len(corpus)
        if not self._load_from_artifacts():
            extended = self._extend_from_artifacts(corpus)
            if not extended:
                self._build(corpus)
            if self.artifacts is not None and self._corpus_fingerprint is not None:
                # Publication is an optimisation: a read-only corpus
                # directory still serves from the in-RAM matrix. A
                # delta-refreshed matrix defers the corpus-keyed prune so
                # sibling engines can still extend *their* superseded
                # artifacts (the facade prunes once all are current).
                try_publish(self.publish_artifacts, self.artifacts, prune=not extended)

    # -- construction ------------------------------------------------------

    def _fingerprint(self, corpus_fingerprint: str | None = None) -> dict:
        return {
            "kind": "schema-completion",
            "encoder": embedder_fingerprint(self.encoder),
            "min_schema_length": int(self.min_schema_length),
            "corpus": corpus_fingerprint or self._corpus_fingerprint,
        }

    def _load_from_artifacts(self) -> bool:
        """Resolve the flat attribute matrix from a valid artifact."""
        if self.artifacts is None or self._corpus_fingerprint is None:
            return False
        loaded = self.artifacts.load(COMPLETION_ARTIFACT, self._fingerprint())
        if loaded is None:
            return False
        table_ids = loaded.payload.get("table_ids")
        schemas = loaded.payload.get("schemas")
        matrix = loaded.arrays.get("attributes")
        if table_ids is None or schemas is None or matrix is None:
            return False
        if len(table_ids) != len(schemas) or matrix.shape[0] != sum(map(len, schemas)):
            return False
        self._schemas = [
            (table_id, tuple(schema)) for table_id, schema in zip(table_ids, schemas)
        ]
        self._flat_matrix = matrix
        self._slice_attribute_embeddings()
        return True

    def _extend_from_artifacts(self, corpus: GitTablesCorpus) -> bool:
        """Delta-refresh the matrix from a *superseded* artifact, if possible.

        After a corpus extension the persisted attribute matrix misses on
        its fingerprint, but its rows still cover exactly the qualifying
        schemas of the committed prefix. The store recognizes the
        artifact's corpus key as the structural fingerprint of one of
        its own sealed epochs (``sealed_prefix_boundary`` — a manifest
        hash comparison, no shard reads), which pins the stored rows to
        that prefix; then only the tail attributes are streamed and
        embedded. The raw ``embed_many`` matrices concatenate
        bit-identically to a from-scratch embed because each row depends
        only on its own attribute string — O(new tables), not O(corpus).
        """
        if self.artifacts is None or self._corpus_fingerprint is None:
            return False
        stale = self.artifacts.load_any(COMPLETION_ARTIFACT)
        if stale is None or not isinstance(stale.fingerprint, dict):
            return False
        expected = self._fingerprint()
        if stale.fingerprint.get("kind") != expected["kind"]:
            return False
        if stale.fingerprint.get("encoder") != expected["encoder"]:
            return False
        if stale.fingerprint.get("min_schema_length") != expected["min_schema_length"]:
            return False
        if stale.fingerprint.get("corpus") == expected["corpus"]:
            return False  # current-state artifact: the load path owns it
        find_boundary = getattr(corpus.store, "sealed_prefix_boundary", None)
        if find_boundary is None:
            return False
        boundary = find_boundary(stale.fingerprint.get("corpus"))
        if boundary is None:
            return False  # not a sealed prefix of this store
        old_table_ids = stale.payload.get("table_ids")
        old_schemas = stale.payload.get("schemas")
        matrix = stale.arrays.get("attributes")
        if old_table_ids is None or old_schemas is None or matrix is None:
            return False
        if len(old_table_ids) != len(old_schemas):
            return False
        if matrix.shape[0] != sum(map(len, old_schemas)):
            return False
        tail: list[tuple[str, tuple[str, ...]]] = []
        for table_id, schema in corpus.iter_schemas(start=boundary):
            if len(schema) < self.min_schema_length:
                continue
            tail.append((table_id, tuple(schema)))
        self._schemas = [
            (table_id, tuple(schema))
            for table_id, schema in zip(old_table_ids, old_schemas)
        ] + tail
        self._flat_matrix = np.asarray(matrix)
        if tail:
            tail_attributes = [attr for _, schema in tail for attr in schema]
            self._flat_matrix = np.concatenate(
                [self._flat_matrix, self.encoder.embed_many(tail_attributes)]
            )
        self._slice_attribute_embeddings()
        return True

    def _build(self, corpus: GitTablesCorpus) -> None:
        # Stream schemas (disk-backed corpora stay on disk); only the
        # qualifying schema tuples are kept.
        self._schemas: list[tuple[str, tuple[str, ...]]] = [
            (table_id, schema)
            for table_id, schema in corpus.iter_schemas()
            if len(schema) >= self.min_schema_length
        ]
        # Pre-embed every attribute of every schema in one batched pass
        # (the encoder deduplicates repeated attribute names across the
        # whole corpus), then split the matrix back per schema.
        flat_attributes = [attr for _, schema in self._schemas for attr in schema]
        self._flat_matrix = self.encoder.embed_many(flat_attributes)
        self._slice_attribute_embeddings()

    def _slice_attribute_embeddings(self) -> None:
        """Per-schema views into the flat (mmap'd or in-RAM) matrix."""
        self._attribute_embeddings: list[np.ndarray] = []
        offset = 0
        for _, schema in self._schemas:
            self._attribute_embeddings.append(self._flat_matrix[offset : offset + len(schema)])
            offset += len(schema)

    def publish_artifacts(
        self,
        artifacts: IndexArtifactStore,
        corpus_fingerprint: str | None = None,
        prune: bool = True,
    ) -> bool:
        """Persist the attribute matrix for mmap-backed cold starts.

        ``prune=False`` defers the corpus-keyed artifact sweep (the
        delta-refresh ordering guarantee).
        """
        fingerprint = corpus_fingerprint or self._corpus_fingerprint
        if fingerprint is None:
            return False
        artifacts.publish(
            COMPLETION_ARTIFACT,
            self._fingerprint(fingerprint),
            arrays={"attributes": self._flat_matrix},
            payload={
                "table_ids": [table_id for table_id, _ in self._schemas],
                "schemas": [list(schema) for _, schema in self._schemas],
            },
            prune=prune,
        )
        return True

    def __len__(self) -> int:
        return len(self._schemas)

    def _coarse_index(self) -> PartitionedIndex | None:
        """The coarse candidate tier over per-schema head embeddings.

        Each qualifying schema is summarised by the mean of its first
        ``min_schema_length`` attribute embeddings; a partitioned index
        over those summaries lets :meth:`complete` probe for candidate
        schemas instead of scoring the whole corpus. Built lazily,
        in-memory only — the persisted flat attribute-matrix artifact is
        unchanged — and only past the ``IndexConfig.min_rows`` gate, so
        small corpora keep the exact full scan.
        """
        if self._coarse_built:
            return self._coarse
        self._coarse_built = True
        head = self.min_schema_length
        if head < 1 or not self.index_config.tier_active(len(self._schemas)):
            return None
        lengths = np.array([len(schema) for _, schema in self._schemas])
        starts = np.concatenate([[0], np.cumsum(lengths[:-1])])
        gather = (starts[:, None] + np.arange(head)).ravel()
        summaries = (
            np.asarray(self._flat_matrix[gather])
            .reshape(len(self._schemas), head, -1)
            .mean(axis=1)
        )
        self._coarse = PartitionedIndex.build(
            [table_id for table_id, _ in self._schemas], summaries, self.index_config
        )
        return self._coarse

    def index_stats(self) -> dict:
        """Instrumentation snapshot of the coarse candidate tier."""
        if self._coarse is not None:
            return self._coarse.stats()
        return {"tier": "flat", "rows": len(self._schemas)}

    def complete(self, prefix: list[str] | tuple[str, ...], k: int = 10) -> list[SchemaCompletion]:
        """Return the ``k`` nearest completions for ``prefix`` (Algorithm 1).

        The average cosine distance between position-aligned attributes
        (line 6 of Algorithm 1) is computed for every candidate schema at
        once: one stacked (candidates, prefix_len, dim) tensor contracted
        against the prefix embeddings.
        """
        if not prefix:
            raise ValueError("prefix must contain at least one attribute")
        if k < 1:
            raise ValueError("k must be >= 1")
        prefix = tuple(prefix)
        n = len(prefix)
        prefix_embeddings = self.encoder.embed_many(list(prefix))

        candidates: list[int] | None = None
        coarse = self._coarse_index()
        if coarse is not None:
            # Probe with the prefix's own head summary. A full probe
            # (nprobe >= n_partitions) returns every schema in ascending
            # order, reproducing the exact path below; per-candidate
            # distances are batch-independent, so any shared candidate
            # scores bit-identically either way.
            query = prefix_embeddings[: self.min_schema_length].mean(axis=0)
            probed = coarse.probe_batch(query[None, :])[0]
            subset = [i for i in probed.tolist() if len(self._schemas[i][1]) >= n]
            if subset:
                candidates = subset
        if candidates is None:
            candidates = [
                index for index, (_, schema) in enumerate(self._schemas) if len(schema) >= n
            ]
        if not candidates:
            return []
        stacked = np.stack([self._attribute_embeddings[i][:n] for i in candidates])
        similarities = np.einsum("snd,nd->sn", stacked, prefix_embeddings)
        # Attribute embeddings are unit-or-zero vectors; normalising by
        # the norm products keeps the zero-vector convention (cosine 0).
        attribute_norms = np.linalg.norm(stacked, axis=2)
        prefix_norms = np.linalg.norm(prefix_embeddings, axis=1)
        denominators = attribute_norms * prefix_norms[None, :]
        safe = np.where(denominators > 0.0, denominators, 1.0)
        similarities = np.where(denominators > 0.0, similarities / safe, 0.0)
        distances = (1.0 - similarities).mean(axis=1)

        scored = [
            SchemaCompletion(
                table_id=self._schemas[i][0],
                schema=self._schemas[i][1],
                prefix_distance=float(distance),
            )
            for i, distance in zip(candidates, distances)
        ]
        scored.sort(key=lambda completion: (completion.prefix_distance, completion.table_id))
        return scored[:k]

    def evaluate(
        self,
        full_schema: list[str] | tuple[str, ...],
        prefix_length: int = 3,
        k: int = 10,
    ) -> CompletionEvaluation:
        """Evaluate completions for a prefix of a known full schema.

        The relevance score is the highest cosine similarity between the
        embedding of the original full schema and the embeddings of the
        full schemas of the k suggestions (paper §5.2).
        """
        full_schema = tuple(full_schema)
        if prefix_length < 1 or prefix_length > len(full_schema):
            raise ValueError("prefix_length must be within [1, len(full_schema)]")
        prefix = full_schema[:prefix_length]
        suggestions = self.complete(prefix, k=k)
        if not suggestions:
            raise ValueError("no completions available (corpus too small)")

        target_embedding = self.encoder.embed_schema(list(full_schema))
        similarities = [
            cosine_similarity(
                target_embedding, self.encoder.embed_schema(list(suggestion.schema))
            )
            for suggestion in suggestions
        ]
        best_index = int(np.argmax(similarities))
        best_similarity = similarities[best_index]
        best_completion = suggestions[best_index]
        return CompletionEvaluation(
            prefix=prefix,
            best_completion=best_completion,
            best_schema_similarity=float(best_similarity),
        )
