"""Natural-language data search over table schemas (paper §5.3, Figure 6b).

A search procedure similar to Algorithm 1, but embedding *entire table
schemas* and comparing them with an embedded natural-language query. The
paper's example query "status and sales amount per product" retrieves a
typical order table with status / total_price / product_id columns.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import DEFAULT_INDEX_CONFIG, IndexConfig
from ..core.corpus import GitTablesCorpus
from ..embeddings.ann import PartitionedIndex, build_index
from ..embeddings.persist import (
    INDEX_LABELS_KEY,
    INDEX_VECTORS_KEY,
    embedder_fingerprint,
    extend_unit_vectors,
    index_from_unit_rows,
    load_index,
    publish_index,
)
from ..embeddings.sentence import SentenceEncoder
from ..storage.artifacts import IndexArtifactStore, corpus_content_fingerprint, try_publish

__all__ = ["SearchResult", "TableSearchEngine", "SEARCH_ARTIFACT"]

#: Artifact name under which the schema-embedding index is persisted.
SEARCH_ARTIFACT = "search-schemas"


@dataclass(frozen=True)
class SearchResult:
    """One ranked table for a search query."""

    table_id: str
    schema: tuple[str, ...]
    score: float
    rank: int


class TableSearchEngine:
    """Cosine-similarity search of embedded schemas against text queries.

    The schema embeddings live in a
    :class:`~repro.embeddings.similarity.NearestNeighbourIndex`;
    :meth:`search_batch` answers many queries with a single batched index
    query, and :meth:`search` is its single-query wrapper.

    With an ``artifacts`` store attached (and a disk-backed corpus), the
    index matrix is resolved from a persisted mmap-backed artifact when
    its fingerprint (encoder config + corpus content hash) matches —
    cold construction then costs one mmap and zero corpus-wide embedding
    calls, with query results bit-identical to a freshly embedded index.
    On a miss the index is built (one batched ``embed_many`` pass over
    every attribute of every schema) and republished.
    """

    def __init__(
        self,
        corpus: GitTablesCorpus,
        encoder: SentenceEncoder | None = None,
        artifacts: IndexArtifactStore | None = None,
        index_config: IndexConfig | None = None,
    ) -> None:
        self.encoder = encoder or SentenceEncoder()
        self.artifacts = artifacts
        self.index_config = index_config if index_config is not None else DEFAULT_INDEX_CONFIG
        self._corpus_fingerprint = (
            corpus_content_fingerprint(corpus) if artifacts is not None else None
        )
        self._corpus_size = len(corpus)
        if not self._load_from_artifacts():
            extended = self._extend_from_artifacts(corpus)
            if not extended:
                self._build(corpus)
            if self.artifacts is not None and self._corpus_fingerprint is not None:
                # Publication is an optimisation: a read-only corpus
                # directory still serves from the in-RAM index. A
                # delta-refreshed index defers the corpus-keyed prune so
                # sibling engines can still extend *their* superseded
                # artifacts (the facade prunes once all are current).
                try_publish(self.publish_artifacts, self.artifacts, prune=not extended)

    # -- construction ------------------------------------------------------

    def _fingerprint(self, corpus_fingerprint: str | None = None) -> dict:
        """The artifact guard: everything that shapes the index matrix.

        The ANN section joins the guard only when the tier activates for
        this corpus size — small corpora keep their pre-existing flat
        fingerprints (and artifacts) untouched.
        """
        fingerprint = {
            "kind": "table-search",
            "encoder": embedder_fingerprint(self.encoder),
            "corpus": corpus_fingerprint or self._corpus_fingerprint,
        }
        if self.index_config.tier_active(self._corpus_size):
            fingerprint["ann"] = self.index_config.build_fingerprint()
        return fingerprint

    def _load_from_artifacts(self) -> bool:
        """Resolve the index from a valid persisted artifact, if any."""
        if self.artifacts is None or self._corpus_fingerprint is None:
            return False
        resolved = load_index(self.artifacts, SEARCH_ARTIFACT, self._fingerprint())
        if resolved is None:
            return False
        index, payload = resolved
        schemas = payload.get("schemas")
        if schemas is None or len(schemas) != len(index.labels):
            return False
        if isinstance(index, PartitionedIndex):
            # nprobe is a query-time knob: the current config wins over
            # whatever value the artifact was published with.
            index.nprobe = self.index_config.nprobe
        self._table_ids = list(index.labels)
        self._schemas = [tuple(schema) for schema in schemas]
        self._index = index
        return True

    def _extend_from_artifacts(self, corpus: GitTablesCorpus) -> bool:
        """Delta-refresh the index from a *superseded* artifact, if possible.

        After a corpus extension the persisted index misses on its
        fingerprint, but its unit-vector rows are still exactly the
        committed prefix of the grown corpus. The store recognizes the
        artifact's corpus key as the structural fingerprint of one of
        its own sealed epochs (``sealed_prefix_boundary`` — a manifest
        hash comparison, no shard reads), which pins the stored rows to
        that prefix; then only the tail schemas are streamed and
        embedded (:func:`extend_unit_vectors` keeps the arithmetic
        bit-identical to a from-scratch embed) and the index tier is
        rebuilt over the combined rows — O(new tables), not O(corpus).
        """
        if self.artifacts is None or self._corpus_fingerprint is None:
            return False
        stale = self.artifacts.load_any(SEARCH_ARTIFACT)
        if stale is None or not isinstance(stale.fingerprint, dict):
            return False
        expected = self._fingerprint()
        if stale.fingerprint.get("kind") != expected["kind"]:
            return False
        if stale.fingerprint.get("encoder") != expected["encoder"]:
            return False
        if stale.fingerprint.get("corpus") == expected["corpus"]:
            return False  # current-state artifact: the load path owns it
        find_boundary = getattr(corpus.store, "sealed_prefix_boundary", None)
        if find_boundary is None:
            return False
        boundary = find_boundary(stale.fingerprint.get("corpus"))
        if boundary is None:
            return False  # not a sealed prefix of this store
        old_labels = stale.payload.get(INDEX_LABELS_KEY)
        old_schemas = stale.payload.get("schemas")
        units = stale.arrays.get(INDEX_VECTORS_KEY)
        if old_labels is None or old_schemas is None or units is None:
            return False
        if not (len(old_labels) == len(old_schemas) == len(units)):
            return False
        tail_ids: list[str] = []
        tail: list[tuple[str, ...]] = []
        for table_id, schema in corpus.iter_schemas(start=boundary):
            if not schema:
                continue
            tail_ids.append(table_id)
            tail.append(tuple(schema))
        self._table_ids = list(old_labels) + tail_ids
        self._schemas = [tuple(schema) for schema in old_schemas] + tail
        rows = units
        if tail:
            rows = extend_unit_vectors(units, self.encoder.embed_schemas(tail))
        self._index = index_from_unit_rows(
            self._table_ids,
            rows,
            self.index_config,
            n_rows=self._corpus_size,
        )
        return True

    def _build(self, corpus: GitTablesCorpus) -> None:
        """Embed every schema with one batched pass and build the index."""
        self._table_ids: list[str] = []
        self._schemas: list[tuple[str, ...]] = []
        # Stream schemas so disk-backed corpora never materialize their
        # full table list; only the (small) schema metadata is retained.
        for table_id, schema in corpus.iter_schemas():
            if not schema:
                continue
            self._table_ids.append(table_id)
            self._schemas.append(schema)
        # One batched pass over the whole corpus; each row is
        # bit-identical to embed_schema of that schema alone. The gate
        # between the flat and partitioned tiers uses the *corpus* size —
        # the same count the artifact fingerprint encodes.
        matrix = self.encoder.embed_schemas(self._schemas)
        self._index = build_index(
            self._table_ids, matrix, self.index_config, n_rows=self._corpus_size
        )

    def publish_artifacts(
        self,
        artifacts: IndexArtifactStore,
        corpus_fingerprint: str | None = None,
        prune: bool = True,
    ) -> bool:
        """Persist the index for future mmap-backed cold starts.

        ``corpus_fingerprint`` overrides the one captured at
        construction (used when the corpus was just saved elsewhere).
        ``prune=False`` defers the corpus-keyed artifact sweep (the
        delta-refresh ordering guarantee). Returns False when no
        fingerprint is available (in-memory corpus with no durable
        identity).
        """
        fingerprint = corpus_fingerprint or self._corpus_fingerprint
        if fingerprint is None:
            return False
        publish_index(
            artifacts,
            SEARCH_ARTIFACT,
            self._fingerprint(fingerprint),
            self._index,
            payload={"schemas": [list(schema) for schema in self._schemas]},
            prune=prune,
        )
        return True

    def __len__(self) -> int:
        return len(self._table_ids)

    def index_stats(self) -> dict:
        """The underlying index's instrumentation snapshot."""
        return self._index.stats()

    def search_batch(self, queries: list[str], k: int = 10) -> list[list[SearchResult]]:
        """Ranked results for many text queries with one batched query."""
        for query in queries:
            if not query or not query.strip():
                raise ValueError("query must not be empty")
        if not queries or len(self._table_ids) == 0:
            return [[] for _ in queries]
        matrix = self.encoder.embed_many(queries)
        hits = self._index.top_k_batch(matrix, top_k=min(k, len(self._table_ids)))
        return [
            [
                SearchResult(
                    table_id=self._table_ids[i],
                    schema=self._schemas[i],
                    score=score,
                    rank=rank + 1,
                )
                for rank, (i, score) in enumerate(row)
            ]
            for row in hits
        ]

    def search(self, query: str, k: int = 10) -> list[SearchResult]:
        """Return the ``k`` highest-scoring tables for a text query."""
        return self.search_batch([query], k=k)[0]

    def best(self, query: str) -> SearchResult | None:
        """The single best table for a query (None for an empty corpus)."""
        results = self.search(query, k=1)
        return results[0] if results else None
