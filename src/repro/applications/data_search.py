"""Natural-language data search over table schemas (paper §5.3, Figure 6b).

A search procedure similar to Algorithm 1, but embedding *entire table
schemas* and comparing them with an embedded natural-language query. The
paper's example query "status and sales amount per product" retrieves a
typical order table with status / total_price / product_id columns.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.corpus import GitTablesCorpus
from ..embeddings.sentence import SentenceEncoder
from ..embeddings.similarity import NearestNeighbourIndex

__all__ = ["SearchResult", "TableSearchEngine"]


@dataclass(frozen=True)
class SearchResult:
    """One ranked table for a search query."""

    table_id: str
    schema: tuple[str, ...]
    score: float
    rank: int


class TableSearchEngine:
    """Cosine-similarity search of embedded schemas against text queries.

    The schema embeddings live in a
    :class:`~repro.embeddings.similarity.NearestNeighbourIndex`;
    :meth:`search_batch` answers many queries with a single batched index
    query, and :meth:`search` is its single-query wrapper.
    """

    def __init__(self, corpus: GitTablesCorpus, encoder: SentenceEncoder | None = None) -> None:
        self.encoder = encoder or SentenceEncoder()
        self._table_ids: list[str] = []
        self._schemas: list[tuple[str, ...]] = []
        embeddings: list[np.ndarray] = []
        # Stream schemas so disk-backed corpora never materialize their
        # full table list; only the (small) schema metadata is retained.
        for table_id, schema in corpus.iter_schemas():
            if not schema:
                continue
            self._table_ids.append(table_id)
            self._schemas.append(schema)
            embeddings.append(self.encoder.embed_schema(list(schema)))
        matrix = np.vstack(embeddings) if embeddings else np.zeros((0, self.encoder.dim))
        self._index = NearestNeighbourIndex(self._table_ids, matrix)

    def __len__(self) -> int:
        return len(self._table_ids)

    def search_batch(self, queries: list[str], k: int = 10) -> list[list[SearchResult]]:
        """Ranked results for many text queries with one batched query."""
        for query in queries:
            if not query or not query.strip():
                raise ValueError("query must not be empty")
        if not queries or len(self._table_ids) == 0:
            return [[] for _ in queries]
        matrix = self.encoder.embed_many(queries)
        hits = self._index.top_k_batch(matrix, top_k=min(k, len(self._table_ids)))
        return [
            [
                SearchResult(
                    table_id=self._table_ids[i],
                    schema=self._schemas[i],
                    score=score,
                    rank=rank + 1,
                )
                for rank, (i, score) in enumerate(row)
            ]
            for row in hits
        ]

    def search(self, query: str, k: int = 10) -> list[SearchResult]:
        """Return the ``k`` highest-scoring tables for a text query."""
        return self.search_batch([query], k=k)[0]

    def best(self, query: str) -> SearchResult | None:
        """The single best table for a query (None for an empty corpus)."""
        results = self.search(query, k=1)
        return results[0] if results else None
