"""Table-to-KG matching benchmark and baseline matchers (paper §5.3, Figure 6a).

The paper curates 1,101 GitTables tables (each with at least 3 columns
and 5 rows) whose target columns carry syntactic DBpedia/Schema.org
annotations, and submits them to the SemTab column-type-annotation (CTA)
challenge. Participating systems rely on linking *cell values* to
knowledge-graph entities, which works for Web tables but fails for
GitTables-style database tables — precision and recall stay low
(Figure 6a).

Here we build the benchmark from any GitTables corpus and implement two
representative baseline matchers:

* :class:`ValueLinkingMatcher` — links cell values to a KG entity
  lexicon (country names, city names, person names, …) and aggregates
  entity types to a column annotation; the canonical SemTab approach.
* :class:`PatternMatcher` — recognises structural types (email, URL,
  date, postal code) with regular expressions; explains why Schema.org
  precision is slightly higher in the paper.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from ..core.annotation import AnnotationMethod
from ..core.corpus import GitTablesCorpus
from ..dataframe.table import Column
from ..github.values import ValuePools
from ..storage.artifacts import IndexArtifactStore, corpus_content_fingerprint, try_publish

__all__ = [
    "BenchmarkColumn",
    "KGMatchingBenchmark",
    "MatcherScore",
    "PatternMatcher",
    "ValueLinkingMatcher",
    "evaluate_matcher",
]


@dataclass(frozen=True)
class BenchmarkColumn:
    """One target column of the CTA benchmark."""

    table_id: str
    column_name: str
    values: tuple
    ontology: str
    gold_type: str


@dataclass
class KGMatchingBenchmark:
    """The curated benchmark dataset (paper: 1,101 tables, ≥3 cols, ≥5 rows)."""

    columns: list[BenchmarkColumn] = field(default_factory=list)
    n_tables: int = 0
    #: The curation thresholds this benchmark was built with (recorded
    #: so the benchmark can republish itself to an artifact store).
    min_columns: int = 3
    min_rows: int = 5
    max_tables: int | None = None
    #: Size of the source corpus at curation time — lets the facade skip
    #: republishing a benchmark whose corpus has since grown.
    corpus_size: int = 0

    @staticmethod
    def _artifact_name(min_columns: int, min_rows: int, max_tables: int | None) -> str:
        suffix = "" if max_tables is None else f"-t{max_tables}"
        return f"kg-benchmark-c{min_columns}-r{min_rows}{suffix}"

    def _fingerprint(self, corpus_fingerprint: str) -> dict:
        return {
            "kind": "kg-benchmark",
            "min_columns": int(self.min_columns),
            "min_rows": int(self.min_rows),
            "max_tables": self.max_tables,
            "corpus": corpus_fingerprint,
        }

    def publish_artifacts(
        self, artifacts: IndexArtifactStore, corpus_fingerprint: str
    ) -> bool:
        """Persist the curated columns so reloads skip the corpus pass."""
        artifacts.publish(
            self._artifact_name(self.min_columns, self.min_rows, self.max_tables),
            self._fingerprint(corpus_fingerprint),
            payload={
                "n_tables": self.n_tables,
                "columns": [
                    {
                        "table_id": column.table_id,
                        "column_name": column.column_name,
                        "values": list(column.values),
                        "ontology": column.ontology,
                        "gold_type": column.gold_type,
                    }
                    for column in self.columns
                ],
            },
        )
        return True

    @classmethod
    def from_corpus(
        cls,
        corpus: GitTablesCorpus,
        min_columns: int = 3,
        min_rows: int = 5,
        max_tables: int | None = None,
        artifacts: IndexArtifactStore | None = None,
    ) -> "KGMatchingBenchmark":
        """Curate benchmark columns from a corpus.

        Target columns are those with a *syntactic* annotation — the most
        reliable gold labels available, as in the paper. The corpus is
        consumed in one streaming pass (disk-backed stores are never
        materialized); only the curated benchmark columns are retained.

        With ``artifacts`` attached and a disk-backed corpus, the
        curated columns are resolved from a fingerprint-guarded artifact
        (and published after a fresh pass), so reloads skip the corpus
        scan entirely.
        """
        benchmark = cls(min_columns=min_columns, min_rows=min_rows, max_tables=max_tables)
        benchmark.corpus_size = len(corpus)
        corpus_fingerprint = None
        if artifacts is not None:
            corpus_fingerprint = corpus_content_fingerprint(corpus)
        if corpus_fingerprint is not None:
            loaded = artifacts.load(
                cls._artifact_name(min_columns, min_rows, max_tables),
                benchmark._fingerprint(corpus_fingerprint),
            )
            if loaded is not None and "columns" in loaded.payload:
                benchmark.n_tables = int(loaded.payload.get("n_tables", 0))
                benchmark.columns = [
                    BenchmarkColumn(
                        table_id=entry["table_id"],
                        column_name=entry["column_name"],
                        values=tuple(entry["values"]),
                        ontology=entry["ontology"],
                        gold_type=entry["gold_type"],
                    )
                    for entry in loaded.payload["columns"]
                ]
                return benchmark
        for annotated in corpus:
            table = annotated.table
            if table.num_columns < min_columns or table.num_rows < min_rows:
                continue
            added = False
            for ontology in ("dbpedia", "schema_org"):
                for annotation in annotated.annotations.for_method(
                    AnnotationMethod.SYNTACTIC, ontology
                ):
                    try:
                        column = table.column(annotation.column)
                    except KeyError:
                        continue
                    benchmark.columns.append(
                        BenchmarkColumn(
                            table_id=annotated.table_id,
                            column_name=annotation.column,
                            values=column.values,
                            ontology=ontology,
                            gold_type=annotation.type_label,
                        )
                    )
                    added = True
            if added:
                benchmark.n_tables += 1
                if max_tables is not None and benchmark.n_tables >= max_tables:
                    break
        if corpus_fingerprint is not None:
            try_publish(benchmark.publish_artifacts, artifacts, corpus_fingerprint)
        return benchmark

    def columns_for(self, ontology: str) -> list[BenchmarkColumn]:
        return [column for column in self.columns if column.ontology == ontology]

    def distinct_types(self, ontology: str) -> set[str]:
        return {column.gold_type for column in self.columns_for(ontology)}


@dataclass(frozen=True)
class MatcherScore:
    """Precision/recall of one matcher on one ontology's benchmark columns."""

    matcher: str
    ontology: str
    precision: float
    recall: float
    n_columns: int
    n_predicted: int

    @property
    def f1(self) -> float:
        denominator = self.precision + self.recall
        if denominator == 0:
            return 0.0
        return 2 * self.precision * self.recall / denominator


class ValueLinkingMatcher:
    """Annotates a column by linking its cell values to KG entities.

    The entity lexicon maps known entity surface forms (country names,
    city names, first/last names, species, organisations) to a semantic
    type. The column is annotated with the majority entity type if at
    least ``min_support`` of its values link to an entity; otherwise no
    annotation is produced. Database-style columns (identifiers, numeric
    measures, codes, timestamps) link to nothing, so the matcher abstains
    on most of GitTables — the failure mode Figure 6a reports.
    """

    name = "value-linking"

    def __init__(self, min_support: float = 0.5) -> None:
        self.min_support = min_support
        self._lexicon: dict[str, str] = {}
        self._add_entities((name for name, _ in ValuePools.COUNTRIES), "country")
        self._add_entities((name for name, _ in ValuePools.CITIES), "city")
        self._add_entities(ValuePools.FIRST_NAMES, "name")
        self._add_entities(ValuePools.LAST_NAMES, "name")
        self._add_entities(ValuePools.SPECIES, "species")
        self._add_entities(ValuePools.GENERA, "genus")
        self._add_entities((name for name, _ in ValuePools.ETHNICITIES), "ethnicity")
        self._add_entities(ValuePools.TEAMS, "team")
        self._add_entities(ValuePools.BRANDS, "company")
        self._add_entities(ValuePools.LANGUAGES, "language")
        self._add_entities(ValuePools.COURSES, "subject")
        self._add_entities(ValuePools.ARTISTS, "artist")
        self._add_entities(ValuePools.GENRES, "genre")

    def _add_entities(self, surface_forms, entity_type: str) -> None:
        for form in surface_forms:
            self._lexicon[str(form).strip().lower()] = entity_type

    def _link_value(self, value: str) -> str | None:
        """Link one cell value to an entity type (exact, then token-level)."""
        exact = self._lexicon.get(value)
        if exact is not None:
            return exact
        token_types = [self._lexicon.get(token) for token in value.split()]
        token_types = [t for t in token_types if t is not None]
        if token_types and len(token_types) >= max(1, len(value.split()) // 2):
            return token_types[0]
        return None

    def _annotate(self, values, memo: dict[str, str | None]) -> str | None:
        non_empty = [str(value).strip().lower() for value in values if str(value).strip()]
        if not non_empty:
            return None
        linked: dict[str, int] = {}
        for value in non_empty:
            if value in memo:
                entity_type = memo[value]
            else:
                entity_type = memo[value] = self._link_value(value)
            if entity_type is not None:
                linked[entity_type] = linked.get(entity_type, 0) + 1
        if not linked:
            return None
        best_type, count = max(linked.items(), key=lambda item: item[1])
        if count / len(non_empty) < self.min_support:
            return None
        return best_type

    def annotate_column(self, values) -> str | None:
        """Predict a semantic type for a column of values, or abstain."""
        return self._annotate(values, {})

    def annotate_columns(self, columns) -> list[str | None]:
        """Batch prediction: one linking memo shared across all columns.

        Cell values repeat heavily across a benchmark's columns, so
        memoising value→entity links turns the batch into one lexicon
        pass over the distinct values.
        """
        memo: dict[str, str | None] = {}
        return [self._annotate(values, memo) for values in columns]


class PatternMatcher:
    """Annotates columns whose values match structural patterns."""

    name = "pattern-matching"

    _PATTERNS: tuple[tuple[str, re.Pattern], ...] = (
        ("email", re.compile(r"^[\w.+-]+@[\w-]+\.[\w.]+$")),
        ("url", re.compile(r"^https?://")),
        ("date", re.compile(r"^\d{4}-\d{2}-\d{2}")),
        ("postal code", re.compile(r"^\d{5}(-\d{4})?$")),
        ("telephone", re.compile(r"^\+?[\d\s()-]{7,}$")),
    )

    def __init__(self, min_support: float = 0.8) -> None:
        self.min_support = min_support

    def annotate_column(self, values) -> str | None:
        """Predict a structural type for a column of values, or abstain."""
        non_empty = [str(value).strip() for value in values if str(value).strip()]
        if not non_empty:
            return None
        for type_label, pattern in self._PATTERNS:
            matches = sum(1 for value in non_empty if pattern.match(value))
            if matches / len(non_empty) >= self.min_support:
                return type_label
        return None

    def annotate_columns(self, columns) -> list[str | None]:
        """Batch prediction over many columns."""
        return [self.annotate_column(values) for values in columns]


def _type_matches(predicted: str, gold: str) -> bool:
    """Whether a predicted type counts as correct for a gold type.

    SemTab scoring accepts the exact type; we additionally accept a match
    when one label is contained in the other ("name" vs "person name"),
    which is *generous* to the matchers — their scores stay low anyway.
    """
    predicted = predicted.strip().lower()
    gold = gold.strip().lower()
    if predicted == gold:
        return True
    return predicted in gold.split() or gold in predicted.split()


def evaluate_matcher(
    matcher, benchmark: KGMatchingBenchmark, ontology: str
) -> MatcherScore:
    """Precision/recall of a matcher on one ontology's benchmark columns.

    Precision counts correct predictions among produced annotations;
    recall counts correct predictions among all gold-annotated columns
    (abstentions hurt recall), following the SemTab CTA protocol.

    Matchers exposing ``annotate_columns`` are evaluated in one batch
    call; plain ``annotate_column`` matchers are looped per column.
    """
    columns = benchmark.columns_for(ontology)
    if not columns:
        raise ValueError(f"benchmark has no columns for ontology {ontology!r}")
    annotate_columns = getattr(matcher, "annotate_columns", None)
    if annotate_columns is not None:
        predictions = annotate_columns([column.values for column in columns])
    else:
        predictions = [matcher.annotate_column(column.values) for column in columns]
    predicted = 0
    correct = 0
    for column, prediction in zip(columns, predictions):
        if prediction is None:
            continue
        predicted += 1
        if _type_matches(prediction, column.gold_type):
            correct += 1
    precision = correct / predicted if predicted else 0.0
    recall = correct / len(columns)
    return MatcherScore(
        matcher=getattr(matcher, "name", matcher.__class__.__name__),
        ontology=ontology,
        precision=float(precision),
        recall=float(recall),
        n_columns=len(columns),
        n_predicted=predicted,
    )
