"""Data-shift detection between table corpora (paper §4.2).

The paper samples 5K deduplicated columns from GitTables and from VizNet,
extracts Sherlock features, and trains a Random Forest "domain
classifier" to predict which corpus a column came from. 10-fold
cross-validation accuracy of 93% demonstrates that the two corpora have
clearly different content distributions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._rand import derive_rng
from ..core.corpus import GitTablesCorpus
from ..ml.crossval import cross_validate
from ..ml.features import ColumnFeaturizer
from ..ml.metrics import accuracy_score
from ..ml.random_forest import RandomForestClassifier

__all__ = ["DomainShiftResult", "sample_corpus_columns", "detect_data_shift"]


@dataclass(frozen=True)
class DomainShiftResult:
    """Outcome of the domain-classifier experiment."""

    fold_accuracies: tuple[float, ...]
    n_columns_per_corpus: int
    n_features: int

    @property
    def mean_accuracy(self) -> float:
        return float(np.mean(self.fold_accuracies))

    @property
    def std_accuracy(self) -> float:
        return float(np.std(self.fold_accuracies))


def sample_corpus_columns(
    corpus: GitTablesCorpus,
    n_columns: int,
    seed: int = 0,
    deduplicate: bool = True,
) -> list[tuple[str, tuple]]:
    """Sample up to ``n_columns`` (column name, values) pairs from a corpus.

    Columns are deduplicated on (name, first values) so repeated snapshot
    tables do not dominate the sample, mirroring the paper's
    "deduplicated columns". The corpus is read in one streaming pass, so
    lazy disk-backed stores are never materialized — only the sampled
    column pool is held.
    """
    pool: list[tuple[str, tuple]] = []
    seen: set[tuple] = set()
    for annotated in corpus:
        for column in annotated.table.columns:
            key = (column.name, column.values[:5])
            if deduplicate and key in seen:
                continue
            seen.add(key)
            pool.append((column.name, column.values))
    if not pool:
        return []
    rng = derive_rng(seed, "corpus-column-sample", corpus.name)
    if len(pool) <= n_columns:
        return pool
    picks = rng.choice(len(pool), size=n_columns, replace=False)
    return [pool[i] for i in sorted(picks)]


def detect_data_shift(
    corpus_a: GitTablesCorpus,
    corpus_b: GitTablesCorpus,
    n_columns_per_corpus: int = 500,
    n_splits: int = 10,
    n_estimators: int = 20,
    featurizer: ColumnFeaturizer | None = None,
    seed: int = 0,
) -> DomainShiftResult:
    """Train a domain classifier separating columns of two corpora.

    Returns per-fold accuracies of a random forest trained on Sherlock
    features; a high accuracy means the corpora are distinguishable
    (content shift), which is the paper's headline 93% result.
    """
    featurizer = featurizer or ColumnFeaturizer()
    columns_a = sample_corpus_columns(corpus_a, n_columns_per_corpus, seed=seed)
    columns_b = sample_corpus_columns(corpus_b, n_columns_per_corpus, seed=seed + 1)
    if not columns_a or not columns_b:
        raise ValueError("both corpora must contain at least one column")

    features = featurizer.featurize_many([values for _, values in columns_a + columns_b])
    labels = np.array([0] * len(columns_a) + [1] * len(columns_b))

    scores = cross_validate(
        lambda: RandomForestClassifier(n_estimators=n_estimators, seed=seed),
        features,
        labels,
        accuracy_score,
        n_splits=n_splits,
        stratified=True,
        seed=seed,
    )
    return DomainShiftResult(
        fold_accuracies=tuple(scores),
        n_columns_per_corpus=min(len(columns_a), len(columns_b)),
        n_features=featurizer.n_features,
    )
