"""Semantic column type detection (paper §5.1, Table 7).

The paper trains Sherlock on columns sampled from GitTables for five
semantic types (address, class, status, name, description), reaching a
macro F1 of 0.86 with 5-fold cross-validation; the same model trained on
VizNet columns reaches 0.77 on VizNet but only 0.66 when evaluated on
GitTables, showing that Web-table models do not transfer.

This module implements the column sampling, featurisation, training and
the three train/evaluate corpus combinations of Table 7.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._rand import derive_rng
from ..core.annotation import AnnotationMethod
from ..core.corpus import GitTablesCorpus
from ..ml.crossval import StratifiedKFold
from ..ml.features import ColumnFeaturizer
from ..ml.metrics import f1_score_macro
from ..ml.neural import MLPClassifier
from ..storage.artifacts import IndexArtifactStore, corpus_content_fingerprint, try_publish

__all__ = ["TypeDetectionResult", "TypeDetectionExperiment", "DEFAULT_TARGET_TYPES"]

#: The five semantic types used in the paper's experiment.
DEFAULT_TARGET_TYPES: tuple[str, ...] = ("address", "class", "status", "name", "description")


@dataclass(frozen=True)
class TypeDetectionResult:
    """Macro F1 of one train/evaluate corpus combination."""

    train_corpus: str
    eval_corpus: str
    fold_f1_scores: tuple[float, ...]
    n_samples_train: int
    n_samples_eval: int

    @property
    def mean_f1(self) -> float:
        return float(np.mean(self.fold_f1_scores))

    @property
    def std_f1(self) -> float:
        return float(np.std(self.fold_f1_scores))

    def as_table7_row(self) -> dict:
        return {
            "train_corpus": self.train_corpus,
            "eval_corpus": self.eval_corpus,
            "f1_macro": round(self.mean_f1, 2),
            "f1_std": round(self.std_f1, 2),
        }


@dataclass
class _LabelledColumns:
    """Sampled, labelled, featurised columns of one corpus."""

    corpus_name: str
    labels: np.ndarray
    features: np.ndarray
    n_samples: int = field(init=False)

    def __post_init__(self) -> None:
        self.n_samples = len(self.labels)


class TypeDetectionExperiment:
    """Runs the Table 7 experiment for arbitrary corpora."""

    def __init__(
        self,
        target_types: tuple[str, ...] = DEFAULT_TARGET_TYPES,
        columns_per_type: int = 100,
        n_splits: int = 5,
        featurizer: ColumnFeaturizer | None = None,
        epochs: int = 30,
        seed: int = 0,
        artifacts: IndexArtifactStore | None = None,
    ) -> None:
        self.target_types = tuple(target_types)
        self.columns_per_type = columns_per_type
        self.n_splits = n_splits
        self.featurizer = featurizer or ColumnFeaturizer()
        self.epochs = epochs
        self.seed = seed
        #: Optional persisted-feature cache: sampled+featurised column
        #: matrices of disk-backed corpora are mmap'd back instead of
        #: re-extracted (see :meth:`sample_labelled_columns`).
        self.artifacts = artifacts

    # -- sampling -----------------------------------------------------------

    def _annotated_type(self, annotated, column_name: str) -> str | None:
        """The semantic type of a column, preferring syntactic annotations."""
        for method in (AnnotationMethod.SYNTACTIC, AnnotationMethod.SEMANTIC):
            for annotation in annotated.annotations.for_method(method):
                if annotation.column == column_name and annotation.type_label in self.target_types:
                    return annotation.type_label
        return None

    def _sampling_fingerprint(self, corpus_fingerprint: str, corpus_name: str) -> dict:
        """Everything that shapes the sampled feature matrix."""
        return {
            "kind": "type-features",
            "featurizer": self.featurizer.config_fingerprint(),
            "target_types": list(self.target_types),
            "columns_per_type": int(self.columns_per_type),
            "seed": int(self.seed),
            # The sampling RNG is derived from the corpus name as well.
            "corpus_name": corpus_name,
            "corpus": corpus_fingerprint,
        }

    def sample_labelled_columns(self, corpus: GitTablesCorpus) -> _LabelledColumns:
        """Sample up to ``columns_per_type`` deduplicated columns per type.

        One streaming pass over the corpus: works unchanged over lazy
        disk-backed stores, holding only the sampled column values. With
        an artifact store attached and a disk-backed corpus, the sampled
        feature matrix is mmap'd back from a fingerprint-guarded
        artifact (and published after a fresh extraction), so repeated
        experiments over the same store skip the corpus pass entirely.
        """
        artifact_name = None
        fingerprint = None
        if self.artifacts is not None:
            corpus_fingerprint = corpus_content_fingerprint(corpus)
            if corpus_fingerprint is not None:
                # Keyed per corpus so train/eval corpora of a transfer
                # experiment can coexist in one store.
                artifact_name = f"type-features-{corpus_fingerprint[:12]}"
                fingerprint = self._sampling_fingerprint(corpus_fingerprint, corpus.name)
                loaded = self.artifacts.load(artifact_name, fingerprint)
                if loaded is not None and "features" in loaded.arrays:
                    return _LabelledColumns(
                        corpus_name=loaded.payload.get("corpus_name", corpus.name),
                        labels=np.array(loaded.payload.get("labels", [])),
                        features=loaded.arrays["features"],
                    )

        per_type: dict[str, list[tuple]] = {label: [] for label in self.target_types}
        seen: set[tuple] = set()
        for annotated in corpus:
            for column in annotated.table.columns:
                label = self._annotated_type(annotated, column.name)
                if label is None:
                    continue
                key = (label, column.name, column.values[:5])
                if key in seen:
                    continue
                seen.add(key)
                per_type[label].append(column.values)

        rng = derive_rng(self.seed, "type-detection-sample", corpus.name)
        values_list: list[tuple] = []
        labels: list[str] = []
        for label in self.target_types:
            pool = per_type[label]
            if not pool:
                continue
            if len(pool) > self.columns_per_type:
                picks = rng.choice(len(pool), size=self.columns_per_type, replace=False)
                pool = [pool[i] for i in sorted(picks)]
            values_list.extend(pool)
            labels.extend([label] * len(pool))

        features = self.featurizer.featurize_many(values_list)
        if artifact_name is not None:
            try_publish(
                self.artifacts.publish,
                artifact_name,
                fingerprint,
                arrays={"features": features},
                payload={"labels": labels, "corpus_name": corpus.name},
            )
        return _LabelledColumns(
            corpus_name=corpus.name, labels=np.array(labels), features=features
        )

    # -- experiments ----------------------------------------------------------

    def _model(self) -> MLPClassifier:
        return MLPClassifier(hidden_sizes=(128, 64), epochs=self.epochs, seed=self.seed)

    def within_corpus(self, corpus: GitTablesCorpus, name: str | None = None) -> TypeDetectionResult:
        """Train and evaluate on the same corpus with k-fold CV."""
        data = self.sample_labelled_columns(corpus)
        if data.n_samples < self.n_splits * 2:
            raise ValueError(
                f"not enough labelled columns ({data.n_samples}) for {self.n_splits}-fold CV"
            )
        scores: list[float] = []
        for train_index, test_index in StratifiedKFold(self.n_splits, seed=self.seed).split(data.labels):
            model = self._model()
            model.fit(data.features[train_index], data.labels[train_index])
            predictions = model.predict(data.features[test_index])
            scores.append(f1_score_macro(data.labels[test_index], predictions))
        corpus_name = name or corpus.name
        return TypeDetectionResult(
            train_corpus=corpus_name,
            eval_corpus=corpus_name,
            fold_f1_scores=tuple(scores),
            n_samples_train=data.n_samples,
            n_samples_eval=data.n_samples,
        )

    def cross_corpus(
        self,
        train_corpus: GitTablesCorpus,
        eval_corpus: GitTablesCorpus,
        train_name: str | None = None,
        eval_name: str | None = None,
    ) -> TypeDetectionResult:
        """Train on one corpus and evaluate on another (transfer setting)."""
        train_data = self.sample_labelled_columns(train_corpus)
        eval_data = self.sample_labelled_columns(eval_corpus)
        if train_data.n_samples == 0 or eval_data.n_samples == 0:
            raise ValueError("both corpora must contain labelled columns")
        model = self._model()
        model.fit(train_data.features, train_data.labels)
        # Only evaluate on types the model has seen during training.
        known = set(model.classes_.tolist())
        mask = np.array([label in known for label in eval_data.labels])
        predictions = model.predict(eval_data.features[mask])
        score = f1_score_macro(eval_data.labels[mask], predictions)
        return TypeDetectionResult(
            train_corpus=train_name or train_corpus.name,
            eval_corpus=eval_name or eval_corpus.name,
            fold_f1_scores=(score,),
            n_samples_train=train_data.n_samples,
            n_samples_eval=int(mask.sum()),
        )

    def run_table7(
        self, gittables: GitTablesCorpus, viznet: GitTablesCorpus
    ) -> list[TypeDetectionResult]:
        """The three rows of paper Table 7."""
        return [
            self.within_corpus(gittables, name="GitTables"),
            self.within_corpus(viznet, name="VizNet"),
            self.cross_corpus(viznet, gittables, train_name="VizNet", eval_name="GitTables"),
        ]
