"""Configuration dataclasses for the GitTables construction pipeline.

The paper's pipeline has three stages (extraction, parsing/curation,
annotation); each stage gets its own configuration object so that
experiments can override exactly the knobs they need. ``PipelineConfig``
bundles the three plus global determinism settings.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from .errors import PipelineConfigError

#: File size cap imposed by the GitHub Search API (bytes); files larger
#: than this are not retrievable (paper §3.2).
GITHUB_MAX_FILE_SIZE = 438 * 1024

#: Maximum number of results the GitHub Search API returns per query.
GITHUB_RESULT_WINDOW = 1000

#: Results per page of the (simulated) Search API.
GITHUB_PAGE_SIZE = 100


@dataclass(frozen=True)
class ExtractionConfig:
    """Settings for the CSV extraction stage (paper §3.2)."""

    #: Number of WordNet topics used to build topic queries.
    topic_count: int = 40
    #: Maximum file size retrievable through the search API (bytes).
    max_file_size: int = GITHUB_MAX_FILE_SIZE
    #: Result window per query before size-segmentation is required.
    result_window: int = GITHUB_RESULT_WINDOW
    #: Page size used while paginating search responses.
    page_size: int = GITHUB_PAGE_SIZE
    #: Width (bytes) of the size ranges used to segment large topic queries.
    size_segment_bytes: int = 50 * 1024
    #: Whether to exclude files from forked repositories.
    exclude_forks: bool = True

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        if self.topic_count < 1:
            raise PipelineConfigError("topic_count must be >= 1")
        if self.page_size < 1 or self.page_size > self.result_window:
            raise PipelineConfigError("page_size must be in [1, result_window]")
        if self.size_segment_bytes < 1:
            raise PipelineConfigError("size_segment_bytes must be positive")


@dataclass(frozen=True)
class CurationConfig:
    """Settings for parsing, filtering and content curation (paper §3.3)."""

    #: Minimum number of rows for a table to be retained.
    min_rows: int = 2
    #: Minimum number of columns for a table to be retained.
    min_columns: int = 2
    #: Maximum fraction of unnamed columns tolerated per table.
    max_unnamed_fraction: float = 0.5
    #: Column-name substrings that cause a table to be dropped
    #: (social-media content filter).
    blocked_column_terms: tuple[str, ...] = ("twitter", "tweet", "reddit", "facebook")
    #: Only keep tables from repositories with a permissive license.
    require_permissive_license: bool = True
    #: Whether to anonymize columns annotated with PII semantic types.
    anonymize_pii: bool = True
    #: Minimum confidence for a PII annotation to trigger anonymisation.
    pii_confidence_threshold: float = 0.7

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        if self.min_rows < 0 or self.min_columns < 0:
            raise PipelineConfigError("minimum dimensions must be non-negative")
        if not 0.0 <= self.max_unnamed_fraction <= 1.0:
            raise PipelineConfigError("max_unnamed_fraction must be within [0, 1]")
        if not 0.0 <= self.pii_confidence_threshold <= 1.0:
            raise PipelineConfigError("pii_confidence_threshold must be within [0, 1]")


@dataclass(frozen=True)
class AnnotationConfig:
    """Settings for the column annotation stage (paper §3.4)."""

    #: Ontologies to annotate against.
    ontologies: tuple[str, ...] = ("dbpedia", "schema_org")
    #: Minimum cosine similarity retained by the semantic method.
    semantic_similarity_threshold: float = 0.5
    #: Whether to skip column names containing digits (paper §3.4).
    skip_numeric_column_names: bool = True
    #: Embedding dimensionality of the FastText-style model.
    embedding_dim: int = 64
    #: Character n-gram sizes for the FastText-style model.
    ngram_sizes: tuple[int, ...] = (3, 4, 5)

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        if not self.ontologies:
            raise PipelineConfigError("at least one ontology is required")
        unknown = set(self.ontologies) - {"dbpedia", "schema_org"}
        if unknown:
            raise PipelineConfigError(f"unknown ontologies: {sorted(unknown)}")
        if not 0.0 <= self.semantic_similarity_threshold <= 1.0:
            raise PipelineConfigError("semantic_similarity_threshold must be within [0, 1]")
        if self.embedding_dim < 4:
            raise PipelineConfigError("embedding_dim must be >= 4")
        if not self.ngram_sizes or any(n < 1 for n in self.ngram_sizes):
            raise PipelineConfigError("ngram_sizes must be positive")


@dataclass(frozen=True)
class IndexConfig:
    """Settings for the approximate nearest-neighbour index tier.

    Nearest-neighbour indexes over small corpora answer queries with one
    exact matrix product. Past ``min_rows`` rows that product is the
    latency bottleneck, so index consumers switch to a partitioned
    (IVF-style) tier: rows are clustered into ``n_partitions`` buckets
    with a deterministic k-means, a query is scored against the (few)
    partition centroids, and only the rows of the ``nprobe`` nearest
    partitions are exact-reranked with the flat kernel. Returned
    similarities are bit-identical to the flat index's values for every
    hit; ``nprobe >= n_partitions`` reproduces the flat results exactly.

    Only the build-shaping knobs (``min_rows``, ``n_partitions``,
    ``kmeans_iters``, ``holdout_queries``, ``recall_k``) participate in
    artifact fingerprints; ``nprobe`` is a query-time trade-off that can
    change without invalidating a persisted index.
    """

    #: Corpora smaller than this keep the exact flat index — the tier is
    #: opt-in by scale and never silently changes small-corpus results.
    min_rows: int = 10_000
    #: Number of k-means partitions; None derives ~sqrt(rows).
    n_partitions: int | None = None
    #: Partitions probed (then exact-reranked) per query. Larger probes
    #: raise recall and cost; ``>= n_partitions`` degrades to exact.
    nprobe: int = 8
    #: Fixed k-means iteration count (deterministic builds need a fixed
    #: schedule, not a convergence test).
    kmeans_iters: int = 8
    #: Rows sampled at build time to measure recall@``recall_k`` against
    #: the exact index (0 disables the measurement).
    holdout_queries: int = 64
    #: k used by the build-time recall measurement.
    recall_k: int = 10

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        if self.min_rows < 1:
            raise PipelineConfigError("min_rows must be >= 1")
        if self.n_partitions is not None and self.n_partitions < 1:
            raise PipelineConfigError("n_partitions must be >= 1 (or None for the heuristic)")
        if self.nprobe < 1:
            raise PipelineConfigError("nprobe must be >= 1")
        if self.kmeans_iters < 0:
            raise PipelineConfigError("kmeans_iters must be >= 0")
        if self.holdout_queries < 0:
            raise PipelineConfigError("holdout_queries must be >= 0")
        if self.recall_k < 1:
            raise PipelineConfigError("recall_k must be >= 1")

    def replace(self, **overrides: object) -> "IndexConfig":
        """A copy with the given fields replaced (and re-validated)."""
        return dataclasses.replace(self, **overrides)  # type: ignore[arg-type]

    def tier_active(self, n_rows: int) -> bool:
        """Whether the partitioned tier activates for ``n_rows`` rows."""
        return n_rows >= self.min_rows

    def resolve_partitions(self, n_rows: int) -> int:
        """The partition count for ``n_rows`` rows (explicit or ~sqrt)."""
        if self.n_partitions is not None:
            return max(1, min(self.n_partitions, n_rows))
        return max(1, min(n_rows, round(n_rows**0.5)))

    def build_fingerprint(self) -> dict:
        """The build-shaping knobs, as an artifact-fingerprint fragment.

        ``nprobe`` is deliberately absent: it only affects query-time
        probing, so retuning it must not invalidate persisted indexes.
        """
        return {
            "min_rows": int(self.min_rows),
            "n_partitions": self.n_partitions,
            "kmeans_iters": int(self.kmeans_iters),
            "holdout_queries": int(self.holdout_queries),
            "recall_k": int(self.recall_k),
        }


#: The configuration consumers fall back to when none is supplied.
DEFAULT_INDEX_CONFIG = IndexConfig()


@dataclass(frozen=True)
class ServingConfig:
    """Settings for the concurrent query service (:meth:`GitTables.serve`).

    The service fronts one loaded session with a micro-batcher (requests
    arriving within one window are coalesced into the existing batch
    kernels) and, with ``workers > 0``, a pool of worker processes that
    each mmap the store's persisted index artifacts.
    """

    #: Worker processes serving batches. 0 runs batches in-process (no
    #: extra processes; still micro-batched), which is also the only
    #: mode available to sessions without a sharded store directory.
    workers: int = 2
    #: Most requests one dispatched batch may carry.
    max_batch: int = 64
    #: How long the batcher holds a window open for more requests after
    #: the first arrives (milliseconds; 0 = dispatch whatever is queued).
    max_wait_ms: float = 2.0
    #: Admission limit: requests in flight (admitted, unresolved) beyond
    #: this are rejected with :class:`~repro.errors.ServiceOverloaded`.
    max_queue: int = 1024
    #: Default per-request deadline (seconds) when a submit call gives none.
    default_timeout_s: float = 30.0
    #: Crashed-worker respawns tolerated over the service's lifetime
    #: before in-flight requests on a dead worker fail with
    #: :class:`~repro.errors.WorkerCrashed`.
    max_respawns: int = 3
    #: How long :meth:`close` waits for in-flight batches to resolve.
    drain_timeout_s: float = 30.0
    #: Per-endpoint reservoir size for latency percentiles.
    latency_samples: int = 4096
    #: Index-tier settings applied by workers when they load the store
    #: (and by the in-process executor). ``None`` inherits the serving
    #: session's own index configuration.
    index: IndexConfig | None = None

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        if self.workers < 0:
            raise PipelineConfigError("workers must be >= 0")
        if self.workers > 99:
            raise PipelineConfigError("workers must be <= 99 (worker ids are two digits)")
        if self.max_batch < 1:
            raise PipelineConfigError("max_batch must be >= 1")
        if self.max_wait_ms < 0:
            raise PipelineConfigError("max_wait_ms must be >= 0")
        if self.max_queue < 1:
            raise PipelineConfigError("max_queue must be >= 1")
        if self.default_timeout_s <= 0:
            raise PipelineConfigError("default_timeout_s must be positive")
        if self.max_respawns < 0:
            raise PipelineConfigError("max_respawns must be >= 0")
        if self.drain_timeout_s <= 0:
            raise PipelineConfigError("drain_timeout_s must be positive")
        if self.latency_samples < 1:
            raise PipelineConfigError("latency_samples must be >= 1")

    def replace(self, **overrides: object) -> "ServingConfig":
        """A copy with the given fields replaced (and re-validated)."""
        return dataclasses.replace(self, **overrides)  # type: ignore[arg-type]

    @classmethod
    def in_process(cls, **overrides: object) -> "ServingConfig":
        """A workers=0 configuration (micro-batched, no worker processes)."""
        return cls(workers=0).replace(**overrides)


@dataclass(frozen=True)
class PipelineConfig:
    """Bundle of all stage configurations plus global determinism settings."""

    extraction: ExtractionConfig = field(default_factory=ExtractionConfig)
    curation: CurationConfig = field(default_factory=CurationConfig)
    annotation: AnnotationConfig = field(default_factory=AnnotationConfig)
    #: Seed driving every random choice in the pipeline.
    seed: int = 20230530
    #: Target number of tables for corpus construction runs.
    target_tables: int = 400
    #: Worker threads for batch-capable map stages (parsing, annotation).
    #: 1 (the default) keeps the strictly serial pull-driven execution;
    #: higher values let :class:`repro.pipeline.MapStage` process chunks
    #: in parallel, which prefetches work and may pull up to
    #: ``workers + 1`` chunks past an early-stop limit.
    workers: int = 1
    #: Worker *processes* for store-targeted corpus builds. 1 (the
    #: default) keeps the single-process streaming build; higher values
    #: fan the extract→parse→annotate→curate work out across OS
    #: processes with per-worker shard files and manifest logs, merged
    #: on commit boundaries (see :mod:`repro.storage.parallel`). Like
    #: ``workers``, this is proven not to change corpus contents, so it
    #: is excluded from the build's config fingerprint.
    processes: int = 1

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Validate every stage configuration; raise on the first error."""
        self.extraction.validate()
        self.curation.validate()
        self.annotation.validate()
        if self.target_tables < 1:
            raise PipelineConfigError("target_tables must be >= 1")
        if self.workers < 1:
            raise PipelineConfigError("workers must be >= 1")
        if self.processes < 1:
            raise PipelineConfigError("processes must be >= 1")

    def replace(self, **overrides: object) -> "PipelineConfig":
        """A copy with the given fields replaced (and re-validated).

        Accepts both top-level fields (``seed=1``, ``target_tables=50``)
        and whole stage configs (``annotation=AnnotationConfig(...)``)::

            config = PipelineConfig.small().replace(target_tables=50)
        """
        return dataclasses.replace(self, **overrides)  # type: ignore[arg-type]

    @classmethod
    def from_dict(cls, payload: dict) -> "PipelineConfig":
        """Reconstruct a configuration from its ``dataclasses.asdict`` form.

        The inverse of the build fingerprint's ``config`` section (see
        :func:`~repro.storage.checkpoint.config_fingerprint`), used to
        re-materialize the configuration a stored corpus was built with.
        JSON round-trips turn tuples into lists, so sequence-valued
        fields are coerced back; ``workers``/``processes`` are absent
        from fingerprints (they do not shape corpus contents) and fall
        back to their defaults. Unknown keys raise — a fingerprint from
        a newer layout must not be silently reinterpreted.
        """
        payload = dict(payload)
        extraction = ExtractionConfig(**payload.pop("extraction", {}))
        curation_kwargs = dict(payload.pop("curation", {}))
        if "blocked_column_terms" in curation_kwargs:
            curation_kwargs["blocked_column_terms"] = tuple(
                curation_kwargs["blocked_column_terms"]
            )
        curation = CurationConfig(**curation_kwargs)
        annotation_kwargs = dict(payload.pop("annotation", {}))
        for key in ("ontologies", "ngram_sizes"):
            if key in annotation_kwargs:
                annotation_kwargs[key] = tuple(annotation_kwargs[key])
        annotation = AnnotationConfig(**annotation_kwargs)
        return cls(
            extraction=extraction, curation=curation, annotation=annotation, **payload
        )

    @classmethod
    def small(cls, seed: int = 20230530) -> "PipelineConfig":
        """A configuration sized for tests (fast, ~100 tables)."""
        return cls(
            extraction=ExtractionConfig(topic_count=8),
            seed=seed,
            target_tables=100,
        )

    @classmethod
    def default(cls, seed: int = 20230530) -> "PipelineConfig":
        """The default experiment configuration (~400 tables)."""
        return cls(seed=seed)

    @classmethod
    def large(cls, seed: int = 20230530) -> "PipelineConfig":
        """A larger configuration used by the benchmark harness."""
        return cls(
            extraction=ExtractionConfig(topic_count=80),
            seed=seed,
            target_tables=1200,
        )
