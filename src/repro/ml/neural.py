"""A numpy MLP classifier standing in for the Sherlock deep model (§5.1).

Two hidden layers with ReLU activations, softmax output, cross-entropy
loss, Adam optimiser, mini-batch training and optional input
standardisation. Deterministic given the seed.
"""

from __future__ import annotations

import numpy as np

from .._rand import derive_rng
from ..errors import ModelNotFittedError

__all__ = ["MLPClassifier"]


def _one_hot(encoded: np.ndarray, n_classes: int) -> np.ndarray:
    matrix = np.zeros((encoded.shape[0], n_classes))
    matrix[np.arange(encoded.shape[0]), encoded] = 1.0
    return matrix


class MLPClassifier:
    """Multi-layer perceptron classifier trained with Adam."""

    def __init__(
        self,
        hidden_sizes: tuple[int, ...] = (128, 64),
        learning_rate: float = 1e-3,
        epochs: int = 40,
        batch_size: int = 64,
        l2: float = 1e-4,
        standardize: bool = True,
        seed: int = 0,
    ) -> None:
        if not hidden_sizes:
            raise ValueError("hidden_sizes must contain at least one layer")
        self.hidden_sizes = tuple(hidden_sizes)
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.batch_size = batch_size
        self.l2 = l2
        self.standardize = standardize
        self.seed = seed
        self.classes_: np.ndarray | None = None
        self._weights: list[np.ndarray] = []
        self._biases: list[np.ndarray] = []
        self._mean: np.ndarray | None = None
        self._std: np.ndarray | None = None
        self.loss_history_: list[float] = []

    # -- helpers -----------------------------------------------------------

    def _standardize(self, features: np.ndarray, fit: bool = False) -> np.ndarray:
        if not self.standardize:
            return features
        if fit:
            self._mean = features.mean(axis=0)
            self._std = features.std(axis=0)
            self._std[self._std == 0.0] = 1.0
        return (features - self._mean) / self._std

    def _init_parameters(self, n_features: int, n_classes: int) -> None:
        rng = derive_rng(self.seed, "mlp-init")
        sizes = [n_features, *self.hidden_sizes, n_classes]
        self._weights = []
        self._biases = []
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:]):
            scale = np.sqrt(2.0 / fan_in)
            self._weights.append(rng.standard_normal((fan_in, fan_out)) * scale)
            self._biases.append(np.zeros(fan_out))

    def _forward(self, batch: np.ndarray) -> tuple[list[np.ndarray], np.ndarray]:
        activations = [batch]
        hidden = batch
        for weight, bias in zip(self._weights[:-1], self._biases[:-1]):
            hidden = np.maximum(hidden @ weight + bias, 0.0)
            activations.append(hidden)
        logits = hidden @ self._weights[-1] + self._biases[-1]
        logits -= logits.max(axis=1, keepdims=True)
        exp = np.exp(logits)
        probabilities = exp / exp.sum(axis=1, keepdims=True)
        return activations, probabilities

    # -- training ----------------------------------------------------------

    def fit(self, features: np.ndarray, labels) -> "MLPClassifier":
        """Train the network on ``features`` and ``labels``."""
        features = np.asarray(features, dtype=float)
        labels = np.asarray(labels)
        if features.ndim != 2:
            raise ValueError("features must be a 2D array")
        if features.shape[0] != labels.shape[0]:
            raise ValueError("features and labels must have the same length")

        self.classes_, encoded = np.unique(labels, return_inverse=True)
        n_classes = len(self.classes_)
        features = self._standardize(features, fit=True)
        targets = _one_hot(encoded, n_classes)
        self._init_parameters(features.shape[1], n_classes)

        rng = derive_rng(self.seed, "mlp-batches")
        n_samples = features.shape[0]
        n_layers = len(self._weights)
        m = [np.zeros_like(w) for w in self._weights] + [np.zeros_like(b) for b in self._biases]
        v = [np.zeros_like(w) for w in self._weights] + [np.zeros_like(b) for b in self._biases]
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        step = 0
        self.loss_history_ = []

        for _epoch in range(self.epochs):
            order = rng.permutation(n_samples)
            epoch_loss = 0.0
            batches = 0
            for start in range(0, n_samples, self.batch_size):
                batch_index = order[start : start + self.batch_size]
                batch = features[batch_index]
                target = targets[batch_index]
                activations, probabilities = self._forward(batch)

                batch_loss = -np.mean(
                    np.sum(target * np.log(probabilities + 1e-12), axis=1)
                )
                epoch_loss += batch_loss
                batches += 1

                grads_w: list[np.ndarray] = [None] * n_layers  # type: ignore[list-item]
                grads_b: list[np.ndarray] = [None] * n_layers  # type: ignore[list-item]
                delta = (probabilities - target) / batch.shape[0]
                for layer in range(n_layers - 1, -1, -1):
                    grads_w[layer] = activations[layer].T @ delta + self.l2 * self._weights[layer]
                    grads_b[layer] = delta.sum(axis=0)
                    if layer > 0:
                        delta = (delta @ self._weights[layer].T) * (activations[layer] > 0.0)

                step += 1
                parameters = self._weights + self._biases
                gradients = grads_w + grads_b
                for i, (parameter, gradient) in enumerate(zip(parameters, gradients)):
                    m[i] = beta1 * m[i] + (1 - beta1) * gradient
                    v[i] = beta2 * v[i] + (1 - beta2) * gradient**2
                    m_hat = m[i] / (1 - beta1**step)
                    v_hat = v[i] / (1 - beta2**step)
                    parameter -= self.learning_rate * m_hat / (np.sqrt(v_hat) + eps)
            self.loss_history_.append(epoch_loss / max(batches, 1))
        return self

    # -- prediction --------------------------------------------------------

    def _check_fitted(self) -> None:
        if self.classes_ is None or not self._weights:
            raise ModelNotFittedError("MLPClassifier is not fitted")

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Class probabilities."""
        self._check_fitted()
        features = self._standardize(np.asarray(features, dtype=float))
        _, probabilities = self._forward(features)
        return probabilities

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Most probable class labels."""
        probabilities = self.predict_proba(features)
        return self.classes_[np.argmax(probabilities, axis=1)]
