"""Classification metrics: accuracy, precision/recall/F1 (macro), confusion."""

from __future__ import annotations

import numpy as np

__all__ = [
    "accuracy_score",
    "confusion_matrix",
    "precision_recall_f1",
    "f1_score_macro",
    "precision_score_macro",
    "recall_score_macro",
]


def _as_arrays(y_true, y_pred) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    if y_true.size == 0:
        raise ValueError("cannot score empty predictions")
    return y_true, y_pred


def accuracy_score(y_true, y_pred) -> float:
    """Fraction of exactly correct predictions."""
    y_true, y_pred = _as_arrays(y_true, y_pred)
    return float(np.mean(y_true == y_pred))


def confusion_matrix(y_true, y_pred, labels: list | None = None) -> tuple[np.ndarray, list]:
    """Confusion matrix (rows = true label, columns = predicted label)."""
    y_true, y_pred = _as_arrays(y_true, y_pred)
    if labels is None:
        labels = sorted(set(y_true.tolist()) | set(y_pred.tolist()), key=str)
    index = {label: i for i, label in enumerate(labels)}
    matrix = np.zeros((len(labels), len(labels)), dtype=int)
    for true, pred in zip(y_true.tolist(), y_pred.tolist()):
        if true in index and pred in index:
            matrix[index[true], index[pred]] += 1
    return matrix, list(labels)


def precision_recall_f1(y_true, y_pred, labels: list | None = None) -> dict[object, dict[str, float]]:
    """Per-class precision, recall and F1."""
    matrix, labels = confusion_matrix(y_true, y_pred, labels)
    results: dict[object, dict[str, float]] = {}
    for i, label in enumerate(labels):
        true_positive = matrix[i, i]
        predicted = matrix[:, i].sum()
        actual = matrix[i, :].sum()
        precision = true_positive / predicted if predicted else 0.0
        recall = true_positive / actual if actual else 0.0
        denominator = precision + recall
        f1 = 2 * precision * recall / denominator if denominator else 0.0
        results[label] = {"precision": float(precision), "recall": float(recall), "f1": float(f1)}
    return results


def _macro(y_true, y_pred, key: str) -> float:
    per_class = precision_recall_f1(y_true, y_pred)
    return float(np.mean([scores[key] for scores in per_class.values()]))


def f1_score_macro(y_true, y_pred) -> float:
    """Macro-averaged F1 (the paper's Table 7 metric)."""
    return _macro(y_true, y_pred, "f1")


def precision_score_macro(y_true, y_pred) -> float:
    """Macro-averaged precision."""
    return _macro(y_true, y_pred, "precision")


def recall_score_macro(y_true, y_pred) -> float:
    """Macro-averaged recall."""
    return _macro(y_true, y_pred, "recall")
