"""Hierarchy-aware evaluation of semantic type predictions (paper §3.4).

The paper notes that the type hierarchy shipped with GitTables lets one
"adopt a loss or evaluation function ... that favors a less granular type
(e.g. the type place for a ground-truth column of type city), instead of
predicting an unrelated type (e.g. size)". This module implements that
idea as an evaluation metric: a prediction earns full credit for an exact
match, partial credit when it is an ancestor or descendant of the gold
type, and no credit otherwise.
"""

from __future__ import annotations

import numpy as np

from ..ontology.types import Ontology

__all__ = ["hierarchical_credit", "hierarchical_accuracy", "hierarchical_report"]


def hierarchical_credit(
    predicted: str,
    gold: str,
    ontology: Ontology,
    ancestor_credit: float = 0.5,
) -> float:
    """Credit assigned to one prediction.

    1.0 for an exact label match, ``ancestor_credit`` when the predicted
    type is an ancestor of the gold type (a less granular but related
    annotation) or a descendant of it (more granular), 0.0 otherwise.
    """
    if not 0.0 <= ancestor_credit <= 1.0:
        raise ValueError("ancestor_credit must be within [0, 1]")
    if predicted == gold:
        return 1.0
    if ontology.is_descendant(gold, predicted) or ontology.is_descendant(predicted, gold):
        return ancestor_credit
    return 0.0


def hierarchical_accuracy(
    predictions,
    gold_labels,
    ontology: Ontology,
    ancestor_credit: float = 0.5,
) -> float:
    """Mean hierarchical credit over a batch of predictions."""
    predictions = list(predictions)
    gold_labels = list(gold_labels)
    if len(predictions) != len(gold_labels):
        raise ValueError("predictions and gold labels must have the same length")
    if not predictions:
        raise ValueError("cannot score an empty batch")
    credits = [
        hierarchical_credit(predicted, gold, ontology, ancestor_credit)
        for predicted, gold in zip(predictions, gold_labels)
    ]
    return float(np.mean(credits))


def hierarchical_report(
    predictions,
    gold_labels,
    ontology: Ontology,
    ancestor_credit: float = 0.5,
) -> dict[str, float]:
    """Breakdown of exact / related / unrelated predictions.

    Returns a dict with the exact-match rate, the related-match rate
    (ancestor or descendant), the unrelated rate, and the overall
    hierarchical accuracy.
    """
    predictions = list(predictions)
    gold_labels = list(gold_labels)
    if len(predictions) != len(gold_labels):
        raise ValueError("predictions and gold labels must have the same length")
    if not predictions:
        raise ValueError("cannot score an empty batch")
    exact = related = unrelated = 0
    for predicted, gold in zip(predictions, gold_labels):
        credit = hierarchical_credit(predicted, gold, ontology, ancestor_credit)
        if credit == 1.0:
            exact += 1
        elif credit > 0.0:
            related += 1
        else:
            unrelated += 1
    total = len(predictions)
    return {
        "exact_rate": exact / total,
        "related_rate": related / total,
        "unrelated_rate": unrelated / total,
        "hierarchical_accuracy": hierarchical_accuracy(
            predictions, gold_labels, ontology, ancestor_credit
        ),
    }
