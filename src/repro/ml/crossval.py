"""K-fold cross-validation utilities."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

import numpy as np

from .._rand import derive_rng

__all__ = ["KFold", "StratifiedKFold", "cross_validate"]


@dataclass(frozen=True)
class KFold:
    """Plain k-fold splitter with optional shuffling."""

    n_splits: int = 5
    shuffle: bool = True
    seed: int = 0

    def split(self, n_samples: int) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield (train_indices, test_indices) pairs."""
        if self.n_splits < 2:
            raise ValueError("n_splits must be >= 2")
        if n_samples < self.n_splits:
            raise ValueError("more splits than samples")
        indices = np.arange(n_samples)
        if self.shuffle:
            derive_rng(self.seed, "kfold").shuffle(indices)
        folds = np.array_split(indices, self.n_splits)
        for i in range(self.n_splits):
            test = folds[i]
            train = np.concatenate([folds[j] for j in range(self.n_splits) if j != i])
            yield train, test


@dataclass(frozen=True)
class StratifiedKFold:
    """K-fold splitter preserving per-class proportions."""

    n_splits: int = 5
    seed: int = 0

    def split(self, labels) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield (train_indices, test_indices) stratified by ``labels``."""
        labels = np.asarray(labels)
        if self.n_splits < 2:
            raise ValueError("n_splits must be >= 2")
        rng = derive_rng(self.seed, "stratified-kfold")
        per_class_folds: list[list[np.ndarray]] = []
        for label in np.unique(labels):
            class_indices = np.where(labels == label)[0]
            rng.shuffle(class_indices)
            per_class_folds.append(np.array_split(class_indices, self.n_splits))
        for i in range(self.n_splits):
            test = np.concatenate([folds[i] for folds in per_class_folds])
            train = np.concatenate(
                [folds[j] for folds in per_class_folds for j in range(self.n_splits) if j != i]
            )
            yield np.sort(train), np.sort(test)


def cross_validate(
    model_factory: Callable[[], object],
    features: np.ndarray,
    labels,
    scorer: Callable,
    n_splits: int = 5,
    stratified: bool = True,
    seed: int = 0,
) -> list[float]:
    """Train/evaluate a fresh model per fold and return per-fold scores.

    ``model_factory`` must return an unfitted estimator exposing
    ``fit(X, y)`` and ``predict(X)``; ``scorer(y_true, y_pred)`` returns a
    float.
    """
    features = np.asarray(features)
    labels = np.asarray(labels)
    scores: list[float] = []
    if stratified:
        splitter = StratifiedKFold(n_splits=n_splits, seed=seed)
        splits = splitter.split(labels)
    else:
        splitter = KFold(n_splits=n_splits, seed=seed)
        splits = splitter.split(len(labels))
    for train_index, test_index in splits:
        model = model_factory()
        model.fit(features[train_index], labels[train_index])
        predictions = model.predict(features[test_index])
        scores.append(float(scorer(labels[test_index], predictions)))
    return scores
