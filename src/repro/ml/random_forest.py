"""Random forest classifier built on the CART trees in :mod:`repro.ml.tree`.

Stands in for scikit-learn's ``RandomForestClassifier`` with default-like
settings (bootstrap sampling, sqrt feature subsampling, majority voting),
which is what the paper's data-shift domain classifier uses (§4.2).
"""

from __future__ import annotations

import numpy as np

from .._rand import derive_rng
from ..errors import ModelNotFittedError
from .tree import DecisionTreeClassifier

__all__ = ["RandomForestClassifier"]


class RandomForestClassifier:
    """Bagged ensemble of decision trees with feature subsampling."""

    def __init__(
        self,
        n_estimators: int = 30,
        max_depth: int = 12,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | str | None = "sqrt",
        bootstrap: bool = True,
        seed: int = 0,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.seed = seed
        self.estimators_: list[DecisionTreeClassifier] = []
        self.classes_: np.ndarray | None = None

    def fit(self, features: np.ndarray, labels) -> "RandomForestClassifier":
        """Fit ``n_estimators`` trees on bootstrap samples."""
        features = np.asarray(features, dtype=float)
        labels = np.asarray(labels)
        self.classes_ = np.unique(labels)
        self.estimators_ = []
        n_samples = features.shape[0]
        rng = derive_rng(self.seed, "random-forest")
        for index in range(self.n_estimators):
            if self.bootstrap:
                sample_indices = rng.integers(0, n_samples, size=n_samples)
            else:
                sample_indices = np.arange(n_samples)
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                seed=self.seed + index + 1,
            )
            tree.fit(features[sample_indices], labels[sample_indices])
            self.estimators_.append(tree)
        return self

    def _check_fitted(self) -> None:
        if not self.estimators_ or self.classes_ is None:
            raise ModelNotFittedError("RandomForestClassifier is not fitted")

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Averaged class probabilities over all trees."""
        self._check_fitted()
        features = np.asarray(features, dtype=float)
        class_index = {label: i for i, label in enumerate(self.classes_)}
        votes = np.zeros((features.shape[0], len(self.classes_)))
        for tree in self.estimators_:
            predictions = tree.predict(features)
            for row, label in enumerate(predictions):
                votes[row, class_index[label]] += 1.0
        return votes / len(self.estimators_)

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Majority-vote predictions."""
        probabilities = self.predict_proba(features)
        return self.classes_[np.argmax(probabilities, axis=1)]
