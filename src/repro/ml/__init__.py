"""Machine-learning substrate (no scikit-learn / tensorflow available).

Implements, from scratch on numpy, the estimators the paper's experiments
rely on:

* :mod:`~repro.ml.features` — Sherlock-style column featurisation
  (character distributions, statistical aggregates, embedding aggregates),
* :mod:`~repro.ml.tree` / :mod:`~repro.ml.random_forest` — CART decision
  trees and a random forest (the paper's domain classifier, §4.2),
* :mod:`~repro.ml.neural` — an MLP classifier standing in for the
  Sherlock deep model (§5.1),
* :mod:`~repro.ml.metrics` and :mod:`~repro.ml.crossval` — evaluation
  utilities (macro F1, k-fold cross-validation).
"""

from .crossval import KFold, StratifiedKFold, cross_validate
from .features import ColumnFeaturizer, FeatureVector
from .metrics import accuracy_score, confusion_matrix, f1_score_macro, precision_recall_f1
from .neural import MLPClassifier
from .random_forest import RandomForestClassifier
from .tree import DecisionTreeClassifier

__all__ = [
    "ColumnFeaturizer",
    "DecisionTreeClassifier",
    "FeatureVector",
    "KFold",
    "MLPClassifier",
    "RandomForestClassifier",
    "StratifiedKFold",
    "accuracy_score",
    "confusion_matrix",
    "cross_validate",
    "f1_score_macro",
    "precision_recall_f1",
]
