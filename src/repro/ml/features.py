"""Sherlock-style column featurisation (paper §4.2 and §5.1).

The paper extracts 1,188 features per column: character-level
distributions aggregated over the column's values, global statistics
(entropy, fraction of unique values, value-length statistics, numeric
summaries), and aggregated word embeddings. This module reproduces the
same three feature families on top of the FastText substrate:

* character features — for each of 50 tracked characters, the
  (mean, std, min, max, median, sum, any, all) of its per-value count
  → 400 features;
* global statistics — 27 features;
* word-embedding aggregates — element-wise mean, std, min and max of the
  per-value embeddings (4 × embedding dim).

With the default 64-dimensional embedding this yields 683 features; the
feature *families* and their roles match Sherlock, which is what the
experiments need (the exact dimensionality of the paper's extractor is an
artefact of its 50-d GloVe embeddings and a larger character set).
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass

import numpy as np

from ..dataframe.dtypes import is_missing
from ..dataframe.table import Column
from ..embeddings.fasttext import FastTextModel
from ..errors import FeatureExtractionError

__all__ = ["ColumnFeaturizer", "FeatureVector", "TRACKED_CHARACTERS"]

#: Characters whose per-value counts are tracked (Sherlock tracks all
#: ASCII; we keep the most informative ones, including '@' which the
#: paper calls out explicitly).
TRACKED_CHARACTERS = tuple("abcdefghijklmnopqrstuvwxyz0123456789") + (
    "@", ".", ",", "-", "_", "/", ":", "(", ")", "%", "$", "#", "&", "+",
)

_CHAR_AGGREGATES = ("mean", "std", "min", "max", "median", "sum", "any", "all")


@dataclass(frozen=True)
class FeatureVector:
    """A named feature vector for one column."""

    names: tuple[str, ...]
    values: np.ndarray

    def __len__(self) -> int:
        return len(self.names)

    def as_dict(self) -> dict[str, float]:
        return dict(zip(self.names, self.values.tolist()))


def _entropy(counts: Counter) -> float:
    total = sum(counts.values())
    if total == 0:
        return 0.0
    entropy = 0.0
    for count in counts.values():
        p = count / total
        entropy -= p * math.log2(p)
    return entropy


def _safe_stats(values: np.ndarray) -> tuple[float, float, float, float, float]:
    if values.size == 0:
        return 0.0, 0.0, 0.0, 0.0, 0.0
    return (
        float(values.mean()),
        float(values.std()),
        float(values.min()),
        float(values.max()),
        float(np.median(values)),
    )


def _skewness(values: np.ndarray) -> float:
    if values.size < 3:
        return 0.0
    std = values.std()
    if std == 0:
        return 0.0
    return float(np.mean(((values - values.mean()) / std) ** 3))


def _kurtosis(values: np.ndarray) -> float:
    if values.size < 4:
        return 0.0
    std = values.std()
    if std == 0:
        return 0.0
    return float(np.mean(((values - values.mean()) / std) ** 4) - 3.0)


class ColumnFeaturizer:
    """Extracts a fixed-length feature vector from a table column."""

    def __init__(
        self,
        embedding_model: FastTextModel | None = None,
        max_values: int = 100,
        include_embeddings: bool = True,
        include_char_features: bool = True,
        include_statistics: bool = True,
    ) -> None:
        if not (include_embeddings or include_char_features or include_statistics):
            raise FeatureExtractionError("at least one feature family must be enabled")
        self.model = embedding_model or FastTextModel(dim=64)
        self.max_values = max_values
        self.include_embeddings = include_embeddings
        self.include_char_features = include_char_features
        self.include_statistics = include_statistics
        self._names = tuple(self._feature_names())

    # -- feature names ------------------------------------------------------

    def _feature_names(self) -> list[str]:
        names: list[str] = []
        if self.include_char_features:
            for char in TRACKED_CHARACTERS:
                for aggregate in _CHAR_AGGREGATES:
                    names.append(f"char[{char}]_{aggregate}")
        if self.include_statistics:
            names.extend(
                [
                    "n_values", "n_missing", "missing_fraction", "n_distinct",
                    "distinct_fraction", "entropy", "length_mean", "length_std",
                    "length_min", "length_max", "length_median", "numeric_fraction",
                    "numeric_mean", "numeric_std", "numeric_min", "numeric_max",
                    "numeric_median", "numeric_skewness", "numeric_kurtosis",
                    "alpha_fraction", "digit_fraction", "space_fraction",
                    "punct_fraction", "upper_fraction", "token_count_mean",
                    "starts_with_digit_fraction", "url_like_fraction",
                ]
            )
        if self.include_embeddings:
            for aggregate in ("mean", "std", "min", "max"):
                names.extend(f"emb_{aggregate}_{i}" for i in range(self.model.dim))
        return names

    @property
    def feature_names(self) -> tuple[str, ...]:
        return self._names

    @property
    def n_features(self) -> int:
        return len(self._names)

    def config_fingerprint(self) -> dict:
        """JSON identity of everything that shapes the feature vectors.

        Used to guard persisted feature matrices (see
        :mod:`repro.storage.artifacts`): two featurizers with equal
        fingerprints produce bit-identical features for the same values.
        """
        from ..embeddings.persist import embedder_fingerprint

        return {
            "model": embedder_fingerprint(self.model),
            "max_values": int(self.max_values),
            "include_embeddings": bool(self.include_embeddings),
            "include_char_features": bool(self.include_char_features),
            "include_statistics": bool(self.include_statistics),
        }

    # -- extraction ----------------------------------------------------------

    def _string_values(self, values) -> list[str]:
        strings = [str(value) for value in values if not is_missing(value)]
        return strings[: self.max_values]

    def _char_features(self, strings: list[str]) -> list[float]:
        features: list[float] = []
        if not strings:
            return [0.0] * (len(TRACKED_CHARACTERS) * len(_CHAR_AGGREGATES))
        counts_per_char = {char: np.zeros(len(strings)) for char in TRACKED_CHARACTERS}
        for position, text in enumerate(strings):
            counter = Counter(text.lower())
            for char in TRACKED_CHARACTERS:
                if char in counter:
                    counts_per_char[char][position] = counter[char]
        for char in TRACKED_CHARACTERS:
            counts = counts_per_char[char]
            mean, std, minimum, maximum, median = _safe_stats(counts)
            features.extend(
                [
                    mean, std, minimum, maximum, median,
                    float(counts.sum()),
                    float(np.any(counts > 0)),
                    float(np.all(counts > 0)),
                ]
            )
        return features

    def _statistics(self, values, strings: list[str]) -> list[float]:
        total = len(values)
        n_missing = sum(1 for value in values if is_missing(value))
        lengths = np.array([len(text) for text in strings], dtype=float)
        numeric = []
        for text in strings:
            try:
                numeric.append(float(text.replace(",", "")))
            except ValueError:
                continue
        numeric_array = np.array(numeric, dtype=float)

        char_total = max(1, int(lengths.sum()))
        alpha = sum(sum(char.isalpha() for char in text) for text in strings)
        digits = sum(sum(char.isdigit() for char in text) for text in strings)
        spaces = sum(text.count(" ") for text in strings)
        uppers = sum(sum(char.isupper() for char in text) for text in strings)
        puncts = sum(
            sum(not char.isalnum() and not char.isspace() for char in text) for text in strings
        )

        length_mean, length_std, length_min, length_max, length_median = _safe_stats(lengths)
        numeric_mean, numeric_std, numeric_min, numeric_max, numeric_median = _safe_stats(
            numeric_array
        )

        return [
            float(total),
            float(n_missing),
            n_missing / total if total else 0.0,
            float(len(set(strings))),
            len(set(strings)) / len(strings) if strings else 0.0,
            _entropy(Counter(strings)),
            length_mean, length_std, length_min, length_max, length_median,
            len(numeric) / len(strings) if strings else 0.0,
            numeric_mean, numeric_std, numeric_min, numeric_max, numeric_median,
            _skewness(numeric_array), _kurtosis(numeric_array),
            alpha / char_total, digits / char_total, spaces / char_total,
            puncts / char_total, uppers / char_total,
            float(np.mean([len(text.split()) for text in strings])) if strings else 0.0,
            float(np.mean([text[:1].isdigit() for text in strings])) if strings else 0.0,
            float(np.mean([text.startswith(("http://", "https://")) for text in strings]))
            if strings
            else 0.0,
        ]

    def _embedding_features(self, strings: list[str]) -> list[float]:
        dim = self.model.dim
        if not strings:
            return [0.0] * (4 * dim)
        matrix = self.model.embed_batch(strings[:50])
        return (
            matrix.mean(axis=0).tolist()
            + matrix.std(axis=0).tolist()
            + matrix.min(axis=0).tolist()
            + matrix.max(axis=0).tolist()
        )

    def featurize_values(self, values) -> FeatureVector:
        """Featurise a raw sequence of cell values."""
        values = list(values)
        strings = self._string_values(values)
        features: list[float] = []
        if self.include_char_features:
            features.extend(self._char_features(strings))
        if self.include_statistics:
            features.extend(self._statistics(values, strings))
        if self.include_embeddings:
            features.extend(self._embedding_features(strings))
        vector = np.array(features, dtype=float)
        vector[~np.isfinite(vector)] = 0.0
        return FeatureVector(names=self._names, values=vector)

    def featurize_column(self, column: Column) -> FeatureVector:
        """Featurise a :class:`~repro.dataframe.table.Column`."""
        return self.featurize_values(column.values)

    def featurize_many(self, columns) -> np.ndarray:
        """Featurise several columns into a (n_columns, n_features) matrix."""
        vectors = [self.featurize_values(getattr(col, "values", col)).values for col in columns]
        if not vectors:
            return np.zeros((0, self.n_features))
        return np.vstack(vectors)
