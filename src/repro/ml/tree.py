"""CART decision tree classifier (numpy, from scratch).

A reasonably vectorised implementation: at every node a random subset of
features is examined; for each candidate feature the samples are sorted
once and the Gini impurity of every possible threshold is computed with
cumulative class counts, so the per-feature cost is O(n log n) rather
than O(n * thresholds).
"""

from __future__ import annotations

import numpy as np

from .._rand import default_rng
from ..errors import ModelNotFittedError

__all__ = ["DecisionTreeClassifier"]


class _Node:
    __slots__ = ("feature", "threshold", "left", "right", "prediction", "probabilities")

    def __init__(self) -> None:
        self.feature: int | None = None
        self.threshold: float = 0.0
        self.left: "_Node | None" = None
        self.right: "_Node | None" = None
        self.prediction: int = 0
        self.probabilities: np.ndarray | None = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _gini_split_scores(sorted_labels: np.ndarray, n_classes: int) -> np.ndarray:
    """Weighted Gini impurity for every split position of a sorted label array.

    Position ``i`` corresponds to putting the first ``i + 1`` samples in the
    left child. Returns an array of length ``len(labels) - 1``.
    """
    n_samples = sorted_labels.shape[0]
    one_hot = np.zeros((n_samples, n_classes))
    one_hot[np.arange(n_samples), sorted_labels] = 1.0
    left_counts = np.cumsum(one_hot, axis=0)[:-1]
    total_counts = left_counts[-1] + one_hot[-1]
    right_counts = total_counts - left_counts

    left_sizes = np.arange(1, n_samples)
    right_sizes = n_samples - left_sizes

    left_gini = 1.0 - np.sum((left_counts / left_sizes[:, None]) ** 2, axis=1)
    right_gini = 1.0 - np.sum((right_counts / right_sizes[:, None]) ** 2, axis=1)
    return (left_sizes * left_gini + right_sizes * right_gini) / n_samples


class DecisionTreeClassifier:
    """A CART classifier with Gini impurity splits."""

    def __init__(
        self,
        max_depth: int = 12,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | str | None = None,
        seed: int = 0,
    ) -> None:
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self._root: _Node | None = None
        self.classes_: np.ndarray | None = None

    # -- fitting -----------------------------------------------------------

    def fit(self, features: np.ndarray, labels) -> "DecisionTreeClassifier":
        """Fit the tree on ``features`` (n_samples, n_features) and ``labels``."""
        features = np.asarray(features, dtype=float)
        labels = np.asarray(labels)
        if features.ndim != 2:
            raise ValueError("features must be a 2D array")
        if features.shape[0] != labels.shape[0]:
            raise ValueError("features and labels must have the same length")
        self.classes_, encoded = np.unique(labels, return_inverse=True)
        self._rng = default_rng(self.seed)
        self._n_features = features.shape[1]
        self._root = self._build(features, encoded, depth=0)
        return self

    def _n_candidate_features(self) -> int:
        if self.max_features is None:
            return self._n_features
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(self._n_features)))
        if self.max_features == "log2":
            return max(1, int(np.log2(self._n_features)))
        return max(1, min(int(self.max_features), self._n_features))

    def _build(self, features: np.ndarray, labels: np.ndarray, depth: int) -> _Node:
        node = _Node()
        counts = np.bincount(labels, minlength=len(self.classes_))
        node.prediction = int(np.argmax(counts))
        node.probabilities = counts / counts.sum()

        n_samples = features.shape[0]
        if (
            depth >= self.max_depth
            or n_samples < self.min_samples_split
            or counts.max() == n_samples
        ):
            return node

        best = self._best_split(features, labels)
        if best is None:
            return node
        feature, threshold = best
        mask = features[:, feature] <= threshold
        if mask.sum() < self.min_samples_leaf or (~mask).sum() < self.min_samples_leaf:
            return node

        node.feature = feature
        node.threshold = threshold
        node.left = self._build(features[mask], labels[mask], depth + 1)
        node.right = self._build(features[~mask], labels[~mask], depth + 1)
        return node

    def _best_split(self, features: np.ndarray, labels: np.ndarray) -> tuple[int, float] | None:
        n_classes = len(self.classes_)
        candidates = self._rng.choice(
            self._n_features, size=self._n_candidate_features(), replace=False
        )
        best_score = np.inf
        best: tuple[int, float] | None = None
        for feature in candidates:
            column = features[:, feature]
            order = np.argsort(column, kind="stable")
            sorted_values = column[order]
            sorted_labels = labels[order]
            if sorted_values[0] == sorted_values[-1]:
                continue
            scores = _gini_split_scores(sorted_labels, n_classes)
            # Only split positions where the feature value actually changes.
            valid = sorted_values[:-1] < sorted_values[1:]
            if not np.any(valid):
                continue
            scores = np.where(valid, scores, np.inf)
            position = int(np.argmin(scores))
            if scores[position] < best_score:
                best_score = float(scores[position])
                threshold = (sorted_values[position] + sorted_values[position + 1]) / 2.0
                best = (int(feature), float(threshold))
        return best

    # -- prediction --------------------------------------------------------

    def _check_fitted(self) -> None:
        if self._root is None or self.classes_ is None:
            raise ModelNotFittedError("DecisionTreeClassifier is not fitted")

    def _predict_row(self, row: np.ndarray) -> _Node:
        node = self._root
        while not node.is_leaf:
            node = node.left if row[node.feature] <= node.threshold else node.right
        return node

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict class labels for ``features``."""
        self._check_fitted()
        features = np.asarray(features, dtype=float)
        predictions = [self._predict_row(row).prediction for row in features]
        return self.classes_[np.array(predictions, dtype=int)]

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Class probability estimates (leaf class frequencies)."""
        self._check_fitted()
        features = np.asarray(features, dtype=float)
        return np.vstack([self._predict_row(row).probabilities for row in features])

    def depth(self) -> int:
        """The depth of the fitted tree."""
        self._check_fitted()

        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self._root)
