"""CSV dialect sniffing.

The paper leverages "the integrated functionality of Python's Sniffer
tool" to determine the delimiter of CSV files (§3.3). This module provides
an equivalent sniffer operating on raw text: it scores candidate
delimiters by the consistency of the per-line field counts they induce,
preferring delimiters that split most lines into the same, largest number
of fields.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from ..errors import SnifferError

__all__ = ["Dialect", "sniff_dialect", "CANDIDATE_DELIMITERS"]

#: Delimiters considered by the sniffer, in preference order for ties.
CANDIDATE_DELIMITERS = (",", ";", "\t", "|", ":")


@dataclass(frozen=True)
class Dialect:
    """A detected CSV dialect."""

    delimiter: str
    quotechar: str = '"'
    #: Fraction of sampled lines whose field count equals the modal count.
    consistency: float = 1.0

    def __post_init__(self) -> None:
        if len(self.delimiter) != 1:
            raise SnifferError(f"delimiter must be a single character, got {self.delimiter!r}")


def _split_respecting_quotes(line: str, delimiter: str, quotechar: str = '"') -> list[str]:
    """Split ``line`` on ``delimiter`` outside quoted regions."""
    fields: list[str] = []
    current: list[str] = []
    in_quotes = False
    i = 0
    length = len(line)
    while i < length:
        char = line[i]
        if char == quotechar:
            if in_quotes and i + 1 < length and line[i + 1] == quotechar:
                current.append(quotechar)
                i += 2
                continue
            in_quotes = not in_quotes
        elif char == delimiter and not in_quotes:
            fields.append("".join(current))
            current = []
        else:
            current.append(char)
        i += 1
    fields.append("".join(current))
    return fields


def _score_delimiter(lines: list[str], delimiter: str) -> tuple[float, int]:
    """Return (consistency, modal field count) for a candidate delimiter."""
    counts = Counter(len(_split_respecting_quotes(line, delimiter)) for line in lines)
    if not counts:
        return 0.0, 1
    modal_count, modal_freq = counts.most_common(1)[0]
    if modal_count <= 1:
        return 0.0, modal_count
    return modal_freq / len(lines), modal_count


def sniff_dialect(text: str, sample_lines: int = 50) -> Dialect:
    """Detect the delimiter of ``text``.

    Raises :class:`~repro.errors.SnifferError` when no candidate delimiter
    splits the sample into more than one field consistently — the caller
    (the CSV parser) treats this as an unparseable file.
    """
    lines = [line for line in text.splitlines() if line.strip()][:sample_lines]
    if not lines:
        raise SnifferError("cannot sniff an empty payload")

    best: tuple[float, int, str] | None = None
    for delimiter in CANDIDATE_DELIMITERS:
        consistency, modal_count = _score_delimiter(lines, delimiter)
        if consistency == 0.0:
            continue
        # Prefer higher consistency, then more fields, then candidate order.
        key = (consistency, modal_count)
        if best is None or key > (best[0], best[1]):
            best = (consistency, modal_count, delimiter)

    if best is None:
        raise SnifferError("no candidate delimiter produced a consistent split")
    consistency, _, delimiter = best
    return Dialect(delimiter=delimiter, consistency=consistency)


def split_line(line: str, dialect: Dialect) -> list[str]:
    """Split a single CSV line according to ``dialect``."""
    return _split_respecting_quotes(line, dialect.delimiter, dialect.quotechar)
