"""Lightweight relational table substrate.

This subpackage replaces the paper's use of ``pandas.read_csv`` and
Python's ``csv.Sniffer``. It provides:

* :class:`~repro.dataframe.table.Table` and
  :class:`~repro.dataframe.table.Column` — in-memory relational tables,
* :func:`~repro.dataframe.sniffer.sniff_dialect` — delimiter detection,
* :func:`~repro.dataframe.parser.parse_csv` — a tolerant CSV parser
  implementing the curation rules from paper §3.3,
* :mod:`~repro.dataframe.dtypes` — atomic data type inference.
"""

from .dtypes import AtomicType, infer_column_type, infer_value_type
from .io import read_csv_file, table_to_csv, write_csv_file
from .parser import ParseReport, parse_csv
from .sniffer import Dialect, sniff_dialect
from .table import Column, Table

__all__ = [
    "AtomicType",
    "Column",
    "Dialect",
    "ParseReport",
    "Table",
    "infer_column_type",
    "infer_value_type",
    "parse_csv",
    "read_csv_file",
    "sniff_dialect",
    "table_to_csv",
    "write_csv_file",
]
