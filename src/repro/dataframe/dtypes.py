"""Atomic data type inference for table columns.

The paper (Table 4) reports the distribution of *atomic data types*
(numeric vs string vs other) for GitTables and WDC WebTables. This module
implements per-value and per-column type inference mirroring what
``pandas.read_csv`` would produce with default dtype inference, extended
with date and boolean detection used by the annotation metadata.
"""

from __future__ import annotations

import re
from collections import Counter
from enum import Enum
from typing import Iterable, Sequence

__all__ = [
    "AtomicType",
    "MISSING_TOKENS",
    "infer_value_type",
    "infer_column_type",
    "coerce_value",
    "is_missing",
]

#: Tokens treated as missing values, mirroring pandas' default NA values.
MISSING_TOKENS = frozenset(
    {"", "na", "n/a", "nan", "null", "none", "-", "?", "nil", "missing", "#n/a"}
)

_INT_RE = re.compile(r"^[+-]?\d{1,18}$")
_FLOAT_RE = re.compile(r"^[+-]?(\d+\.\d*|\.\d+|\d+)([eE][+-]?\d+)?$")
_THOUSANDS_RE = re.compile(r"^[+-]?\d{1,3}(,\d{3})+(\.\d+)?$")
_BOOL_TOKENS = frozenset({"true", "false", "yes", "no", "t", "f", "y", "n"})
_DATE_RES = (
    re.compile(r"^\d{4}-\d{1,2}-\d{1,2}([ T]\d{1,2}:\d{2}(:\d{2})?)?$"),
    re.compile(r"^\d{1,2}/\d{1,2}/\d{2,4}$"),
    re.compile(r"^\d{1,2}-[A-Za-z]{3}-\d{2,4}$"),
    re.compile(r"^\d{4}/\d{1,2}/\d{1,2}$"),
)


class AtomicType(str, Enum):
    """Atomic data types attached to columns and semantic types."""

    INTEGER = "integer"
    FLOAT = "float"
    BOOLEAN = "boolean"
    DATE = "date"
    STRING = "string"
    EMPTY = "empty"

    @property
    def is_numeric(self) -> bool:
        """True for integer and float columns (paper Table 4 'Numeric')."""
        return self in (AtomicType.INTEGER, AtomicType.FLOAT)

    @property
    def coarse(self) -> str:
        """Coarse bucket used in Table 4: ``numeric``/``string``/``other``.

        Dates count as strings because the paper's pandas-based inference
        leaves unparsed dates as object columns; only booleans and fully
        empty columns land in "other", matching its ~0.5% share.
        """
        if self.is_numeric:
            return "numeric"
        if self in (AtomicType.STRING, AtomicType.DATE):
            return "string"
        return "other"


def is_missing(value: object) -> bool:
    """Return True when ``value`` should be treated as a missing cell."""
    if value is None:
        return True
    if isinstance(value, float) and value != value:  # NaN
        return True
    if isinstance(value, str):
        return value.strip().lower() in MISSING_TOKENS
    return False


def infer_value_type(value: object) -> AtomicType:
    """Infer the atomic type of a single cell value."""
    if is_missing(value):
        return AtomicType.EMPTY
    if isinstance(value, bool):
        return AtomicType.BOOLEAN
    if isinstance(value, int):
        return AtomicType.INTEGER
    if isinstance(value, float):
        return AtomicType.FLOAT
    text = str(value).strip()
    lowered = text.lower()
    if lowered in _BOOL_TOKENS:
        return AtomicType.BOOLEAN
    if _INT_RE.match(text):
        return AtomicType.INTEGER
    if _FLOAT_RE.match(text) or _THOUSANDS_RE.match(text):
        return AtomicType.FLOAT
    if any(pattern.match(text) for pattern in _DATE_RES):
        return AtomicType.DATE
    return AtomicType.STRING


def infer_column_type(values: Sequence[object] | Iterable[object]) -> AtomicType:
    """Infer the dominant atomic type of a column.

    The rules follow pandas-like promotion: a column with integer and
    float values is a float column; a column with any non-numeric,
    non-missing value is a string column unless >=90% of non-missing
    values agree on boolean/date.
    """
    counts: Counter[AtomicType] = Counter()
    for value in values:
        counts[infer_value_type(value)] += 1
    non_missing = sum(count for kind, count in counts.items() if kind is not AtomicType.EMPTY)
    if non_missing == 0:
        return AtomicType.EMPTY

    numeric = counts[AtomicType.INTEGER] + counts[AtomicType.FLOAT]
    if numeric == non_missing:
        if counts[AtomicType.FLOAT]:
            return AtomicType.FLOAT
        return AtomicType.INTEGER

    for candidate in (AtomicType.BOOLEAN, AtomicType.DATE):
        if counts[candidate] / non_missing >= 0.9:
            return candidate

    # Mostly-numeric columns with a few stray strings are still useful as
    # numeric data for statistics, but pandas would infer object; we follow
    # pandas and fall through to string unless numeric values dominate
    # overwhelmingly (>=95%).
    if numeric / non_missing >= 0.95:
        return AtomicType.FLOAT if counts[AtomicType.FLOAT] else AtomicType.INTEGER
    return AtomicType.STRING


def coerce_value(value: object, target: AtomicType) -> object:
    """Coerce a raw cell value to ``target``; missing values become None."""
    if is_missing(value):
        return None
    text = str(value).strip()
    try:
        if target is AtomicType.INTEGER:
            return int(float(text.replace(",", "")))
        if target is AtomicType.FLOAT:
            return float(text.replace(",", ""))
        if target is AtomicType.BOOLEAN:
            return text.lower() in {"true", "yes", "t", "y", "1"}
    except (TypeError, ValueError):
        return text
    return text
