"""Tolerant CSV → Table parser implementing the paper's §3.3 rules.

The parsing rules reproduced here, in order:

1. Sniff the delimiter (``repro.dataframe.sniffer``).
2. Skip leading lines that are empty or start with ``#`` (commented lines).
3. Treat the first remaining row as the header.
4. Drop "bad lines": empty lines, commented lines, and lines whose field
   count differs from the header width (after realignment).
5. Realign rows that carry a redundant trailing separator (an extra empty
   field at the end of every row), and headers with a trailing separator.
6. Fail with :class:`~repro.errors.CSVParseError` when no rows survive or
   the payload cannot be interpreted at all. Callers track the parse
   success rate (the paper reports 99.3%).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import CSVParseError, SnifferError
from .sniffer import Dialect, sniff_dialect, split_line
from .table import Table

__all__ = ["ParseReport", "parse_csv"]


@dataclass
class ParseReport:
    """Diagnostics describing how a CSV payload was parsed."""

    dialect: Dialect | None = None
    skipped_leading_lines: int = 0
    dropped_bad_lines: int = 0
    realigned_trailing_separator: bool = False
    total_lines: int = 0
    parsed_rows: int = 0
    warnings: list[str] = field(default_factory=list)

    @property
    def bad_line_fraction(self) -> float:
        if self.total_lines == 0:
            return 0.0
        return self.dropped_bad_lines / self.total_lines


def _is_comment_or_blank(line: str) -> bool:
    stripped = line.strip()
    return not stripped or stripped.startswith("#")


def _strip_quotes(value: str) -> str:
    value = value.strip()
    if len(value) >= 2 and value[0] == '"' and value[-1] == '"':
        return value[1:-1]
    return value


def parse_csv(
    text: str,
    table_id: str | None = None,
    metadata: dict[str, object] | None = None,
) -> tuple[Table, ParseReport]:
    """Parse raw CSV text into a :class:`Table`.

    Returns the table plus a :class:`ParseReport` describing applied fixes.
    Raises :class:`CSVParseError` if the payload cannot be parsed.
    """
    report = ParseReport()
    if not text or not text.strip():
        raise CSVParseError("empty CSV payload")

    lines = text.splitlines()
    report.total_lines = len(lines)

    # Rule 2: skip leading blank/commented lines.
    start = 0
    while start < len(lines) and _is_comment_or_blank(lines[start]):
        start += 1
        report.skipped_leading_lines += 1
    if start >= len(lines):
        raise CSVParseError("payload contains only blank or commented lines")

    body = lines[start:]
    try:
        dialect = sniff_dialect("\n".join(body))
    except SnifferError as exc:
        raise CSVParseError(f"could not determine delimiter: {exc}") from exc
    report.dialect = dialect

    header_fields = [_strip_quotes(field) for field in split_line(body[0], dialect)]
    if not header_fields:
        raise CSVParseError("empty header row")

    raw_rows: list[list[str]] = []
    for line in body[1:]:
        if _is_comment_or_blank(line):
            report.dropped_bad_lines += 1
            continue
        raw_rows.append([_strip_quotes(field) for field in split_line(line, dialect)])

    # Rule 5: realign header and values when a redundant trailing
    # separator makes the number of attributes and the number of values
    # per row disagree by exactly one empty field. The modal row width
    # decides which side carries the redundant separator.
    if raw_rows:
        width_counts: dict[int, int] = {}
        for fields in raw_rows:
            width_counts[len(fields)] = width_counts.get(len(fields), 0) + 1
        modal_width = max(width_counts, key=lambda w: (width_counts[w], w))
        if len(header_fields) == modal_width + 1 and header_fields[-1] == "":
            header_fields = header_fields[:-1]
            report.realigned_trailing_separator = True
        elif modal_width == len(header_fields) + 1:
            trailing_empty = sum(
                1 for fields in raw_rows if len(fields) == modal_width and fields[-1] == ""
            )
            if trailing_empty >= max(1, width_counts[modal_width] // 2):
                raw_rows = [
                    fields[:-1]
                    if len(fields) == modal_width and fields[-1] == ""
                    else fields
                    for fields in raw_rows
                ]
                report.realigned_trailing_separator = True

    width = len(header_fields)
    rows: list[list[str]] = []
    for fields in raw_rows:
        if len(fields) != width:
            # Rule 4: bad line (extra or missing delimiters).
            report.dropped_bad_lines += 1
            continue
        rows.append(fields)

    # A header-only file parses into an empty table (the paper drops
    # sub-minimum tables in the *filtering* stage, not here); but if data
    # rows existed and every one of them was bad, the file is unparseable.
    if not rows and raw_rows:
        raise CSVParseError("no data rows survived parsing")

    report.parsed_rows = len(rows)
    header = _dedupe_header(header_fields)
    table = Table(header, rows, table_id=table_id, metadata=metadata)
    return table, report


def _dedupe_header(names: list[str]) -> list[str]:
    """Make duplicate column names unique (``x``, ``x.1``, ``x.2`` ...).

    Mirrors pandas' ``mangle_dupe_cols`` behaviour so downstream column
    lookups by name are unambiguous.
    """
    seen: dict[str, int] = {}
    result: list[str] = []
    for name in names:
        name = name if name.strip() else "unnamed"
        if name not in seen:
            seen[name] = 0
            result.append(name)
        else:
            seen[name] += 1
            result.append(f"{name}.{seen[name]}")
    return result
