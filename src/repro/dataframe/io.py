"""CSV serialisation helpers.

The pipeline writes curated tables back to disk as CSV (the corpus format
distributed by the paper is parquet; CSV keeps this reproduction free of
external dependencies while preserving round-tripping semantics).
"""

from __future__ import annotations

import os
from typing import Iterable

from ..errors import CSVParseError
from .parser import ParseReport, parse_csv
from .table import Table

__all__ = ["table_to_csv", "write_csv_file", "read_csv_file"]


def _escape_field(value: object, delimiter: str) -> str:
    text = "" if value is None else str(value)
    if delimiter in text or '"' in text or "\n" in text:
        return '"' + text.replace('"', '""') + '"'
    return text


def table_to_csv(table: Table, delimiter: str = ",") -> str:
    """Serialise ``table`` to CSV text (header + rows)."""
    lines = [delimiter.join(_escape_field(name, delimiter) for name in table.header)]
    for row in table.rows:
        lines.append(delimiter.join(_escape_field(value, delimiter) for value in row))
    return "\n".join(lines) + "\n"


def write_csv_file(table: Table, path: str | os.PathLike[str], delimiter: str = ",") -> None:
    """Write ``table`` to ``path`` as CSV."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(table_to_csv(table, delimiter=delimiter))


def read_csv_file(path: str | os.PathLike[str]) -> tuple[Table, ParseReport]:
    """Read and parse a CSV file from disk."""
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        text = handle.read()
    if not text.strip():
        raise CSVParseError(f"file {path!s} is empty")
    return parse_csv(text, table_id=str(path))


def tables_to_csv_lines(tables: Iterable[Table]) -> Iterable[str]:
    """Yield CSV text for each table (useful for streaming exports)."""
    for table in tables:
        yield table_to_csv(table)
