"""In-memory relational table model.

:class:`Table` is the unit the GitTables pipeline operates on. It is a
deliberately small, immutable-ish container: a header (list of column
names), a list of rows (lists of cell values), and provenance metadata
(source repository, file path, license). Columns are exposed through
:class:`Column` views that carry inferred atomic types and per-column
statistics used by the featurisers and the corpus statistics module.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence

from ..errors import TableValidationError
from .dtypes import AtomicType, infer_column_type, is_missing

__all__ = ["Column", "Table"]


@dataclass(frozen=True)
class Column:
    """A single table column: name, values, and inferred atomic type."""

    name: str
    values: tuple[object, ...]
    atomic_type: AtomicType

    @classmethod
    def from_values(cls, name: str, values: Sequence[object]) -> "Column":
        """Build a column, inferring its atomic type from ``values``."""
        return cls(name=name, values=tuple(values), atomic_type=infer_column_type(values))

    def __len__(self) -> int:
        return len(self.values)

    @property
    def non_missing_values(self) -> list[object]:
        """Values that are not missing/NaN/empty."""
        return [value for value in self.values if not is_missing(value)]

    @property
    def missing_fraction(self) -> float:
        """Fraction of missing cells in the column."""
        if not self.values:
            return 0.0
        return 1.0 - len(self.non_missing_values) / len(self.values)

    @property
    def distinct_count(self) -> int:
        """Number of distinct non-missing values (by string representation)."""
        return len({str(value) for value in self.non_missing_values})

    def numeric_values(self) -> list[float]:
        """Non-missing values parsed as floats; unparseable cells skipped."""
        numbers: list[float] = []
        for value in self.non_missing_values:
            try:
                numbers.append(float(str(value).replace(",", "")))
            except (TypeError, ValueError):
                continue
        return numbers

    def summary(self) -> dict[str, float]:
        """Basic numeric summary used by corpus statistics and features."""
        numbers = self.numeric_values()
        if not numbers:
            return {"count": 0.0, "mean": 0.0, "stdev": 0.0, "min": 0.0, "max": 0.0}
        return {
            "count": float(len(numbers)),
            "mean": statistics.fmean(numbers),
            "stdev": statistics.pstdev(numbers) if len(numbers) > 1 else 0.0,
            "min": min(numbers),
            "max": max(numbers),
        }


class Table:
    """A relational table with a header, rows, and provenance metadata."""

    __slots__ = ("table_id", "header", "rows", "metadata", "_columns_cache")

    def __init__(
        self,
        header: Sequence[str],
        rows: Sequence[Sequence[object]],
        table_id: str | None = None,
        metadata: Mapping[str, object] | None = None,
    ) -> None:
        header = [str(name) for name in header]
        if not header:
            raise TableValidationError("a table requires at least one column name")
        normalized_rows: list[tuple[object, ...]] = []
        width = len(header)
        for index, row in enumerate(rows):
            if len(row) != width:
                raise TableValidationError(
                    f"row {index} has {len(row)} values, expected {width}"
                )
            normalized_rows.append(tuple(row))
        self.table_id = table_id or ""
        self.header = tuple(header)
        self.rows = tuple(normalized_rows)
        self.metadata = dict(metadata or {})
        self._columns_cache: tuple[Column, ...] | None = None

    # -- basic shape -----------------------------------------------------

    @property
    def num_rows(self) -> int:
        return len(self.rows)

    @property
    def num_columns(self) -> int:
        return len(self.header)

    @property
    def num_cells(self) -> int:
        return self.num_rows * self.num_columns

    @property
    def shape(self) -> tuple[int, int]:
        return (self.num_rows, self.num_columns)

    def __len__(self) -> int:
        return self.num_rows

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Table(id={self.table_id!r}, rows={self.num_rows}, cols={self.num_columns})"

    # -- column access ---------------------------------------------------

    @property
    def columns(self) -> tuple[Column, ...]:
        """Column views with inferred atomic types (computed lazily)."""
        if self._columns_cache is None:
            columns = []
            for position, name in enumerate(self.header):
                values = [row[position] for row in self.rows]
                columns.append(Column.from_values(name, values))
            self._columns_cache = tuple(columns)
        return self._columns_cache

    def column(self, name: str) -> Column:
        """Return the column named ``name`` (first match)."""
        for column in self.columns:
            if column.name == name:
                return column
        raise KeyError(name)

    def column_index(self, name: str) -> int:
        """Return the position of the column named ``name``."""
        try:
            return self.header.index(name)
        except ValueError as exc:
            raise KeyError(name) from exc

    def iter_rows(self) -> Iterator[tuple[object, ...]]:
        return iter(self.rows)

    # -- schema helpers --------------------------------------------------

    @property
    def schema(self) -> tuple[str, ...]:
        """The table schema: the ordered tuple of column names."""
        return self.header

    def schema_prefix(self, length: int) -> tuple[str, ...]:
        """The first ``length`` attribute names (used by schema completion)."""
        if length < 1:
            raise TableValidationError("schema prefix length must be >= 1")
        return self.header[:length]

    def unnamed_column_fraction(self) -> float:
        """Fraction of columns whose name looks auto-generated/unspecified."""
        if not self.header:
            return 0.0
        unnamed = sum(1 for name in self.header if _is_unnamed(name))
        return unnamed / len(self.header)

    # -- transformation --------------------------------------------------

    def with_metadata(self, **metadata: object) -> "Table":
        """Return a copy of the table with extra metadata entries."""
        merged = dict(self.metadata)
        merged.update(metadata)
        return Table(self.header, self.rows, table_id=self.table_id, metadata=merged)

    def with_column_values(self, name: str, values: Sequence[object]) -> "Table":
        """Return a copy with the values of column ``name`` replaced."""
        position = self.column_index(name)
        if len(values) != self.num_rows:
            raise TableValidationError(
                f"replacement column has {len(values)} values, table has {self.num_rows} rows"
            )
        new_rows = []
        for row, value in zip(self.rows, values):
            row = list(row)
            row[position] = value
            new_rows.append(row)
        return Table(self.header, new_rows, table_id=self.table_id, metadata=self.metadata)

    def head(self, count: int = 5) -> "Table":
        """Return the first ``count`` rows as a new table."""
        return Table(
            self.header, self.rows[:count], table_id=self.table_id, metadata=self.metadata
        )

    def to_dicts(self) -> list[dict[str, object]]:
        """Rows as dictionaries keyed by column name."""
        return [dict(zip(self.header, row)) for row in self.rows]

    @classmethod
    def from_columns(
        cls,
        columns: Mapping[str, Sequence[object]],
        table_id: str | None = None,
        metadata: Mapping[str, object] | None = None,
    ) -> "Table":
        """Build a table from a column-name → values mapping."""
        names = list(columns)
        if not names:
            raise TableValidationError("from_columns requires at least one column")
        lengths = {len(values) for values in columns.values()}
        if len(lengths) > 1:
            raise TableValidationError(f"columns have unequal lengths: {sorted(lengths)}")
        height = lengths.pop() if lengths else 0
        rows = [[columns[name][i] for name in names] for i in range(height)]
        return cls(names, rows, table_id=table_id, metadata=metadata)


def _is_unnamed(name: str) -> bool:
    """True when a column name is empty or an auto-generated placeholder."""
    stripped = name.strip().lower()
    if not stripped:
        return True
    if stripped.startswith("unnamed"):
        return True
    return stripped in {"nan", "none", "null"}
