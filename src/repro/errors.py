"""Exception hierarchy for the GitTables reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library-specific failures without masking programming
errors such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class CSVParseError(ReproError):
    """Raised when a CSV payload cannot be parsed into a table."""


class SnifferError(CSVParseError):
    """Raised when the delimiter of a CSV payload cannot be determined."""


class TableValidationError(ReproError):
    """Raised when a :class:`~repro.dataframe.table.Table` is malformed."""


class SearchQueryError(ReproError):
    """Raised for malformed GitHub search queries."""


class RateLimitExceeded(ReproError):
    """Raised by the GitHub simulator when the client exceeds its rate limit."""

    def __init__(self, retry_after: float, message: str | None = None) -> None:
        super().__init__(message or f"rate limit exceeded, retry after {retry_after:.1f}s")
        self.retry_after = retry_after


class ResultWindowExceeded(SearchQueryError):
    """Raised when pagination goes past the simulated 1000-result window."""


class OntologyError(ReproError):
    """Raised for unknown semantic types or malformed ontology data."""


class AnnotationError(ReproError):
    """Raised when the annotation pipeline receives invalid input."""


class PipelineConfigError(ReproError):
    """Raised for inconsistent pipeline configuration values."""


class ModelNotFittedError(ReproError):
    """Raised when predicting with an unfitted ML model."""


class FeatureExtractionError(ReproError):
    """Raised when column featurisation fails."""


class CorpusError(ReproError):
    """Raised for invalid corpus operations (e.g. duplicate table ids)."""


class ExperimentError(ReproError):
    """Raised when an experiment driver is misconfigured."""


class ServingError(ReproError):
    """Base class for errors raised by the concurrent query service."""


class ServiceOverloaded(ServingError):
    """Raised when a request is rejected because the queue is full."""


class DeadlineExceeded(ServingError):
    """Raised when a request's deadline expires before its result lands."""


class ServiceClosed(ServingError):
    """Raised for requests submitted to (or stranded in) a closed service."""


class WorkerCrashed(ServingError):
    """Raised when a request's worker died and the retry budget is spent."""
