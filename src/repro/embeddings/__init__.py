"""Embedding substrates.

The paper embeds column names and semantic types with a pretrained
character-n-gram FastText model and embeds schemas/queries with the
Universal Sentence Encoder. Offline we replace both with deterministic
hashed-feature embedding models that preserve the two properties the
pipeline relies on:

* sub-word compositionality — related strings ("product id", "id",
  "productID") map to nearby vectors;
* exact-match degeneracy — identical normalised strings have cosine
  similarity 1.0, reproducing the "peak at 1" in paper Figure 4c.
"""

from .ann import PartitionedIndex, build_index
from .fasttext import FastTextModel
from .hashing import hashed_unit_vector, ngrams, tokenize
from .persist import embedder_fingerprint
from .sentence import SentenceEncoder
from .similarity import (
    NearestNeighbourIndex,
    cosine_similarity,
    cosine_similarity_matrix,
    top_k_ids_scores,
)

__all__ = [
    "FastTextModel",
    "NearestNeighbourIndex",
    "PartitionedIndex",
    "SentenceEncoder",
    "build_index",
    "cosine_similarity",
    "cosine_similarity_matrix",
    "embedder_fingerprint",
    "hashed_unit_vector",
    "ngrams",
    "tokenize",
    "top_k_ids_scores",
]
