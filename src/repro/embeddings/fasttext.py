"""FastText-style character n-gram embedding model.

Replaces the pretrained FastText model the paper uses for the semantic
annotation method (§3.4). A string is embedded as the mean of hashed
vectors of its word tokens and their character n-grams. Identical
normalised strings embed identically (cosine similarity 1.0); strings
sharing tokens or sub-words land close together.

Batches are first-class: ``embed_batch`` deduplicates repeated keys,
hashes every distinct token/n-gram once, and composes all rows in one
vectorized pass. ``embed`` is a thin wrapper over the same path, so a
string embeds to bit-identical floats alone or inside any batch.
"""

from __future__ import annotations

import numpy as np

from ._base import HashedEmbedder
from .hashing import ngrams, tokenize
from .similarity import cosine_similarity

__all__ = ["FastTextModel"]


class FastTextModel(HashedEmbedder):
    """Deterministic sub-word embedding model.

    Parameters
    ----------
    dim:
        Embedding dimensionality.
    ngram_sizes:
        Character n-gram sizes pooled with word tokens.
    word_weight:
        Relative weight of whole-word vectors versus n-gram vectors.
        Whole words dominate so that exact token matches drive similarity,
        with n-grams providing sub-word generalisation.
    seed:
        Seed namespace for the hashed vectors.
    """

    def __init__(
        self,
        dim: int = 64,
        ngram_sizes: tuple[int, ...] = (3, 4, 5),
        word_weight: float = 3.0,
        seed: int = 0,
    ) -> None:
        if dim < 4:
            raise ValueError("dim must be >= 4")
        super().__init__()
        self.dim = dim
        self.ngram_sizes = tuple(ngram_sizes)
        self.word_weight = float(word_weight)
        self.seed = seed

    def _features(self, key: str) -> list[tuple[str, float]]:
        """Word tokens (weighted up) plus their character n-grams."""
        features: list[tuple[str, float]] = []
        for token in tokenize(key):
            features.append((token, self.word_weight))
            for gram in ngrams(token, self.ngram_sizes):
                features.append((gram, 1.0))
        return features

    def embed_batch(self, texts: list[str]) -> np.ndarray:
        """Embed a list of strings into a (len(texts), dim) matrix."""
        return self._embed_batch(texts)

    def similarity(self, left: str, right: str) -> float:
        """Cosine similarity between the embeddings of two strings."""
        return cosine_similarity(self.embed(left), self.embed(right))
