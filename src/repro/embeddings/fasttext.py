"""FastText-style character n-gram embedding model.

Replaces the pretrained FastText model the paper uses for the semantic
annotation method (§3.4). A string is embedded as the mean of hashed
vectors of its word tokens and their character n-grams. Identical
normalised strings embed identically (cosine similarity 1.0); strings
sharing tokens or sub-words land close together.
"""

from __future__ import annotations

import numpy as np

from .hashing import hashed_unit_vector, ngrams, tokenize

__all__ = ["FastTextModel"]


class FastTextModel:
    """Deterministic sub-word embedding model.

    Parameters
    ----------
    dim:
        Embedding dimensionality.
    ngram_sizes:
        Character n-gram sizes pooled with word tokens.
    word_weight:
        Relative weight of whole-word vectors versus n-gram vectors.
        Whole words dominate so that exact token matches drive similarity,
        with n-grams providing sub-word generalisation.
    seed:
        Seed namespace for the hashed vectors.
    """

    def __init__(
        self,
        dim: int = 64,
        ngram_sizes: tuple[int, ...] = (3, 4, 5),
        word_weight: float = 3.0,
        seed: int = 0,
    ) -> None:
        if dim < 4:
            raise ValueError("dim must be >= 4")
        self.dim = dim
        self.ngram_sizes = tuple(ngram_sizes)
        self.word_weight = float(word_weight)
        self.seed = seed
        self._cache: dict[str, np.ndarray] = {}

    def embed(self, text: str) -> np.ndarray:
        """Embed ``text`` into a unit vector (zero vector for empty text)."""
        key = text.strip().lower()
        cached = self._cache.get(key)
        if cached is not None:
            return cached

        tokens = tokenize(key)
        if not tokens:
            vector = np.zeros(self.dim)
        else:
            accumulator = np.zeros(self.dim)
            total_weight = 0.0
            for token in tokens:
                accumulator += self.word_weight * hashed_unit_vector(token, self.dim, self.seed)
                total_weight += self.word_weight
                for gram in ngrams(token, self.ngram_sizes):
                    accumulator += hashed_unit_vector(gram, self.dim, self.seed)
                    total_weight += 1.0
            vector = accumulator / total_weight
            norm = np.linalg.norm(vector)
            if norm > 0:
                vector = vector / norm

        vector.setflags(write=False)
        if len(self._cache) < 500_000:
            self._cache[key] = vector
        return vector

    def embed_batch(self, texts: list[str]) -> np.ndarray:
        """Embed a list of strings into a (len(texts), dim) matrix."""
        if not texts:
            return np.zeros((0, self.dim))
        return np.vstack([self.embed(text) for text in texts])

    def similarity(self, left: str, right: str) -> float:
        """Cosine similarity between the embeddings of two strings."""
        a = self.embed(left)
        b = self.embed(right)
        denom = np.linalg.norm(a) * np.linalg.norm(b)
        if denom == 0.0:
            return 0.0
        return float(np.dot(a, b) / denom)
