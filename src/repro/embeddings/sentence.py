"""Universal-Sentence-Encoder-style embedding model.

Used by schema completion (Algorithm 1) and data search (§5.2-5.3). A
sentence (attribute name, whole schema, or natural-language query) is the
weighted mean of hashed token vectors plus lighter-weight character
n-gram vectors, which handles multi-word attributes ("OrderTrackingNumber"
vs "order tracking number") the way USE handles them in the paper.

``embed_many`` composes all distinct uncached keys in one vectorized
pass; ``embed`` is a thin wrapper over the same path, so a string embeds
to bit-identical floats alone or inside any batch.
"""

from __future__ import annotations

import math

import numpy as np

from ._base import HashedEmbedder
from .hashing import ngrams, tokenize

__all__ = ["SentenceEncoder"]

#: Tokens so common in schemas that they carry little signal; they get a
#: reduced weight, mimicking the IDF weighting inside USE-like encoders.
_COMMON_TOKENS = frozenset(
    {"the", "a", "an", "of", "and", "or", "per", "for", "to", "in", "on", "by", "with"}
)


class SentenceEncoder(HashedEmbedder):
    """Deterministic sentence embedding model."""

    def __init__(self, dim: int = 128, ngram_sizes: tuple[int, ...] = (4,), seed: int = 1) -> None:
        if dim < 8:
            raise ValueError("dim must be >= 8")
        super().__init__()
        self.dim = dim
        self.ngram_sizes = tuple(ngram_sizes)
        self.seed = seed

    def _token_weight(self, token: str) -> float:
        if token in _COMMON_TOKENS:
            return 0.3
        # Longer tokens tend to be more specific; weight grows slowly.
        return 1.0 + 0.1 * math.log1p(len(token))

    def _features(self, key: str) -> list[tuple[str, float]]:
        """IDF-weighted word tokens plus lightly weighted n-grams."""
        features: list[tuple[str, float]] = []
        for token in tokenize(key):
            features.append((token, self._token_weight(token)))
            for gram in ngrams(token, self.ngram_sizes):
                features.append((gram, 0.25))
        return features

    def embed_many(self, texts: list[str]) -> np.ndarray:
        """Embed a list of sentences into a (len(texts), dim) matrix."""
        return self._embed_batch(texts)

    def embed_schema(self, attributes: list[str] | tuple[str, ...]) -> np.ndarray:
        """Embed a whole schema as the mean of its attribute embeddings."""
        if not attributes:
            return np.zeros(self.dim)
        return self.embed_schemas([attributes])[0]

    def embed_schemas(self, schemas: list) -> np.ndarray:
        """Embed many schemas into a (len(schemas), dim) matrix at once.

        One :meth:`embed_many` pass over every attribute of every schema
        (distinct attribute names are composed once corpus-wide), then
        the per-schema mean + normalisation of :meth:`embed_schema`
        applied slice by slice — each row is bit-identical to embedding
        that schema alone, which is what lets persisted search indexes
        guarantee equality with freshly embedded ones.
        """
        flat_attributes = [attr for schema in schemas for attr in schema]
        flat_matrix = self.embed_many(flat_attributes)
        rows: list[np.ndarray] = []
        offset = 0
        for schema in schemas:
            if not schema:
                rows.append(np.zeros(self.dim))
                continue
            block = flat_matrix[offset : offset + len(schema)]
            offset += len(schema)
            vector = block.mean(axis=0)
            norm = np.linalg.norm(vector)
            rows.append(vector / norm if norm > 0 else vector)
        return np.vstack(rows) if rows else np.zeros((0, self.dim))
