"""Universal-Sentence-Encoder-style embedding model.

Used by schema completion (Algorithm 1) and data search (§5.2-5.3). A
sentence (attribute name, whole schema, or natural-language query) is the
weighted mean of hashed token vectors plus lighter-weight character
n-gram vectors, which handles multi-word attributes ("OrderTrackingNumber"
vs "order tracking number") the way USE handles them in the paper.
"""

from __future__ import annotations

import math

import numpy as np

from .hashing import hashed_unit_vector, ngrams, tokenize

__all__ = ["SentenceEncoder"]

#: Tokens so common in schemas that they carry little signal; they get a
#: reduced weight, mimicking the IDF weighting inside USE-like encoders.
_COMMON_TOKENS = frozenset(
    {"the", "a", "an", "of", "and", "or", "per", "for", "to", "in", "on", "by", "with"}
)


class SentenceEncoder:
    """Deterministic sentence embedding model."""

    def __init__(self, dim: int = 128, ngram_sizes: tuple[int, ...] = (4,), seed: int = 1) -> None:
        if dim < 8:
            raise ValueError("dim must be >= 8")
        self.dim = dim
        self.ngram_sizes = tuple(ngram_sizes)
        self.seed = seed
        self._cache: dict[str, np.ndarray] = {}

    def _token_weight(self, token: str) -> float:
        if token in _COMMON_TOKENS:
            return 0.3
        # Longer tokens tend to be more specific; weight grows slowly.
        return 1.0 + 0.1 * math.log1p(len(token))

    def embed(self, text: str) -> np.ndarray:
        """Embed a sentence (or attribute name) into a unit vector."""
        key = text.strip().lower()
        cached = self._cache.get(key)
        if cached is not None:
            return cached

        tokens = tokenize(key)
        if not tokens:
            vector = np.zeros(self.dim)
        else:
            accumulator = np.zeros(self.dim)
            total = 0.0
            for token in tokens:
                weight = self._token_weight(token)
                accumulator += weight * hashed_unit_vector(token, self.dim, self.seed)
                total += weight
                for gram in ngrams(token, self.ngram_sizes):
                    accumulator += 0.25 * hashed_unit_vector(gram, self.dim, self.seed)
                    total += 0.25
            vector = accumulator / total
            norm = np.linalg.norm(vector)
            if norm > 0:
                vector = vector / norm

        vector.setflags(write=False)
        if len(self._cache) < 500_000:
            self._cache[key] = vector
        return vector

    def embed_many(self, texts: list[str]) -> np.ndarray:
        """Embed a list of sentences into a (len(texts), dim) matrix."""
        if not texts:
            return np.zeros((0, self.dim))
        return np.vstack([self.embed(text) for text in texts])

    def embed_schema(self, attributes: list[str] | tuple[str, ...]) -> np.ndarray:
        """Embed a whole schema as the mean of its attribute embeddings."""
        if not attributes:
            return np.zeros(self.dim)
        matrix = self.embed_many(list(attributes))
        vector = matrix.mean(axis=0)
        norm = np.linalg.norm(vector)
        return vector / norm if norm > 0 else vector
