"""Embedding persistence glue for the index artifact store.

The artifact store (:mod:`repro.storage.artifacts`) deals in anonymous
named arrays; this module supplies the embedding-side conventions on top
of it:

* :func:`embedder_fingerprint` — the JSON identity of a hashed embedding
  model (class, dim, seed, n-gram sizes, weights). Two models with equal
  fingerprints embed every string bit-identically, so the fingerprint
  stands in for "same encoder" in artifact guards.
* :func:`publish_index` / :func:`load_index` — persist a
  :class:`~repro.embeddings.similarity.NearestNeighbourIndex` as one
  artifact (its unit-vector matrix as an mmap-able array, its labels in
  the payload) and resolve it back, bypassing re-normalisation so a
  loaded index answers queries bit-identically to the published one.

Consumers (search, completion, annotation) assemble their full
fingerprints from :func:`embedder_fingerprint` plus the corpus content
hash (:func:`repro.storage.artifacts.corpus_content_fingerprint`) and
any of their own parameters that shape the matrix.
"""

from __future__ import annotations

import numpy as np

from ..config import DEFAULT_INDEX_CONFIG, IndexConfig
from ..storage.artifacts import IndexArtifactStore, LoadedArtifact
from .ann import PartitionedIndex, _validate_partition_tables
from .similarity import NearestNeighbourIndex

__all__ = [
    "embedder_fingerprint",
    "extend_unit_vectors",
    "publish_index",
    "load_index",
    "index_from_artifact",
    "index_from_unit_rows",
]

#: Array key under which an index's unit-vector matrix is published.
INDEX_VECTORS_KEY = "unit_vectors"
#: Payload key under which an index's labels are published.
INDEX_LABELS_KEY = "labels"
#: Extra arrays/payload published for a partitioned (ANN-tier) index.
ANN_CENTROIDS_KEY = "ann_centroids"
ANN_ROW_IDS_KEY = "ann_partition_row_ids"
ANN_OFFSETS_KEY = "ann_partition_offsets"
ANN_PAYLOAD_KEY = "ann"


def embedder_fingerprint(model) -> dict:
    """The JSON identity of a hashed embedding model.

    Covers everything that shapes the produced vectors: the concrete
    class, dimensionality, hash seed, and the optional n-gram/weight
    knobs a subclass defines. Models compare equal exactly when they
    embed every string identically.
    """
    fingerprint: dict = {
        "class": type(model).__name__,
        "dim": int(model.dim),
        "seed": int(model.seed),
    }
    ngram_sizes = getattr(model, "ngram_sizes", None)
    if ngram_sizes is not None:
        fingerprint["ngram_sizes"] = list(ngram_sizes)
    word_weight = getattr(model, "word_weight", None)
    if word_weight is not None:
        fingerprint["word_weight"] = float(word_weight)
    return fingerprint


def extend_unit_vectors(unit_vectors: np.ndarray, tail_matrix: np.ndarray) -> np.ndarray:
    """Append freshly embedded rows to an existing unit-row matrix.

    ``tail_matrix`` is row-normalised with *exactly* the arithmetic
    :class:`NearestNeighbourIndex.__init__` applies (zero rows kept
    zero), so the concatenated matrix is bit-identical to normalising
    the full stacked matrix from scratch — row normalisation is row-pure
    — while touching only the tail. The committed prefix rows (often an
    mmap of the superseded artifact) are copied verbatim, never
    re-divided.
    """
    tail = np.asarray(tail_matrix)
    norms = np.linalg.norm(tail, axis=1, keepdims=True)
    norms[norms == 0.0] = 1.0
    return np.concatenate([np.asarray(unit_vectors), tail / norms])


def index_from_unit_rows(
    labels: list[str],
    unit_vectors: np.ndarray,
    config: IndexConfig | None = None,
    n_rows: int | None = None,
) -> NearestNeighbourIndex:
    """The right index tier over *already-normalised* unit rows.

    The incremental counterpart of :func:`~repro.embeddings.ann.
    build_index`: the rows (e.g. from :func:`extend_unit_vectors`) skip
    ``__init__``'s normalising division entirely, so the flat tier is
    bit-identical to a from-scratch build over the same schemas, and the
    partitioned tier re-runs only the deterministic k-means over them —
    the one genuinely corpus-global piece of an index build.
    """
    config = config if config is not None else DEFAULT_INDEX_CONFIG
    flat = NearestNeighbourIndex._from_unit_vectors(labels, unit_vectors)
    count = len(labels) if n_rows is None else n_rows
    if not config.tier_active(count):
        return flat
    return PartitionedIndex.from_flat(flat, config)


def publish_index(
    artifacts: IndexArtifactStore,
    name: str,
    fingerprint: dict,
    index: NearestNeighbourIndex,
    payload: dict | None = None,
    prune: bool = True,
) -> None:
    """Publish an index (plus optional extra payload) as one artifact.

    A partitioned index additionally publishes its centroid matrix and
    partition tables (under the ``ann_*`` array keys) plus an ``ann``
    payload section, so :func:`index_from_artifact` can reopen it as the
    same tier without re-running k-means.
    """
    full_payload = dict(payload or {})
    full_payload[INDEX_LABELS_KEY] = list(index.labels)
    arrays = {INDEX_VECTORS_KEY: index._unit_vectors}
    if isinstance(index, PartitionedIndex):
        arrays[ANN_CENTROIDS_KEY] = index._centroids
        arrays[ANN_ROW_IDS_KEY] = index._row_ids
        arrays[ANN_OFFSETS_KEY] = index._offsets
        full_payload[ANN_PAYLOAD_KEY] = {
            "n_partitions": index.n_partitions,
            "nprobe": index.nprobe,
            "recall": index.recall,
        }
    artifacts.publish(name, fingerprint, arrays=arrays, payload=full_payload, prune=prune)


def index_from_artifact(loaded: LoadedArtifact) -> NearestNeighbourIndex:
    """Rebuild the index held by a loaded artifact (mmap-backed).

    Artifacts carrying the ``ann_*`` arrays come back as a
    :class:`PartitionedIndex` (same tier they were published as);
    everything else comes back flat. Either way the unit-vector matrix
    stays mmap'd and queries are bit-identical to the published index.
    """
    labels = loaded.payload[INDEX_LABELS_KEY]
    vectors = loaded.arrays[INDEX_VECTORS_KEY]
    ann_meta = loaded.payload.get(ANN_PAYLOAD_KEY)
    if ann_meta is None or ANN_CENTROIDS_KEY not in loaded.arrays:
        return NearestNeighbourIndex._from_unit_vectors(labels, vectors)
    centroids = loaded.arrays[ANN_CENTROIDS_KEY]
    row_ids = loaded.arrays[ANN_ROW_IDS_KEY]
    offsets = loaded.arrays[ANN_OFFSETS_KEY]
    _validate_partition_tables(row_ids, offsets, len(centroids), len(labels))
    return PartitionedIndex._from_parts(
        labels,
        vectors,
        centroids,
        row_ids,
        offsets,
        ann_meta.get("nprobe", 1),
        recall=ann_meta.get("recall"),
    )


def load_index(
    artifacts: IndexArtifactStore, name: str, fingerprint: dict
) -> tuple[NearestNeighbourIndex, dict] | None:
    """Resolve a published index, or ``None`` on any artifact miss.

    Returns ``(index, payload)``; the index's vector matrix stays
    mmap'd, so this is O(open) regardless of corpus size.
    """
    loaded = artifacts.load(name, fingerprint)
    if loaded is None:
        return None
    try:
        index = index_from_artifact(loaded)
    except (KeyError, ValueError):
        return None
    return index, loaded.payload
