"""Cosine similarity utilities and a small nearest-neighbour index."""

from __future__ import annotations

import numpy as np

__all__ = ["cosine_similarity", "cosine_similarity_matrix", "NearestNeighbourIndex"]


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity of two vectors (0.0 when either is zero)."""
    denom = float(np.linalg.norm(a)) * float(np.linalg.norm(b))
    if denom == 0.0:
        return 0.0
    return float(np.dot(a, b) / denom)


def cosine_similarity_matrix(queries: np.ndarray, index: np.ndarray) -> np.ndarray:
    """Pairwise cosine similarities: (n_queries, n_index)."""
    if queries.size == 0 or index.size == 0:
        return np.zeros((queries.shape[0], index.shape[0]))
    query_norms = np.linalg.norm(queries, axis=1, keepdims=True)
    index_norms = np.linalg.norm(index, axis=1, keepdims=True)
    query_norms[query_norms == 0.0] = 1.0
    index_norms[index_norms == 0.0] = 1.0
    return (queries / query_norms) @ (index / index_norms).T


class NearestNeighbourIndex:
    """Exact cosine nearest-neighbour search over labelled vectors."""

    def __init__(self, labels: list[str], vectors: np.ndarray) -> None:
        if len(labels) != vectors.shape[0]:
            raise ValueError("labels and vectors must have the same length")
        self.labels = list(labels)
        norms = np.linalg.norm(vectors, axis=1, keepdims=True)
        norms[norms == 0.0] = 1.0
        self._unit_vectors = vectors / norms

    def __len__(self) -> int:
        return len(self.labels)

    def query(self, vector: np.ndarray, top_k: int = 1) -> list[tuple[str, float]]:
        """Return the ``top_k`` most similar labels with their similarities."""
        if len(self.labels) == 0:
            return []
        norm = np.linalg.norm(vector)
        unit = vector / norm if norm > 0 else vector
        similarities = self._unit_vectors @ unit
        top_k = min(top_k, len(self.labels))
        order = np.argsort(-similarities)[:top_k]
        return [(self.labels[i], float(similarities[i])) for i in order]

    def best(self, vector: np.ndarray) -> tuple[str, float] | None:
        """The single most similar label, or None for an empty index."""
        results = self.query(vector, top_k=1)
        return results[0] if results else None
