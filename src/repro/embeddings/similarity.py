"""Cosine similarity utilities and a small nearest-neighbour index."""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from ..storage._io import atomic_replace, atomic_write_json

__all__ = [
    "cosine_similarity",
    "cosine_similarity_matrix",
    "top_k_ids_scores",
    "NearestNeighbourIndex",
]

#: On-disk layout of a persisted index (see NearestNeighbourIndex.save).
_INDEX_META_FILENAME = "index.json"
_INDEX_VECTORS_FILENAME = "unit_vectors.npy"
_INDEX_FORMAT = "nn-index"


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity of two vectors (0.0 when either is zero)."""
    denom = float(np.linalg.norm(a)) * float(np.linalg.norm(b))
    if denom == 0.0:
        return 0.0
    return float(np.dot(a, b) / denom)


def cosine_similarity_matrix(queries: np.ndarray, index: np.ndarray) -> np.ndarray:
    """Pairwise cosine similarities: (n_queries, n_index)."""
    if queries.size == 0 or index.size == 0:
        return np.zeros((queries.shape[0], index.shape[0]))
    query_norms = np.linalg.norm(queries, axis=1, keepdims=True)
    index_norms = np.linalg.norm(index, axis=1, keepdims=True)
    query_norms[query_norms == 0.0] = 1.0
    index_norms[index_norms == 0.0] = 1.0
    return (queries / query_norms) @ (index / index_norms).T


def top_k_ids_scores(
    similarities: np.ndarray, top_k: int, ids: np.ndarray | None = None
) -> list[list[tuple[int, float]]]:
    """Top-k selection over a dense similarity block, fully vectorized.

    Given per-query similarities of shape ``(n_queries, n_candidates)``
    — against the whole index (``ids=None``: candidate column == global
    row id) or against a gathered candidate subset (``ids`` maps columns
    to global row ids) — return per query the ``top_k``
    ``(global_id, similarity)`` pairs ordered by descending similarity,
    ties broken by ascending global id.

    This is the shared selection kernel behind both the flat
    :meth:`NearestNeighbourIndex.top_k_batch` and the partitioned tier's
    rerank: one ``argpartition`` + ``take_along_axis`` + a single batched
    ``lexsort`` for the whole block, no per-row Python loop. When ``ids``
    is given its columns must be sorted ascending so the ``top_k == 1``
    argmax fast path (first maximum) keeps the ascending-id tie-break.
    ``top_k`` must already be clamped to ``n_candidates`` by the caller.
    """
    n_queries, n_candidates = similarities.shape
    if n_candidates == 0:
        return [[] for _ in range(n_queries)]
    if top_k == 1:
        # argmax returns the first maximum — with columns in ascending
        # global-id order that is exactly the ascending-id tie-break.
        best = np.argmax(similarities, axis=1)
        global_best = best if ids is None else np.asarray(ids)[best]
        scores = np.take_along_axis(similarities, best[:, None], axis=1)[:, 0]
        return [
            [(int(gid), float(score))] for gid, score in zip(global_best, scores)
        ]
    if top_k < n_candidates:
        columns = np.argpartition(-similarities, top_k - 1, axis=1)[:, :top_k]
    else:
        columns = np.tile(np.arange(n_candidates), (n_queries, 1))
    scores = np.take_along_axis(similarities, columns, axis=1)
    global_ids = columns if ids is None else np.asarray(ids)[columns]
    # One lexsort for the whole block: the row index is the primary key,
    # so each row's entries stay contiguous and are ordered internally by
    # (-score, ascending id) — the same comparison the old per-row
    # ``lexsort((candidates, -scores))`` performed.
    rows = np.repeat(np.arange(n_queries), top_k)
    order = np.lexsort((global_ids.ravel(), -scores.ravel(), rows))
    sorted_ids = global_ids.ravel()[order].reshape(n_queries, top_k)
    sorted_scores = scores.ravel()[order].reshape(n_queries, top_k)
    return [
        [(int(gid), float(score)) for gid, score in zip(id_row, score_row)]
        for id_row, score_row in zip(sorted_ids, sorted_scores)
    ]


class NearestNeighbourIndex:
    """Exact cosine nearest-neighbour search over labelled vectors.

    Batches are first-class: :meth:`top_k_batch` answers many queries with
    one GEMM plus an ``argpartition`` top-k selection (no full sort), and
    :meth:`query` is a thin wrapper over the same path, so a query returns
    bit-identical similarities alone or inside any batch.
    """

    def __init__(self, labels: list[str], vectors: np.ndarray) -> None:
        if len(labels) != vectors.shape[0]:
            raise ValueError("labels and vectors must have the same length")
        self.labels = list(labels)
        norms = np.linalg.norm(vectors, axis=1, keepdims=True)
        norms[norms == 0.0] = 1.0
        self._unit_vectors = vectors / norms

    @classmethod
    def _from_unit_vectors(cls, labels: list[str], unit_vectors: np.ndarray) -> "NearestNeighbourIndex":
        """Construct from vectors that are *already* the index's unit rows.

        The normalising division in ``__init__`` is skipped entirely —
        re-dividing already-normalised rows by their (not exactly 1.0)
        norms would perturb the last ulp and break the bit-identity
        guarantee between a persisted index and the one it was saved
        from. Internal: used by :meth:`mmap` and the artifact loaders.
        """
        if len(labels) != unit_vectors.shape[0]:
            raise ValueError("labels and vectors must have the same length")
        index = cls.__new__(cls)
        index.labels = list(labels)
        index._unit_vectors = unit_vectors
        return index

    def __len__(self) -> int:
        return len(self.labels)

    def stats(self) -> dict:
        """Instrumentation snapshot; the exact tier has nothing to tune."""
        return {"tier": "flat", "rows": len(self.labels)}

    # -- persistence -------------------------------------------------------

    def save(self, path: str | os.PathLike[str]) -> None:
        """Persist the index to a directory for later :meth:`mmap`.

        The (already normalised) unit-vector matrix is written verbatim
        as ``unit_vectors.npy`` next to a JSON metadata file holding the
        labels and the expected dtype/shape, so an ``mmap`` of the saved
        index answers queries bit-identically to this in-RAM one.

        Every file goes through the storage layer's temp-file + rename +
        fsync helper, and the metadata (the commit point :meth:`mmap`
        validates against) is written last — a save killed at any point
        leaves either the previous index or no readable index, never
        valid metadata next to a half-written matrix.
        """
        path = Path(path)
        path.mkdir(parents=True, exist_ok=True)
        vectors = np.asarray(self._unit_vectors)
        with atomic_replace(path / _INDEX_VECTORS_FILENAME) as handle:
            np.save(handle, vectors)
        meta = {
            "format": _INDEX_FORMAT,
            "version": 1,
            "labels": self.labels,
            "dtype": str(vectors.dtype),
            "shape": list(vectors.shape),
        }
        atomic_write_json(path / _INDEX_META_FILENAME, meta)

    @classmethod
    def mmap(cls, path: str | os.PathLike[str]) -> "NearestNeighbourIndex":
        """Open a :meth:`save`'d index read-only via ``np.memmap``.

        Only the labels are read eagerly; the vector matrix is mapped,
        so opening costs O(mmap) regardless of index size. Queries are
        bit-identical to the index that was saved. Raises ``ValueError``
        when the directory's contents do not match their metadata
        (truncated or tampered files).
        """
        path = Path(path)
        with open(path / _INDEX_META_FILENAME, "r", encoding="utf-8") as handle:
            meta = json.load(handle)
        if meta.get("format") != _INDEX_FORMAT:
            raise ValueError(f"not a persisted index: {path}")
        expected_shape = tuple(meta.get("shape", ()))
        # Zero-size matrices cannot be mmap'd; they are read eagerly.
        mmap_mode = None if 0 in expected_shape else "r"
        vectors = np.load(path / _INDEX_VECTORS_FILENAME, mmap_mode=mmap_mode, allow_pickle=False)
        if vectors.shape != expected_shape or str(vectors.dtype) != meta.get("dtype"):
            raise ValueError(f"persisted index at {path} does not match its metadata")
        if mmap_mode is None:
            vectors.setflags(write=False)
        return cls._from_unit_vectors(meta["labels"], vectors)

    def top_k_batch(self, matrix: np.ndarray, top_k: int = 1) -> list[list[tuple[int, float]]]:
        """Per query row: the ``top_k`` (index, similarity) pairs.

        One matrix product against the whole index answers every query;
        the top-k selection uses ``argpartition`` (O(n) per row) instead
        of a full sort, with ties broken by ascending index so results
        are deterministic. Zero-vector query rows score 0 everywhere.
        """
        matrix = np.asarray(matrix, dtype=float)
        n_queries = matrix.shape[0]
        if n_queries == 0 or len(self.labels) == 0:
            return [[] for _ in range(n_queries)]
        norms = np.linalg.norm(matrix, axis=1, keepdims=True)
        units = matrix / np.where(norms > 0.0, norms, 1.0)
        # One matrix-matrix product for the whole batch. einsum's own
        # kernel (not BLAS) on purpose: BLAS GEMM results vary in the
        # last ulp with the batch's row count/position, which would break
        # the guarantee that a query scores bit-identically in any batch.
        similarities = np.einsum("qd,ld->ql", units, self._unit_vectors)
        return top_k_ids_scores(similarities, min(top_k, len(self.labels)))

    def query_batch(self, matrix: np.ndarray, top_k: int = 1) -> list[list[tuple[str, float]]]:
        """Per query row: the ``top_k`` (label, similarity) pairs."""
        return [
            [(self.labels[index], score) for index, score in row]
            for row in self.top_k_batch(matrix, top_k=top_k)
        ]

    def query(self, vector: np.ndarray, top_k: int = 1) -> list[tuple[str, float]]:
        """Return the ``top_k`` most similar labels with their similarities."""
        if len(self.labels) == 0:
            return []
        return self.query_batch(np.asarray(vector, dtype=float)[None, :], top_k=top_k)[0]

    def best(self, vector: np.ndarray) -> tuple[str, float] | None:
        """The single most similar label, or None for an empty index."""
        results = self.query(vector, top_k=1)
        return results[0] if results else None
