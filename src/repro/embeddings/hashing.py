"""Deterministic hashed feature vectors for strings.

Both embedding substrates are built from the same primitive: a stable
hash of a token (or character n-gram) seeds a pseudo-random unit vector.
Two different tokens get (almost surely) near-orthogonal vectors; the
same token always gets the same vector. Summing token vectors therefore
approximates a bag-of-subwords embedding with compositionality.
"""

from __future__ import annotations

import re
from functools import lru_cache

import numpy as np

from .._rand import stable_hash

__all__ = ["compose_feature_batch", "hashed_unit_vector", "ngrams", "tokenize"]

_TOKEN_RE = re.compile(r"[a-z0-9]+")


def tokenize(text: str) -> list[str]:
    """Lower-case word tokens of ``text`` (alphanumeric runs)."""
    return _TOKEN_RE.findall(text.lower())


def ngrams(token: str, sizes: tuple[int, ...] = (3, 4, 5)) -> list[str]:
    """Character n-grams of a token, padded with boundary markers.

    Follows the FastText convention of wrapping the token in ``<`` and
    ``>`` so that prefixes/suffixes are distinguishable from word-internal
    n-grams, and always including the full padded token itself.
    """
    padded = f"<{token}>"
    grams: list[str] = [padded]
    for size in sizes:
        if len(padded) <= size:
            continue
        grams.extend(padded[i : i + size] for i in range(len(padded) - size + 1))
    return grams


def compose_feature_batch(
    features_per_row: list[list[tuple[str, float]]], dim: int, seed: int = 0
) -> np.ndarray:
    """Compose weighted bags of hashed features into unit rows, batched.

    ``features_per_row[i]`` is the ``(feature, weight)`` bag of output row
    ``i``. Every distinct feature across the whole batch is hashed exactly
    once; the weighted sums are then scatter-accumulated in one vectorized
    pass (``np.add.at`` applies contributions in listing order, so each
    row's accumulation order — and therefore its floats — is independent
    of what else is in the batch). Rows with an empty bag stay zero;
    non-empty rows are weight-averaged and normalised to unit length.
    """
    out = np.zeros((len(features_per_row), dim))
    if not features_per_row:
        return out
    feature_ids: dict[str, int] = {}
    rows: list[int] = []
    columns: list[int] = []
    weights: list[float] = []
    for row, features in enumerate(features_per_row):
        for feature, weight in features:
            feature_id = feature_ids.setdefault(feature, len(feature_ids))
            rows.append(row)
            columns.append(feature_id)
            weights.append(weight)
    if not rows:
        return out
    matrix = np.empty((len(feature_ids), dim))
    for feature, feature_id in feature_ids.items():
        matrix[feature_id] = hashed_unit_vector(feature, dim, seed)
    row_index = np.asarray(rows)
    weight_column = np.asarray(weights)[:, None]
    np.add.at(out, row_index, matrix[np.asarray(columns)] * weight_column)
    totals = np.zeros(len(features_per_row))
    np.add.at(totals, row_index, np.asarray(weights))
    populated = totals > 0.0
    out[populated] /= totals[populated, None]
    norms = np.linalg.norm(out, axis=1)
    positive = norms > 0.0
    out[positive] /= norms[positive, None]
    return out


@lru_cache(maxsize=200_000)
def hashed_unit_vector(token: str, dim: int, seed: int = 0) -> np.ndarray:
    """A deterministic unit vector for ``token``.

    The vector is drawn from a normal distribution seeded by a stable
    hash of (token, dim, seed) and normalised to unit length. Cached
    because annotation repeatedly embeds the same ontology labels.
    """
    rng = np.random.default_rng(stable_hash("hv", token, dim, seed, bits=32))
    vector = rng.standard_normal(dim)
    norm = np.linalg.norm(vector)
    if norm == 0.0:  # pragma: no cover - probability zero
        vector[0] = 1.0
        norm = 1.0
    result = vector / norm
    result.setflags(write=False)
    return result
