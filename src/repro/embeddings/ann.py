"""Partitioned (IVF-style) approximate nearest-neighbour index tier.

The flat :class:`~repro.embeddings.similarity.NearestNeighbourIndex`
answers every query with one dense product over the *entire* unit-vector
matrix — O(corpus) per query, which stops fitting the serving latency
budget somewhere around 10⁴–10⁵ rows. This module adds the coarse
quantization tier the ROADMAP calls for:

* rows are clustered into ``n_partitions`` buckets by a **deterministic
  k-means** — centroids are seeded from a content-hash ordering of the
  rows and refined for a fixed iteration count, so a build is
  reproducible byte-for-byte with no RNG anywhere;
* a query is scored against the (few) partition centroids, the
  ``nprobe`` best partitions are probed, and their rows are
  **exact-reranked** with the same einsum kernel the flat index uses.

Because the rerank computes each (query, row) dot product with the same
batch-shape-independent einsum kernel over the same unit rows, every
similarity the partitioned index returns is bit-identical to the flat
index's value for that pair; only *which* rows enter the rerank is
approximate. ``nprobe >= n_partitions`` delegates to the flat kernel
outright and reproduces its results exactly, boundary tie-breaks
included.

:func:`build_index` is the scale gate consumers use: corpora below
``IndexConfig.min_rows`` keep the flat index (never a silent result
change on small corpora); larger ones get the partitioned tier.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from pathlib import Path

import numpy as np

from ..config import DEFAULT_INDEX_CONFIG, IndexConfig
from ..storage._io import atomic_replace, atomic_write_json
from .similarity import NearestNeighbourIndex, top_k_ids_scores

__all__ = ["PartitionedIndex", "build_index"]

#: On-disk layout of a persisted partitioned index (see save/mmap).
_ANN_META_FILENAME = "index.json"
_ANN_VECTORS_FILENAME = "unit_vectors.npy"
_ANN_CENTROIDS_FILENAME = "centroids.npy"
_ANN_ROW_IDS_FILENAME = "partition_row_ids.npy"
_ANN_OFFSETS_FILENAME = "partition_offsets.npy"
_ANN_FORMAT = "nn-index-ivf"


def _normalize_queries(matrix: np.ndarray) -> np.ndarray:
    """Unit query rows, zero rows kept zero — the flat index's convention."""
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    return matrix / np.where(norms > 0.0, norms, 1.0)


def _initial_centroids(unit_vectors: np.ndarray, n_partitions: int) -> np.ndarray:
    """Deterministic k-means seeds: a content-hash ordering of the rows.

    Rows are ordered by ``(blake2b(row bytes), row index)`` — a fixed
    pseudo-random shuffle that depends only on the data — and the first
    ``n_partitions`` rows with pairwise-distinct vectors become the
    initial centroids. Fewer distinct rows than partitions simply yields
    fewer partitions.
    """
    digests = [
        hashlib.blake2b(row.tobytes(), digest_size=16).digest() for row in unit_vectors
    ]
    order = sorted(range(len(digests)), key=lambda i: (digests[i], i))
    chosen: list[int] = []
    seen: set[bytes] = set()
    for i in order:
        key = unit_vectors[i].tobytes()
        if key in seen:
            continue
        seen.add(key)
        chosen.append(i)
        if len(chosen) == n_partitions:
            break
    return np.array(unit_vectors[np.array(chosen, dtype=np.int64)])


def _cluster(
    unit_vectors: np.ndarray, n_partitions: int, iters: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Deterministic spherical k-means over unit rows.

    Returns ``(centroids, row_ids, offsets)``: unit-norm centroids, row
    ids grouped by partition (ascending within each), and the int64
    prefix offsets such that partition ``p`` owns
    ``row_ids[offsets[p]:offsets[p + 1]]``. Empty partitions are
    compacted away. A fixed iteration count (not a convergence test)
    keeps the schedule — and therefore the output bytes — reproducible.
    """
    n, dim = unit_vectors.shape
    if n == 0:
        return (
            np.zeros((0, dim)),
            np.zeros(0, dtype=np.int64),
            np.zeros(1, dtype=np.int64),
        )
    centroids = _initial_centroids(unit_vectors, n_partitions)
    p = len(centroids)
    for _ in range(iters):
        scores = np.einsum("nd,pd->np", unit_vectors, centroids)
        assign = np.argmax(scores, axis=1)
        counts = np.bincount(assign, minlength=p)
        sums = np.empty_like(centroids)
        for j in range(dim):
            sums[:, j] = np.bincount(assign, weights=unit_vectors[:, j], minlength=p)
        norms = np.linalg.norm(sums, axis=1, keepdims=True)
        updated = sums / np.where(norms > 0.0, norms, 1.0)
        # Partitions that lost all members (or whose members cancel out)
        # keep their previous centroid instead of collapsing to zero.
        stale = (counts == 0) | (norms[:, 0] == 0.0)
        centroids = np.where(stale[:, None], centroids, updated)
    scores = np.einsum("nd,pd->np", unit_vectors, centroids)
    assign = np.argmax(scores, axis=1)
    counts = np.bincount(assign, minlength=p)
    # Stable sort groups rows by partition while keeping ascending row
    # ids inside each partition — the order the rerank's tie-break needs.
    row_ids = np.argsort(assign, kind="stable").astype(np.int64)
    nonempty = counts > 0
    centroids = np.ascontiguousarray(centroids[nonempty])
    offsets = np.zeros(int(nonempty.sum()) + 1, dtype=np.int64)
    np.cumsum(counts[nonempty], out=offsets[1:])
    return centroids, row_ids, offsets


class PartitionedIndex(NearestNeighbourIndex):
    """Probe-then-exact-rerank nearest-neighbour search.

    Shares the flat index's contract and unit-vector rows verbatim;
    :meth:`top_k_batch` additionally consults the centroid table to
    restrict the exact rerank to the ``nprobe`` most promising
    partitions. Similarities for returned hits are bit-identical to the
    flat index's values; an effective ``nprobe >= n_partitions``
    delegates to the flat kernel and reproduces its results exactly.
    """

    _centroids: np.ndarray
    _row_ids: np.ndarray
    _offsets: np.ndarray

    def __init__(self, *args, **kwargs) -> None:
        raise TypeError(
            "use PartitionedIndex.build(...) / .from_flat(...) / .mmap(...)"
        )

    # -- construction ------------------------------------------------------

    @classmethod
    def build(
        cls, labels: list[str], vectors: np.ndarray, config: IndexConfig | None = None
    ) -> "PartitionedIndex":
        """Cluster ``vectors`` (normalised like the flat index) and build."""
        return cls.from_flat(NearestNeighbourIndex(labels, vectors), config)

    @classmethod
    def from_flat(
        cls, flat: NearestNeighbourIndex, config: IndexConfig | None = None
    ) -> "PartitionedIndex":
        """Partition an existing flat index, sharing its unit rows verbatim."""
        config = config if config is not None else DEFAULT_INDEX_CONFIG
        units = np.asarray(flat._unit_vectors)
        n_partitions = config.resolve_partitions(len(flat.labels))
        centroids, row_ids, offsets = _cluster(units, n_partitions, config.kmeans_iters)
        index = cls._from_parts(
            flat.labels, flat._unit_vectors, centroids, row_ids, offsets, config.nprobe
        )
        index._recall = index._measure_recall(config.holdout_queries, config.recall_k)
        return index

    @classmethod
    def _from_parts(
        cls,
        labels: list[str],
        unit_vectors: np.ndarray,
        centroids: np.ndarray,
        row_ids: np.ndarray,
        offsets: np.ndarray,
        nprobe: int,
        recall: dict | None = None,
    ) -> "PartitionedIndex":
        index = cls.__new__(cls)
        index.labels = list(labels)
        index._unit_vectors = unit_vectors
        index._centroids = np.asarray(centroids)
        index._row_ids = np.asarray(row_ids)
        index._offsets = np.asarray(offsets)
        index._nprobe = max(1, int(nprobe))
        index._recall = recall
        index._stats_lock = threading.Lock()
        index._stat_queries = 0
        index._stat_candidate_rows = 0
        index._stat_probed: dict[int, int] = {}
        return index

    # -- knobs and metadata ------------------------------------------------

    @property
    def n_partitions(self) -> int:
        return len(self._centroids)

    @property
    def nprobe(self) -> int:
        """Partitions probed per query. Query-time knob — settable."""
        return self._nprobe

    @nprobe.setter
    def nprobe(self, value: int) -> None:
        if int(value) < 1:
            raise ValueError("nprobe must be >= 1")
        self._nprobe = int(value)

    @property
    def recall(self) -> dict | None:
        """The build-time holdout recall measurement (None if disabled)."""
        return self._recall

    def _effective_nprobe(self, nprobe: int | None) -> int:
        effective = self._nprobe if nprobe is None else int(nprobe)
        return max(1, min(effective, max(1, self.n_partitions)))

    def _record(self, queries: int, probed: int, candidate_rows: int) -> None:
        with self._stats_lock:
            self._stat_queries += queries
            self._stat_candidate_rows += candidate_rows
            self._stat_probed[probed] = self._stat_probed.get(probed, 0) + queries

    def stats(self) -> dict:
        """Instrumentation snapshot (tier, probe histogram, recall, ...)."""
        with self._stats_lock:
            queries = self._stat_queries
            candidate_rows = self._stat_candidate_rows
            probed = {str(k): v for k, v in sorted(self._stat_probed.items())}
        n = len(self.labels)
        fraction = candidate_rows / (queries * n) if queries and n else 0.0
        return {
            "tier": "partitioned",
            "rows": n,
            "n_partitions": self.n_partitions,
            "nprobe": self._nprobe,
            "queries": queries,
            "candidate_rows": candidate_rows,
            "probed_partitions": probed,
            "mean_candidate_fraction": fraction,
            "recall": self._recall,
        }

    # -- search ------------------------------------------------------------

    def _probe_units(self, units: np.ndarray, effective: int) -> list[np.ndarray]:
        """Per unit query row: ascending candidate row ids (no recording)."""
        scores = np.einsum("qd,pd->qp", units, self._centroids)
        if effective == 1:
            probes = np.argmax(scores, axis=1)[:, None]
        else:
            probes = np.argpartition(-scores, effective - 1, axis=1)[:, :effective]
        candidates = []
        for row in probes:
            parts = [
                self._row_ids[self._offsets[p] : self._offsets[p + 1]] for p in row
            ]
            candidates.append(np.sort(np.concatenate(parts)))
        return candidates

    def probe_batch(
        self, matrix: np.ndarray, nprobe: int | None = None
    ) -> list[np.ndarray]:
        """Per query row: the ascending row ids the tier would rerank.

        The coarse half of the search alone — callers with their own
        rerank kernel (e.g. schema completion's prefix scoring) use this
        to cut the candidate set before scoring exactly.
        """
        matrix = np.asarray(matrix, dtype=float)
        n_queries = matrix.shape[0]
        n = len(self.labels)
        if n_queries == 0 or n == 0:
            return [np.zeros(0, dtype=np.int64) for _ in range(n_queries)]
        effective = self._effective_nprobe(nprobe)
        if effective >= self.n_partitions:
            self._record(n_queries, self.n_partitions, n * n_queries)
            return [np.arange(n, dtype=np.int64) for _ in range(n_queries)]
        candidates = self._probe_units(_normalize_queries(matrix), effective)
        self._record(n_queries, effective, sum(len(c) for c in candidates))
        return candidates

    def top_k_batch(
        self, matrix: np.ndarray, top_k: int = 1, nprobe: int | None = None
    ) -> list[list[tuple[int, float]]]:
        """Per query row: ``top_k`` (index, similarity) pairs via probing.

        Candidates from the ``nprobe`` best partitions are exact-reranked
        with the flat einsum kernel, so every returned similarity is
        bit-identical to the flat index's value for that (query, row)
        pair. An effective ``nprobe >= n_partitions`` short-circuits to
        the flat path and reproduces its output exactly.
        """
        matrix = np.asarray(matrix, dtype=float)
        n_queries = matrix.shape[0]
        n = len(self.labels)
        if n_queries == 0 or n == 0:
            return [[] for _ in range(n_queries)]
        effective = self._effective_nprobe(nprobe)
        if effective >= self.n_partitions:
            self._record(n_queries, self.n_partitions, n * n_queries)
            return NearestNeighbourIndex.top_k_batch(self, matrix, top_k=top_k)
        units = _normalize_queries(matrix)
        candidates = self._probe_units(units, effective)
        self._record(n_queries, effective, sum(len(c) for c in candidates))
        return self._rerank(units, candidates, min(top_k, n))

    def _rerank(
        self, units: np.ndarray, candidates: list[np.ndarray], top_k: int
    ) -> list[list[tuple[int, float]]]:
        results = []
        for i, cand in enumerate(candidates):
            # Gathering the candidate rows yields a fresh contiguous
            # block; einsum's per-pair results do not depend on which
            # rows surround a row, so each similarity matches the flat
            # full-matrix product bit-for-bit.
            sub = self._unit_vectors[cand]
            sims = np.einsum("qd,ld->ql", units[i : i + 1], sub)
            results.append(top_k_ids_scores(sims, min(top_k, len(cand)), ids=cand)[0])
        return results

    def _measure_recall(self, holdout_queries: int, recall_k: int) -> dict | None:
        """recall@k of the probe path vs exact, on an evenly-spaced holdout.

        Uses index rows themselves as queries (deterministic — no
        sampling RNG) and does not touch the serving stats counters.
        """
        n = len(self.labels)
        if holdout_queries == 0 or n == 0:
            return None
        rows = np.unique(np.linspace(0, n - 1, min(holdout_queries, n)).astype(np.int64))
        queries = np.asarray(self._unit_vectors[rows])
        k = min(recall_k, n)
        effective = self._effective_nprobe(None)
        if effective >= self.n_partitions:
            recall = 1.0
        else:
            units = _normalize_queries(queries)
            exact = NearestNeighbourIndex.top_k_batch(self, queries, top_k=k)
            approx = self._rerank(units, self._probe_units(units, effective), k)
            hits = sum(
                len({i for i, _ in a} & {i for i, _ in e})
                for a, e in zip(approx, exact)
            )
            recall = hits / (len(rows) * k)
        return {
            "recall_at_k": recall,
            "k": k,
            "holdout_queries": int(len(rows)),
            "nprobe": effective,
        }

    # -- persistence -------------------------------------------------------

    def save(self, path: str | os.PathLike[str]) -> None:
        """Persist to a directory for later :meth:`mmap`.

        Same crash-safety scheme as the flat index: every array goes
        through temp-file + rename + fsync, and the metadata commit
        point is written last. The unit-vector matrix is stored
        verbatim, so a reopened index reranks bit-identically.
        """
        path = Path(path)
        path.mkdir(parents=True, exist_ok=True)
        vectors = np.asarray(self._unit_vectors)
        arrays = [
            (_ANN_VECTORS_FILENAME, vectors),
            (_ANN_CENTROIDS_FILENAME, self._centroids),
            (_ANN_ROW_IDS_FILENAME, self._row_ids),
            (_ANN_OFFSETS_FILENAME, self._offsets),
        ]
        for filename, array in arrays:
            with atomic_replace(path / filename) as handle:
                np.save(handle, array)
        meta = {
            "format": _ANN_FORMAT,
            "version": 1,
            "labels": self.labels,
            "dtype": str(vectors.dtype),
            "shape": list(vectors.shape),
            "centroids_dtype": str(self._centroids.dtype),
            "centroids_shape": list(self._centroids.shape),
            "n_row_ids": int(len(self._row_ids)),
            "nprobe": self._nprobe,
            "recall": self._recall,
        }
        atomic_write_json(path / _ANN_META_FILENAME, meta)

    @classmethod
    def mmap(cls, path: str | os.PathLike[str]) -> "PartitionedIndex":
        """Open a :meth:`save`'d partitioned index read-only.

        The unit-vector matrix is mapped (O(mmap) open cost); the small
        centroid/partition tables are read eagerly. Raises ``ValueError``
        when the directory's contents do not match their metadata.
        """
        path = Path(path)
        with open(path / _ANN_META_FILENAME, "r", encoding="utf-8") as handle:
            meta = json.load(handle)
        if meta.get("format") != _ANN_FORMAT:
            raise ValueError(f"not a persisted partitioned index: {path}")
        expected_shape = tuple(meta.get("shape", ()))
        mmap_mode = None if 0 in expected_shape else "r"
        vectors = np.load(
            path / _ANN_VECTORS_FILENAME, mmap_mode=mmap_mode, allow_pickle=False
        )
        if vectors.shape != expected_shape or str(vectors.dtype) != meta.get("dtype"):
            raise ValueError(f"persisted index at {path} does not match its metadata")
        if mmap_mode is None:
            vectors.setflags(write=False)
        centroids = np.load(path / _ANN_CENTROIDS_FILENAME, allow_pickle=False)
        row_ids = np.load(path / _ANN_ROW_IDS_FILENAME, allow_pickle=False)
        offsets = np.load(path / _ANN_OFFSETS_FILENAME, allow_pickle=False)
        if (
            centroids.shape != tuple(meta.get("centroids_shape", ()))
            or str(centroids.dtype) != meta.get("centroids_dtype")
            or len(row_ids) != meta.get("n_row_ids")
        ):
            raise ValueError(f"persisted index at {path} does not match its metadata")
        _validate_partition_tables(row_ids, offsets, len(centroids), len(meta["labels"]))
        return cls._from_parts(
            meta["labels"],
            vectors,
            centroids,
            row_ids,
            offsets,
            meta.get("nprobe", DEFAULT_INDEX_CONFIG.nprobe),
            recall=meta.get("recall"),
        )


def _validate_partition_tables(
    row_ids: np.ndarray, offsets: np.ndarray, n_partitions: int, n_rows: int
) -> None:
    """Structural checks shared by mmap and the artifact loader."""
    if (
        offsets.ndim != 1
        or len(offsets) != n_partitions + 1
        or (n_partitions and offsets[0] != 0)
        or (n_partitions and offsets[-1] != len(row_ids))
        or np.any(np.diff(offsets) < 0)
        or len(row_ids) != n_rows
        or (n_rows and (row_ids.min() < 0 or row_ids.max() >= n_rows))
    ):
        raise ValueError("partition tables are inconsistent with the index")


def build_index(
    labels: list[str],
    vectors: np.ndarray,
    config: IndexConfig | None = None,
    n_rows: int | None = None,
) -> NearestNeighbourIndex:
    """The index for a corpus: flat below the scale gate, partitioned above.

    ``n_rows`` overrides the row count used for the gate (consumers gate
    on *corpus* size, which is known before any matrix is built, so the
    tier decision matches the one their artifact fingerprints encode).
    """
    config = config if config is not None else DEFAULT_INDEX_CONFIG
    count = len(labels) if n_rows is None else n_rows
    if not config.tier_active(count):
        return NearestNeighbourIndex(labels, vectors)
    return PartitionedIndex.build(labels, vectors, config)
