"""Shared substrate of the hashed embedding models.

Both embedding models (:class:`~repro.embeddings.fasttext.FastTextModel`
and :class:`~repro.embeddings.sentence.SentenceEncoder`) are weighted
bags of hashed token/n-gram vectors behind a normalised-key cache. This
base class owns that machinery once: subclasses only define
``_features(key)`` — the weighted feature bag of one normalised key —
and everything else (cache, deduplication, one-pass batched composition)
is shared.

The batch path is the single source of truth: ``embed`` resolves through
the same :func:`~repro.embeddings.hashing.compose_feature_batch` call as
the batch methods, so a string embeds to bit-identical floats whether it
is embedded alone or inside any batch.
"""

from __future__ import annotations

import numpy as np

from .hashing import compose_feature_batch

__all__ = ["HashedEmbedder"]

#: Maximum number of normalised keys kept in an embedder's cache.
_CACHE_CAP = 500_000


class HashedEmbedder:
    """Cache + batched composition shared by the hashed embedding models."""

    dim: int
    seed: int

    def __init__(self) -> None:
        self._cache: dict[str, np.ndarray] = {}

    def _features(self, key: str) -> list[tuple[str, float]]:
        """The weighted (feature, weight) bag of one normalised key."""
        raise NotImplementedError

    def _embed_unique(self, keys: list[str]) -> dict[str, np.ndarray]:
        """Read-only unit rows for normalised keys, composed in one batch.

        Repeated keys are resolved once; keys missed by the shared cache
        are composed together via :func:`compose_feature_batch`, so every
        distinct token/n-gram in the batch is hashed exactly once.
        """
        resolved: dict[str, np.ndarray] = {}
        missing: list[str] = []
        for key in keys:
            if key in resolved:
                continue
            cached = self._cache.get(key)
            if cached is not None:
                resolved[key] = cached
            else:
                resolved[key] = None  # type: ignore[assignment]  # dedupe placeholder
                missing.append(key)
        if missing:
            composed = compose_feature_batch(
                [self._features(key) for key in missing], self.dim, self.seed
            )
            for key, row in zip(missing, composed):
                vector = row.copy()
                vector.setflags(write=False)
                resolved[key] = vector
                if len(self._cache) < _CACHE_CAP:
                    self._cache[key] = vector
        return resolved

    def embed(self, text: str) -> np.ndarray:
        """Embed ``text`` into a unit vector (zero vector for empty text)."""
        key = text.strip().lower()
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        return self._embed_unique([key])[key]

    def _embed_batch(self, texts: list[str]) -> np.ndarray:
        """Embed a list of strings into a ``(len(texts), dim)`` matrix."""
        if not texts:
            return np.zeros((0, self.dim))
        keys = [text.strip().lower() for text in texts]
        resolved = self._embed_unique(keys)
        return np.vstack([resolved[key] for key in keys])
