"""Online compaction / re-sharding of a sealed sharded store.

:func:`compact_store` rewrites a sealed corpus directory to a new shard
size without changing a single table: every committed line is streamed
in corpus order into freshly packed shard files and the result is
published as a new manifest **generation**. It is safe to run while a
:class:`~repro.serving.service.QueryService` keeps serving the same
directory — the swap reuses the canonical-rewrite discipline of the
parallel coordinator's finalize:

1. **Stage** — new-generation shards are written as ``*.jsonl.tmp``
   siblings and fsynced. The live manifest still describes the old
   layout; readers are untouched.
2. **Rename** — staged files move to their generation-scoped names
   (``shard_g00002_00000.jsonl``). Old and new generations never share
   a filename, so the old manifest still resolves only old files.
3. **Publish** — the new manifest (generation bumped, ``compacted_from``
   pinning the pre-compaction content fingerprint) atomically replaces
   ``manifest.json``. This is the commit point: a crash strictly before
   it leaves the old layout authoritative; at or after it, the new one.
4. **Sweep** — old-generation shard files are deleted. A reader that
   opened the old manifest just before publish may now find one of its
   files missing; :class:`~repro.storage.sharded.ShardedJsonlStore`
   diagnoses that as a generation bump and asks to be reopened rather
   than ever mixing the two layouts.

Because the tables (and their order) are unchanged, the compacted
manifest pins the old content fingerprint: search/completion artifacts,
the columnar projection, and ANN tiers all remain valid with zero
re-embedding, and serving workers hot-reload on the generation bump the
same way they follow epoch bumps.

Crash recovery is idempotent through re-invocation: a fresh
:func:`compact_store` first sweeps any staged/renamed leftovers of a
crashed attempt (restoring the authoritative layout byte-exactly) and
then redoes the rewrite, which is deterministic — so every resume
converges to either the old or the new layout, never a mixture.

``fault`` arms deterministic crash injection for the test harness
(any object with ``point`` and ``fire()``, e.g.
:class:`~repro.storage.parallel.FaultSpec`; ``commit_n`` is ignored —
compaction is a single logical commit). Points:
``"before-shard-publish"``, ``"before-manifest-publish"``,
``"before-sweep"``.
"""

from __future__ import annotations

import os
from dataclasses import asdict, dataclass
from pathlib import Path

from ..errors import CorpusError
from ._io import fsync_dir
from .parallel import has_parallel_state
from .sharded import (
    MANIFEST_LOG_FILENAME,
    ShardedJsonlStore,
    _read_manifest,
    _shard_filename,
    _write_manifest,
    build_manifest,
    manifest_generation,
    manifest_is_sealed,
)

__all__ = ["CompactionReport", "compact_store"]


@dataclass(frozen=True)
class CompactionReport:
    """What one :func:`compact_store` invocation did."""

    directory: str
    #: Layout generation the store is at after the call.
    generation: int
    shard_size: int
    table_count: int
    shards_before: int
    shards_after: int
    #: Content fingerprint — identical before and after by construction.
    fingerprint: str
    #: False when the store was already packed at the requested size and
    #: only leftover files from a crashed attempt were cleaned up.
    rewritten: bool
    #: Stale files removed (crashed-attempt leftovers + swept old layout).
    swept_files: int

    def to_dict(self) -> dict:
        return asdict(self)


def _fire(fault, point: str) -> None:
    """Crash-injection hook (armed only when ``fault`` was passed)."""
    if fault is not None and getattr(fault, "point", None) == point:
        fault.fire()


def _sweep_stale_files(directory: Path, manifest: dict) -> int:
    """Delete shard files the authoritative manifest does not list.

    A crashed compaction leaves behind either staged ``*.jsonl.tmp``
    files or renamed shards of a generation that never published; both
    are invisible to every reader (no manifest references them) and are
    removed here so the directory is byte-exactly one layout again.
    """
    listed = {entry["file"] for entry in manifest.get("shards", [])}
    swept = 0
    for path in list(directory.glob("shard_*.jsonl.tmp")):
        path.unlink()
        swept += 1
    for path in list(directory.glob("shard_*.jsonl")):
        if path.name not in listed:
            path.unlink()
            swept += 1
    if swept:
        fsync_dir(directory)
    return swept


def _is_packed(shards: list[dict], shard_size: int) -> bool:
    """Whether a shard list is already optimally packed at ``shard_size``."""
    for position, entry in enumerate(shards):
        count = int(entry["count"])
        if position < len(shards) - 1:
            if count != shard_size:
                return False
        elif not 0 < count <= shard_size:
            return False
    return True


def _committed_lines(directory: Path, entry: dict):
    """The committed lines of one shard file, bytes preserved exactly."""
    with open(directory / entry["file"], "rb") as handle:
        data = handle.read(int(entry["bytes"]))
    lines = data.splitlines(keepends=True)
    if len(lines) != int(entry["count"]):
        raise CorpusError(
            f"shard {entry['file']} holds {len(lines)} committed lines, "
            f"manifest says {entry['count']}; the corpus is corrupt"
        )
    return lines


def compact_store(
    directory: str | os.PathLike[str],
    shard_size: int | None = None,
    fault=None,
) -> CompactionReport:
    """Rewrite a sealed store to ``shard_size`` under a new generation.

    ``shard_size=None`` keeps the current size — which on a sealed store
    is always already packed, so the call degenerates to cleaning up any
    leftovers of a previously crashed compaction (this is also what
    makes re-running after a crash idempotent). Refuses unsealed
    directories, unfinalized serial builds (``manifest.log`` present),
    and directories with in-flight parallel-build state: compaction
    only ever rewrites *fully committed* layouts.
    """
    directory = Path(directory)
    if has_parallel_state(directory):
        raise CorpusError(
            f"cannot compact {directory}: an in-flight parallel build owns it; "
            f"resume and finalize the build first"
        )
    manifest = _read_manifest(directory)
    if (directory / MANIFEST_LOG_FILENAME).exists():
        raise CorpusError(
            f"cannot compact {directory}: uncompacted manifest log present "
            f"(unfinalized build); finalize the writer first"
        )
    if not manifest_is_sealed(manifest):
        raise CorpusError(
            f"cannot compact {directory}: the current epoch is not sealed; "
            f"finalize the build first"
        )
    old_shards = manifest.get("shards", [])
    old_size = int(manifest["shard_size"])
    new_size = old_size if shard_size is None else int(shard_size)
    if new_size < 1:
        raise ValueError("shard_size must be >= 1")

    # Restore the directory to byte-exactly the authoritative layout
    # before touching anything (heals crashed-attempt leftovers).
    swept = _sweep_stale_files(directory, manifest)

    generation = manifest_generation(manifest)
    # The pin must be computed from the *pre-rewrite* view so repeated
    # compactions keep reporting the original content fingerprint.
    fingerprint = ShardedJsonlStore(directory).content_fingerprint()
    tables = manifest.get("tables", {})

    if new_size == old_size and _is_packed(old_shards, old_size):
        return CompactionReport(
            directory=str(directory),
            generation=generation,
            shard_size=old_size,
            table_count=len(tables),
            shards_before=len(old_shards),
            shards_after=len(old_shards),
            fingerprint=fingerprint,
            rewritten=False,
            swept_files=swept,
        )

    new_generation = generation + 1

    # Stage: pack every committed line, in corpus order, into
    # new-generation shards written as fsynced .tmp siblings.
    new_entries: list[dict] = []
    staged: list[tuple[Path, str]] = []
    group: list[bytes] = []

    def flush_group() -> None:
        filename = _shard_filename(len(new_entries), new_generation)
        tmp_path = directory / (filename + ".tmp")
        payload = b"".join(group)
        with open(tmp_path, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        staged.append((tmp_path, filename))
        new_entries.append({"file": filename, "count": len(group), "bytes": len(payload)})
        group.clear()

    for entry in old_shards:
        for line in _committed_lines(directory, entry):
            group.append(line)
            if len(group) >= new_size:
                flush_group()
    if group:
        flush_group()
    fsync_dir(directory)

    # Remap table locations by global position; the manifest lists
    # tables in corpus order, and order is preserved exactly.
    prefix = [0]
    for entry in old_shards:
        prefix.append(prefix[-1] + int(entry["count"]))
    new_tables: dict[str, dict] = {}
    for table_id, entry in tables.items():
        position = prefix[int(entry["shard"])] + int(entry["line"])
        location = dict(entry)
        location["shard"] = position // new_size
        location["line"] = position % new_size
        new_tables[table_id] = location

    _fire(fault, "before-shard-publish")
    for tmp_path, filename in staged:
        os.replace(tmp_path, directory / filename)
    fsync_dir(directory)

    _fire(fault, "before-manifest-publish")
    # The commit point: one atomic manifest replace flips every reader
    # that opens from here on to the new layout.
    _write_manifest(
        directory,
        build_manifest(
            manifest.get("name", "gittables"),
            new_size,
            new_entries,
            new_tables,
            manifest.get("stats", {}),
            epoch=manifest.get("epoch", 1),
            epochs=manifest.get("epochs", []),
            generation=new_generation,
            compacted_from={"fingerprint": fingerprint, "table_count": len(new_tables)},
        ),
    )

    _fire(fault, "before-sweep")
    keep = {entry["file"] for entry in new_entries}
    for path in list(directory.glob("shard_*.jsonl")):
        if path.name not in keep:
            path.unlink()
            swept += 1
    fsync_dir(directory)

    return CompactionReport(
        directory=str(directory),
        generation=new_generation,
        shard_size=new_size,
        table_count=len(new_tables),
        shards_before=len(old_shards),
        shards_after=len(new_entries),
        fingerprint=fingerprint,
        rewritten=True,
        swept_files=swept,
    )
