"""Build checkpoints: what a resumed corpus construction needs to know.

A resumable build writes two kinds of state into its corpus directory:

* the **manifest** (see :mod:`repro.storage.sharded`) — the committed
  corpus itself, which tells a resumed session which source files are
  already annotated and stored;
* ``build.json`` (this module) — the build's **provenance**: a
  fingerprint of the pipeline configuration the corpus was (or is
  being) built with. It is written before the first batch and kept for
  the life of the directory, so *any* later build call against the
  directory — whether the build is still in flight or long completed —
  is validated against the original configuration instead of silently
  returning or extending a corpus built with a different seed/target.
* ``checkpoint.json`` (this module) — the *session* state: the
  cumulative :class:`~repro.pipeline.report.PipelineReport` counters of
  every session so far, so the final report reconciles across
  interrupted sessions.

The checkpoint is deleted when a build completes, which is what makes a
finished resumed directory byte-identical to a finished one-shot
directory; ``build.json`` is deterministic (pure configuration, no
timings), so keeping it preserves that byte-identity.
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import CorpusError
from ._io import atomic_write_json

__all__ = [
    "BUILD_META_FILENAME",
    "CHECKPOINT_FILENAME",
    "BuildCheckpoint",
    "checkpoint_filename",
    "config_fingerprint",
    "load_build_meta",
    "numbered_sidecar_ids",
    "save_build_meta",
    "require_compatible_build",
    "require_compatible_extension",
    "worker_checkpoint_ids",
]

BUILD_META_FILENAME = "build.json"
CHECKPOINT_FILENAME = "checkpoint.json"


def checkpoint_filename(worker: int | None = None) -> str:
    """The checkpoint file name — global, or scoped to one build worker.

    Process-parallel builds keep one :class:`BuildCheckpoint` per worker
    (``checkpoint-00.json``, ``checkpoint-01.json``, …) next to that
    worker's manifest log, so each worker's cross-session counters
    survive killing any subset of workers independently.
    """
    if worker is None:
        return CHECKPOINT_FILENAME
    if worker < 0:
        raise ValueError("worker must be >= 0")
    return f"checkpoint-{worker:02d}.json"


def numbered_sidecar_ids(directory: str | os.PathLike[str], pattern: str) -> list[int]:
    """Worker ids embedded in ``<stem>-<NN>.<ext>`` sidecar file names.

    The single parser behind every worker-scoped file family of a
    parallel build (``checkpoint-<NN>.json``, ``manifest-<NN>.log``), so
    the id-naming scheme cannot drift between them.
    """
    ids = []
    for path in Path(directory).glob(pattern):
        suffix = path.stem.rsplit("-", 1)[-1]
        if suffix.isdigit():
            ids.append(int(suffix))
    return sorted(ids)


def worker_checkpoint_ids(directory: str | os.PathLike[str]) -> list[int]:
    """Worker ids that have a per-worker checkpoint in ``directory``."""
    return numbered_sidecar_ids(directory, "checkpoint-*.json")


def _normalize(value):
    """JSON round-trip normalisation so tuples compare equal to lists."""
    return json.loads(json.dumps(value))


def config_fingerprint(config, generator_config=None) -> dict:
    """A JSON-comparable fingerprint of everything that shapes the stream.

    Covers the full :class:`~repro.config.PipelineConfig` (minus
    ``workers`` and ``processes``, which are proven not to change corpus
    contents — parallel builds finalize byte-identical directories, so a
    build may be resumed with a different thread or process count) and
    the synthetic-instance generator configuration. A custom pre-built
    ``instance`` object cannot be fingerprinted — ``generator`` is
    recorded as ``None`` then, which the builder treats as
    *unverifiable*: stores carrying such a fingerprint are never resumed
    or reused, because two different instances would compare equal.
    """
    payload = dataclasses.asdict(config)
    payload.pop("workers", None)
    payload.pop("processes", None)
    fingerprint = {"config": payload, "generator": None}
    if generator_config is not None:
        if dataclasses.is_dataclass(generator_config):
            fingerprint["generator"] = dataclasses.asdict(generator_config)
        else:  # pragma: no cover - defensive for exotic callers
            fingerprint["generator"] = repr(generator_config)
    return _normalize(fingerprint)


def save_build_meta(directory: str | os.PathLike[str], fingerprint: dict) -> None:
    """Record the build's configuration fingerprint (atomic, durable)."""
    atomic_write_json(
        Path(directory) / BUILD_META_FILENAME, {"fingerprint": _normalize(fingerprint)}
    )


def load_build_meta(directory: str | os.PathLike[str]) -> dict | None:
    """The fingerprint a directory's corpus was built with, or ``None``."""
    path = Path(directory) / BUILD_META_FILENAME
    if not path.exists():
        return None
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle).get("fingerprint")


def require_compatible_build(
    stored_fingerprint: dict, fingerprint: dict, directory
) -> None:
    """Reject building against a directory made with a different config."""
    if stored_fingerprint != _normalize(fingerprint):
        raise CorpusError(
            f"corpus at {directory} was built with a different pipeline "
            "configuration (seed/target/stage settings differ); delete the "
            "directory to rebuild from scratch"
        )


#: Fingerprint fields an extension is allowed to *grow*. Everything
#: else must match the original build byte-for-byte.
_EXTENSION_GROWTH_AXES = (
    ("config", "target_tables"),
    ("config", "extraction", "topic_count"),
)


def _pop_axis(payload: dict, axis: tuple[str, ...]):
    """Remove a nested fingerprint field, returning its value (or None)."""
    node = payload
    for key in axis[:-1]:
        node = node.get(key) if isinstance(node, dict) else None
        if node is None:
            return None
    if isinstance(node, dict):
        return node.pop(axis[-1], None)
    return None


def require_compatible_extension(
    stored_fingerprint: dict, fingerprint: dict, directory
) -> None:
    """Reject an extension that changes anything but the growth axes.

    An extension may grow ``target_tables`` and ``extraction.topic_count``
    — the axes along which an epoched build appends new tables after the
    committed prefix — but every other configuration field, *including
    the synthetic-instance generator*, must match the original build
    exactly: a changed seed, stage setting, or generator would make the
    extension's stream disagree with the committed prefix. Shrinking a
    growth axis is also rejected (the committed corpus already exceeds
    the new target).
    """
    stored = json.loads(json.dumps(_normalize(stored_fingerprint)))
    new = json.loads(json.dumps(_normalize(fingerprint)))
    if stored.get("generator") is None or new.get("generator") is None:
        raise CorpusError(
            f"cannot extend corpus at {directory}: the build carries no "
            "verifiable generator fingerprint (it was built from a custom "
            "pre-built instance), so a compatible extension stream cannot "
            "be proven"
        )
    for axis in _EXTENSION_GROWTH_AXES:
        before, after = _pop_axis(stored, axis), _pop_axis(new, axis)
        if before is not None and after is not None and after < before:
            raise CorpusError(
                f"cannot extend corpus at {directory}: "
                f"{'.'.join(axis)} shrank from {before} to {after}; an "
                "extension may only grow the corpus"
            )
    if stored != new:
        raise CorpusError(
            f"cannot extend corpus at {directory}: the pipeline "
            "configuration differs from the original build beyond the "
            "growth axes (target_tables, extraction.topic_count); an "
            "extension must reuse the original seed, stage settings and "
            "generator"
        )


@dataclass
class BuildCheckpoint:
    """Cross-session state of one resumable corpus build."""

    fingerprint: dict
    #: Completed sessions so far (the running one not included).
    sessions: int = 0
    #: Cumulative report counters of completed work, as produced by
    #: :meth:`repro.pipeline.report.PipelineReport.counters`.
    counters: dict = field(default_factory=dict)

    @classmethod
    def load(
        cls, directory: str | os.PathLike[str], worker: int | None = None
    ) -> "BuildCheckpoint | None":
        """The (optionally worker-scoped) checkpoint in ``directory``."""
        path = Path(directory) / checkpoint_filename(worker)
        if not path.exists():
            return None
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        return cls(
            fingerprint=payload.get("fingerprint", {}),
            sessions=int(payload.get("sessions", 0)),
            counters=payload.get("counters", {}),
        )

    def save(self, directory: str | os.PathLike[str], worker: int | None = None) -> None:
        """Atomically write the checkpoint next to the manifest."""
        atomic_write_json(
            Path(directory) / checkpoint_filename(worker),
            {
                "fingerprint": self.fingerprint,
                "sessions": self.sessions,
                "counters": self.counters,
            },
        )

    def require_compatible(self, fingerprint: dict, directory) -> None:
        """Reject a resume whose configuration differs from the original."""
        if self.fingerprint != _normalize(fingerprint):
            raise CorpusError(
                f"cannot resume corpus build at {directory}: the pipeline "
                "configuration differs from the one the build was started "
                "with (delete the directory to rebuild from scratch)"
            )

    @staticmethod
    def clear(directory: str | os.PathLike[str], worker: int | None = None) -> None:
        """Remove the checkpoint (called when a build completes)."""
        path = Path(directory) / checkpoint_filename(worker)
        if path.exists():
            path.unlink()

    @staticmethod
    def clear_workers(directory: str | os.PathLike[str]) -> None:
        """Remove every per-worker checkpoint (parallel build finalize)."""
        for worker in worker_checkpoint_ids(directory):
            BuildCheckpoint.clear(directory, worker=worker)
