"""Pluggable corpus storage backends.

:class:`~repro.storage.base.CorpusStore` is the protocol behind
:class:`~repro.core.corpus.GitTablesCorpus`; the backends are the
in-memory dict (:class:`InMemoryStore`), the lazy sharded-JSONL reader
(:class:`ShardedJsonlStore`), and the append-only resumable writer
(:class:`ShardedCorpusWriter`). :class:`BuildCheckpoint` carries
cross-session build state for resumable corpus construction.
"""

from .artifacts import (
    ARTIFACTS_DIRNAME,
    IndexArtifactStore,
    LoadedArtifact,
    corpus_content_fingerprint,
    fingerprint_digest,
)
from .base import CorpusStore, StoreStats
from .checkpoint import (
    BUILD_META_FILENAME,
    CHECKPOINT_FILENAME,
    BuildCheckpoint,
    config_fingerprint,
    load_build_meta,
    save_build_meta,
)
from .memory import InMemoryStore
from .sharded import (
    DEFAULT_COMPACT_EVERY,
    DEFAULT_SHARD_SIZE,
    MANIFEST_FILENAME,
    MANIFEST_LOG_FILENAME,
    SHARDED_FORMAT,
    ShardedCorpusWriter,
    ShardedJsonlStore,
    is_sharded_dir,
)

__all__ = [
    "CorpusStore",
    "StoreStats",
    "InMemoryStore",
    "ShardedJsonlStore",
    "ShardedCorpusWriter",
    "BuildCheckpoint",
    "IndexArtifactStore",
    "LoadedArtifact",
    "corpus_content_fingerprint",
    "fingerprint_digest",
    "config_fingerprint",
    "is_sharded_dir",
    "ARTIFACTS_DIRNAME",
    "DEFAULT_COMPACT_EVERY",
    "DEFAULT_SHARD_SIZE",
    "MANIFEST_FILENAME",
    "MANIFEST_LOG_FILENAME",
    "SHARDED_FORMAT",
    "BUILD_META_FILENAME",
    "CHECKPOINT_FILENAME",
    "load_build_meta",
    "save_build_meta",
]
