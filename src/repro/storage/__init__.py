"""Pluggable corpus storage backends.

:class:`~repro.storage.base.CorpusStore` is the protocol behind
:class:`~repro.core.corpus.GitTablesCorpus`; the backends are the
in-memory dict (:class:`InMemoryStore`), the lazy sharded-JSONL reader
(:class:`ShardedJsonlStore`), and the append-only resumable writer
(:class:`ShardedCorpusWriter`). :class:`BuildCheckpoint` carries
cross-session build state for resumable corpus construction.
:mod:`repro.storage.parallel` lifts the writer to multi-process builds:
per-worker shard ranges and delta logs (:class:`WorkerShardWriter`)
merged on commit boundaries by a :class:`ParallelCorpusBuilder`
coordinator into the same canonical on-disk layout.
"""

from .artifacts import (
    ARTIFACTS_DIRNAME,
    IndexArtifactStore,
    LoadedArtifact,
    corpus_content_fingerprint,
    fingerprint_digest,
)
from .base import CorpusStore, StoreStats
from .checkpoint import (
    BUILD_META_FILENAME,
    CHECKPOINT_FILENAME,
    BuildCheckpoint,
    checkpoint_filename,
    config_fingerprint,
    load_build_meta,
    save_build_meta,
    worker_checkpoint_ids,
)
from .memory import InMemoryStore
from .parallel import (
    FaultSpec,
    ParallelCorpusBuilder,
    WorkerShardWriter,
    has_parallel_state,
    worker_log_filename,
    worker_shard_filename,
)
from .sharded import (
    DEFAULT_COMPACT_EVERY,
    DEFAULT_SHARD_SIZE,
    MANIFEST_FILENAME,
    MANIFEST_LOG_FILENAME,
    SHARDED_FORMAT,
    ShardedCorpusWriter,
    ShardedJsonlStore,
    build_manifest,
    is_sharded_dir,
)

__all__ = [
    "FaultSpec",
    "ParallelCorpusBuilder",
    "WorkerShardWriter",
    "build_manifest",
    "checkpoint_filename",
    "has_parallel_state",
    "worker_checkpoint_ids",
    "worker_log_filename",
    "worker_shard_filename",
    "CorpusStore",
    "StoreStats",
    "InMemoryStore",
    "ShardedJsonlStore",
    "ShardedCorpusWriter",
    "BuildCheckpoint",
    "IndexArtifactStore",
    "LoadedArtifact",
    "corpus_content_fingerprint",
    "fingerprint_digest",
    "config_fingerprint",
    "is_sharded_dir",
    "ARTIFACTS_DIRNAME",
    "DEFAULT_COMPACT_EVERY",
    "DEFAULT_SHARD_SIZE",
    "MANIFEST_FILENAME",
    "MANIFEST_LOG_FILENAME",
    "SHARDED_FORMAT",
    "BUILD_META_FILENAME",
    "CHECKPOINT_FILENAME",
    "load_build_meta",
    "save_build_meta",
]
