"""Pluggable corpus storage backends.

:class:`~repro.storage.base.CorpusStore` is the protocol behind
:class:`~repro.core.corpus.GitTablesCorpus`; the backends are the
in-memory dict (:class:`InMemoryStore`), the lazy sharded-JSONL reader
(:class:`ShardedJsonlStore`), and the append-only resumable writer
(:class:`ShardedCorpusWriter`). :class:`BuildCheckpoint` carries
cross-session build state for resumable corpus construction.
:mod:`repro.storage.parallel` lifts the writer to multi-process builds:
per-worker shard ranges and delta logs (:class:`WorkerShardWriter`)
merged on commit boundaries by a :class:`ParallelCorpusBuilder`
coordinator into the same canonical on-disk layout.
:mod:`repro.storage.compaction` re-shards a sealed directory online
(:func:`compact_store`): the same tables are repacked under a bumped
manifest generation with the content fingerprint pinned, so derived
artifacts survive and serving readers hot-reload instead of rebuilding.
:mod:`repro.storage.columnar` adds the analytics tier: a
:class:`ColumnarProjection` materializes per-table and per-column
metadata into typed NumPy arrays (persisted via the artifact store)
so corpus statistics and :class:`TablePredicate` filters run as
vectorized engine-side scans instead of per-table JSON parsing.
"""

from .artifacts import (
    ARTIFACTS_DIRNAME,
    IndexArtifactStore,
    LoadedArtifact,
    corpus_content_fingerprint,
    fingerprint_digest,
)
from .base import CorpusStore, StoreStats
from .columnar import (
    PROJECTION_ARTIFACT,
    ColumnarProjection,
    TablePredicate,
    count_by,
    ensure_projection,
    first_seen_counts,
    histogram,
    load_projection,
    masked,
    publish_projection,
    quantiles,
    sum_by,
)
from .checkpoint import (
    BUILD_META_FILENAME,
    CHECKPOINT_FILENAME,
    BuildCheckpoint,
    checkpoint_filename,
    config_fingerprint,
    load_build_meta,
    save_build_meta,
    worker_checkpoint_ids,
)
from .compaction import CompactionReport, compact_store
from .memory import InMemoryStore
from .parallel import (
    FaultSpec,
    ParallelCorpusBuilder,
    WorkerShardWriter,
    has_parallel_state,
    worker_log_filename,
    worker_shard_filename,
)
from .sharded import (
    DEFAULT_COMPACT_EVERY,
    DEFAULT_SHARD_SIZE,
    MANIFEST_FILENAME,
    MANIFEST_LOG_FILENAME,
    SHARDED_FORMAT,
    ShardedCorpusWriter,
    ShardedJsonlStore,
    build_manifest,
    is_sharded_dir,
    manifest_generation,
    read_store_epoch,
    read_store_version,
)

__all__ = [
    "CompactionReport",
    "FaultSpec",
    "ParallelCorpusBuilder",
    "compact_store",
    "manifest_generation",
    "read_store_epoch",
    "read_store_version",
    "WorkerShardWriter",
    "build_manifest",
    "checkpoint_filename",
    "has_parallel_state",
    "worker_checkpoint_ids",
    "worker_log_filename",
    "worker_shard_filename",
    "CorpusStore",
    "StoreStats",
    "ColumnarProjection",
    "TablePredicate",
    "PROJECTION_ARTIFACT",
    "count_by",
    "sum_by",
    "histogram",
    "quantiles",
    "masked",
    "first_seen_counts",
    "ensure_projection",
    "load_projection",
    "publish_projection",
    "InMemoryStore",
    "ShardedJsonlStore",
    "ShardedCorpusWriter",
    "BuildCheckpoint",
    "IndexArtifactStore",
    "LoadedArtifact",
    "corpus_content_fingerprint",
    "fingerprint_digest",
    "config_fingerprint",
    "is_sharded_dir",
    "ARTIFACTS_DIRNAME",
    "DEFAULT_COMPACT_EVERY",
    "DEFAULT_SHARD_SIZE",
    "MANIFEST_FILENAME",
    "MANIFEST_LOG_FILENAME",
    "SHARDED_FORMAT",
    "BUILD_META_FILENAME",
    "CHECKPOINT_FILENAME",
    "load_build_meta",
    "save_build_meta",
]
