"""The :class:`CorpusStore` protocol behind :class:`~repro.core.corpus.GitTablesCorpus`.

A store owns the physical representation of a corpus — the mapping from
table ids to :class:`~repro.core.corpus.AnnotatedTable` records — and the
corpus container delegates every container operation to it. Three
backends implement the protocol:

* :class:`~repro.storage.memory.InMemoryStore` — a plain dict; the
  historical behaviour, and what subsets/filters materialize into.
* :class:`~repro.storage.sharded.ShardedJsonlStore` — a lazy reader over
  a directory of JSONL shards plus a manifest. Iteration streams one
  shard at a time, ``get`` reads only the shard that holds the requested
  table, and corpus-level statistics (topics, row/column totals,
  repository counts) are answered from the manifest without touching any
  shard.
* :class:`~repro.storage.sharded.ShardedCorpusWriter` — the append-only
  store used as a pipeline sink. ``add`` buffers, ``commit`` appends the
  buffered tables to shard files and atomically rewrites the manifest,
  which is what makes interrupted corpus builds resumable.

The protocol is deliberately small: everything a corpus can compute by
streaming (``topics``, ``filter``, statistics) lives in
:class:`~repro.core.corpus.GitTablesCorpus` itself, with
:meth:`CorpusStore.stats_hint` as the optional manifest-backed fast
path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..core.corpus import AnnotatedTable

__all__ = ["CorpusStore", "StoreStats"]


#: The manifest-cached statistics a store may answer without scanning:
#: ``{"total_rows": int, "total_columns": int, "topics": {topic: count},
#: "repositories": {repo: count}}``.
StoreStats = dict


@runtime_checkable
class CorpusStore(Protocol):
    """Storage backend protocol for a corpus of annotated tables.

    Implementations must keep **insertion order**: iteration (and
    ``table_ids``) yields tables in the order they were added, which is
    what makes corpora built through different backends comparable
    record-for-record.
    """

    #: Corpus name carried by the backend (persisted backends store it in
    #: their manifest).
    name: str

    def __len__(self) -> int:
        """Number of tables in the store."""
        ...

    def __iter__(self) -> Iterator["AnnotatedTable"]:
        """Stream every table in insertion order.

        Disk-backed stores must not materialize the full corpus to
        iterate — at most one shard (plus a small cache) may be resident.
        """
        ...

    def __contains__(self, table_id: str) -> bool:
        """Whether a table id is present (no table content is read)."""
        ...

    def get(self, table_id: str) -> "AnnotatedTable | None":
        """The table for ``table_id``, or ``None``.

        Disk-backed stores read only the shard containing the table.
        """
        ...

    def add(self, annotated: "AnnotatedTable") -> None:
        """Append a table; duplicate ids raise
        :class:`~repro.errors.CorpusError`. Read-only backends raise
        :class:`~repro.errors.CorpusError` unconditionally."""
        ...

    def table_ids(self) -> Iterator[str]:
        """Stream the table ids in insertion order (metadata only)."""
        ...

    def stats_hint(self) -> StoreStats | None:
        """Cached corpus statistics, or ``None`` when the store has no
        cheaper answer than a scan (the in-memory backend).

        When a dict is returned it is authoritative: the corpus layer
        answers ``topics()``/``total_rows()``/``total_columns()``/
        ``repositories()`` straight from it without reading any table.
        """
        ...
