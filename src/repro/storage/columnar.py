"""Materialized columnar metadata projections: stats as engine-side scans.

The corpus-statistics surface (paper Tables 1-6, Figures 4-5) used to be
computed by iterating Python ``Table`` objects one shard at a time —
re-parsing every table's JSON and re-inferring every column's dtype on
every run. A :class:`ColumnarProjection` materializes the metadata those
reports actually consume into typed, contiguous NumPy columns:

* per **table** — id, topic, repository, license, ``n_rows``, ``n_cols``
  (dictionary-encoded: a small string vocabulary plus int code arrays);
* per **column** — owning table, name, inferred atomic dtype;
* per **annotation** — owning table, method, ontology, column name,
  type label, confidence (rows stored in the exact order the Python
  reference iterates them, so order-sensitive reconstructions such as
  ``Counter.most_common`` tie-breaking are bit-identical);
* per **scrubbed PII column** — owning table, column name, PII label.

On top of the arrays sits a small vectorized kernel set
(:func:`count_by`, :func:`sum_by`, :func:`histogram`, :func:`quantiles`,
:func:`masked`) that the statistics reports are rewired onto, and a
predicate-pushdown path (:class:`TablePredicate` +
:meth:`ColumnarProjection.select_ids`) that lets ``corpus.filter()``
evaluate dtype/topic/annotation predicates on the columns and read only
the matching tables from the sharded store.

Projections persist through the :class:`~repro.storage.artifacts.
IndexArtifactStore` (``stats_*`` arrays plus a vocabulary payload),
fingerprint-guarded by the corpus ``content_fingerprint()`` — any
corpus change reads as a miss and the projection is rebuilt lazily.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, fields
from itertools import islice
from pathlib import Path

import numpy as np

from ..dataframe.dtypes import AtomicType
from .artifacts import IndexArtifactStore, corpus_content_fingerprint, try_publish

__all__ = [
    "ATOMIC_TYPES",
    "METHODS",
    "PROJECTION_ARTIFACT",
    "PROJECTION_VERSION",
    "ColumnarProjection",
    "TablePredicate",
    "count_by",
    "ensure_projection",
    "extend_projection",
    "first_seen_counts",
    "histogram",
    "load_projection",
    "load_stale_projection",
    "masked",
    "projection_fingerprint",
    "publish_projection",
    "quantiles",
    "sum_by",
]

#: Name of the persisted projection artifact.
PROJECTION_ARTIFACT = "stats-projection"
#: Bump on any layout change: the version lives in the artifact
#: fingerprint, so older projections read as a miss and are rebuilt.
PROJECTION_VERSION = 1

#: Fixed dtype vocabulary: codes index into ``AtomicType`` declaration order.
ATOMIC_TYPES: tuple[str, ...] = tuple(atomic.value for atomic in AtomicType)
#: Fixed method vocabulary: codes index into this tuple.
METHODS: tuple[str, ...] = ("syntactic", "semantic")


# -- aggregate kernels -------------------------------------------------------


def count_by(codes, size: int, mask=None) -> np.ndarray:
    """Occurrences of each code in ``[0, size)`` (int64, length ``size``).

    ``codes`` must be non-negative; pass ``mask`` to count a subset.
    """
    codes = np.asarray(codes)
    if mask is not None:
        codes = codes[np.asarray(mask)]
    if codes.size == 0:
        return np.zeros(size, dtype=np.int64)
    return np.bincount(codes, minlength=size).astype(np.int64, copy=False)[:size]


def sum_by(codes, weights, size: int, mask=None) -> np.ndarray:
    """Per-code sums of ``weights`` (length ``size``, weights' dtype).

    Integer weights accumulate in int64 (exact); float weights in
    float64. ``codes`` must be non-negative.
    """
    codes = np.asarray(codes)
    weights = np.asarray(weights)
    if mask is not None:
        mask = np.asarray(mask)
        codes, weights = codes[mask], weights[mask]
    dtype = np.int64 if np.issubdtype(weights.dtype, np.integer) else np.float64
    totals = np.zeros(size, dtype=dtype)
    np.add.at(totals, codes, weights)
    return totals


def histogram(values, bins) -> np.ndarray:
    """Counts of ``values`` per bin (thin, kernel-shaped ``np.histogram``)."""
    return np.histogram(np.asarray(values), bins=bins)[0]


def quantiles(values, qs) -> np.ndarray:
    """``np.quantile`` over ``values`` (zeros for an empty input)."""
    values = np.asarray(values, dtype=np.float64)
    qs = np.atleast_1d(np.asarray(qs, dtype=np.float64))
    if values.size == 0:
        return np.zeros(qs.shape, dtype=np.float64)
    return np.quantile(values, qs)


def masked(values, mask) -> np.ndarray:
    """Masked selection: the elements of ``values`` where ``mask`` holds."""
    return np.asarray(values)[np.asarray(mask)]


def first_seen_counts(codes) -> tuple[np.ndarray, np.ndarray]:
    """(distinct codes in first-occurrence order, their counts).

    First-occurrence order is what a Python ``Counter`` built by
    iteration exposes — and what ``Counter.most_common`` uses to break
    ties — so reconstructions from this kernel are order-identical to
    the iteration reference.
    """
    codes = np.asarray(codes)
    if codes.size == 0:
        return codes[:0], np.zeros(0, dtype=np.int64)
    uniq, first, counts = np.unique(codes, return_index=True, return_counts=True)
    order = np.argsort(first, kind="stable")
    return uniq[order], counts[order].astype(np.int64, copy=False)


class _Vocab:
    """Dictionary encoder: first-seen strings get consecutive int codes.

    ``existing`` seeds the encoder with an already-assigned vocabulary
    (in code order), so an incremental rebuild re-issues identical codes
    for every known string and extends with fresh codes only for new
    ones — the invariant that lets extended code arrays concatenate onto
    committed ones.
    """

    def __init__(self, existing=()) -> None:
        self._codes: dict[str, int] = {value: code for code, value in enumerate(existing)}

    def code(self, value: str) -> int:
        code = self._codes.get(value)
        if code is None:
            code = self._codes[value] = len(self._codes)
        return code

    def values(self) -> tuple[str, ...]:
        return tuple(self._codes)


#: dtype of each persisted array field; the extension path concatenates
#: with these so an extended projection's arrays are dtype-identical to
#: a from-scratch scan's.
_ARRAY_DTYPES = {
    "n_rows": np.int64,
    "n_cols": np.int64,
    "topic_codes": np.int32,
    "repo_codes": np.int32,
    "license_codes": np.int32,
    "col_table": np.int64,
    "col_name": np.int32,
    "col_dtype": np.int8,
    "ann_table": np.int64,
    "ann_method": np.int8,
    "ann_ontology": np.int16,
    "ann_column": np.int32,
    "ann_label": np.int32,
    "ann_confidence": np.float64,
    "pii_table": np.int64,
    "pii_column": np.int32,
    "pii_label": np.int16,
}


def _scan_tables(tables, start_index: int, vocabs: dict) -> tuple[list, dict]:
    """The projection scan loop: one pass over ``tables`` into plain lists.

    ``start_index`` is the global index of the first yielded table (0
    for a full scan, the committed count for a tail scan), so row->table
    references are correct in both cases. ``vocabs`` maps each
    vocabulary field name to its (possibly pre-seeded) :class:`_Vocab`.
    Returns ``(table_ids, {array field -> list})``.
    """
    from ..core.annotation import AnnotationMethod

    methods = (AnnotationMethod.SYNTACTIC, AnnotationMethod.SEMANTIC)
    topics = vocabs["topics"]
    repos = vocabs["repositories"]
    licenses = vocabs["licenses"]
    names = vocabs["column_names"]
    ontologies = vocabs["ontologies"]
    labels = vocabs["type_labels"]
    pii_labels = vocabs["pii_labels"]

    table_ids: list[str] = []
    arrays: dict[str, list] = {name: [] for name in _ARRAY_DTYPES}

    for index, annotated in enumerate(tables, start=start_index):
        table = annotated.table
        table_ids.append(annotated.table_id)
        arrays["n_rows"].append(table.num_rows)
        arrays["n_cols"].append(table.num_columns)
        arrays["topic_codes"].append(topics.code(annotated.topic))
        arrays["repo_codes"].append(repos.code(annotated.repository))
        arrays["license_codes"].append(
            -1 if annotated.license_key is None else licenses.code(annotated.license_key)
        )
        for column in table.columns:
            arrays["col_table"].append(index)
            arrays["col_name"].append(names.code(column.name))
            arrays["col_dtype"].append(ATOMIC_TYPES.index(column.atomic_type.value))
        for method_code, method in enumerate(methods):
            for annotation in annotated.annotations.for_method(method):
                arrays["ann_table"].append(index)
                arrays["ann_method"].append(method_code)
                arrays["ann_ontology"].append(ontologies.code(annotation.ontology))
                arrays["ann_column"].append(names.code(annotation.column))
                arrays["ann_label"].append(labels.code(annotation.type_label))
                arrays["ann_confidence"].append(annotation.confidence)
        scrubbed = table.metadata.get("pii_scrubbed_types") or {}
        for column_name, label in scrubbed.items():
            arrays["pii_table"].append(index)
            arrays["pii_column"].append(names.code(column_name))
            arrays["pii_label"].append(pii_labels.code(label))

    return table_ids, arrays


# -- predicates --------------------------------------------------------------


@dataclass(frozen=True)
class TablePredicate:
    """A declarative table filter evaluable on columns *or* by iteration.

    Unset fields (``None``) do not constrain. :meth:`matches` is the
    pure-Python reference; :meth:`ColumnarProjection.select` evaluates
    the same predicate over the projection arrays without touching any
    table JSON — both select identical table ids (property-tested).
    """

    topic: str | None = None
    repository: str | None = None
    license_key: str | None = None
    min_rows: int | None = None
    max_rows: int | None = None
    min_columns: int | None = None
    max_columns: int | None = None
    #: Require at least one column of this atomic type.
    dtype: AtomicType | str | None = None
    #: Require an annotation with this type label...
    annotation_label: str | None = None
    #: ...optionally restricted to one method ("syntactic"/"semantic").
    method: str | None = None
    #: Require (True) / forbid (False) scrubbed PII columns.
    pii: bool | None = None

    def _dtype_value(self) -> str | None:
        if self.dtype is None:
            return None
        return self.dtype.value if isinstance(self.dtype, AtomicType) else str(self.dtype)

    def matches(self, annotated) -> bool:
        """Pure-Python reference evaluation against one ``AnnotatedTable``."""
        from ..core.annotation import AnnotationMethod

        if self.topic is not None and annotated.topic != self.topic:
            return False
        if self.repository is not None and annotated.repository != self.repository:
            return False
        if self.license_key is not None and annotated.license_key != self.license_key:
            return False
        table = annotated.table
        if self.min_rows is not None and table.num_rows < self.min_rows:
            return False
        if self.max_rows is not None and table.num_rows > self.max_rows:
            return False
        if self.min_columns is not None and table.num_columns < self.min_columns:
            return False
        if self.max_columns is not None and table.num_columns > self.max_columns:
            return False
        wanted_dtype = self._dtype_value()
        if wanted_dtype is not None and not any(
            column.atomic_type.value == wanted_dtype for column in table.columns
        ):
            return False
        if self.annotation_label is not None:
            if self.method is None:
                annotations = annotated.annotations.all()
            else:
                annotations = annotated.annotations.for_method(AnnotationMethod(self.method))
            if not any(
                annotation.type_label == self.annotation_label for annotation in annotations
            ):
                return False
        if self.pii is not None:
            scrubbed = bool(table.metadata.get("pii_scrubbed_types"))
            if scrubbed is not self.pii:
                return False
        return True


# -- the projection ----------------------------------------------------------


@dataclass(frozen=True)
class ColumnarProjection:
    """Typed column arrays over a corpus' metadata (see module docstring).

    All arrays are parallel within their group; string-valued columns
    are dictionary-encoded against the vocabulary tuples. Annotation
    and PII rows are stored in reference iteration order (table order;
    within a table, methods syntactic-then-semantic, each in ontology
    insertion order), which makes order-sensitive reconstructions exact.
    """

    #: ``content_fingerprint()`` of the source store (None = in-memory).
    corpus_fingerprint: str | None = field(compare=False)
    table_ids: tuple[str, ...]
    # table-level arrays (length = table count)
    n_rows: np.ndarray
    n_cols: np.ndarray
    topic_codes: np.ndarray
    repo_codes: np.ndarray
    license_codes: np.ndarray  # -1 encodes a missing license
    # column-level arrays (length = total physical columns)
    col_table: np.ndarray
    col_name: np.ndarray
    col_dtype: np.ndarray  # codes into ATOMIC_TYPES
    # annotation-level arrays (length = total annotations)
    ann_table: np.ndarray
    ann_method: np.ndarray  # codes into METHODS
    ann_ontology: np.ndarray
    ann_column: np.ndarray  # codes into the shared column-name vocabulary
    ann_label: np.ndarray
    ann_confidence: np.ndarray
    # PII rows (length = total scrubbed columns)
    pii_table: np.ndarray
    pii_column: np.ndarray
    pii_label: np.ndarray
    # vocabularies (first-seen order)
    topics: tuple[str, ...]
    repositories: tuple[str, ...]
    licenses: tuple[str, ...]
    column_names: tuple[str, ...]
    ontologies: tuple[str, ...]
    type_labels: tuple[str, ...]
    pii_labels: tuple[str, ...]

    def __eq__(self, other) -> bool:  # arrays defeat dataclass ==
        if not isinstance(other, ColumnarProjection):
            return NotImplemented
        for spec in fields(self):
            if not spec.compare:
                continue
            mine, theirs = getattr(self, spec.name), getattr(other, spec.name)
            if isinstance(mine, np.ndarray):
                if mine.shape != theirs.shape or not np.array_equal(mine, theirs):
                    return False
            elif mine != theirs:
                return False
        return True

    @property
    def table_count(self) -> int:
        return len(self.table_ids)

    @property
    def column_count(self) -> int:
        return int(self.col_table.size)

    @property
    def annotation_count(self) -> int:
        return int(self.ann_table.size)

    # -- construction --------------------------------------------------------

    @classmethod
    def from_corpus(cls, corpus) -> "ColumnarProjection":
        """One streaming pass over ``corpus`` building every column array."""
        vocabs = {name: _Vocab() for name in _VOCAB_FIELDS[1:]}
        table_ids, arrays = _scan_tables(iter(corpus), 0, vocabs)
        return cls(
            corpus_fingerprint=corpus_content_fingerprint(corpus),
            table_ids=tuple(table_ids),
            **{name: np.asarray(values, dtype=_ARRAY_DTYPES[name])
               for name, values in arrays.items()},
            **{name: vocab.values() for name, vocab in vocabs.items()},
        )

    def extended(self, corpus) -> "ColumnarProjection | None":
        """This projection grown by ``corpus``'s tail, or ``None``.

        The incremental rebuild: when ``corpus`` extends the corpus this
        projection was built from (its table-id sequence starts with
        ``self.table_ids``, verified here without reading any shard),
        only the tail tables are scanned — whole committed shards are
        skipped via their manifest counts — and the new arrays are the
        committed ones with the tail's rows appended, identical to a
        from-scratch scan because the vocabularies are re-seeded in code
        order. Returns ``None`` when ``corpus`` is not an extension.
        """
        start = len(self.table_ids)
        store = getattr(corpus, "store", None)
        ids = getattr(store, "table_ids", None)
        prefix_ids = tuple(islice(ids(), start)) if ids is not None else tuple(
            annotated.table_id for annotated in islice(iter(corpus), start)
        )
        if prefix_ids != tuple(self.table_ids):
            return None
        iter_from = getattr(store, "iter_from", None)
        tail = iter_from(start) if iter_from is not None else islice(iter(corpus), start, None)
        vocabs = {
            name: _Vocab(getattr(self, name)) for name in _VOCAB_FIELDS[1:]
        }
        tail_ids, tail_arrays = _scan_tables(tail, start, vocabs)
        return ColumnarProjection(
            corpus_fingerprint=corpus_content_fingerprint(corpus),
            table_ids=tuple(self.table_ids) + tuple(tail_ids),
            **{
                name: np.concatenate(
                    [
                        np.asarray(getattr(self, name)),
                        np.asarray(values, dtype=_ARRAY_DTYPES[name]),
                    ]
                ).astype(_ARRAY_DTYPES[name], copy=False)
                for name, values in tail_arrays.items()
            },
            **{name: vocab.values() for name, vocab in vocabs.items()},
        )

    # -- column-level aggregates --------------------------------------------

    def dtype_counts(self) -> dict[str, int]:
        """Atomic type value -> physical column count (first-seen order)."""
        codes, counts = first_seen_counts(self.col_dtype)
        return {
            ATOMIC_TYPES[code]: int(count)
            for code, count in zip(codes.tolist(), counts.tolist())
        }

    def topic_counts(self) -> dict[str, int]:
        """Topic -> table count, in first-seen (corpus) order."""
        counts = count_by(self.topic_codes, len(self.topics))
        return {topic: int(count) for topic, count in zip(self.topics, counts.tolist())}

    def repository_counts(self) -> dict[str, int]:
        """Repository -> table count, in first-seen (corpus) order."""
        counts = count_by(self.repo_codes, len(self.repositories))
        return {repo: int(count) for repo, count in zip(self.repositories, counts.tolist())}

    def rows_by_topic(self) -> dict[str, int]:
        """Topic -> total data rows contributed (exact integer sums)."""
        totals = sum_by(self.topic_codes, self.n_rows, len(self.topics))
        return {topic: int(total) for topic, total in zip(self.topics, totals.tolist())}

    def dimension_quantiles(self, axis: str = "rows", qs=(0.25, 0.5, 0.75, 0.95)) -> list[float]:
        """Quantiles of a table dimension (``"rows"`` or ``"columns"``)."""
        if axis not in ("rows", "columns"):
            raise ValueError("axis must be 'rows' or 'columns'")
        values = self.n_rows if axis == "rows" else self.n_cols
        return [float(value) for value in quantiles(values, qs)]

    # -- predicate pushdown --------------------------------------------------

    def _code_of(self, vocabulary: tuple[str, ...], value: str) -> int:
        try:
            return vocabulary.index(value)
        except ValueError:
            return -1  # never matches a stored (non-negative) code

    def _tables_with(self, row_tables: np.ndarray, row_mask: np.ndarray) -> np.ndarray:
        """Boolean table mask: tables owning at least one masked row."""
        mask = np.zeros(self.table_count, dtype=bool)
        mask[np.unique(row_tables[row_mask])] = True
        return mask

    def select(self, predicate: TablePredicate) -> np.ndarray:
        """Boolean mask over tables satisfying ``predicate`` (columns only)."""
        mask = np.ones(self.table_count, dtype=bool)
        if predicate.topic is not None:
            mask &= self.topic_codes == self._code_of(self.topics, predicate.topic)
        if predicate.repository is not None:
            mask &= self.repo_codes == self._code_of(self.repositories, predicate.repository)
        if predicate.license_key is not None:
            mask &= self.license_codes == self._code_of(self.licenses, predicate.license_key)
        if predicate.min_rows is not None:
            mask &= self.n_rows >= predicate.min_rows
        if predicate.max_rows is not None:
            mask &= self.n_rows <= predicate.max_rows
        if predicate.min_columns is not None:
            mask &= self.n_cols >= predicate.min_columns
        if predicate.max_columns is not None:
            mask &= self.n_cols <= predicate.max_columns
        wanted_dtype = predicate._dtype_value()
        if wanted_dtype is not None:
            code = ATOMIC_TYPES.index(wanted_dtype) if wanted_dtype in ATOMIC_TYPES else -1
            mask &= self._tables_with(self.col_table, self.col_dtype == code)
        if predicate.annotation_label is not None:
            row_mask = self.ann_label == self._code_of(self.type_labels, predicate.annotation_label)
            if predicate.method is not None:
                row_mask &= self.ann_method == METHODS.index(predicate.method)
            mask &= self._tables_with(self.ann_table, row_mask)
        if predicate.pii is not None:
            has_pii = self._tables_with(self.pii_table, np.ones(self.pii_table.size, dtype=bool))
            mask &= has_pii if predicate.pii else ~has_pii
        return mask

    def select_ids(self, predicate: TablePredicate) -> list[str]:
        """Table ids satisfying ``predicate``, in corpus order."""
        return [self.table_ids[index] for index in np.flatnonzero(self.select(predicate))]

    # -- export --------------------------------------------------------------

    def to_parquet(self, directory: str | os.PathLike[str]) -> list[str]:
        """Export the projection as Parquet files (requires pyarrow).

        Writes ``tables/columns/annotations/pii.parquet`` under
        ``directory`` with vocabularies decoded back to strings, for
        external engines (DuckDB, Spark, pandas). Raises
        ``RuntimeError`` when pyarrow is not installed.
        """
        try:
            import pyarrow as pa
            import pyarrow.parquet as pq
        except ImportError as error:  # pragma: no cover - env-dependent
            raise RuntimeError(
                "to_parquet requires pyarrow, which is not installed"
            ) from error

        def decode(codes: np.ndarray, vocabulary: tuple[str, ...]) -> list[str | None]:
            return [vocabulary[code] if code >= 0 else None for code in codes.tolist()]

        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        frames = {
            "tables": {
                "table_id": list(self.table_ids),
                "topic": decode(self.topic_codes, self.topics),
                "repository": decode(self.repo_codes, self.repositories),
                "license": decode(self.license_codes, self.licenses),
                "n_rows": self.n_rows,
                "n_cols": self.n_cols,
            },
            "columns": {
                "table": self.col_table,
                "name": decode(self.col_name, self.column_names),
                "dtype": decode(self.col_dtype.astype(np.int32), ATOMIC_TYPES),
            },
            "annotations": {
                "table": self.ann_table,
                "method": decode(self.ann_method.astype(np.int32), METHODS),
                "ontology": decode(self.ann_ontology.astype(np.int32), self.ontologies),
                "column": decode(self.ann_column, self.column_names),
                "type_label": decode(self.ann_label, self.type_labels),
                "confidence": self.ann_confidence,
            },
            "pii": {
                "table": self.pii_table,
                "column": decode(self.pii_column, self.column_names),
                "label": decode(self.pii_label.astype(np.int32), self.pii_labels),
            },
        }
        written = []
        for name, columns in frames.items():
            path = directory / f"{name}.parquet"
            pq.write_table(pa.table(columns), path)
            written.append(str(path))
        return written


# -- persistence -------------------------------------------------------------

_ARRAY_FIELDS = (
    "n_rows",
    "n_cols",
    "topic_codes",
    "repo_codes",
    "license_codes",
    "col_table",
    "col_name",
    "col_dtype",
    "ann_table",
    "ann_method",
    "ann_ontology",
    "ann_column",
    "ann_label",
    "ann_confidence",
    "pii_table",
    "pii_column",
    "pii_label",
)
_VOCAB_FIELDS = (
    "table_ids",
    "topics",
    "repositories",
    "licenses",
    "column_names",
    "ontologies",
    "type_labels",
    "pii_labels",
)


def projection_fingerprint(corpus_fingerprint: str) -> dict:
    """The artifact guard: layout version plus corpus content hash."""
    return {
        "kind": "columnar-projection",
        "version": PROJECTION_VERSION,
        "corpus": corpus_fingerprint,
    }


def publish_projection(
    artifacts: IndexArtifactStore,
    projection: ColumnarProjection,
    corpus_fingerprint: str | None = None,
    prune: bool = True,
) -> None:
    """Persist ``projection`` as the ``stats_*`` artifact arrays.

    ``corpus_fingerprint`` overrides the projection's recorded
    fingerprint — used when publishing an in-memory corpus' projection
    into a directory it was just saved to. ``prune=False`` defers the
    corpus-keyed artifact sweep (the delta-refresh ordering guarantee —
    see :meth:`~repro.storage.artifacts.IndexArtifactStore.publish`).
    """
    fingerprint = corpus_fingerprint or projection.corpus_fingerprint
    if fingerprint is None:
        raise ValueError("cannot publish a projection without a corpus fingerprint")
    arrays = {f"stats_{name}": getattr(projection, name) for name in _ARRAY_FIELDS}
    payload = {name: list(getattr(projection, name)) for name in _VOCAB_FIELDS}
    payload["version"] = PROJECTION_VERSION
    artifacts.publish(
        PROJECTION_ARTIFACT,
        projection_fingerprint(fingerprint),
        arrays=arrays,
        payload=payload,
        prune=prune,
    )


def load_projection(
    artifacts: IndexArtifactStore, corpus_fingerprint: str
) -> ColumnarProjection | None:
    """The persisted projection for this corpus state, or None on any miss."""
    loaded = artifacts.load(PROJECTION_ARTIFACT, projection_fingerprint(corpus_fingerprint))
    if loaded is None:
        return None
    arrays = {}
    for name in _ARRAY_FIELDS:
        array = loaded.arrays.get(f"stats_{name}")
        if array is None:
            return None
        arrays[name] = array
    vocabularies = {name: tuple(loaded.payload.get(name, ())) for name in _VOCAB_FIELDS}
    return ColumnarProjection(
        corpus_fingerprint=corpus_fingerprint, **arrays, **vocabularies
    )


def load_stale_projection(artifacts: IndexArtifactStore) -> ColumnarProjection | None:
    """The persisted projection *whatever corpus state it describes*.

    The delta-refresh read path: after a corpus extension the stored
    projection's fingerprint no longer matches, but its arrays are still
    the exact committed prefix of the grown corpus. The projection comes
    back carrying the corpus fingerprint it was built for; callers must
    prove prefix compatibility (:meth:`ColumnarProjection.extended`
    does) before reusing any of it.
    """
    loaded = artifacts.load_any(PROJECTION_ARTIFACT)
    if loaded is None or not isinstance(loaded.fingerprint, dict):
        return None
    if loaded.fingerprint.get("kind") != "columnar-projection":
        return None
    if loaded.fingerprint.get("version") != PROJECTION_VERSION:
        return None
    corpus_key = loaded.fingerprint.get("corpus")
    if not isinstance(corpus_key, str):
        return None
    arrays = {}
    for name in _ARRAY_FIELDS:
        array = loaded.arrays.get(f"stats_{name}")
        if array is None:
            return None
        arrays[name] = array
    vocabularies = {name: tuple(loaded.payload.get(name, ())) for name in _VOCAB_FIELDS}
    return ColumnarProjection(corpus_fingerprint=corpus_key, **arrays, **vocabularies)


def extend_projection(
    corpus, artifacts: IndexArtifactStore
) -> ColumnarProjection | None:
    """Grow the persisted projection by ``corpus``'s tail, or ``None``.

    Loads whatever projection the store holds and extends it when it is
    a committed prefix of ``corpus`` — scanning only the tail tables —
    so refreshing corpus statistics after an extension costs O(new
    tables). Returns ``None`` when there is nothing extendable (no
    stored projection, or the corpus changed in a non-append way).
    """
    stale = load_stale_projection(artifacts)
    if stale is None:
        return None
    fingerprint = corpus_content_fingerprint(corpus)
    if fingerprint is None or stale.corpus_fingerprint == fingerprint:
        return None
    if len(stale.table_ids) >= _corpus_size(corpus):
        return None
    return stale.extended(corpus)


def _corpus_size(corpus) -> int:
    try:
        return len(corpus)
    except TypeError:  # pragma: no cover - exotic corpus views
        return sum(1 for _ in iter(corpus))


def ensure_projection(
    corpus, artifacts: IndexArtifactStore | None = None, prune: bool = True
) -> ColumnarProjection:
    """Resolve a current projection for ``corpus``: attach, load, or build.

    Resolution order: a projection already attached to the corpus (and
    still matching its size) wins; otherwise a persisted artifact
    matching the store's content fingerprint is mmap'd back; otherwise a
    *superseded* artifact that is a committed prefix of the corpus (the
    store was extended) is grown by scanning only the tail; otherwise
    the projection is built with one full corpus scan. Freshly built or
    extended projections are published (best-effort) for the next
    session — with ``prune=False`` the publish leaves other superseded
    corpus-keyed artifacts in place for their own delta refreshes. The
    result is attached to the corpus so subsequent statistics and filter
    calls stay engine-side.
    """
    attached = getattr(corpus, "projection", None)
    if attached is not None:
        return attached
    fingerprint = corpus_content_fingerprint(corpus)
    attach = getattr(corpus, "attach_projection", None)
    projection = None
    if artifacts is not None and fingerprint is not None:
        loaded = load_projection(artifacts, fingerprint)
        if loaded is not None:
            if attach is not None:
                attach(loaded)
            return loaded
        projection = extend_projection(corpus, artifacts)
    if projection is None:
        projection = ColumnarProjection.from_corpus(corpus)
    if artifacts is not None and fingerprint is not None:
        try_publish(publish_projection, artifacts, projection, prune=prune)
    if attach is not None:
        attach(projection)
    return projection
