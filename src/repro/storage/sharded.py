"""Sharded JSONL corpus storage: manifest, lazy reader, append-only writer.

On-disk layout of a sharded corpus directory::

    corpus/
      manifest.json        # shard index, table-id map, cached stats
      shard_00000.jsonl    # one JSON document per line, one table each
      shard_00001.jsonl
      ...

The manifest is the single source of truth. Every shard entry records
the number of *committed* lines and the exact committed byte length of
its file, so a crash that appends lines without reaching the manifest
rewrite is recoverable: on the next open the shard file is truncated
back to the committed byte count and the interrupted tables are simply
re-produced. The manifest itself is always replaced atomically
(temp file + ``os.replace``), so it is never observed half-written.

Two stores share the layout:

* :class:`ShardedJsonlStore` — the lazy reader. ``get`` touches only the
  shard holding the requested table; iteration streams shard by shard
  with a small LRU of parsed shards; corpus statistics are answered
  straight from the manifest.
* :class:`ShardedCorpusWriter` — the append-only writer used as the
  corpus-construction sink. ``add`` buffers tables, ``commit`` appends
  them to shard files and rewrites the manifest, which is the atomic
  checkpoint that makes interrupted builds resumable.

Shard files are written with a canonical JSON encoding (compact
separators, ``ensure_ascii=False``), so two builds that produce the same
tables in the same order produce byte-identical shard files and
manifests regardless of which backend or session wrote them.
"""

from __future__ import annotations

import json
import os
from collections import OrderedDict, deque
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

from ..errors import CorpusError
from ._io import atomic_write_json, fsync_dir

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.corpus import AnnotatedTable

__all__ = [
    "MANIFEST_FILENAME",
    "SHARDED_FORMAT",
    "DEFAULT_SHARD_SIZE",
    "is_sharded_dir",
    "ShardedJsonlStore",
    "ShardedCorpusWriter",
]

MANIFEST_FILENAME = "manifest.json"
SHARDED_FORMAT = "gittables-sharded-jsonl"
#: Tables per shard file unless overridden.
DEFAULT_SHARD_SIZE = 256


def is_sharded_dir(directory: str | os.PathLike[str]) -> bool:
    """Whether ``directory`` holds a sharded corpus (has a manifest)."""
    return os.path.exists(os.path.join(directory, MANIFEST_FILENAME))


def _shard_filename(index: int) -> str:
    return f"shard_{index:05d}.jsonl"


def _encode_table(annotated: "AnnotatedTable") -> bytes:
    """Canonical one-line JSON encoding of a table (byte-deterministic)."""
    payload = json.dumps(annotated.to_dict(), ensure_ascii=False, separators=(",", ":"))
    return payload.encode("utf-8") + b"\n"


def _read_shard_tables(path: Path, byte_count: int) -> list:
    """Decode the committed prefix of one shard file into tables.

    Reading exactly ``byte_count`` bytes is the single place the
    committed-bytes truncation rule is applied on the read side; both
    the lazy reader and the writer's read-back paths go through here.
    """
    from ..core.corpus import AnnotatedTable

    with open(path, "rb") as handle:
        data = handle.read(byte_count)
    return [
        AnnotatedTable.from_dict(json.loads(line.decode("utf-8")))
        for line in data.splitlines()
        if line
    ]


def _write_manifest(directory: Path, manifest: dict) -> None:
    """Atomically replace the manifest (temp file + rename)."""
    atomic_write_json(directory / MANIFEST_FILENAME, manifest)


def _read_manifest(directory: Path) -> dict:
    manifest_path = directory / MANIFEST_FILENAME
    if not manifest_path.exists():
        raise CorpusError(f"no corpus manifest found at {manifest_path}")
    with open(manifest_path, "r", encoding="utf-8") as handle:
        manifest = json.load(handle)
    if manifest.get("format") != SHARDED_FORMAT:
        raise CorpusError(
            f"unexpected corpus format {manifest.get('format')!r} at {manifest_path}"
        )
    return manifest


def _empty_stats() -> dict:
    return {"total_rows": 0, "total_columns": 0, "topics": {}, "repositories": {}}


class ShardedJsonlStore:
    """Read-only lazy view over a sharded corpus directory.

    Only the manifest is loaded up front. ``get`` parses exactly the one
    shard that holds the requested table; repeated lookups hit an LRU of
    up to ``cache_shards`` parsed shards. Iteration streams in shard
    order through the same cache, so at most ``cache_shards`` shards are
    ever resident.
    """

    def __init__(self, directory: str | os.PathLike[str], cache_shards: int = 2) -> None:
        if cache_shards < 1:
            raise ValueError("cache_shards must be >= 1")
        self.directory = Path(directory)
        self._manifest = _read_manifest(self.directory)
        self.name: str = self._manifest.get("name", "gittables")
        self.cache_shards = cache_shards
        #: table id -> (shard index, line index); insertion-ordered.
        self._locations: dict[str, tuple[int, int]] = {
            table_id: (entry["shard"], entry["line"])
            for table_id, entry in self._manifest.get("tables", {}).items()
        }
        self._cache: OrderedDict[int, list] = OrderedDict()

    # -- manifest-backed metadata -----------------------------------------

    @property
    def manifest(self) -> dict:
        """The parsed manifest (treat as read-only)."""
        return self._manifest

    def shard_files(self) -> list[str]:
        """Shard file names in shard order."""
        return [entry["file"] for entry in self._manifest.get("shards", [])]

    def source_urls(self) -> set[str]:
        """Source URLs of every stored table (metadata only)."""
        return {
            entry["source_url"]
            for entry in self._manifest.get("tables", {}).values()
            if "source_url" in entry
        }

    def stats_hint(self) -> dict | None:
        """Corpus statistics cached in the manifest (no shard reads)."""
        return self._manifest.get("stats")

    # -- container protocol ------------------------------------------------

    def __len__(self) -> int:
        return len(self._locations)

    def __contains__(self, table_id: str) -> bool:
        return table_id in self._locations

    def table_ids(self) -> Iterator[str]:
        return iter(self._locations)

    def _load_shard(self, index: int) -> list:
        """Parse one shard into AnnotatedTable records (LRU-cached)."""
        if index in self._cache:
            self._cache.move_to_end(index)
            return self._cache[index]
        entry = self._manifest["shards"][index]
        tables = _read_shard_tables(self.directory / entry["file"], entry["bytes"])
        if len(tables) != entry["count"]:
            raise CorpusError(
                f"shard {entry['file']} holds {len(tables)} tables, "
                f"manifest says {entry['count']}"
            )
        self._cache[index] = tables
        while len(self._cache) > self.cache_shards:
            self._cache.popitem(last=False)
        return tables

    def get(self, table_id: str) -> "AnnotatedTable | None":
        location = self._locations.get(table_id)
        if location is None:
            return None
        shard_index, line_index = location
        return self._load_shard(shard_index)[line_index]

    def __iter__(self) -> Iterator["AnnotatedTable"]:
        for shard_index in range(len(self._manifest.get("shards", []))):
            yield from self._load_shard(shard_index)

    def add(self, annotated: "AnnotatedTable") -> None:
        raise CorpusError(
            "ShardedJsonlStore is read-only; build through ShardedCorpusWriter "
            "or copy into an in-memory corpus"
        )


class ShardedCorpusWriter:
    """Append-only sharded store used as the corpus-construction sink.

    ``add`` buffers tables in memory; :meth:`commit` appends the buffer
    to shard files (rolling over every ``shard_size`` tables) and then
    atomically rewrites the manifest. The manifest only ever describes
    fully committed data, so a crash at any point loses at most the
    uncommitted buffer plus any half-appended lines — both are healed on
    the next open (the shard file is truncated back to the committed byte
    count recorded in the manifest).

    Opening a directory that already holds a manifest *resumes* it:
    committed tables, shard layout, and cached statistics are picked up,
    and new tables append after them.
    """

    def __init__(
        self,
        directory: str | os.PathLike[str],
        shard_size: int = DEFAULT_SHARD_SIZE,
        name: str = "gittables",
    ) -> None:
        if shard_size < 1:
            raise ValueError("shard_size must be >= 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        if is_sharded_dir(self.directory):
            manifest = _read_manifest(self.directory)
            self.name = manifest.get("name", name)
            self.shard_size = int(manifest.get("shard_size", shard_size))
            self._shards = [dict(entry) for entry in manifest.get("shards", [])]
            self._tables = {
                table_id: dict(entry) for table_id, entry in manifest.get("tables", {}).items()
            }
            self._stats = manifest.get("stats", _empty_stats())
            self._heal_shards()
        else:
            self.name = name
            self.shard_size = shard_size
            self._shards: list[dict] = []
            self._tables: dict[str, dict] = {}
            self._stats = _empty_stats()
        self._pending: deque = deque()
        self._pending_ids: set[str] = set()

    def _heal_shards(self) -> None:
        """Restore the on-disk state the manifest describes.

        Shard files listed in the manifest are truncated back to their
        committed byte counts, and shard files *not* in the manifest —
        left behind when a crash hit after a shard rollover but before
        the manifest rewrite — are deleted, so a resumed build's
        directory stays byte-identical to a one-shot build's.
        """
        listed = {entry["file"] for entry in self._shards}
        for path in self.directory.glob("shard_*.jsonl"):
            if path.name not in listed:
                path.unlink()
        for entry in self._shards:
            path = self.directory / entry["file"]
            if not path.exists():
                raise CorpusError(f"missing shard file {path}")
            size = path.stat().st_size
            if size < entry["bytes"]:
                raise CorpusError(
                    f"shard file {path} is shorter ({size}B) than the manifest "
                    f"records ({entry['bytes']}B); the corpus is corrupt"
                )
            if size > entry["bytes"]:
                with open(path, "r+b") as handle:
                    handle.truncate(entry["bytes"])

    # -- container protocol ------------------------------------------------

    def __len__(self) -> int:
        return len(self._tables) + len(self._pending)

    def __contains__(self, table_id: str) -> bool:
        return table_id in self._tables or table_id in self._pending_ids

    def table_ids(self) -> Iterator[str]:
        yield from self._tables
        for annotated in self._pending:
            yield annotated.table_id

    def add(self, annotated: "AnnotatedTable") -> None:
        table_id = annotated.table_id
        if table_id in self:
            raise CorpusError(f"duplicate table id {table_id!r}")
        self._pending.append(annotated)
        self._pending_ids.add(table_id)

    def extend(self, tables) -> None:
        for annotated in tables:
            self.add(annotated)

    def get(self, table_id: str) -> "AnnotatedTable | None":
        for annotated in self._pending:
            if annotated.table_id == table_id:
                return annotated
        entry = self._tables.get(table_id)
        if entry is None:
            return None
        return self._read_committed(entry["shard"], entry["line"])

    def _read_committed(self, shard_index: int, line_index: int) -> "AnnotatedTable":
        entry = self._shards[shard_index]
        return _read_shard_tables(self.directory / entry["file"], entry["bytes"])[line_index]

    def __iter__(self) -> Iterator["AnnotatedTable"]:
        for entry in self._shards:
            yield from _read_shard_tables(self.directory / entry["file"], entry["bytes"])
        yield from iter(self._pending)

    # -- write path --------------------------------------------------------

    @property
    def pending_count(self) -> int:
        """Tables added but not yet committed to disk."""
        return len(self._pending)

    @property
    def committed_count(self) -> int:
        """Tables durably recorded in the manifest."""
        return len(self._tables)

    def source_urls(self) -> set[str]:
        """Source URLs of committed tables (what a resumed build skips)."""
        return {
            entry["source_url"] for entry in self._tables.values() if "source_url" in entry
        }

    def stats_hint(self) -> dict | None:
        """Committed statistics (pending tables are not yet included)."""
        if self._pending:
            return None
        return self._stats

    def commit(self) -> int:
        """Flush the pending buffer to shard files, then the manifest.

        Returns the number of tables committed. The manifest rewrite is
        the commit point: it happens only after the shard bytes are
        flushed and fsynced, and is itself an atomic replace. Pending
        tables are grouped per destination shard, so a commit costs one
        append + fsync per shard file touched, not per table.

        Note the manifest rewrite is proportional to tables committed so
        far; committing every small batch of a very large build is
        O(N^2) total manifest bytes. Callers trading durability for
        throughput should commit less often (the crash-loss window is
        exactly the uncommitted buffer); a delta-log manifest is on the
        roadmap.
        """
        committed = len(self._pending)
        while self._pending:
            if not self._shards or self._shards[-1]["count"] >= self.shard_size:
                filename = _shard_filename(len(self._shards))
                # A fresh shard truncates any stale file left by a crash
                # that rolled over without reaching the manifest rewrite.
                with open(self.directory / filename, "wb"):
                    pass
                # Persist the new file's directory entry before the
                # manifest can reference it (a manifest naming a file
                # whose dirent was lost to a power cut is unrecoverable).
                fsync_dir(self.directory)
                self._shards.append({"file": filename, "count": 0, "bytes": 0})
            entry = self._shards[-1]
            room = self.shard_size - entry["count"]
            group = [self._pending.popleft() for _ in range(min(room, len(self._pending)))]
            self._append_group(entry, group)
        self._pending_ids.clear()
        self._write_manifest()
        return committed

    def _append_group(self, entry: dict, group: list) -> None:
        """Append a group of tables to one shard with a single fsync."""
        shard_index = len(self._shards) - 1
        encoded = [_encode_table(annotated) for annotated in group]
        with open(self.directory / entry["file"], "ab") as handle:
            handle.write(b"".join(encoded))
            handle.flush()
            os.fsync(handle.fileno())
        stats = self._stats
        for annotated, payload in zip(group, encoded):
            table = annotated.table
            self._tables[annotated.table_id] = {
                "shard": shard_index,
                "line": entry["count"],
                "source_url": annotated.source_url,
            }
            entry["count"] += 1
            entry["bytes"] += len(payload)
            stats["total_rows"] += table.num_rows
            stats["total_columns"] += table.num_columns
            stats["topics"][annotated.topic] = stats["topics"].get(annotated.topic, 0) + 1
            stats["repositories"][annotated.repository] = (
                stats["repositories"].get(annotated.repository, 0) + 1
            )

    def _write_manifest(self) -> None:
        manifest = {
            "format": SHARDED_FORMAT,
            "version": 1,
            "name": self.name,
            "shard_size": self.shard_size,
            "table_count": len(self._tables),
            "shards": self._shards,
            "tables": self._tables,
            "stats": self._stats,
        }
        _write_manifest(self.directory, manifest)

    def as_reader(self, cache_shards: int = 2) -> ShardedJsonlStore:
        """Commit everything and reopen this directory as a lazy reader."""
        self.commit()
        return ShardedJsonlStore(self.directory, cache_shards=cache_shards)
