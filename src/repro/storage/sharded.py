"""Sharded JSONL corpus storage: manifest, lazy reader, append-only writer.

On-disk layout of a sharded corpus directory::

    corpus/
      manifest.json        # shard index, table-id map, cached stats
      shard_00000.jsonl    # one JSON document per line, one table each
      shard_00001.jsonl
      ...

The manifest is the single source of truth. Every shard entry records
the number of *committed* lines and the exact committed byte length of
its file, so a crash that appends lines without reaching the manifest
rewrite is recoverable: on the next open the shard file is truncated
back to the committed byte count and the interrupted tables are simply
re-produced. The manifest itself is always replaced atomically
(temp file + ``os.replace``), so it is never observed half-written.

**Manifest delta log.** Rewriting the full manifest on every commit is
O(tables committed so far) — O(N^2) total for commit-per-batch builds.
Instead, each commit appends one canonical JSON line to ``manifest.log``
describing exactly what the commit changed (touched shard states, new
table locations, statistics increments), making a commit O(batch). The
log is **compacted** into ``manifest.json`` every
``compact_every`` commits and on :meth:`ShardedCorpusWriter.finalize`
(which deletes the log), so a completed directory contains only the
compacted manifest — byte-identical regardless of commit cadence or
interruptions. Readers and resuming writers replay any uncompacted log
tail on open; a torn final line (crash mid-append) is ignored by
readers and truncated away by writers. Replay is idempotent: a record
whose tables are already in the manifest (a compaction that crashed
before deleting the log) is skipped wholesale.

Two stores share the layout:

* :class:`ShardedJsonlStore` — the lazy reader. ``get`` touches only the
  shard holding the requested table; iteration streams shard by shard
  with a small LRU of parsed shards; corpus statistics are answered
  straight from the manifest.
* :class:`ShardedCorpusWriter` — the append-only writer used as the
  corpus-construction sink. ``add`` buffers tables, ``commit`` appends
  them to shard files and rewrites the manifest, which is the atomic
  checkpoint that makes interrupted builds resumable.

Shard files are written with a canonical JSON encoding (compact
separators, ``ensure_ascii=False``), so two builds that produce the same
tables in the same order produce byte-identical shard files and
manifests regardless of which backend or session wrote them.

**Epochs.** The manifest carries an ``epoch`` counter plus an
``epochs`` list recording the table count at which each epoch was
sealed (``finalize`` seals the current epoch). A sealed — finalized —
directory can be reopened for append by constructing the writer with
``extend=True``: the epoch counter is bumped and durably published
*before* any new table lands, so new commits (delta-log records and
shard appends) belong to the new epoch, a crashed extension resumes
under the same epoch instead of bumping again, and derived-artifact
consumers can detect growth with one O(1) probe
(:func:`read_store_epoch`) instead of re-hashing the manifest. Epochs
are bookkeeping *about* the corpus, not part of its content: the
content fingerprint covers shards and tables only, so an extended store
and a from-scratch build of the same table set share a fingerprint (and
therefore artifacts).

**Generations.** Online compaction (:mod:`repro.storage.compaction`)
rewrites a sealed store to a new shard size without changing a single
table. Each rewrite publishes the manifest under a bumped
``generation`` counter with generation-scoped shard filenames
(``shard_g00002_00000.jsonl``), so the files of two layouts never
overlap: a reader that loaded the previous manifest can never mix shard
files from both layouts — at worst it finds an old file deleted and
raises a clear "re-laid out" error telling the caller to reopen. The
manifest's ``compacted_from`` marker pins the pre-compaction content
fingerprint (the tables are unchanged, only their packing moved), so
every derived artifact remains valid across generations with zero
recomputation. Like the epoch, the generation leads the manifest
payload so :func:`read_store_version` can probe it from a bounded
prefix read.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from collections import OrderedDict, deque
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

from ..errors import CorpusError
from ._io import atomic_write_json, fsync_dir

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.corpus import AnnotatedTable

__all__ = [
    "MANIFEST_FILENAME",
    "MANIFEST_LOG_FILENAME",
    "SHARDED_FORMAT",
    "DEFAULT_SHARD_SIZE",
    "DEFAULT_COMPACT_EVERY",
    "build_manifest",
    "heal_shard_files",
    "is_sharded_dir",
    "manifest_epoch",
    "manifest_generation",
    "manifest_is_sealed",
    "read_store_epoch",
    "read_store_version",
    "ShardedJsonlStore",
    "ShardedCorpusWriter",
]

MANIFEST_FILENAME = "manifest.json"
MANIFEST_LOG_FILENAME = "manifest.log"
SHARDED_FORMAT = "gittables-sharded-jsonl"
#: Tables per shard file unless overridden.
DEFAULT_SHARD_SIZE = 256
#: Uncompacted delta records tolerated before the writer folds the log
#: back into manifest.json (bounds both log size and reader replay cost).
DEFAULT_COMPACT_EVERY = 16


def is_sharded_dir(directory: str | os.PathLike[str]) -> bool:
    """Whether ``directory`` holds a sharded corpus (has a manifest)."""
    return os.path.exists(os.path.join(directory, MANIFEST_FILENAME))


def _shard_filename(index: int, generation: int = 1) -> str:
    """Shard file name for one layout generation.

    Generation 1 keeps the historical names. Later generations scope the
    name under the generation counter so two layouts never share a file:
    an old manifest can only ever reference old-generation files, which
    is what makes an online re-shard safe to observe mid-swap.
    """
    if generation <= 1:
        return f"shard_{index:05d}.jsonl"
    return f"shard_g{generation:05d}_{index:05d}.jsonl"


def _encode_table(annotated: "AnnotatedTable") -> bytes:
    """Canonical one-line JSON encoding of a table (byte-deterministic)."""
    payload = json.dumps(annotated.to_dict(), ensure_ascii=False, separators=(",", ":"))
    return payload.encode("utf-8") + b"\n"


def _read_shard_tables(path: Path, byte_count: int) -> list:
    """Decode the committed prefix of one shard file into tables.

    Reading exactly ``byte_count`` bytes is the single place the
    committed-bytes truncation rule is applied on the read side; both
    the lazy reader and the writer's read-back paths go through here.
    """
    from ..core.corpus import AnnotatedTable

    with open(path, "rb") as handle:
        data = handle.read(byte_count)
    return [
        AnnotatedTable.from_dict(json.loads(line.decode("utf-8")))
        for line in data.splitlines()
        if line
    ]


def _write_manifest(directory: Path, manifest: dict) -> None:
    """Atomically replace the manifest (temp file + rename)."""
    atomic_write_json(directory / MANIFEST_FILENAME, manifest)


def build_manifest(
    name: str,
    shard_size: int,
    shards: list,
    tables: dict,
    stats: dict,
    epoch: int = 1,
    epochs: list[int] | None = None,
    generation: int = 1,
    compacted_from: dict | None = None,
) -> dict:
    """The canonical manifest payload (single source of the key layout).

    Both the single-process writer and the parallel finalize rewrite
    build their ``manifest.json`` through here, so the two paths cannot
    drift apart byte-wise. ``epoch`` is the build epoch the manifest
    describes; ``epochs`` lists the table count at which each earlier
    epoch was sealed (``epochs[i]`` is epoch ``i + 1``'s count — the
    current epoch is *sealed* exactly when ``len(epochs) >= epoch``).
    ``generation`` is the shard-layout generation (bumped by online
    compaction); ``compacted_from`` pins the pre-compaction content
    fingerprint as ``{"fingerprint", "table_count"}`` and is emitted
    only when set, so never-compacted manifests keep their exact bytes.
    The epoch and generation keys sit at the front of the payload so
    :func:`read_store_version` can parse them from a bounded prefix
    read.
    """
    manifest = {
        "format": SHARDED_FORMAT,
        "version": 1,
        "epoch": epoch,
        "epochs": list(epochs or []),
        "generation": generation,
    }
    if compacted_from is not None:
        manifest["compacted_from"] = dict(compacted_from)
    manifest.update(
        {
            "name": name,
            "shard_size": shard_size,
            "table_count": len(tables),
            "shards": shards,
            "tables": tables,
            "stats": stats,
        }
    )
    return manifest


def manifest_epoch(manifest: dict) -> int:
    """The build epoch a manifest describes (pre-epoch manifests are 1)."""
    return int(manifest.get("epoch", 1))


def manifest_is_sealed(manifest: dict) -> bool:
    """Whether the manifest's current epoch has been finalized."""
    return len(manifest.get("epochs", [])) >= manifest_epoch(manifest)


def manifest_generation(manifest: dict) -> int:
    """The shard-layout generation (pre-generation manifests are 1)."""
    return int(manifest.get("generation", 1))


#: Bytes of manifest prefix read by :func:`read_store_version`. The
#: epoch and generation keys are the first ones in the payload, so this
#: covers them even with a long sealed-epoch history.
_EPOCH_PROBE_BYTES = 4096
_EPOCH_RE = re.compile(r'"epoch":\s*(\d+)\s*,')
_EPOCHS_RE = re.compile(r'"epochs":\s*\[([\s\d,]*)\]', re.S)
_GENERATION_RE = re.compile(r'"generation":\s*(\d+)')


def read_store_version(directory: str | os.PathLike[str]) -> tuple[int, bool, int]:
    """``(epoch, sealed, generation)`` of a store, via one bounded read.

    The staleness probe long-lived readers (serving workers) run between
    batches: O(1) regardless of corpus size, because the epoch and
    generation keys lead the manifest payload and the manifest is only
    ever replaced atomically. A bumped epoch means the corpus grew; a
    bumped generation means the same tables were re-laid out (online
    compaction) — either way the reader must reopen. Falls back to a
    full manifest parse if the prefix does not contain the epoch keys (a
    pre-epoch manifest reports ``(1, False, 1)``).
    """
    path = Path(directory) / MANIFEST_FILENAME
    try:
        with open(path, "rb") as handle:
            head = handle.read(_EPOCH_PROBE_BYTES).decode("utf-8", errors="replace")
    except OSError:
        raise CorpusError(f"no corpus manifest found at {path}") from None
    epoch_match = _EPOCH_RE.search(head)
    epochs_match = _EPOCHS_RE.search(head)
    generation_match = _GENERATION_RE.search(head)
    if epoch_match and epochs_match:
        epoch = int(epoch_match.group(1))
        sealed_count = len([tok for tok in epochs_match.group(1).split(",") if tok.strip()])
        generation = int(generation_match.group(1)) if generation_match else 1
        return epoch, sealed_count >= epoch, generation
    manifest = _read_manifest(Path(directory))
    return (
        manifest_epoch(manifest),
        manifest_is_sealed(manifest),
        manifest_generation(manifest),
    )


def read_store_epoch(directory: str | os.PathLike[str]) -> tuple[int, bool]:
    """``(epoch, sealed)`` of a sharded directory, via one bounded read.

    The epoch-only view of :func:`read_store_version`, kept for callers
    that do not care about the shard layout generation.
    """
    epoch, sealed, _ = read_store_version(directory)
    return epoch, sealed


def _read_manifest(directory: Path) -> dict:
    manifest_path = directory / MANIFEST_FILENAME
    if not manifest_path.exists():
        raise CorpusError(f"no corpus manifest found at {manifest_path}")
    with open(manifest_path, "r", encoding="utf-8") as handle:
        manifest = json.load(handle)
    if manifest.get("format") != SHARDED_FORMAT:
        raise CorpusError(
            f"unexpected corpus format {manifest.get('format')!r} at {manifest_path}"
        )
    return manifest


def _empty_stats() -> dict:
    return {"total_rows": 0, "total_columns": 0, "topics": {}, "repositories": {}}


def _accumulate_stats(stats: dict, rows: int, columns: int, topic: str, repository: str) -> None:
    """Fold one table into a manifest stats dict (single source of truth).

    Every code path that derives manifest statistics — the serial
    writer, per-worker delta records, and the parallel finalize rewrite
    — goes through here, so dict key insertion order (and therefore the
    manifest's bytes) depends only on the order tables are folded in.
    """
    stats["total_rows"] += rows
    stats["total_columns"] += columns
    stats["topics"][topic] = stats["topics"].get(topic, 0) + 1
    stats["repositories"][repository] = stats["repositories"].get(repository, 0) + 1


def _iter_log_records(path: Path, offset: int = 0):
    """Yield ``(record, raw_line_length)`` for the valid prefix of a log.

    A torn final line — no trailing newline, undecodable bytes, or
    invalid JSON from a crash mid-append — ends the valid prefix.
    ``offset`` skips bytes already consumed (it must sit on a record
    boundary), which is how the parallel coordinator tails worker logs
    incrementally without re-reading them. Shared by the canonical
    ``manifest.log`` replay and the per-worker ``manifest-<worker>.log``
    replay of parallel builds, so the torn-tail rules live in one place.
    """
    if not path.exists():
        return
    with open(path, "rb") as handle:
        if offset:
            handle.seek(offset)
        data = handle.read()
    for raw in data.splitlines(keepends=True):
        if not raw.endswith(b"\n"):
            return
        try:
            record = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            return
        yield record, len(raw)


def _apply_delta(manifest: dict, record: dict) -> None:
    """Fold one commit's delta record into a manifest state, in place."""
    shards = manifest.setdefault("shards", [])
    for entry in record.get("shards", []):
        index = entry["index"]
        state = {"file": entry["file"], "count": entry["count"], "bytes": entry["bytes"]}
        if index == len(shards):
            shards.append(state)
        elif index < len(shards):
            shards[index] = state
        else:
            raise CorpusError(
                f"manifest log references shard {index} but only "
                f"{len(shards)} shards exist; the log is corrupt"
            )
    manifest.setdefault("tables", {}).update(record.get("tables", {}))
    stats = manifest.setdefault("stats", _empty_stats())
    delta = record.get("stats", {})
    stats["total_rows"] += delta.get("total_rows", 0)
    stats["total_columns"] += delta.get("total_columns", 0)
    for family in ("topics", "repositories"):
        counts = stats.setdefault(family, {})
        for key, increment in delta.get(family, {}).items():
            counts[key] = counts.get(key, 0) + increment
    manifest["table_count"] = len(manifest["tables"])


def _replay_manifest_log(directory: Path, manifest: dict) -> tuple[int, int]:
    """Apply the valid prefix of ``manifest.log`` to ``manifest`` in place.

    Returns ``(valid_records, valid_byte_length)``. A torn final line
    (crash mid-append) ends the valid prefix. Records whose tables are
    already present in the manifest are counted but not re-applied: they
    were folded in by a compaction that crashed before deleting the log,
    and commits are all-or-nothing, so one already-known table id means
    the whole record is stale (re-applying it would double-count the
    statistics).
    """
    path = directory / MANIFEST_LOG_FILENAME
    records = 0
    valid_bytes = 0
    for record, raw_length in _iter_log_records(path):
        tables = record.get("tables", {})
        already_compacted = any(
            table_id in manifest.get("tables", {}) for table_id in tables
        )
        if not already_compacted:
            _apply_delta(manifest, record)
        records += 1
        valid_bytes += raw_length
    return records, valid_bytes


class ShardedJsonlStore:
    """Read-only lazy view over a sharded corpus directory.

    Only the manifest is loaded up front. ``get`` parses exactly the one
    shard that holds the requested table; repeated lookups hit an LRU of
    up to ``cache_shards`` parsed shards. Iteration streams in shard
    order through the same cache, so at most ``cache_shards`` shards are
    ever resident.
    """

    def __init__(self, directory: str | os.PathLike[str], cache_shards: int = 2) -> None:
        if cache_shards < 1:
            raise ValueError("cache_shards must be >= 1")
        self.directory = Path(directory)
        self._manifest = _read_manifest(self.directory)
        # A mid-build store keeps recent commits in the delta log rather
        # than the compacted manifest; fold them in (read-only replay).
        _replay_manifest_log(self.directory, self._manifest)
        self.name: str = self._manifest.get("name", "gittables")
        self.cache_shards = cache_shards
        #: table id -> (shard index, line index); insertion-ordered.
        self._locations: dict[str, tuple[int, int]] = {
            table_id: (entry["shard"], entry["line"])
            for table_id, entry in self._manifest.get("tables", {}).items()
        }
        self._cache: OrderedDict[int, list] = OrderedDict()
        self._content_fingerprint: str | None = None

    # -- manifest-backed metadata -----------------------------------------

    @property
    def manifest(self) -> dict:
        """The parsed manifest (treat as read-only)."""
        return self._manifest

    @property
    def epoch(self) -> int:
        """The build epoch this store's manifest describes."""
        return manifest_epoch(self._manifest)

    @property
    def sealed_epochs(self) -> list[int]:
        """Table counts at which each finalized epoch was sealed."""
        return [int(count) for count in self._manifest.get("epochs", [])]

    @property
    def generation(self) -> int:
        """The shard-layout generation this store's manifest describes."""
        return manifest_generation(self._manifest)

    @property
    def compacted_from(self) -> dict | None:
        """Fingerprint pin left by online compaction (None if never compacted)."""
        return self._manifest.get("compacted_from")

    def shard_files(self) -> list[str]:
        """Shard file names in shard order."""
        return [entry["file"] for entry in self._manifest.get("shards", [])]

    def source_urls(self) -> set[str]:
        """Source URLs of every stored table (metadata only)."""
        return {
            entry["source_url"]
            for entry in self._manifest.get("tables", {}).values()
            if "source_url" in entry
        }

    def stats_hint(self) -> dict | None:
        """Corpus statistics cached in the manifest (no shard reads)."""
        return self._manifest.get("stats")

    def content_fingerprint(self) -> str:
        """Content hash of the committed corpus (manifest-derived).

        Shard files are byte-deterministic functions of their tables, so
        hashing the manifest's structural view (name, shard byte ranges,
        table locations and provenance) identifies the corpus content
        without reading any shard. Derived index artifacts use this as
        their staleness guard: any commit changes the manifest, which
        changes the fingerprint, which invalidates the artifacts.

        Online compaction moves tables between shard files without
        changing the corpus content, so a compacted manifest pins the
        pre-compaction fingerprint in ``compacted_from`` and this method
        keeps reporting it while the table count still matches the pin —
        artifacts, projections, and ANN tiers stay valid across
        re-shards with zero recomputation. The first append after a
        compaction breaks the pin (the count moves past it) and the
        fingerprint reverts to the structural hash of the new layout.
        """
        if self._content_fingerprint is None:
            compacted = self._manifest.get("compacted_from")
            if compacted is not None and int(compacted.get("table_count", -1)) == len(self):
                self._content_fingerprint = str(compacted["fingerprint"])
            else:
                self._content_fingerprint = self._structural_fingerprint(
                    self._manifest.get("shards", []),
                    self._manifest.get("tables", {}),
                    self._manifest.get("table_count"),
                )
        return self._content_fingerprint

    def _structural_fingerprint(self, shards: list, tables: dict, table_count) -> str:
        payload = json.dumps(
            {
                "format": self._manifest.get("format"),
                "name": self._manifest.get("name"),
                "shard_size": self._manifest.get("shard_size"),
                "table_count": table_count,
                "shards": shards,
                "tables": tables,
            },
            sort_keys=True,
            ensure_ascii=False,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def sealed_prefix_boundary(self, corpus_key: object) -> int | None:
        """Table count of the sealed epoch whose fingerprint is ``corpus_key``.

        Shards are append-only, so the manifest of a previously sealed
        epoch is recoverable from the current one: its shard list is the
        prefix of shards covering that epoch's seal count — with the
        boundary shard's entry truncated to the lines the earlier epoch
        had committed (extensions fill a partial final shard before
        rolling new ones) — and its table entries are the entries
        located under that boundary. Hashing the reconstruction with the
        same structural scheme as :meth:`content_fingerprint` reproduces
        the fingerprint the earlier epoch reported, so a superseded
        index artifact carrying ``corpus_key`` is identified as
        describing *precisely* a sealed prefix of this store at the cost
        of at most one boundary-shard read. Returns the prefix's table
        count, or ``None`` when ``corpus_key`` matches no strictly
        smaller sealed epoch.

        A store that was compacted and then extended cannot reconstruct
        the pre-compaction layout from its current shards (compaction
        repacked them), but the ``compacted_from`` pin records exactly
        which fingerprint the old layout reported and at what table
        count — so an artifact keyed by the pre-compaction fingerprint
        still delta-refreshes over the tail instead of rebuilding.
        """
        if not isinstance(corpus_key, str):
            return None
        compacted = self._manifest.get("compacted_from")
        if compacted is not None and compacted.get("fingerprint") == corpus_key:
            pinned_count = int(compacted.get("table_count", -1))
            if 0 < pinned_count < len(self) and pinned_count in self.sealed_epochs:
                return pinned_count
        shards = self._manifest.get("shards", [])
        for seal_count in reversed(self.sealed_epochs):
            if seal_count >= len(self):
                continue
            prefix_shards: list[dict] = []
            total = 0
            for entry in shards:
                if total >= seal_count:
                    break
                count = int(entry["count"])
                if total + count <= seal_count:
                    prefix_shards.append(entry)
                    total += count
                    continue
                head = seal_count - total  # boundary falls inside this shard
                offset = self._line_offset(entry, head)
                if offset is None:
                    break
                prefix_shards.append({"file": entry["file"], "count": head, "bytes": offset})
                total = seal_count
            if total != seal_count or not prefix_shards:
                continue
            last = len(prefix_shards) - 1
            boundary_lines = int(prefix_shards[-1]["count"])
            tables = {}
            for table_id, entry in self._manifest.get("tables", {}).items():
                shard = int(entry.get("shard", last + 1))
                if shard < last or (
                    shard == last and int(entry.get("line", boundary_lines)) < boundary_lines
                ):
                    tables[table_id] = entry
            if self._structural_fingerprint(prefix_shards, tables, seal_count) == corpus_key:
                return seal_count
        return None

    def _line_offset(self, entry: dict, lines: int) -> int | None:
        """Byte length of the first ``lines`` records of one shard file."""
        with open(self.directory / entry["file"], "rb") as handle:
            data = handle.read(int(entry["bytes"]))
        offset = 0
        for _ in range(lines):
            end = data.find(b"\n", offset)
            if end < 0:
                return None
            offset = end + 1
        return offset

    # -- container protocol ------------------------------------------------

    def __len__(self) -> int:
        return len(self._locations)

    def __contains__(self, table_id: str) -> bool:
        return table_id in self._locations

    def table_ids(self) -> Iterator[str]:
        return iter(self._locations)

    def _load_shard(self, index: int) -> list:
        """Parse one shard into AnnotatedTable records (LRU-cached)."""
        if index in self._cache:
            self._cache.move_to_end(index)
            return self._cache[index]
        entry = self._manifest["shards"][index]
        try:
            tables = _read_shard_tables(self.directory / entry["file"], entry["bytes"])
        except FileNotFoundError:
            self._raise_if_relaid(entry)
            raise CorpusError(
                f"missing shard file {self.directory / entry['file']}"
            ) from None
        if len(tables) != entry["count"]:
            self._raise_if_relaid(entry)
            raise CorpusError(
                f"shard {entry['file']} holds {len(tables)} tables, "
                f"manifest says {entry['count']}"
            )
        self._cache[index] = tables
        while len(self._cache) > self.cache_shards:
            self._cache.popitem(last=False)
        return tables

    def _raise_if_relaid(self, entry: dict) -> None:
        """Diagnose a missing/short shard caused by an online re-shard.

        Generation-scoped filenames guarantee a reader can never *mix*
        two layouts (its manifest only names files of one generation);
        the one mid-swap state it can observe is an old-generation file
        deleted by the post-publish sweep. Probing the live manifest
        distinguishes that from genuine corruption and tells the caller
        exactly what to do: reopen the store.
        """
        try:
            _, _, current = read_store_version(self.directory)
        except CorpusError:
            return
        if current != self.generation:
            raise CorpusError(
                f"shard {entry['file']} belongs to layout generation "
                f"{self.generation}, but the store was re-laid out to "
                f"generation {current} while this reader was open; "
                f"reopen the store to pick up the new layout"
            )

    def get(self, table_id: str) -> "AnnotatedTable | None":
        location = self._locations.get(table_id)
        if location is None:
            return None
        shard_index, line_index = location
        return self._load_shard(shard_index)[line_index]

    def __iter__(self) -> Iterator["AnnotatedTable"]:
        for shard_index in range(len(self._manifest.get("shards", []))):
            yield from self._load_shard(shard_index)

    def iter_from(self, start: int) -> Iterator["AnnotatedTable"]:
        """Iterate tables from global index ``start`` in corpus order.

        Shards wholly before ``start`` are skipped via their manifest
        counts without being read or parsed, so streaming the tail of an
        extended store costs O(tail), not O(corpus) — the delta-refresh
        scan path for incremental artifact builds.
        """
        passed = 0
        for shard_index, entry in enumerate(self._manifest.get("shards", [])):
            count = entry["count"]
            if passed + count <= start:
                passed += count
                continue
            tables = self._load_shard(shard_index)
            yield from tables[max(0, start - passed):]
            passed += count

    def add(self, annotated: "AnnotatedTable") -> None:
        raise CorpusError(
            "ShardedJsonlStore is read-only; build through ShardedCorpusWriter "
            "or copy into an in-memory corpus"
        )


def heal_shard_files(directory: Path, entries: list[dict], owned_paths) -> None:
    """Restore shard files to exactly the committed state ``entries`` record.

    The one shard-healing routine every resume path shares — the
    single-writer :class:`ShardedCorpusWriter`, the per-worker writers
    of a parallel build, and the coordinator adopting a serial-era
    canonical portion. ``entries`` are manifest/log shard records
    (``{"file", "bytes", ...}``); ``owned_paths`` is the iterable of
    on-disk shard paths within the caller's naming scope, which bounds
    what may be deleted (healing one worker's scope never touches
    another's files). Listed shards are truncated back to their
    committed byte counts (dropping a torn uncommitted tail); owned
    shards that are not listed — a crashed rollover — are deleted; a
    listed shard that is missing or shorter than its committed bytes is
    genuine corruption and raises :class:`~repro.errors.CorpusError`.
    """
    listed = {entry["file"] for entry in entries}
    for path in owned_paths:
        if path.name not in listed:
            path.unlink()
    for entry in entries:
        path = directory / entry["file"]
        if not path.exists():
            raise CorpusError(f"missing shard file {path}")
        size = path.stat().st_size
        if size < entry["bytes"]:
            raise CorpusError(
                f"shard file {path} is shorter ({size}B) than the manifest "
                f"records ({entry['bytes']}B); the corpus is corrupt"
            )
        if size > entry["bytes"]:
            with open(path, "r+b") as handle:
                handle.truncate(entry["bytes"])


class ShardedCorpusWriter:
    """Append-only sharded store used as the corpus-construction sink.

    ``add`` buffers tables in memory; :meth:`commit` appends the buffer
    to shard files (rolling over every ``shard_size`` tables) and then
    durably records the commit — one O(batch) delta line appended to
    ``manifest.log``, compacted into a full ``manifest.json`` rewrite
    every ``compact_every`` commits and on :meth:`finalize`. The
    manifest+log only ever describe fully committed data, so a crash at
    any point loses at most the uncommitted buffer plus any
    half-appended lines — both are healed on the next open (the shard
    file is truncated back to the committed byte count, the log back to
    its last complete record).

    Opening a directory that already holds a manifest *resumes* it:
    committed tables (including any uncompacted log tail), shard layout,
    and cached statistics are picked up, and new tables append after
    them. :meth:`finalize` must end every build: it folds the log away
    (and seals the current epoch) so the finished directory is
    byte-identical regardless of commit cadence or interruptions.

    ``extend=True`` reopens a *sealed* directory for a new epoch: the
    epoch counter is bumped and the manifest republished before any
    append, so every commit of the extension is attributable to the new
    epoch and a crashed extension resumes (with ``extend=True`` again)
    without bumping twice. ``fault`` arms deterministic crash injection
    for the test harness (see :class:`~repro.storage.parallel.FaultSpec`);
    production builds never pass one.
    """

    def __init__(
        self,
        directory: str | os.PathLike[str],
        shard_size: int = DEFAULT_SHARD_SIZE,
        name: str = "gittables",
        compact_every: int = DEFAULT_COMPACT_EVERY,
        extend: bool = False,
        fault=None,
    ) -> None:
        if shard_size < 1:
            raise ValueError("shard_size must be >= 1")
        if compact_every < 1:
            raise ValueError("compact_every must be >= 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.compact_every = compact_every
        self.fault = fault
        self._commit_index = 0
        self._shards: list[dict] = []
        self._tables: dict[str, dict] = {}
        self._stats = _empty_stats()
        self._log_records = 0
        self.name = name
        self.shard_size = shard_size
        self.epoch = 1
        self.epochs: list[int] = []
        self.generation = 1
        self.compacted_from: dict | None = None
        if self._has_existing_state():
            self._load_existing_state()
            self._heal_shards()
            if extend:
                self.begin_extension()
        elif extend:
            raise CorpusError(
                f"cannot extend {self.directory}: no finalized corpus to reopen"
            )
        self._pending: deque = deque()
        self._pending_ids: set[str] = set()

    # -- durability-scope hooks (overridden by per-worker writers) ---------

    def shard_filename(self, index: int) -> str:
        """Name of this writer's ``index``-th shard file.

        Scoped to the store's current layout generation, so shards
        appended after an online compaction join the compacted layout's
        namespace instead of reviving swept generation-1 names.
        """
        return _shard_filename(index, self.generation)

    def _log_path(self) -> Path:
        """This writer's manifest delta log."""
        return self.directory / MANIFEST_LOG_FILENAME

    def _owned_shard_paths(self):
        """Every on-disk shard file within this writer's naming scope.

        The scope is what :meth:`_heal_shards` may delete orphans from;
        a per-worker writer narrows it to its own ``shard-<worker>-*``
        files so healing one worker never touches another's shards.
        """
        return self.directory.glob("shard_*.jsonl")

    def _has_existing_state(self) -> bool:
        return is_sharded_dir(self.directory)

    def _load_existing_state(self) -> None:
        """Resume committed state (manifest plus uncompacted log tail)."""
        manifest = _read_manifest(self.directory)
        self._log_records, valid_bytes = _replay_manifest_log(self.directory, manifest)
        self._truncate_log(valid_bytes)
        self.name = manifest.get("name", self.name)
        self.shard_size = int(manifest.get("shard_size", self.shard_size))
        self.epoch = manifest_epoch(manifest)
        self.epochs = [int(count) for count in manifest.get("epochs", [])]
        self.generation = manifest_generation(manifest)
        compacted = manifest.get("compacted_from")
        self.compacted_from = dict(compacted) if compacted is not None else None
        self._shards = [dict(entry) for entry in manifest.get("shards", [])]
        self._tables = {
            table_id: dict(entry) for table_id, entry in manifest.get("tables", {}).items()
        }
        self._stats = manifest.get("stats", _empty_stats())

    # -- epochs -------------------------------------------------------------

    def begin_extension(self) -> None:
        """Open the next epoch if the directory is sealed (else no-op).

        Idempotent while unsealed: a crashed extension resumes into the
        epoch it already opened instead of bumping again. Callers that
        may end up committing nothing (e.g. an extension whose target was
        already met) should defer this until they know appends follow,
        so a degenerate extension does not leave the store unsealed.
        """
        if self._is_sealed():
            self._begin_epoch()

    def _is_sealed(self) -> bool:
        return len(self.epochs) >= self.epoch

    @property
    def is_sealed(self) -> bool:
        """True when every opened epoch has been sealed by a finalize."""
        return self._is_sealed()

    def _begin_epoch(self) -> None:
        """Durably open the next epoch on a sealed directory.

        The bumped manifest is published *before* any append so every
        subsequent commit belongs to the new epoch on disk, and a
        crashed extension — whose manifest is now unsealed — resumes
        into the same epoch instead of bumping again.
        """
        self.epoch = len(self.epochs) + 1
        self._compact()

    def _seal_epoch(self) -> bool:
        """Record the current epoch's final table count; True if changed."""
        count = len(self._tables)
        if len(self.epochs) < self.epoch:
            self.epochs.append(count)
            return True
        if self.epochs[-1] != count:
            # Re-finalizing an epoch that grew after its first seal
            # (legal, if unusual): the seal tracks the final count.
            self.epochs[-1] = count
            return True
        return False

    # -- crash injection ----------------------------------------------------

    def _fault_point(self, point: str) -> None:
        """Crash-injection hook (armed only when ``fault`` was passed)."""
        fault = self.fault
        if fault is not None and fault.commit_n == self._commit_index and fault.point == point:
            fault.fire()

    def _truncate_log(self, valid_bytes: int) -> None:
        """Drop a torn tail record left in the log by a crashed append."""
        path = self._log_path()
        if path.exists() and path.stat().st_size > valid_bytes:
            with open(path, "r+b") as handle:
                handle.truncate(valid_bytes)

    def _heal_shards(self) -> None:
        """Restore the on-disk state the manifest describes.

        Shard files listed in the manifest are truncated back to their
        committed byte counts, and shard files *not* in the manifest —
        left behind when a crash hit after a shard rollover but before
        the manifest rewrite — are deleted, so a resumed build's
        directory stays byte-identical to a one-shot build's.
        """
        heal_shard_files(self.directory, self._shards, self._owned_shard_paths())

    # -- container protocol ------------------------------------------------

    def __len__(self) -> int:
        return len(self._tables) + len(self._pending)

    def __contains__(self, table_id: str) -> bool:
        return table_id in self._tables or table_id in self._pending_ids

    def table_ids(self) -> Iterator[str]:
        yield from self._tables
        for annotated in self._pending:
            yield annotated.table_id

    def add(self, annotated: "AnnotatedTable") -> None:
        table_id = annotated.table_id
        if table_id in self:
            raise CorpusError(f"duplicate table id {table_id!r}")
        self._pending.append(annotated)
        self._pending_ids.add(table_id)

    def extend(self, tables) -> None:
        for annotated in tables:
            self.add(annotated)

    def get(self, table_id: str) -> "AnnotatedTable | None":
        for annotated in self._pending:
            if annotated.table_id == table_id:
                return annotated
        entry = self._tables.get(table_id)
        if entry is None:
            return None
        return self._read_committed(entry["shard"], entry["line"])

    def _read_committed(self, shard_index: int, line_index: int) -> "AnnotatedTable":
        entry = self._shards[shard_index]
        return _read_shard_tables(self.directory / entry["file"], entry["bytes"])[line_index]

    def __iter__(self) -> Iterator["AnnotatedTable"]:
        for entry in self._shards:
            yield from _read_shard_tables(self.directory / entry["file"], entry["bytes"])
        yield from iter(self._pending)

    # -- write path --------------------------------------------------------

    @property
    def pending_count(self) -> int:
        """Tables added but not yet committed to disk."""
        return len(self._pending)

    @property
    def committed_count(self) -> int:
        """Tables durably recorded in the manifest."""
        return len(self._tables)

    def source_urls(self) -> set[str]:
        """Source URLs of committed tables (what a resumed build skips)."""
        return {
            entry["source_url"] for entry in self._tables.values() if "source_url" in entry
        }

    def last_source_url(self) -> str | None:
        """Source URL of the most recently committed table (None when empty).

        On a sealed directory the manifest lists tables in canonical
        stream order (the finalize guarantees this even for parallel
        builds), so this is the extraction stream's high-water mark:
        every file up to and including it was already processed —
        committed here or rejected by parsing/filtering.
        """
        for entry in reversed(self._tables.values()):
            return entry.get("source_url")
        return None

    def last_committed_table(self) -> "AnnotatedTable | None":
        """The most recently committed table (None when empty).

        One shard read — pairs with :meth:`last_source_url` to recover
        the high-water mark's metadata (e.g. which topic the sealed
        build stopped in) without scanning the corpus.
        """
        for entry in reversed(self._tables.values()):
            return self._read_committed(entry["shard"], entry["line"])
        return None

    def stats_hint(self) -> dict | None:
        """Committed statistics (pending tables are not yet included)."""
        if self._pending:
            return None
        return self._stats

    def commit(self) -> int:
        """Flush the pending buffer to shard files, then record the commit.

        Returns the number of tables committed. The durable commit point
        is one **delta record** appended (and fsynced) to
        ``manifest.log`` after the shard bytes are flushed and fsynced —
        O(batch), not O(tables committed so far), so commit-per-batch
        builds stay O(N) total. Every ``compact_every`` commits (and
        whenever ``manifest.json`` does not exist yet) the full manifest
        is rewritten atomically instead and the log is cleared. Pending
        tables are grouped per destination shard, so a commit costs one
        append + fsync per shard file touched, not per table.

        A commit with nothing pending writes nothing (it only creates
        the base manifest if the directory has none yet).
        """
        self._commit_index += 1
        self._fault_point("before-shard-append")
        if not self._pending:
            self._record_empty_commit()
            return 0
        committed = len(self._pending)
        touched: dict[int, dict] = {}
        new_tables: dict[str, dict] = {}
        stats_delta = _empty_stats()
        while self._pending:
            if not self._shards or self._shards[-1]["count"] >= self.shard_size:
                filename = self.shard_filename(len(self._shards))
                # A fresh shard truncates any stale file left by a crash
                # that rolled over without reaching the commit record.
                with open(self.directory / filename, "wb"):
                    pass
                # Persist the new file's directory entry before the
                # manifest/log can reference it (a record naming a file
                # whose dirent was lost to a power cut is unrecoverable).
                fsync_dir(self.directory)
                self._shards.append({"file": filename, "count": 0, "bytes": 0})
            entry = self._shards[-1]
            room = self.shard_size - entry["count"]
            group = [self._pending.popleft() for _ in range(min(room, len(self._pending)))]
            self._append_group(entry, group, new_tables, stats_delta)
            touched[len(self._shards) - 1] = entry
        self._pending_ids.clear()
        self._fault_point("before-log-append")
        self._record_commit(touched, new_tables, stats_delta)
        self._fault_point("after-log-append")
        return committed

    def _record_empty_commit(self) -> None:
        """A commit with nothing pending only seeds the base manifest."""
        if not (self.directory / MANIFEST_FILENAME).exists():
            self._compact()

    def _record_commit(self, touched: dict, new_tables: dict, stats_delta: dict) -> None:
        """Durably record one flushed commit (the writer's commit point).

        The base policy appends one delta record, compacting into a full
        manifest rewrite every ``compact_every`` commits (and when no
        manifest exists yet). Per-worker writers override this: they
        *only* append to their own log — the coordinator owns
        ``manifest.json``.
        """
        if (
            not (self.directory / MANIFEST_FILENAME).exists()
            or self._log_records + 1 >= self.compact_every
        ):
            self._compact()
        else:
            self._append_delta(touched, new_tables, stats_delta)

    def _append_group(
        self, entry: dict, group: list, new_tables: dict, stats_delta: dict
    ) -> None:
        """Append a group of tables to one shard with a single fsync."""
        shard_index = len(self._shards) - 1
        encoded = [_encode_table(annotated) for annotated in group]
        with open(self.directory / entry["file"], "ab") as handle:
            handle.write(b"".join(encoded))
            handle.flush()
            os.fsync(handle.fileno())
        for annotated, payload in zip(group, encoded):
            table = annotated.table
            location = {
                "shard": shard_index,
                "line": entry["count"],
                "source_url": annotated.source_url,
            }
            self._tables[annotated.table_id] = location
            new_tables[annotated.table_id] = location
            entry["count"] += 1
            entry["bytes"] += len(payload)
            for stats in (self._stats, stats_delta):
                _accumulate_stats(
                    stats, table.num_rows, table.num_columns, annotated.topic, annotated.repository
                )

    def _delta_record(self, touched: dict, new_tables: dict, stats_delta: dict) -> dict:
        """The canonical delta record describing one commit."""
        return {
            "shards": [
                {"index": index, **{key: entry[key] for key in ("file", "count", "bytes")}}
                for index, entry in sorted(touched.items())
            ],
            "tables": new_tables,
            "stats": stats_delta,
        }

    def _append_delta(self, touched: dict, new_tables: dict, stats_delta: dict) -> None:
        """Durably append one commit's delta record to the manifest log."""
        record = self._delta_record(touched, new_tables, stats_delta)
        line = json.dumps(record, ensure_ascii=False, separators=(",", ":")).encode("utf-8")
        path = self._log_path()
        existed = path.exists()
        with open(path, "ab") as handle:
            self._write_record_bytes(handle, line + b"\n")
        if not existed:
            fsync_dir(self.directory)
        self._log_records += 1

    def _write_record_bytes(self, handle, payload: bytes) -> None:
        """Write one record's bytes (with torn-write crash injection)."""
        fault = self.fault
        if (
            fault is not None
            and fault.commit_n == self._commit_index
            and fault.point == "torn-log-append"
        ):
            handle.write(payload[: max(1, len(payload) // 2)])
            handle.flush()
            os.fsync(handle.fileno())
            fault.fire()
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())

    def _compact(self) -> None:
        """Fold all committed state into manifest.json and drop the log.

        The full rewrite happens first (atomic replace), then the log is
        deleted; a crash in between leaves stale log records behind,
        which replay recognises and skips (their tables are already in
        the manifest).
        """
        self._write_manifest()
        log_path = self._log_path()
        if log_path.exists():
            log_path.unlink()
            fsync_dir(self.directory)
        self._log_records = 0

    def finalize(self) -> int:
        """Commit anything pending, seal the epoch, compact the log away.

        Every build path ends with this call: the finished directory
        holds only shard files and the compacted ``manifest.json`` —
        with the current epoch sealed at its final table count — so its
        bytes do not depend on how many commits (or interruptions)
        produced it. Returns the number of tables the final commit
        flushed.
        """
        committed = self.commit()
        sealed = self._seal_epoch()
        if sealed or self._log_records or not (self.directory / MANIFEST_FILENAME).exists():
            self._compact()
        return committed

    def _write_manifest(self) -> None:
        _write_manifest(
            self.directory,
            build_manifest(
                self.name,
                self.shard_size,
                self._shards,
                self._tables,
                self._stats,
                epoch=self.epoch,
                epochs=self.epochs,
                generation=self.generation,
                compacted_from=self.compacted_from,
            ),
        )

    def as_reader(self, cache_shards: int = 2) -> ShardedJsonlStore:
        """Finalize (commit + compact) and reopen as a lazy reader."""
        self.finalize()
        return ShardedJsonlStore(self.directory, cache_shards=cache_shards)
