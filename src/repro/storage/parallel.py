"""Process-parallel corpus builds: shard-per-worker, merge-on-commit.

The GitTables construction flow is embarrassingly parallel per source
file — search, download, parse, filter, annotate, curate — but the
single-process :class:`~repro.storage.sharded.ShardedCorpusWriter`
serializes the commit path. This module lifts a store-targeted build to
``N`` worker *processes* while keeping every single-writer durability
invariant:

* **Disjoint shard ranges.** Worker ``k`` appends only to its own
  ``shard-<k>-<seq>.jsonl`` files and records commits in its own
  ``manifest-<k>.log`` (one O(batch) delta record per commit, fsynced —
  the worker's durable commit point). Workers never share a file, so no
  cross-process locking exists anywhere on the write path.
* **Merge on commit boundaries.** The coordinator folds completed
  worker commit records — in deterministic (worker id, commit seq)
  order — into the canonical ``manifest.json`` so a mid-build directory
  is readable by :class:`~repro.storage.sharded.ShardedJsonlStore` at
  any time. The mid-build manifest carries a ``"parallel"`` marker; the
  worker logs stay authoritative for resume.
* **Byte-identical finalize.** When the in-order curated prefix of the
  source-URL stream covers ``target_tables``, the coordinator rewrites
  the worker shards into canonical serial-order ``shard_00000.jsonl``…
  files (staged as ``*.tmp`` siblings, renamed into place), publishes
  the canonical manifest atomically, and deletes all worker-scoped
  files. The finished directory is **byte-identical** to a serial build
  of the same configuration — regardless of process count, commit
  cadence, or how many times the build was killed and resumed.
* **Crash resume.** Killing any subset of workers (or the coordinator)
  at any point loses at most the uncommitted buffers: each worker log's
  torn tail is truncated on reopen and its shard tails healed exactly
  like the single-writer path; the coordinator re-derives completed
  work from the logs, re-dispatches the rest, and the process count may
  differ between sessions (it is excluded from the config fingerprint).

Work distribution
-----------------

The coordinator enumerates the deterministic source-URL stream — topics
in selection order, per-topic search results in API order, URLs
de-duplicated first-topic-wins, exactly the serial
:class:`~repro.pipeline.stages.ExtractStage` order — assigning each URL
a global **stream index**. Topic searches and URL processing are both
dispatched to workers; each worker runs its own
:class:`~repro.github.client.GitHubClient` (its own rate budget, as a
production deployment would use one API token per worker) and a private
:class:`~repro.pipeline.stages.PipelineComponents` set built from the
pickled config after the fork/spawn. Worker commit records carry the
stream indices they resolved (``"done"``), including URLs dropped by
parsing or filtering, so a resumed coordinator knows precisely which
prefix of the stream is complete. The build stops as soon as the
resolved in-order prefix contains ``target_tables`` curated tables —
the same early-stop semantics as the serial streaming runner, modulo a
bounded overshoot of at most the in-flight waves (surplus tables are
dropped at finalize, which keeps the final bytes identical).
"""

from __future__ import annotations

import json
import os
import queue as queue_module
import signal
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

from ..errors import CorpusError
from ._io import fsync_dir
from .artifacts import IndexArtifactStore
from .checkpoint import (
    BuildCheckpoint,
    config_fingerprint,
    numbered_sidecar_ids,
    worker_checkpoint_ids,
)
from .sharded import (
    MANIFEST_LOG_FILENAME,
    ShardedCorpusWriter,
    ShardedJsonlStore,
    _accumulate_stats,
    _apply_delta,
    _empty_stats,
    _iter_log_records,
    _read_manifest,
    _replay_manifest_log,
    _shard_filename,
    _write_manifest,
    build_manifest,
    heal_shard_files,
    is_sharded_dir,
    manifest_epoch,
    manifest_generation,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.pipeline import CorpusBuilder, PipelineResult

__all__ = [
    "FaultSpec",
    "WorkerShardWriter",
    "ParallelCorpusBuilder",
    "build_mp_context",
    "has_parallel_state",
    "merge_worker_manifests",
    "worker_log_filename",
    "worker_shard_filename",
]


def build_mp_context():
    """The multiprocessing context parallel builds run under.

    ``fork`` where the platform offers it (workers inherit the synthetic
    GitHub instance copy-on-write), ``spawn`` otherwise (worker state is
    rebuilt from the pickled config). The test harness uses this same
    helper, so the crash/concurrency tests always exercise the context
    production builds actually run with.
    """
    import multiprocessing

    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")

#: Fallback glob matching any worker's shard file.
WORKER_SHARD_GLOB = "shard-??-*.jsonl"
#: Glob matching any worker's manifest delta log.
WORKER_LOG_GLOB = "manifest-??.log"


def worker_shard_filename(worker: int, seq: int) -> str:
    """Worker ``worker``'s ``seq``-th shard file (``shard-<worker>-<seq>.jsonl``)."""
    return f"shard-{worker:02d}-{seq:05d}.jsonl"


def worker_log_filename(worker: int) -> str:
    """Worker ``worker``'s manifest delta log (``manifest-<worker>.log``)."""
    return f"manifest-{worker:02d}.log"


def _worker_log_ids(directory: Path) -> list[int]:
    return numbered_sidecar_ids(directory, WORKER_LOG_GLOB)


def _acquire_log_lock(directory: Path, worker: int, timeout: float):
    """Exclusively ``flock`` one worker's log; returns the holding handle.

    Blocks (polling) until the current holder — typically an orphaned
    worker of a killed coordinator draining its last batch — exits and
    the kernel releases the lock, or ``timeout`` elapses (another build
    session is genuinely alive: refuse to run concurrently). Returns
    ``None`` on platforms without ``fcntl`` (locking is best-effort
    there).
    """
    try:
        import fcntl
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return None
    import errno

    handle = open(directory / worker_log_filename(worker), "ab")
    deadline = time.monotonic() + timeout
    while True:
        try:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
            return handle
        except OSError as error:
            if error.errno not in (errno.EAGAIN, errno.EWOULDBLOCK, errno.EACCES):
                # flock unsupported here (e.g. some network filesystems):
                # degrade to the same best-effort mode as no-fcntl
                # platforms instead of misreporting a live session.
                handle.close()  # pragma: no cover - filesystem-dependent
                return None  # pragma: no cover - filesystem-dependent
            if time.monotonic() >= deadline:
                handle.close()
                raise CorpusError(
                    f"worker {worker}'s manifest log in {directory} is locked "
                    "by another live process; a previous build session is "
                    "still running against this directory"
                )
            time.sleep(0.05)


def has_parallel_state(directory: str | os.PathLike[str]) -> bool:
    """Whether ``directory`` holds in-flight process-parallel build state.

    True when any worker log/checkpoint exists or the manifest carries
    the mid-build ``"parallel"`` marker. Such a directory must be
    resumed through :class:`ParallelCorpusBuilder` (with *any* process
    count, including 1) — the single-writer path does not know how to
    append to worker-scoped shards.
    """
    directory = Path(directory)
    if _worker_log_ids(directory) or worker_checkpoint_ids(directory):
        return True
    if is_sharded_dir(directory):
        try:
            return "parallel" in _read_manifest(directory)
        except CorpusError:
            return False
    return False


@dataclass(frozen=True)
class FaultSpec:
    """Deterministic crash injection for the test harness.

    ``worker`` selects which worker process self-SIGKILLs (``None``
    targets the coordinator), ``commit_n`` the 1-based commit ordinal
    *within the faulted session*, and ``point`` when exactly to die:

    * ``"before-shard-append"`` — commit started, nothing written yet;
    * ``"before-log-append"`` — shard bytes flushed, no commit record;
    * ``"torn-log-append"`` — half the commit record's bytes written
      (a torn log tail that resume must truncate away);
    * ``"after-log-append"`` — commit durable, checkpoint not yet saved.

    Coordinator points (``worker=None``, ``commit_n`` ignored):

    * ``"before-manifest-publish"`` — canonical shards rewritten and
      renamed, canonical manifest not yet published (mid-compaction);
    * ``"before-cleanup"`` — canonical manifest published, worker-scoped
      files not yet deleted.

    :func:`~repro.storage.compaction.compact_store` points (``worker``
    and ``commit_n`` ignored — one logical commit):

    * ``"before-shard-publish"`` — new-generation shards staged as
      ``.tmp`` files only;
    * ``"before-manifest-publish"`` — staged shards renamed into place,
      old manifest still authoritative;
    * ``"before-sweep"`` — new manifest published, old-generation shard
      files not yet deleted.

    Only the crash/concurrency tests construct these; production builds
    never pass one.
    """

    worker: int | None
    commit_n: int = 1
    point: str = "before-log-append"

    def fire(self) -> None:
        """Die exactly like a SIGKILLed process (no cleanup, no atexit)."""
        os.kill(os.getpid(), signal.SIGKILL)


class WorkerShardWriter(ShardedCorpusWriter):
    """One build worker's append-only writer over its private shard range.

    Durability state is the worker's ``manifest-<k>.log`` alone — the
    worker never touches ``manifest.json`` (the coordinator owns it).
    Opening replays the log's valid prefix, truncates a torn tail, and
    heals this worker's shard files exactly like the single-writer path
    (tails truncated to committed byte counts, orphan rollover shards of
    *this worker only* deleted). ``commit(done=...)`` additionally
    records the global stream indices the commit resolves — including
    URLs whose tables were dropped by parsing or filtering — which is
    what makes a multi-process resume able to reconstruct precisely
    which slice of the source stream is finished.
    """

    #: How long to wait for a previous holder of a worker scope (an
    #: orphaned worker of a killed coordinator, finishing its last
    #: batch) to release the log lock before giving up.
    LOCK_TIMEOUT_SECONDS = 10.0

    def __init__(
        self,
        directory: str | os.PathLike[str],
        worker: int,
        shard_size: int,
        name: str = "gittables",
        fault: FaultSpec | None = None,
    ) -> None:
        if worker < 0:
            raise ValueError("worker must be >= 0")
        self.worker = worker
        #: Global stream indices resolved by committed records.
        self.done_indices: set[int] = set()
        self._pending_done: list[int] = []
        self._pending_url_indices: dict[str, int] = {}
        self._lock_handle = None
        self._acquire_scope_lock(Path(directory))
        super().__init__(
            directory,
            shard_size=shard_size,
            name=name,
            fault=fault if fault is not None and fault.worker == worker else None,
        )

    def _acquire_scope_lock(self, directory: Path) -> None:
        """Exclusively lock this worker's log for the writer's lifetime.

        Guards the one multi-writer race the architecture permits: a
        coordinator SIGKILLed mid-build leaves workers that only notice
        the dead parent on their next queue poll, so a promptly resumed
        session could otherwise open the same worker scope while the
        orphan finishes its current batch. ``flock`` is advisory,
        per-inode, and released by the kernel the instant the holder
        dies — exactly the crash semantics the rest of the design
        assumes. Best-effort on platforms without ``fcntl``.
        """
        directory.mkdir(parents=True, exist_ok=True)
        self._lock_handle = _acquire_log_lock(
            directory, self.worker, self.LOCK_TIMEOUT_SECONDS
        )
        # The lock acquisition may have created the log file; make its
        # dirent durable before any record can reference this worker.
        fsync_dir(directory)

    def close(self) -> None:
        """Release the worker-scope lock (process exit does this too)."""
        if self._lock_handle is not None:
            self._lock_handle.close()
            self._lock_handle = None

    # -- durability scope ---------------------------------------------------

    def shard_filename(self, index: int) -> str:
        return worker_shard_filename(self.worker, index)

    def _log_path(self) -> Path:
        return self.directory / worker_log_filename(self.worker)

    def _owned_shard_paths(self):
        return self.directory.glob(f"shard-{self.worker:02d}-*.jsonl")

    def _has_existing_state(self) -> bool:
        return self._log_path().exists()

    def _load_existing_state(self) -> None:
        """Rebuild committed state by replaying this worker's log."""
        state = {"shards": [], "tables": {}, "stats": _empty_stats()}
        valid_bytes = 0
        for record, raw_length in _iter_log_records(self._log_path()):
            _apply_delta(state, record)
            self.done_indices.update(record.get("done", ()))
            valid_bytes += raw_length
        self._truncate_log(valid_bytes)
        self._shards = state["shards"]
        self._tables = state["tables"]
        self._stats = state["stats"]

    # -- commit path --------------------------------------------------------

    def commit(self, done=None, indices: dict[str, int] | None = None) -> int:  # type: ignore[override]
        """Flush pending tables and durably record the resolved indices.

        ``done`` lists every global stream index this commit resolves;
        ``indices`` maps source URLs to their stream index so each
        stored table's log entry can pin the table to its position in
        the serial stream (what the coordinator orders the canonical
        rewrite by).
        """
        self._pending_done = sorted(done) if done else []
        self._pending_url_indices = dict(indices) if indices else {}
        try:
            committed = super().commit()
        finally:
            pending = self._pending_done
            self._pending_done = []
            self._pending_url_indices = {}
        self.done_indices.update(pending)
        return committed

    def _record_empty_commit(self) -> None:
        # A batch whose tables were all dropped still advances the
        # resume frontier: record the resolved indices, nothing else.
        if self._pending_done:
            self._fault_point("before-log-append")
            self._append_delta({}, {}, _empty_stats())
            self._fault_point("after-log-append")

    def _record_commit(self, touched: dict, new_tables: dict, stats_delta: dict) -> None:
        # Workers only ever append; manifest.json belongs to the
        # coordinator, so there is no compaction on this side.
        self._append_delta(touched, new_tables, stats_delta)

    def _delta_record(self, touched: dict, new_tables: dict, stats_delta: dict) -> dict:
        # Pin each stored table to its stream index (mutating the shared
        # location dicts keeps the in-memory state and any replay of
        # this record consistent).
        for entry in new_tables.values():
            index = self._pending_url_indices.get(entry.get("source_url"))
            if index is not None:
                entry["index"] = index
        record = super()._delta_record(touched, new_tables, stats_delta)
        record["done"] = self._pending_done
        return record

    def finalize(self) -> int:
        raise CorpusError(
            "worker writers never finalize; the build coordinator merges "
            "worker logs into the canonical manifest"
        )


# ---------------------------------------------------------------------------
# Worker process
# ---------------------------------------------------------------------------


@dataclass
class _WorkUnit:
    """One source URL to download and process, pinned to a stream index."""

    index: int
    url: str
    repository: str
    path: str
    topic: str
    size_bytes: int


@dataclass
class _WorkerSpec:
    """Everything a worker process needs, shippable through fork or pickle."""

    directory: str
    worker: int
    config: object
    generator_config: object | None
    instance: object | None
    batch_size: int
    shard_size: int
    real_time_factor: float
    fingerprint: dict
    parent_pid: int
    fault: FaultSpec | None


def _search_topic(extractor, topic: str):
    """Collect one topic's URL metadata (the searchable half of extraction)."""
    from ..core.extraction import ExtractionReport

    report = ExtractionReport()
    items = extractor.collect_urls(topic, report=report)
    payload = [
        {
            "url": item.url,
            "repository": item.repository,
            "path": item.path,
            "size_bytes": item.size_bytes,
        }
        for item in items.values()
    ]
    return payload, report


def _download_unit(client, unit: _WorkUnit):
    """Download one unit's content (mirrors ``CSVExtractor.extract_topic``)."""
    from ..core.extraction import ExtractedFile

    repository = client.instance.repository(unit.repository)
    content = client.raw_content(unit.url)
    return ExtractedFile(
        url=unit.url,
        repository=unit.repository,
        path=unit.path,
        topic=unit.topic,
        content=content,
        license=repository.license if repository else None,
        size_bytes=unit.size_bytes,
    )


def _worker_main(spec: _WorkerSpec, task_queue, result_queue) -> None:
    """Worker process entry point: search and process tasks until told to stop.

    Tasks arrive as ``("search", topic)`` or ``("process", wave_id,
    [work units])``; ``None`` is the stop sentinel. Every processed
    batch is committed (shard append + fsync, delta record + fsync)
    before the next is touched, and the per-worker
    :class:`~repro.storage.checkpoint.BuildCheckpoint` is refreshed
    after each commit, so SIGKILL at any instant loses at most one
    uncommitted batch of *corpus data*. Report counters share the
    serial build's slightly weaker window: a kill between the commit
    and the checkpoint save loses that one batch's counters (the
    corpus bytes are unaffected — resume never re-does committed
    work, so the counters stay a lower bound). If the coordinator
    disappears (parent pid changes), the worker exits on its own
    rather than leak.
    """
    import traceback

    from ..core.extraction import CSVExtractor
    from ..github.client import GitHubClient
    from ..github.instance import build_instance
    from ..pipeline.report import combine_counters
    from ..pipeline.runner import Pipeline
    from ..pipeline.stage import iter_chunks
    from ..pipeline.stages import PipelineComponents, processing_stages

    def leave() -> None:
        # Never let process exit block on flushing acks nobody will
        # read: a dead coordinator leaves the result pipe undrained,
        # and the queue's feeder-thread join would hang this process
        # forever (holding its scope lock and inherited fds with it).
        result_queue.cancel_join_thread()

    try:
        components = PipelineComponents.from_config(
            spec.config, artifacts=IndexArtifactStore.for_corpus_dir(spec.directory)
        )
        instance = spec.instance
        if instance is None:
            instance = build_instance(spec.generator_config)
        client = GitHubClient(instance, real_time_factor=spec.real_time_factor)
        extractor = CSVExtractor(client, spec.config.extraction)
        writer = WorkerShardWriter(
            spec.directory, spec.worker, shard_size=spec.shard_size, fault=spec.fault
        )
        checkpoint = BuildCheckpoint.load(spec.directory, worker=spec.worker)
        base_counters = dict(checkpoint.counters) if checkpoint is not None else {}
        session_counters: dict = {"sessions": 1}
    except Exception:  # pragma: no cover - init failures surface as errors
        result_queue.put(("error", spec.worker, traceback.format_exc()))
        return leave()

    while True:
        try:
            task = task_queue.get(timeout=0.5)
        except queue_module.Empty:
            if os.getppid() != spec.parent_pid:
                return leave()  # orphaned by a dead coordinator
            continue
        if task is None:
            return leave()
        if os.getppid() != spec.parent_pid:
            return leave()  # coordinator died between dispatch and pickup
        try:
            if task[0] == "search":
                topic = task[1]
                requests_before = client.request_count
                wait_before = client.total_wait_seconds
                payload, report = _search_topic(extractor, topic)
                result_queue.put(
                    (
                        "searched",
                        spec.worker,
                        topic,
                        payload,
                        {
                            "api_requests": client.request_count - requests_before,
                            "wait_seconds": client.total_wait_seconds - wait_before,
                            "initial_count": report.initial_counts.get(topic, 0),
                            "segmented_queries": report.segmented_queries.get(topic, 0),
                        },
                    )
                )
                continue
            wave_id, units = task[1], task[2]
            for batch in iter_chunks(units, spec.batch_size):
                if os.getppid() != spec.parent_pid:
                    # Orphaned mid-wave: stop at the batch boundary so
                    # the scope lock frees for a resumed session fast
                    # (everything committed so far is durable).
                    return leave()
                download_started = time.perf_counter()
                files = [_download_unit(client, unit) for unit in batch]
                download_seconds = time.perf_counter() - download_started
                # config.workers composes with processes: each worker
                # process honours the thread-pool setting for its
                # batch-capable stages, exactly like the serial graph
                # (chunks sized so one batch spreads across the pool).
                threads = max(1, int(spec.config.workers))
                outcome = Pipeline(
                    processing_stages(
                        components,
                        workers=threads,
                        chunk_size=max(1, -(-spec.batch_size // threads)),
                    ),
                    batch_size=spec.batch_size,
                    name="gittables-build-worker",
                ).run(files, config=spec.config)
                writer.extend(outcome.items)
                writer.commit(
                    done=[unit.index for unit in batch],
                    indices={unit.url: unit.index for unit in batch},
                )
                batch_counters = outcome.report.counters()
                batch_counters["sessions"] = 0
                # Downloads are extraction work done worker-side; count
                # them under the stage name the serial graph uses.
                batch_counters["stages"] = {
                    "extraction": {
                        "items_in": len(batch),
                        "items_out": len(files),
                        "cumulative_seconds": download_seconds,
                    },
                    **batch_counters["stages"],
                }
                session_counters = combine_counters(session_counters, batch_counters)
                merged = combine_counters(base_counters, session_counters)
                BuildCheckpoint(
                    fingerprint=spec.fingerprint,
                    sessions=merged["sessions"],
                    counters=merged,
                ).save(spec.directory, worker=spec.worker)
            result_queue.put(("done", spec.worker, wave_id, len(units)))
        except Exception:
            result_queue.put(("error", spec.worker, traceback.format_exc()))
            return leave()


# ---------------------------------------------------------------------------
# Coordinator
# ---------------------------------------------------------------------------


@dataclass
class _StoreState:
    """Committed state re-derived from a build directory on open."""

    #: Serial-era canonical portion: table id -> {shard, line, source_url}.
    canonical_tables: dict = field(default_factory=dict)
    #: Serial-era canonical shard entries (manifest order).
    canonical_shards: list = field(default_factory=list)
    #: Statistics of the canonical portion alone (not worker tables).
    canonical_stats: dict = field(default_factory=_empty_stats)
    #: worker id -> replayed worker manifest state.
    worker_states: dict = field(default_factory=dict)
    #: worker id -> resolved stream indices.
    worker_done: dict = field(default_factory=dict)
    #: worker id -> byte offset of the log's valid committed prefix.
    worker_log_offsets: dict = field(default_factory=dict)
    #: Whether manifest.json exists without the mid-build marker.
    manifest_is_canonical: bool = False
    #: The canonical manifest's table count (0 when absent).
    manifest_table_count: int = 0
    #: The shard size recorded by an existing manifest (None when absent).
    manifest_shard_size: int | None = None
    #: The build epoch the manifest describes (1 when absent).
    epoch: int = 1
    #: Table counts at which earlier epochs were sealed.
    epochs: list = field(default_factory=list)
    #: Shard-layout generation the manifest describes (1 when absent).
    generation: int = 1
    #: Fingerprint pin left by online compaction (None if never compacted).
    compacted_from: dict | None = None

    @property
    def epoch_is_sealed(self) -> bool:
        return len(self.epochs) >= self.epoch

    @property
    def committed_count(self) -> int:
        return len(self.canonical_tables) + sum(
            len(state["tables"]) for state in self.worker_states.values()
        )


def _read_store_state(directory: Path) -> _StoreState:
    """Re-derive all committed state: canonical manifest + worker logs.

    Worker logs are authoritative for worker-scoped state (the merged
    mid-build manifest is a convenience view); the canonical portion of
    a manifest — entries referencing serial-named ``shard_*.jsonl``
    files — is authoritative for work a *serial* session committed
    before the build went parallel.

    Each worker log is snapshotted under its scope lock: if a previous
    coordinator was SIGKILLed, its orphaned workers may still be
    draining one last batch, and reading before they exit would miss
    their final commits (leading the new session to re-dispatch — and
    double-store — those URLs). Waiting on the lock serializes the
    snapshot behind the orphans' exit.
    """
    state = _StoreState()
    if is_sharded_dir(directory):
        manifest = _read_manifest(directory)
        _replay_manifest_log(directory, manifest)
        state.manifest_is_canonical = "parallel" not in manifest
        state.manifest_table_count = len(manifest.get("tables", {}))
        state.manifest_shard_size = int(manifest.get("shard_size", 0)) or None
        state.epoch = manifest_epoch(manifest)
        state.epochs = [int(count) for count in manifest.get("epochs", [])]
        state.generation = manifest_generation(manifest)
        compacted = manifest.get("compacted_from")
        state.compacted_from = dict(compacted) if compacted is not None else None
        if state.manifest_is_canonical:
            # A serial-era manifest's stats describe exactly the
            # canonical tables being adopted.
            state.canonical_stats = manifest.get("stats", _empty_stats())
        else:
            # A mid-build merged manifest's stats span worker tables
            # too; the canonical slice rides in the parallel marker.
            state.canonical_stats = manifest["parallel"].get(
                "canonical_stats", _empty_stats()
            )
        shards = manifest.get("shards", [])
        canonical_indices = {
            index
            for index, entry in enumerate(shards)
            if entry["file"].startswith("shard_")
        }
        remap = {old: new for new, old in enumerate(sorted(canonical_indices))}
        state.canonical_shards = [shards[index] for index in sorted(canonical_indices)]
        for table_id, entry in manifest.get("tables", {}).items():
            if entry["shard"] in canonical_indices:
                moved = dict(entry)
                moved["shard"] = remap[entry["shard"]]
                state.canonical_tables[table_id] = moved
    for worker in _worker_log_ids(directory):
        lock = _acquire_log_lock(
            directory, worker, WorkerShardWriter.LOCK_TIMEOUT_SECONDS
        )
        try:
            worker_state = {"shards": [], "tables": {}, "stats": _empty_stats()}
            done: set[int] = set()
            offset = 0
            for record, raw_length in _iter_log_records(
                directory / worker_log_filename(worker)
            ):
                _apply_delta(worker_state, record)
                done.update(record.get("done", ()))
                offset += raw_length
        finally:
            if lock is not None:
                lock.close()
        state.worker_states[worker] = worker_state
        state.worker_done[worker] = done
        state.worker_log_offsets[worker] = offset
    return state


def _fold_stats(into: dict, source: dict) -> None:
    """Sum one stats dict into another (totals plus counter families)."""
    for family in ("total_rows", "total_columns"):
        into[family] += source.get(family, 0)
    for family in ("topics", "repositories"):
        counts = into[family]
        for key, value in source.get(family, {}).items():
            counts[key] = counts.get(key, 0) + value


def merge_worker_manifests(
    state: _StoreState,
    name: str = "gittables",
    shard_size: int = 0,
    processes: int | None = None,
) -> dict:
    """The merged mid-build manifest of a store's committed state.

    A pure function of the replayed state: canonical (serial-era) shards
    come first, then each worker's shards in deterministic (worker id,
    shard seq) order, with table locations remapped into the merged
    shard list and statistics summed in the same order — so *any*
    interleaving of worker commits that leaves the same records in the
    logs merges to the identical manifest. The ``"parallel"`` marker
    tells readers this is a mid-build view and resuming coordinators
    that the worker logs — not this manifest — are authoritative.
    """
    shards: list = list(state.canonical_shards)
    tables: dict = {}
    stats = _empty_stats()
    for table_id, entry in state.canonical_tables.items():
        tables[table_id] = entry
    _fold_stats(stats, state.canonical_stats)
    for worker in sorted(state.worker_states):
        worker_state = state.worker_states[worker]
        base = len(shards)
        shards.extend(worker_state["shards"])
        for table_id, entry in worker_state["tables"].items():
            moved = dict(entry)
            moved["shard"] = base + entry["shard"]
            tables[table_id] = moved
        _fold_stats(stats, worker_state["stats"])
    manifest = build_manifest(
        name,
        shard_size,
        shards,
        tables,
        stats,
        epoch=state.epoch,
        epochs=state.epochs,
        generation=state.generation,
        compacted_from=state.compacted_from,
    )
    manifest["parallel"] = {
        "processes": processes,
        "canonical_stats": state.canonical_stats,
    }
    return manifest


def _heal_canonical_shards(directory: Path, state: _StoreState) -> None:
    """Truncate torn canonical shard tails left by a crashed serial session.

    Applies :func:`~repro.storage.sharded.heal_shard_files` to the
    canonical portion a parallel resume adopts — the same routine (and
    therefore exactly the same semantics) as the single-writer resume
    path, scoped to canonical-named ``shard_*.jsonl`` files. Worker
    shards are healed by their own writers.
    """
    heal_shard_files(
        directory, state.canonical_shards, directory.glob("shard_*.jsonl")
    )


class _ShardLineCache:
    """Committed line bytes of build shards, a few parsed files at a time."""

    def __init__(self, directory: Path, capacity: int = 4) -> None:
        self.directory = directory
        self.capacity = capacity
        self._cache: OrderedDict[str, list[bytes]] = OrderedDict()

    def line(self, entry: dict, line_index: int) -> bytes:
        filename = entry["file"]
        lines = self._cache.get(filename)
        if lines is None:
            with open(self.directory / filename, "rb") as handle:
                data = handle.read(entry["bytes"])
            lines = data.splitlines(keepends=True)
            self._cache[filename] = lines
            while len(self._cache) > self.capacity:
                self._cache.popitem(last=False)
        else:
            self._cache.move_to_end(filename)
        return lines[line_index]


class ParallelCorpusBuilder:
    """Coordinates a multi-process corpus build over one store directory.

    Wraps a configured :class:`~repro.core.pipeline.CorpusBuilder` and
    executes its store build across ``processes`` worker processes (see
    the module docstring for the architecture). Not constructed directly
    in normal use — ``CorpusBuilder.build(store_dir=..., processes=N)``
    and ``GitTables.build(..., processes=N)`` route here, including for
    ``processes=1`` resumes of a directory that holds parallel state.

    ``fault`` injects a deterministic crash for the test harness;
    ``mp_context`` overrides the multiprocessing start method (``fork``
    where available, else ``spawn`` — worker state is rebuilt from the
    pickled config either way).
    """

    #: How many stream URLs one dispatched wave hands a worker.
    WAVE_UNITS = 64

    def __init__(
        self,
        builder: "CorpusBuilder",
        processes: int,
        mp_context=None,
        fault: FaultSpec | None = None,
    ) -> None:
        if processes < 1:
            raise CorpusError("processes must be >= 1")
        if processes > 99:
            raise CorpusError("processes must be <= 99 (worker ids are two digits)")
        self.builder = builder
        self.processes = processes
        self.fault = fault
        self.mp = mp_context if mp_context is not None else build_mp_context()

    # -- the build ----------------------------------------------------------

    def build(
        self, store_dir: str | os.PathLike[str], shard_size: int, extend: bool = False
    ) -> "PipelineResult":
        from ..wordnet.topics import select_topics

        builder = self.builder
        config = builder.config
        directory = Path(store_dir)
        directory.mkdir(parents=True, exist_ok=True)
        topic_selection = select_topics(config.extraction.topic_count, seed=config.seed)
        fingerprint = config_fingerprint(config, builder.generator_config)

        state = _read_store_state(directory)
        builder.ensure_build_meta(
            store_dir, fingerprint, state.committed_count, extend=extend
        )
        checkpoint = BuildCheckpoint.load(directory)
        if checkpoint is not None:
            checkpoint.require_compatible(fingerprint, store_dir)

        if state.manifest_is_canonical and state.manifest_table_count >= config.target_tables:
            # A completed build (possibly killed between publishing the
            # canonical manifest and sweeping worker files): reuse it.
            # Cleaning the leftovers makes the directory byte-identical
            # to one whose finalize ran uninterrupted.
            self._cleanup_worker_files(directory)
            BuildCheckpoint.clear(directory)
            return builder.reuse_result(store_dir, topic_selection.topics)

        if extend and state.manifest_is_canonical and state.epoch_is_sealed:
            # Growing a finalized store: open the next epoch. The seed
            # merge below publishes the bumped manifest (as a mid-build
            # view) before any work is dispatched, so a crashed
            # extension resumes — now unsealed — without bumping again.
            state.epoch = len(state.epochs) + 1

        # Resumes keep the shard size the directory was started with
        # (same behaviour as the single-writer resume path).
        if state.manifest_shard_size is not None:
            shard_size = state.manifest_shard_size
        if checkpoint is None:
            checkpoint = BuildCheckpoint(fingerprint=fingerprint)
        base_counters = dict(checkpoint.counters)
        checkpoint.sessions += 1
        checkpoint.save(directory)
        _heal_canonical_shards(directory, state)
        # Publish the coordinator's (eagerly built) ontology label
        # indexes before any worker spawns: every worker then resolves
        # them with one mmap instead of re-embedding per process.
        builder.annotator.publish_artifacts(IndexArtifactStore.for_corpus_dir(directory))

        run = _CoordinatorRun(
            self, directory, shard_size, topic_selection.topics, fingerprint, state
        )
        # Seed the merged manifest before any work is dispatched: like
        # the serial writer's first-commit manifest, it pins the
        # directory's shard_size (and marks it parallel) so a build
        # killed before the first throttled merge still resumes with
        # the layout it was started with.
        run.merge_manifest(force=True)
        try:
            run.execute()
        finally:
            run.shutdown_workers()
        run.finalize()
        worker_counters = [
            BuildCheckpoint.load(directory, worker=worker).counters
            for worker in worker_checkpoint_ids(directory)
        ]
        self._fault_point("before-cleanup")
        self._cleanup_worker_files(directory)
        BuildCheckpoint.clear(directory)
        fsync_dir(directory)
        return self._assemble_result(
            store_dir,
            topic_selection.topics,
            base_counters,
            checkpoint.sessions,
            run,
            worker_counters,
            extend=extend,
        )

    def _fault_point(self, point: str) -> None:
        fault = self.fault
        if fault is not None and fault.worker is None and fault.point == point:
            fault.fire()

    @staticmethod
    def _cleanup_worker_files(directory: Path) -> None:
        """Delete every worker-scoped file plus finalize staging leftovers."""
        BuildCheckpoint.clear_workers(directory)
        for pattern in (WORKER_SHARD_GLOB, WORKER_LOG_GLOB, "*.jsonl.tmp"):
            for path in directory.glob(pattern):
                path.unlink()

    def _assemble_result(
        self,
        store_dir,
        topics: tuple[str, ...],
        base_counters: dict,
        sessions: int,
        run: "_CoordinatorRun",
        worker_counters: list[dict],
        extend: bool = False,
    ) -> "PipelineResult":
        """Merge worker counters into one cross-process PipelineReport.

        Stage counters sum the work of every worker across every
        session (each worker's checkpoint already reconciles its own
        sessions); ``sessions`` counts coordinator build invocations —
        including any serial sessions the directory saw before going
        parallel, whose counters arrive through ``base_counters``.
        """
        from ..core.corpus import GitTablesCorpus
        from ..core.curation import CurationReport
        from ..pipeline.report import PipelineReport, combine_counters
        from .columnar import ensure_projection

        merged = dict(base_counters)
        merged["sessions"] = 0
        for counters in worker_counters:
            local = dict(counters)
            local["sessions"] = 0
            merged = combine_counters(merged, local)
        report = PipelineReport(pipeline_name="gittables-build")
        report.merge_counters(merged)
        report.sessions = sessions
        corpus = GitTablesCorpus(store=ShardedJsonlStore(store_dir))
        # Publish the columnar stats projection at parallel finalize too
        # (artifacts live outside the byte-identity of the corpus files),
        # so the curation report below reads arrays, not shards.
        # Extensions defer the corpus-keyed prune until every engine has
        # delta-refreshed from its superseded artifact (same ordering
        # guarantee as the serial path).
        ensure_projection(
            corpus, IndexArtifactStore.for_corpus_dir(store_dir), prune=not extend
        )
        report.items_collected = len(corpus)
        report.stopped_early = len(corpus) >= self.builder.config.target_tables
        report.stage_reports["extraction"] = run.extraction_report()
        report.stage_reports["curation"] = CurationReport.from_corpus(corpus)
        return self.builder._result(corpus, report, topics)


class _CoordinatorRun:
    """One coordinator session: dispatch, merge-on-commit, finalize."""

    def __init__(
        self,
        parent: ParallelCorpusBuilder,
        directory: Path,
        shard_size: int,
        topics: tuple[str, ...],
        fingerprint: dict,
        state: _StoreState,
    ) -> None:
        self.parent = parent
        self.builder = parent.builder
        self.config = self.builder.config
        self.directory = directory
        self.shard_size = shard_size
        self.topics = list(topics)
        self.fingerprint = fingerprint
        self.state = state

        # --- source-URL stream enumeration --------------------------------
        #: Emitted stream units, index-aligned (stream[i].index == i).
        self.stream: list[_WorkUnit] = []
        self.seen_urls: set[str] = set()
        #: topic -> search payload, for topics searched out of order.
        self.searched: dict[str, list] = {}
        self.search_meta: dict[str, dict] = {}
        self.next_topic = 0  # next topic to hand out for searching
        self.next_emit = 0  # next topic (in order) awaiting emission
        self.duplicate_urls = 0

        # --- resolution state ----------------------------------------------
        #: stream index -> ("canonical"|worker id, shard index, line index)
        self.stored: dict[int, tuple] = {}
        self.resolved: set[int] = set()
        for worker, done in state.worker_done.items():
            self.resolved.update(done)
        #: source_url -> stored location awaiting a stream index. Tables
        #: a *serial* session committed carry no index (the serial
        #: writer does not know it); they are mapped as enumeration
        #: reaches their URL. Worker-committed tables carry their index
        #: in the log and are mapped immediately.
        self.pending_url_locations: dict[str, tuple] = {}
        for table_id, entry in state.canonical_tables.items():
            self.pending_url_locations[entry["source_url"]] = (
                "canonical",
                entry["shard"],
                entry["line"],
            )
        for worker, worker_state in state.worker_states.items():
            for table_id, entry in worker_state["tables"].items():
                location = (worker, entry["shard"], entry["line"])
                if "index" in entry:
                    self.stored[entry["index"]] = location
                else:  # pragma: no cover - defensive for foreign logs
                    self.pending_url_locations[entry["source_url"]] = location

        # --- sealed-prefix fast-forward ------------------------------------
        #: Source URL of the last table of the sealed canonical prefix —
        #: the extraction stream's high-water mark. When the canonical
        #: tables are exactly a sealed epoch's prefix (a fresh extension,
        #: or a crashed extension being resumed), every stream URL up to
        #: and including this one was already processed by the sealed
        #: build: committed (and mapped via ``pending_url_locations``) or
        #: rejected by parsing/filtering. Enumeration resolves those
        #: units directly instead of re-dispatching the rejected ones to
        #: workers — the parallel twin of the serial path's
        #: ``ResumeSkipStage(fast_forward_past=...)`` — so extension
        #: parse work stays O(tail). Mid-build canonical state (no seal,
        #: or serial commits past the seal) gets no marker: rejected
        #: URLs are then tracked by worker ``done`` records instead.
        self.fast_forward_past: str | None = None
        if state.epochs and len(state.canonical_tables) == state.epochs[-1]:
            last_entry = max(
                state.canonical_tables.values(),
                key=lambda entry: (entry["shard"], entry["line"]),
            )
            self.fast_forward_past = last_entry.get("source_url")
        self._fast_forwarding = self.fast_forward_past is not None

        # --- dispatch bookkeeping ------------------------------------------
        #: Indices handed to a worker this session and not yet resolved
        #: (resolution removes them, so ``len(dispatched)`` is the
        #: in-flight count).
        self.dispatched: set[int] = set()
        self._wave_cursor = 0
        self._frontier_index = 0
        self._frontier_curated = 0
        self.procs: list = []
        self.task_queues: list = []
        self.result_queue = None
        self.idle: list[int] = []
        self.outstanding: dict[int, tuple] = {}
        self.next_wave_id = 0
        self._log_offsets: dict[int, int] = dict(state.worker_log_offsets)
        self._harvests_since_merge = 0
        self.api_requests = 0
        self.wait_seconds = 0.0

    @property
    def urls_unmapped(self) -> int:
        """Stored tables whose stream index is not yet known."""
        return len(self.pending_url_locations)

    # -- worker lifecycle ---------------------------------------------------

    def spawn_workers(self) -> None:
        parent = self.parent
        self.result_queue = parent.mp.Queue()
        use_fork = parent.mp.get_start_method() == "fork"
        for worker in range(parent.processes):
            spec = _WorkerSpec(
                directory=str(self.directory),
                worker=worker,
                config=self.config,
                generator_config=self.builder.generator_config,
                instance=(
                    self.builder.instance
                    if use_fork or self.builder.generator_config is None
                    else None
                ),
                batch_size=self.builder.batch_size,
                shard_size=self.shard_size,
                real_time_factor=self.builder.real_time_factor,
                fingerprint=self.fingerprint,
                parent_pid=os.getpid(),
                fault=parent.fault if parent.fault and parent.fault.worker == worker else None,
            )
            task_queue = parent.mp.Queue()
            proc = parent.mp.Process(
                target=_worker_main,
                args=(spec, task_queue, self.result_queue),
                daemon=True,
                name=f"gittables-build-w{worker:02d}",
            )
            proc.start()
            self.task_queues.append(task_queue)
            self.procs.append(proc)
            self.idle.append(worker)

    def shutdown_workers(self) -> None:
        """Stop workers: sentinel first, then terminate stragglers.

        A worker only reads the sentinel between waves, so one that is
        still draining a surplus wave (dispatched just before the
        target was met) needs to finish it — its commits and checkpoint
        save must land before the coordinator reads worker counters.
        The budget is generous; SIGTERM is strictly a last resort for
        hung workers (it is crash-safe — committed state survives, at
        most the final batch's counters go unreported).
        """
        for task_queue in self.task_queues:
            try:
                task_queue.put_nowait(None)
            except Exception:  # pragma: no cover - full/closed queue
                pass
        deadline = time.monotonic() + 60.0
        for proc in self.procs:
            while proc.is_alive() and time.monotonic() < deadline:
                # Keep draining surplus acks so no worker can block on
                # a full result pipe while flushing its final messages.
                try:
                    while True:
                        self.result_queue.get_nowait()
                except queue_module.Empty:
                    pass
                proc.join(timeout=0.2)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
                proc.join(timeout=2.0)
        for task_queue in self.task_queues:
            task_queue.cancel_join_thread()
        if self.result_queue is not None:
            self.result_queue.cancel_join_thread()

    # -- stream enumeration -------------------------------------------------

    def _emit_ready_topics(self) -> None:
        """Fold completed topic searches into the stream, in topic order."""
        while self.next_emit < len(self.topics):
            topic = self.topics[self.next_emit]
            payload = self.searched.get(topic)
            if payload is None:
                return
            for item in payload:
                if item["url"] in self.seen_urls:
                    self.duplicate_urls += 1
                    continue
                self.seen_urls.add(item["url"])
                index = len(self.stream)
                self.stream.append(
                    _WorkUnit(
                        index=index,
                        url=item["url"],
                        repository=item["repository"],
                        path=item["path"],
                        topic=topic,
                        size_bytes=item["size_bytes"],
                    )
                )
                location = self.pending_url_locations.pop(item["url"], None)
                if location is not None:
                    self.stored[index] = location
                    self.resolved.add(index)
                    self.dispatched.discard(index)
                elif self._fast_forwarding:
                    # Inside the sealed prefix but not stored: a sealed
                    # epoch already processed and *rejected* this URL.
                    # Resolve it here so it is never dispatched again.
                    self.resolved.add(index)
                if self._fast_forwarding and item["url"] == self.fast_forward_past:
                    self._fast_forwarding = False
            self.next_emit += 1

    # -- progress accounting ------------------------------------------------

    def frontier(self) -> tuple[int, int]:
        """``(first unresolved index, curated tables before it)``.

        Advanced incrementally from the last call: an index, once
        resolved, never unresolves, and a resolved index's stored
        location is recorded in the same harvest step, so the walk
        never needs to restart from zero (keeps the dispatch loop
        linear in stream length overall).
        """
        index, curated = self._frontier_index, self._frontier_curated
        total = len(self.stream)
        while curated < self.config.target_tables and (
            index < total or index in self.resolved
        ):
            if index not in self.resolved:
                break
            if index in self.stored:
                curated += 1
            index += 1
        self._frontier_index, self._frontier_curated = index, curated
        return index, curated

    def target_met(self) -> bool:
        _, curated = self.frontier()
        return curated >= self.config.target_tables

    def exhausted(self) -> bool:
        """No more URLs anywhere: topics done, everything resolved."""
        return (
            self.next_emit >= len(self.topics)
            and not self.outstanding
            and self.frontier()[0] >= len(self.stream)
        )

    # -- merge-on-commit ----------------------------------------------------

    def harvest_worker_log(self, worker: int) -> None:
        """Fold a worker's new commit records into coordinator state.

        Reads forward from the byte offset of the last record already
        folded in (``_read_store_state`` primes the offsets at session
        start), so every commit record is applied exactly once, in the
        worker's commit-seq order.
        """
        path = self.directory / worker_log_filename(worker)
        worker_state = self.state.worker_states.setdefault(
            worker, {"shards": [], "tables": {}, "stats": _empty_stats()}
        )
        offset = self._log_offsets.get(worker, 0)
        for record, raw_length in _iter_log_records(path, offset=offset):
            _apply_delta(worker_state, record)
            # Stored locations must land before the indices count as
            # resolved, or a frontier walk in between would misread a
            # stored index as dropped.
            for table_id, entry in record.get("tables", {}).items():
                if "index" in entry:
                    self.stored[entry["index"]] = (worker, entry["shard"], entry["line"])
            for index in record.get("done", ()):
                self.resolved.add(index)
                self.dispatched.discard(index)
            offset += raw_length
        self._log_offsets[worker] = offset

    #: Completed-wave harvests folded in between merged-manifest
    #: publications. The merged view is a reader convenience (worker
    #: logs stay authoritative for resume), so publishing it — an
    #: O(total tables) rewrite — is throttled the same way the serial
    #: writer throttles full-manifest compaction behind its delta log.
    MERGE_EVERY = 8

    def merge_manifest(self, force: bool = False) -> None:
        """Publish the mid-build merged view as the canonical manifest."""
        if not force and self._harvests_since_merge < self.MERGE_EVERY:
            return
        self._harvests_since_merge = 0
        manifest = merge_worker_manifests(
            self.state,
            name=self.builder_name(),
            shard_size=self.shard_size,
            processes=self.parent.processes,
        )
        _write_manifest(self.directory, manifest)

    def builder_name(self) -> str:
        return "gittables"

    # -- dispatch loop ------------------------------------------------------

    def execute(self) -> None:
        if self.target_met() and self.urls_unmapped == 0:
            return  # resumed after the last wave; nothing to dispatch
        self.spawn_workers()
        while True:
            self._emit_ready_topics()
            if self.urls_unmapped == 0 and (self.target_met() or self.exhausted()):
                # Leave a current merged view behind for readers (and
                # for the finalize fault-injection window).
                self.merge_manifest(force=True)
                return
            if self.urls_unmapped > 0 and self.next_emit >= len(self.topics):
                raise CorpusError(
                    f"corpus at {self.directory} holds tables whose source URLs "
                    "do not appear in this configuration's extraction stream; "
                    "the directory does not match the configuration"
                )
            self._dispatch()
            self._collect()

    def _dispatch(self) -> None:
        """Hand search and process tasks to idle workers."""
        while self.idle:
            # Processing beats searching when enough URLs are buffered:
            # waves resolve the frontier the target check needs.
            wave = self._next_wave()
            if wave:
                worker = self.idle.pop(0)
                wave_id = self.next_wave_id
                self.next_wave_id += 1
                self.outstanding[worker] = ("process", wave_id)
                self.dispatched.update(unit.index for unit in wave)
                self.task_queues[worker].put(("process", wave_id, wave))
                continue
            if self.next_topic < len(self.topics):
                worker = self.idle.pop(0)
                topic = self.topics[self.next_topic]
                self.next_topic += 1
                self.outstanding[worker] = ("search", topic)
                self.task_queues[worker].put(("search", topic))
                continue
            return

    def _next_wave(self) -> list:
        """The next slice of unresolved, undispatched stream URLs."""
        remaining = self._remaining_estimate()
        limit = min(remaining - len(self.dispatched), ParallelCorpusBuilder.WAVE_UNITS)
        if limit <= 0:
            return []
        while self._wave_cursor < len(self.stream) and (
            self.stream[self._wave_cursor].index in self.resolved
            or self.stream[self._wave_cursor].index in self.dispatched
        ):
            self._wave_cursor += 1
        wave: list = []
        for position in range(self._wave_cursor, len(self.stream)):
            if len(wave) >= limit:
                break
            unit = self.stream[position]
            if unit.index in self.resolved or unit.index in self.dispatched:
                continue
            wave.append(unit)
        return wave

    def _remaining_estimate(self) -> int:
        """How many URLs past the frontier are worth processing.

        The curated-per-URL rate observed so far (conservative default
        before enough evidence) sizes how far past the frontier the
        build reaches for the missing tables; the 1.2 slack keeps a
        second round of dispatching rare while bounding overshoot.
        """
        _, curated = self.frontier()
        missing = self.config.target_tables - curated
        if missing <= 0:
            return 0
        resolved_count = len(self.resolved)
        stored_count = len(self.stored) + len(self.pending_url_locations)
        rate = (stored_count / resolved_count) if resolved_count >= 64 else 0.25
        rate = max(rate, 0.05)
        return max(self.builder.batch_size, int(missing / rate * 1.2))

    def _collect(self) -> None:
        """Wait for at least one worker message; merge as commits land."""
        while True:
            try:
                message = self.result_queue.get(timeout=0.25)
                break
            except queue_module.Empty:
                self._check_liveness()
                if not self.outstanding:
                    return  # nothing in flight; go dispatch more
        kind = message[0]
        if kind == "error":
            _, worker, trace = message
            self.outstanding.pop(worker, None)
            raise CorpusError(f"build worker {worker} failed:\n{trace}")
        if kind == "searched":
            _, worker, topic, payload, meta = message
            self.searched[topic] = payload
            self.search_meta[topic] = meta
            self.api_requests += meta["api_requests"]
            self.wait_seconds += meta["wait_seconds"]
            self.outstanding.pop(worker, None)
            self.idle.append(worker)
            return
        if kind == "done":
            _, worker, _wave_id, _unit_count = message
            self.outstanding.pop(worker, None)
            self.idle.append(worker)
            # Fold this worker's commit records (in log order — i.e.
            # commit-seq order) into coordinator state; the merged
            # manifest is published every MERGE_EVERY harvests.
            self.harvest_worker_log(worker)
            self._harvests_since_merge += 1
            self.merge_manifest()
            return

    def _check_liveness(self) -> None:
        for worker, task in list(self.outstanding.items()):
            if not self.procs[worker].is_alive():
                raise CorpusError(
                    f"build worker {worker} died while running {task[0]!r}; "
                    "resume the build to heal and continue"
                )

    # -- finalize -----------------------------------------------------------

    def final_sequence(self) -> Iterator[tuple]:
        """Stored table locations of the final corpus, in stream order."""
        curated = 0
        index = 0
        total = len(self.stream)
        while curated < self.config.target_tables and (
            index < total or index in self.resolved
        ):
            if index not in self.resolved:
                raise CorpusError(
                    f"stream index {index} is unresolved; the build did not "
                    "cover a full prefix of the source stream"
                )
            location = self.stored.get(index)
            if location is not None:
                curated += 1
                yield location
            index += 1

    def _adopted_canonical_prefix(self, sequence: list) -> tuple[int, int]:
        """``(full shards, tables)`` of the canonical prefix adopted as-is.

        When the final sequence begins with *every* canonical (serial- or
        prior-epoch) table in its existing on-disk order — the resume and
        epoch-extension cases — the full canonical shards already hold
        exactly the bytes finalize would rewrite into them. Adopting them
        untouched makes finalize O(new tables + one partial shard)
        instead of O(corpus): only the trailing partial shard (so new
        tables can pack into it) and everything after is re-emitted.
        Returns ``(0, 0)`` whenever the alignment does not hold, which
        falls back to the full rewrite.
        """
        canonical = sorted(
            self.state.canonical_tables.values(),
            key=lambda entry: (entry["shard"], entry["line"]),
        )
        if not canonical or len(sequence) < len(canonical):
            return 0, 0
        aligned = all(
            location == ("canonical", entry["shard"], entry["line"])
            for location, entry in zip(sequence, canonical)
        )
        if not aligned:
            return 0, 0
        adopt_shards = 0
        adopt_tables = 0
        for entry in self.state.canonical_shards:
            if entry["count"] != self.shard_size:
                break
            adopt_shards += 1
            adopt_tables += entry["count"]
        return adopt_shards, adopt_tables

    def finalize(self) -> dict:
        """Rewrite worker shards into the canonical serial-order layout.

        Canonical shard files are staged as ``.tmp`` siblings (so the
        worker shards — the data source — are never touched), renamed
        into place once all are written and fsynced, and then the
        canonical manifest is published atomically: *that* rename is the
        commit point. A crash anywhere before it leaves the worker logs
        authoritative; a crash after it leaves only idempotent cleanup.
        Every byte written here is a deterministic function of the
        final table sequence, so re-running finalize after a crash
        (possibly with a different process count) produces the same
        files. A final sequence that extends the existing canonical
        layout — the epoch-extension case — adopts the full canonical
        shards without rewriting them (see
        :meth:`_adopted_canonical_prefix`).
        """
        sources: dict = {"canonical": self.state.canonical_shards}
        for worker, worker_state in self.state.worker_states.items():
            sources[worker] = worker_state["shards"]
        sequence = list(self.final_sequence())
        adopt_shards, adopt_tables = self._adopted_canonical_prefix(sequence)
        cache = _ShardLineCache(self.directory)
        shards: list = []
        tables: dict = {}
        stats = _empty_stats()
        #: Sequence positions whose stats are already in ``stats``.
        counted = 0
        if adopt_shards:
            shards = [dict(entry) for entry in self.state.canonical_shards[:adopt_shards]]
            # The canonical stats cover *all* canonical tables —
            # including the re-emitted partial-shard ones — so seed them
            # wholesale and skip re-accumulating those positions below.
            counted = len(self.state.canonical_tables)
            _fold_stats(stats, self.state.canonical_stats)
            # Insert in (shard, line) order — the sequence order — so the
            # manifest's table map is byte-identical to a full rewrite's.
            for table_id, entry in sorted(
                self.state.canonical_tables.items(),
                key=lambda item: (item[1]["shard"], item[1]["line"]),
            ):
                if entry["shard"] < adopt_shards:
                    tables[table_id] = {
                        "shard": entry["shard"],
                        "line": entry["line"],
                        "source_url": entry["source_url"],
                    }
        current_lines: list[bytes] = []
        staged: list[tuple[Path, Path]] = []

        def flush_shard() -> None:
            if not current_lines:
                return
            filename = _shard_filename(len(shards), self.state.generation)
            payload = b"".join(current_lines)
            tmp_path = self.directory / (filename + ".tmp")
            with open(tmp_path, "wb") as handle:
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            staged.append((tmp_path, self.directory / filename))
            shards.append(
                {"file": filename, "count": len(current_lines), "bytes": len(payload)}
            )
            current_lines.clear()

        for position in range(adopt_tables, len(sequence)):
            source, shard_index, line_index = sequence[position]
            line = cache.line(sources[source][shard_index], line_index)
            payload = json.loads(line.decode("utf-8"))
            table_id = payload["table_id"]
            tables[table_id] = {
                "shard": len(shards),
                "line": len(current_lines),
                "source_url": payload["source_url"],
            }
            if position >= counted:
                _accumulate_stats(
                    stats,
                    len(payload["rows"]),
                    len(payload["header"]),
                    payload["topic"],
                    payload["repository"],
                )
            current_lines.append(line)
            if len(current_lines) >= self.shard_size:
                flush_shard()
        flush_shard()

        for tmp_path, final_path in staged:
            os.replace(tmp_path, final_path)
        fsync_dir(self.directory)
        # The genuinely delicate compaction window: canonical shards
        # are in place (over the top of any adopted serial-era prefix —
        # identical bytes there, since the final sequence extends it),
        # but the manifest still describes the merged worker view.
        self.parent._fault_point("before-manifest-publish")
        # Stale canonical shards beyond the final count (earlier crashed
        # finalize, or a serial-era layout) must go before the manifest
        # stops referencing them.
        keep = {entry["file"] for entry in shards}
        for path in self.directory.glob("shard_*.jsonl"):
            if path.name not in keep:
                path.unlink()
        epochs = list(self.state.epochs)
        if len(epochs) < self.state.epoch:
            epochs.append(len(tables))
        elif epochs[-1] != len(tables):
            epochs[-1] = len(tables)
        manifest = build_manifest(
            self.builder_name(),
            self.shard_size,
            shards,
            tables,
            stats,
            epoch=self.state.epoch,
            epochs=epochs,
            generation=self.state.generation,
            compacted_from=self.state.compacted_from,
        )
        _write_manifest(self.directory, manifest)
        log_path = self.directory / MANIFEST_LOG_FILENAME
        if log_path.exists():  # serial-era delta log, now folded in
            log_path.unlink()
        return manifest

    # -- reporting ----------------------------------------------------------

    def extraction_report(self):
        """A legacy-style extraction report for the coordinator session.

        Parallel extraction is distributed, so this aggregates what the
        coordinator observed: searched topics, per-worker API requests
        and simulated waits, stream size and dedup counts. Downloads
        performed by workers are visible in the merged pipeline counters
        under the ``extraction`` stage.
        """
        from ..core.extraction import ExtractionReport

        report = ExtractionReport()
        for topic in self.topics[: self.next_emit]:
            report.topics.append(topic)
            meta = self.search_meta.get(topic)
            if meta is not None:
                report.initial_counts[topic] = meta["initial_count"]
                report.segmented_queries[topic] = meta["segmented_queries"]
        report.total_urls = len(self.stream) + self.duplicate_urls
        report.duplicate_urls = self.duplicate_urls
        report.files_downloaded = len(self.resolved)
        report.api_requests = self.api_requests
        report.simulated_wait_seconds = self.wait_seconds
        return report
