"""Shared durability helpers for the storage package."""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Iterator

__all__ = ["atomic_replace", "atomic_write_json", "directory_file_bytes", "fsync_dir"]


def directory_file_bytes(directory: str | os.PathLike[str]) -> dict[str, bytes]:
    """Name → content of every regular file directly in ``directory``.

    The canonical comparator behind the storage layer's byte-identity
    guarantees (serial vs parallel builds, one-shot vs resumed builds).
    Top-level files only — a corpus directory's own bytes are exactly
    its manifest + shards + build metadata; subtrees such as
    ``artifacts/`` are derived caches, deliberately outside the
    identity (compare them separately if a test needs to).
    """
    return {
        path.name: path.read_bytes()
        for path in sorted(Path(directory).iterdir())
        if path.is_file()
    }


def fsync_dir(directory: str | os.PathLike[str]) -> None:
    """Durably persist a directory's entries (file creations/renames).

    fsyncing a file does not durably record its *name* — that requires
    fsyncing the containing directory. Best-effort: some platforms and
    filesystems reject opening directories for fsync; those simply keep
    their native (weaker) crash guarantees.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


@contextmanager
def atomic_replace(
    path: str | os.PathLike[str], mode: str = "wb", encoding: str | None = None
) -> Iterator[IO]:
    """Yield a handle whose contents atomically replace ``path`` on exit.

    The bytes are written to a temp sibling, flushed and fsynced, then
    renamed over ``path`` — a reader (or a crash at any point) never
    observes a half-written file. The rename itself is made durable by
    fsyncing the directory. If the body raises, the temp file is removed
    and ``path`` is left untouched.
    """
    path = Path(path)
    tmp_path = path.with_name(path.name + ".tmp")
    handle = open(tmp_path, mode, encoding=encoding)
    try:
        with handle:
            yield handle
            handle.flush()
            os.fsync(handle.fileno())
    except BaseException:
        tmp_path.unlink(missing_ok=True)
        raise
    os.replace(tmp_path, path)
    fsync_dir(path.parent)


def atomic_write_json(path: str | os.PathLike[str], payload: dict, indent: int = 1) -> None:
    """Atomically replace ``path`` with ``payload`` as JSON.

    Built on :func:`atomic_replace`, so a reader never observes a
    half-written file and the rename is made durable.
    """
    with atomic_replace(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(payload, ensure_ascii=False, indent=indent) + "\n")
