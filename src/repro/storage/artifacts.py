"""Persistent mmap-backed index artifacts: embed once, serve forever.

Every application index over a GitTables corpus (the search engine's
schema-embedding matrix, schema completion's per-attribute matrix, the
semantic annotators' ontology label vectors, type-detection feature
matrices, the curated KG benchmark) is a pure function of two inputs:
the corpus bytes and the configuration of the model that produced it.
Rebuilding them on every ``GitTables.load()`` makes cold start
O(corpus x embed) even though the corpus itself is lazily disk-backed.

:class:`IndexArtifactStore` persists those derived artefacts next to the
corpus manifest, under ``<store_dir>/artifacts/``::

    artifacts/
      search-schemas/
        meta.json            # fingerprint, payload, array specs
        unit_vectors.npy     # raw array, opened read-only via np.memmap
      completion-attributes/
        meta.json
        attributes.npy
      ...

Each artifact is guarded by a **fingerprint** — an arbitrary JSON
document assembled by the publisher, conventionally the encoder
configuration plus the corpus manifest content hash (see
:func:`corpus_content_fingerprint`). :meth:`IndexArtifactStore.load`
returns the artifact only when the stored fingerprint matches the
requested one byte-for-byte *and* every array file opens and matches its
recorded dtype/shape; any mismatch — different encoder config, mutated
corpus, truncated or corrupt file — reads as a miss, so stale vectors
are never served silently. Publishing is atomic (staging directory +
rename), so a crash mid-publish leaves either the old artifact or none.

Arrays are stored as plain ``.npy`` files and opened with
``np.load(mmap_mode="r")``, so loading an index costs one mmap instead
of re-embedding the corpus, and the page cache is shared across
processes serving the same store.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import shutil
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ._io import atomic_write_json, fsync_dir

__all__ = [
    "ARTIFACTS_DIRNAME",
    "ARTIFACT_FORMAT",
    "IndexArtifactStore",
    "LoadedArtifact",
    "corpus_content_fingerprint",
    "fingerprint_digest",
    "try_publish",
]

#: Subdirectory of a corpus store directory that holds the artifacts.
ARTIFACTS_DIRNAME = "artifacts"
ARTIFACT_FORMAT = "gittables-index-artifact"
META_FILENAME = "meta.json"

_NAME_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


def _is_dead_pid_suffix(name: str) -> bool:
    """Whether a ``...-<pid>`` suffixed sibling belongs to a dead process."""
    pid_text = name.rpartition("-")[2]
    if not pid_text.isdigit() or int(pid_text) == os.getpid():
        return False
    try:
        os.kill(int(pid_text), 0)
    except ProcessLookupError:
        return True
    except OSError:  # pragma: no cover - e.g. EPERM: pid is alive
        return False
    return False


def _normalize(value):
    """JSON round-trip so tuples/lists and int/float keys compare equal."""
    return json.loads(json.dumps(value))


def fingerprint_digest(value) -> str:
    """Stable hex digest of an arbitrary JSON-serialisable value."""
    payload = json.dumps(_normalize(value), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def corpus_content_fingerprint(corpus) -> str | None:
    """Content hash of a corpus' stored bytes, or ``None`` if unavailable.

    Accepts a :class:`~repro.core.corpus.GitTablesCorpus` or a bare
    store. Only disk-backed stores expose a ``content_fingerprint`` —
    in-memory corpora return ``None``, which artifact-aware consumers
    treat as "do not persist": there is no durable identity to key on.
    """
    store = getattr(corpus, "store", corpus)
    fingerprint = getattr(store, "content_fingerprint", None)
    if fingerprint is None:
        return None
    return fingerprint()


@dataclass(frozen=True)
class LoadedArtifact:
    """One artifact resolved from disk: mmap'd arrays plus JSON payload."""

    name: str
    fingerprint: dict
    #: array key -> read-only ndarray (``np.memmap`` for non-empty arrays).
    arrays: dict
    payload: dict


class IndexArtifactStore:
    """Fingerprint-guarded store of named float arrays and JSON payloads.

    ``directory`` is the artifacts root itself (conventionally
    ``<store_dir>/artifacts``; use :meth:`for_corpus_dir` to derive it).
    The directory is created lazily on first publish, so attaching a
    store to a read-only corpus directory costs nothing until something
    is published.
    """

    def __init__(self, directory: str | os.PathLike[str]) -> None:
        self.directory = Path(directory)

    @classmethod
    def for_corpus_dir(cls, corpus_dir: str | os.PathLike[str]) -> "IndexArtifactStore":
        """The artifact store living inside a corpus store directory."""
        return cls(Path(corpus_dir) / ARTIFACTS_DIRNAME)

    @staticmethod
    def _check_name(name: str) -> str:
        if not _NAME_PATTERN.match(name):
            raise ValueError(f"invalid artifact name {name!r}")
        return name

    def path(self, name: str) -> Path:
        """Where the named artifact lives (whether or not it exists)."""
        return self.directory / self._check_name(name)

    def names(self) -> list[str]:
        """Sorted names of every currently published artifact."""
        if not self.directory.is_dir():
            return []
        return sorted(
            entry.name
            for entry in self.directory.iterdir()
            if entry.is_dir() and _NAME_PATTERN.match(entry.name)
        )

    # -- read side ---------------------------------------------------------

    def load(self, name: str, fingerprint: dict) -> LoadedArtifact | None:
        """The named artifact, or ``None`` on any miss.

        A miss is indistinguishable by design: absent artifact, stale
        fingerprint (different encoder config or mutated corpus),
        unreadable metadata, missing/truncated/mis-shaped array files —
        all return ``None`` so the caller rebuilds and republishes.
        Arrays come back read-only (``np.memmap`` with mode ``"r"``).
        """
        artifact_dir = self.path(name)
        meta_path = artifact_dir / META_FILENAME
        try:
            with open(meta_path, "r", encoding="utf-8") as handle:
                meta = json.load(handle)
        except (OSError, ValueError):
            return None
        if meta.get("format") != ARTIFACT_FORMAT:
            return None
        if meta.get("fingerprint") != _normalize(fingerprint):
            return None
        arrays: dict = {}
        for key, spec in meta.get("arrays", {}).items():
            array = self._open_array(artifact_dir / spec["file"], spec)
            if array is None:
                return None
            arrays[key] = array
        return LoadedArtifact(
            name=name,
            fingerprint=meta["fingerprint"],
            arrays=arrays,
            payload=meta.get("payload", {}),
        )

    def load_any(self, name: str) -> LoadedArtifact | None:
        """The named artifact *whatever its fingerprint*, or ``None``.

        The delta-refresh read path: an extended corpus has a new
        content fingerprint, so :meth:`load` misses by design — but the
        superseded artifact's arrays are still the exact committed
        prefix of the new ones. Callers get the artifact together with
        its stored fingerprint and must validate compatibility (encoder
        config, prefix identity) themselves; format and array-spec
        integrity are still enforced here, so a truncated or corrupt
        artifact reads as a miss exactly like :meth:`load`.
        """
        artifact_dir = self.path(name)
        meta_path = artifact_dir / META_FILENAME
        try:
            with open(meta_path, "r", encoding="utf-8") as handle:
                meta = json.load(handle)
        except (OSError, ValueError):
            return None
        if meta.get("format") != ARTIFACT_FORMAT:
            return None
        arrays: dict = {}
        for key, spec in meta.get("arrays", {}).items():
            array = self._open_array(artifact_dir / spec["file"], spec)
            if array is None:
                return None
            arrays[key] = array
        return LoadedArtifact(
            name=name,
            fingerprint=meta.get("fingerprint"),
            arrays=arrays,
            payload=meta.get("payload", {}),
        )

    @staticmethod
    def _open_array(path: Path, spec: dict):
        """mmap one array file, validating it against its recorded spec."""
        expected_shape = tuple(spec.get("shape", ()))
        try:
            # Zero-size arrays cannot be mmap'd (zero-length mappings are
            # rejected); they are tiny, so an eager read is equivalent.
            mmap_mode = None if 0 in expected_shape else "r"
            array = np.load(path, mmap_mode=mmap_mode, allow_pickle=False)
        except (OSError, ValueError):
            return None
        if array.shape != expected_shape or str(array.dtype) != spec.get("dtype"):
            return None
        if mmap_mode is None:
            array.setflags(write=False)
        return array

    # -- write side --------------------------------------------------------

    def publish(
        self,
        name: str,
        fingerprint: dict,
        arrays: dict | None = None,
        payload: dict | None = None,
        prune: bool = True,
    ) -> Path:
        """Atomically (re)publish an artifact; returns its directory.

        The artifact is staged in a sibling directory and renamed into
        place, replacing any previous version wholesale — a reader never
        observes a half-written artifact, and a crash mid-publish leaves
        the previous version (or nothing) behind.

        ``prune=False`` skips the corpus-keyed garbage collection below.
        The delta-refresh flow needs this ordering guarantee: artifacts
        superseded by a corpus extension must stay on disk until *every*
        consumer has republished from them, then one explicit
        :meth:`prune` sweeps the prior epoch. Without it, the first
        publish of the new epoch would delete the very artifacts the
        remaining engines still need to extend incrementally.
        """
        target = self.path(name)
        self.directory.mkdir(parents=True, exist_ok=True)
        staging = self.directory / f".{name}.tmp-{os.getpid()}"
        if staging.exists():
            shutil.rmtree(staging)
        staging.mkdir()
        try:
            specs: dict[str, dict] = {}
            for key, array in (arrays or {}).items():
                self._check_name(key)
                array = np.asarray(array)
                filename = f"{key}.npy"
                with open(staging / filename, "wb") as handle:
                    np.save(handle, array)
                    handle.flush()
                    os.fsync(handle.fileno())
                specs[key] = {
                    "file": filename,
                    "dtype": str(array.dtype),
                    "shape": list(array.shape),
                }
            atomic_write_json(
                staging / META_FILENAME,
                {
                    "format": ARTIFACT_FORMAT,
                    "version": 1,
                    "fingerprint": _normalize(fingerprint),
                    "arrays": specs,
                    "payload": _normalize(payload or {}),
                },
            )
            self._swap_in(staging, target)
            fsync_dir(self.directory)
        finally:
            if staging.exists():
                shutil.rmtree(staging)
        # Garbage-collect siblings pinned to older corpus states: every
        # publish keyed on a corpus fingerprint asserts "this is the
        # current corpus", so artifacts keyed on any *other* corpus
        # state are unreachable (their load() can only miss) and would
        # otherwise accumulate forever across rebuilds.
        if prune:
            corpus_key = fingerprint.get("corpus") if isinstance(fingerprint, dict) else None
            if isinstance(corpus_key, str):
                self.prune(corpus_key)
        return target

    def prune(self, keep_fingerprint: str) -> list[str]:
        """Delete artifacts keyed to a corpus state other than ``keep_fingerprint``.

        Only artifacts whose fingerprint carries a top-level ``"corpus"``
        key participate: those are pinned to one corpus state and can
        never be loaded again once the corpus changed. Corpus-independent
        artifacts (e.g. ontology label indexes, keyed on model config
        only) are left alone, as are artifacts with unreadable metadata
        (possibly mid-publish by a concurrent process). Stale staging
        and retired directories of *dead* processes are swept as well.
        Returns the names of the removed artifacts.
        """
        removed: list[str] = []
        for name in self.names():
            try:
                with open(self.directory / name / META_FILENAME, "r", encoding="utf-8") as handle:
                    meta = json.load(handle)
            except (OSError, ValueError):
                continue
            fingerprint = meta.get("fingerprint")
            corpus_key = fingerprint.get("corpus") if isinstance(fingerprint, dict) else None
            if not isinstance(corpus_key, str) or corpus_key == keep_fingerprint:
                continue
            shutil.rmtree(self.directory / name, ignore_errors=True)
            removed.append(name)
        for leftover in self.directory.glob(".*.tmp-*"):
            if leftover.is_dir() and _is_dead_pid_suffix(leftover.name):
                shutil.rmtree(leftover, ignore_errors=True)
        for leftover in self.directory.glob(".*.old-*"):
            if leftover.is_dir() and _is_dead_pid_suffix(leftover.name):
                shutil.rmtree(leftover, ignore_errors=True)
        return removed

    def _swap_in(self, staging: Path, target: Path) -> None:
        """Replace ``target`` with ``staging`` with a minimal gap.

        An existing version is renamed aside (not rmtree'd in place), so
        the no-artifact window is two renames, not a recursive delete.
        Concurrent publishers racing for the same name are tolerated:
        losing the final rename leaves the winner's (equally fresh)
        artifact in place.
        """
        retired = self.directory / f".{target.name}.old-{os.getpid()}"
        if retired.exists():
            shutil.rmtree(retired)
        if target.exists():
            try:
                os.rename(target, retired)
            except OSError:
                # A concurrent publisher swapped it out under us.
                pass
        try:
            os.rename(staging, target)
        except OSError:
            if not target.exists():
                raise
            # Lost the race: a concurrent publish landed first.
        if retired.exists():
            shutil.rmtree(retired, ignore_errors=True)

    def invalidate(self, name: str | None = None) -> None:
        """Delete one artifact (or, with no name, every artifact)."""
        if name is not None:
            target = self.path(name)
            if target.exists():
                shutil.rmtree(target)
            return
        for existing in self.names():
            shutil.rmtree(self.directory / existing)


def try_publish(publish, *args, **kwargs) -> bool:
    """Run a publish callable, treating filesystem failure as a cache miss.

    Artifact publication is an *optimisation*, never a correctness
    requirement: consumers that just built an index call this so a
    read-only corpus directory (or a lost concurrent-publish race)
    degrades to serving the freshly built in-RAM index instead of
    crashing the query. Returns whether the publish succeeded.
    """
    try:
        publish(*args, **kwargs)
        return True
    except OSError:
        return False
