"""The dict-backed in-memory corpus store (the historical behaviour)."""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from ..errors import CorpusError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.corpus import AnnotatedTable

__all__ = ["InMemoryStore"]


class InMemoryStore:
    """Insertion-ordered dict of table id -> annotated table.

    The default backend of :class:`~repro.core.corpus.GitTablesCorpus`,
    and the backend every ``topic_subset``/``filter`` result materializes
    into (subsets are expected to be small relative to their source).
    """

    def __init__(self, name: str = "gittables") -> None:
        self.name = name
        self._tables: dict[str, "AnnotatedTable"] = {}

    def __len__(self) -> int:
        return len(self._tables)

    def __iter__(self) -> Iterator["AnnotatedTable"]:
        return iter(self._tables.values())

    def __contains__(self, table_id: str) -> bool:
        return table_id in self._tables

    def get(self, table_id: str) -> "AnnotatedTable | None":
        return self._tables.get(table_id)

    def add(self, annotated: "AnnotatedTable") -> None:
        table_id = annotated.table_id
        if table_id in self._tables:
            raise CorpusError(f"duplicate table id {table_id!r}")
        self._tables[table_id] = annotated

    def table_ids(self) -> Iterator[str]:
        return iter(self._tables)

    def stats_hint(self) -> dict | None:
        """No cached statistics: scanning memory is already cheap."""
        return None
