"""Ontology registry: name-based loading of the supported ontologies."""

from __future__ import annotations

from ..errors import OntologyError
from .dbpedia import load_dbpedia
from .schema_org import load_schema_org
from .types import Ontology

__all__ = ["load_ontology", "load_ontologies", "SUPPORTED_ONTOLOGIES"]

SUPPORTED_ONTOLOGIES: tuple[str, ...] = ("dbpedia", "schema_org")


def load_ontology(name: str) -> Ontology:
    """Load a single ontology by name (``dbpedia`` or ``schema_org``)."""
    if name == "dbpedia":
        return load_dbpedia()
    if name == "schema_org":
        return load_schema_org()
    raise OntologyError(f"unknown ontology {name!r}; supported: {SUPPORTED_ONTOLOGIES}")


def load_ontologies(names: tuple[str, ...] | list[str] | None = None) -> dict[str, Ontology]:
    """Load several ontologies keyed by name (all supported ones by default)."""
    selected = tuple(names) if names else SUPPORTED_ONTOLOGIES
    return {name: load_ontology(name) for name in selected}
