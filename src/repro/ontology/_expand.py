"""Compound-type expansion shared by both ontology catalogues.

The paper extracts 2831 DBpedia properties and 2637 Schema.org
types/properties. A curated catalogue of that size cannot be embedded by
hand; instead we embed a few hundred curated base types per ontology and
expand them into domain-prefixed compounds (e.g. ``product`` × ``id`` →
``product id`` with superproperty ``id``), which mirrors how the real
ontologies are populated (``orderNumber``, ``birthDate``,
``vehicleIdentificationNumber`` are all <domain-noun> + <base property>
compounds). The expansion is deterministic, so the ontology contents are
stable across runs.
"""

from __future__ import annotations

from .types import AtomicKind, SemanticType

__all__ = ["expand_compounds", "COMPOUND_PREFIXES"]

#: Prefix nouns used to build compound properties. These are common
#: entity nouns appearing as property prefixes in DBpedia/Schema.org.
COMPOUND_PREFIXES: tuple[str, ...] = (
    "product",
    "order",
    "customer",
    "employee",
    "person",
    "company",
    "organization",
    "vehicle",
    "event",
    "place",
    "country",
    "city",
    "region",
    "team",
    "player",
    "game",
    "match",
    "book",
    "film",
    "album",
    "song",
    "artist",
    "author",
    "student",
    "school",
    "university",
    "course",
    "hospital",
    "patient",
    "doctor",
    "drug",
    "disease",
    "species",
    "gene",
    "protein",
    "sample",
    "station",
    "sensor",
    "device",
    "machine",
    "building",
    "bridge",
    "airport",
    "flight",
    "route",
    "river",
    "lake",
    "mountain",
    "island",
    "account",
    "transaction",
    "payment",
    "invoice",
    "contract",
    "project",
    "task",
    "ticket",
    "issue",
    "release",
    "version",
    "package",
    "module",
    "file",
    "image",
    "video",
    "document",
    "article",
    "page",
    "user",
    "member",
    "owner",
    "parent",
    "child",
    "club",
    "league",
    "season",
    "tournament",
    "election",
    "party",
    "candidate",
    "award",
    "prize",
    "journal",
    "conference",
    "paper",
    "dataset",
    "model",
    "experiment",
    "trial",
    "study",
    "survey",
    "census",
    "population",
    "household",
    "budget",
    "tax",
    "loan",
    "policy",
    "claim",
    "shipment",
    "delivery",
    "warehouse",
    "store",
    "branch",
    "department",
    "unit",
    "facility",
    "plant",
    "farm",
    "crop",
    "animal",
    "bird",
    "fish",
)

#: Base properties that participate in compound expansion, with the
#: atomic kind the compound inherits.
_COMPOUNDABLE_BASES: tuple[tuple[str, AtomicKind], ...] = (
    ("id", AtomicKind.TEXT),
    ("name", AtomicKind.TEXT),
    ("code", AtomicKind.TEXT),
    ("type", AtomicKind.TEXT),
    ("number", AtomicKind.NUMBER),
    ("date", AtomicKind.DATE),
    ("status", AtomicKind.TEXT),
    ("count", AtomicKind.NUMBER),
    ("description", AtomicKind.TEXT),
    ("category", AtomicKind.TEXT),
    ("value", AtomicKind.NUMBER),
    ("price", AtomicKind.NUMBER),
    ("cost", AtomicKind.NUMBER),
    ("size", AtomicKind.NUMBER),
    ("weight", AtomicKind.NUMBER),
    ("length", AtomicKind.NUMBER),
    ("location", AtomicKind.TEXT),
    ("url", AtomicKind.URL),
    ("title", AtomicKind.TEXT),
    ("label", AtomicKind.TEXT),
    ("group", AtomicKind.TEXT),
    ("level", AtomicKind.TEXT),
    ("rank", AtomicKind.NUMBER),
    ("score", AtomicKind.NUMBER),
    ("rating", AtomicKind.NUMBER),
    ("year", AtomicKind.NUMBER),
)


def expand_compounds(
    ontology_name: str,
    existing_labels: set[str],
    target_total: int,
    prefixes: tuple[str, ...] = COMPOUND_PREFIXES,
) -> list[SemanticType]:
    """Generate compound semantic types until ``target_total`` is reached.

    Compounds are generated in a fixed order (prefix-major, base-minor) so
    the resulting ontology is identical on every run. Compounds whose
    label already exists in the curated catalogue are skipped.
    """
    generated: list[SemanticType] = []
    needed = target_total - len(existing_labels)
    if needed <= 0:
        return generated
    for prefix in prefixes:
        for base, atomic in _COMPOUNDABLE_BASES:
            if len(generated) >= needed:
                return generated
            label = f"{prefix} {base}"
            if label in existing_labels:
                continue
            existing_labels.add(label)
            generated.append(
                SemanticType(
                    label=label,
                    ontology=ontology_name,
                    atomic=atomic,
                    domains=(prefix.capitalize(),),
                    parent=base,
                    description=(
                        f"The {base} of a {prefix}; a compound property generated "
                        f"from the base property '{base}'."
                    ),
                )
            )
    return generated
