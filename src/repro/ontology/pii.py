"""PII semantic type registry (paper Table 3).

The content-curation stage replaces column values annotated with any of
these Schema.org types with fake values. The ``name`` type is special: a
column annotated ``name`` is only anonymised when it co-occurs with
another PII type in the same table, since 'name' frequently refers to
non-person entities (paper §3.3).
"""

from __future__ import annotations

__all__ = [
    "PII_TYPES",
    "PII_FAKER_CLASSES",
    "CONDITIONAL_PII_TYPES",
    "is_pii_type",
    "faker_class_for",
]

#: Semantic types considered PII, in the order reported by Table 3.
PII_TYPES: tuple[str, ...] = (
    "name",
    "address",
    "person",
    "email",
    "birth date",
    "home location",
    "birth place",
    "postal code",
)

#: PII types that only trigger anonymisation when another PII type is
#: present in the same table.
CONDITIONAL_PII_TYPES: frozenset[str] = frozenset({"name"})

#: Faker class used to generate replacement values for each PII type.
#: Mirrors paper Table 3 (including its quirks: birth place → postcode,
#: postal code → city are reported as-is in the paper's table).
PII_FAKER_CLASSES: dict[str, str] = {
    "name": "faker.name",
    "address": "faker.address",
    "person": "faker.name",
    "email": "faker.email",
    "birth date": "faker.date",
    "home location": "faker.city",
    "birth place": "faker.postcode",
    "postal code": "faker.city",
}


def is_pii_type(label: str) -> bool:
    """True when ``label`` is one of the PII semantic types."""
    return label in PII_FAKER_CLASSES


def faker_class_for(label: str) -> str | None:
    """The Faker class name used to fake values of this PII type."""
    return PII_FAKER_CLASSES.get(label)
