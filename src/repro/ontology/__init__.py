"""Ontology substrate: DBpedia and Schema.org semantic types.

The paper annotates columns with 2831 DBpedia properties and 2637
Schema.org types/properties (§3.4), each carrying a label, atomic type,
domain, superclass/superproperty and description. This subpackage embeds
curated catalogues of semantic types for both ontologies plus a
compound-type expansion that brings the type counts to paper scale, and a
PII type registry used by content curation (Table 3).
"""

from .pii import PII_FAKER_CLASSES, PII_TYPES, is_pii_type
from .types import AtomicKind, Ontology, SemanticType
from .dbpedia import load_dbpedia
from .schema_org import load_schema_org
from .registry import load_ontologies, load_ontology

__all__ = [
    "AtomicKind",
    "Ontology",
    "PII_FAKER_CLASSES",
    "PII_TYPES",
    "SemanticType",
    "is_pii_type",
    "load_dbpedia",
    "load_ontologies",
    "load_ontology",
    "load_schema_org",
]
