"""Core semantic-type model shared by both ontologies.

Every semantic type carries the five metadata items the paper lists in
§3.4: the type label, the atomic type, the domain(s), the superclass (or
superproperty), and a natural-language description.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from functools import lru_cache
from typing import Iterable, Iterator

from ..errors import OntologyError

__all__ = ["AtomicKind", "SemanticType", "Ontology", "normalize_label"]


class AtomicKind(str, Enum):
    """Expected atomic data type of a semantic type (paper §3.4 item 2)."""

    TEXT = "Text"
    NUMBER = "Number"
    DATE = "Date"
    BOOLEAN = "Boolean"
    URL = "URL"


@lru_cache(maxsize=65_536)
def normalize_label(label: str) -> str:
    """Normalise a type label or column name for matching (paper §3.4).

    Replaces underscores and hyphens with spaces, splits camel-case and
    digit/letter compounds, lowercases, and collapses whitespace.
    ``productID`` and ``product_id`` both normalise to ``"product id"``.
    Memoised: annotation normalises the same column names and ontology
    labels over and over across a corpus.
    """
    result: list[str] = []
    previous: str | None = None
    for char in label:
        if char in "_-./":
            result.append(" ")
            previous = None
            continue
        boundary = previous is not None and (
            (char.isupper() and (previous.islower() or previous.isdigit()))
            or (char.isalpha() and previous.isdigit())
        )
        if boundary:
            result.append(" ")
        result.append(char.lower())
        previous = char
    return " ".join("".join(result).split())


@dataclass(frozen=True)
class SemanticType:
    """A single semantic type from DBpedia or Schema.org."""

    #: Human-readable label, e.g. ``"id"`` or ``"birth date"``.
    label: str
    #: Source ontology name: ``"dbpedia"`` or ``"schema_org"``.
    ontology: str
    #: Expected atomic data type of column values.
    atomic: AtomicKind = AtomicKind.TEXT
    #: Domain classes this property belongs to (e.g. Person, Organization).
    domains: tuple[str, ...] = ()
    #: Superclass or superproperty label (e.g. ``product id`` → ``id``).
    parent: str | None = None
    #: Natural language description.
    description: str = ""

    @property
    def normalized(self) -> str:
        """The normalised label used for matching."""
        return normalize_label(self.label)

    def ancestry(self, ontology: "Ontology") -> list[str]:
        """Labels of this type and its ancestors within ``ontology``."""
        chain = [self.label]
        current = self
        seen = {self.label}
        while current.parent and current.parent not in seen:
            parent_type = ontology.get(current.parent)
            if parent_type is None:
                chain.append(current.parent)
                break
            chain.append(parent_type.label)
            seen.add(parent_type.label)
            current = parent_type
        return chain


class Ontology:
    """A named collection of semantic types with label lookup."""

    def __init__(self, name: str, types: Iterable[SemanticType]) -> None:
        self.name = name
        self._types: dict[str, SemanticType] = {}
        self._by_normalized: dict[str, SemanticType] = {}
        for semantic_type in types:
            self.add(semantic_type)

    def add(self, semantic_type: SemanticType) -> None:
        """Add a type; duplicate labels are rejected."""
        if semantic_type.label in self._types:
            raise OntologyError(
                f"duplicate semantic type {semantic_type.label!r} in ontology {self.name!r}"
            )
        self._types[semantic_type.label] = semantic_type
        # Normalised lookup keeps the first registration (curated types are
        # registered before generated compounds, so they win ties).
        self._by_normalized.setdefault(semantic_type.normalized, semantic_type)

    def __len__(self) -> int:
        return len(self._types)

    def __iter__(self) -> Iterator[SemanticType]:
        return iter(self._types.values())

    def __contains__(self, label: str) -> bool:
        return label in self._types

    def get(self, label: str) -> SemanticType | None:
        """Lookup by exact label."""
        return self._types.get(label)

    def match_normalized(self, text: str) -> SemanticType | None:
        """Lookup by normalised label (the syntactic annotation primitive)."""
        return self._by_normalized.get(normalize_label(text))

    def labels(self) -> list[str]:
        return list(self._types)

    def types_in_domain(self, domain: str) -> list[SemanticType]:
        """All types whose domains include ``domain``."""
        return [t for t in self._types.values() if domain in t.domains]

    def domains(self) -> list[str]:
        """Sorted list of all domains mentioned by any type."""
        found: set[str] = set()
        for semantic_type in self._types.values():
            found.update(semantic_type.domains)
        return sorted(found)

    def is_descendant(self, child_label: str, ancestor_label: str) -> bool:
        """True when ``child_label`` has ``ancestor_label`` in its ancestry."""
        child = self.get(child_label)
        if child is None:
            return False
        return ancestor_label in child.ancestry(self)[1:]
