"""Table augmentation: unions over snapshot tables (paper §4.1).

The paper observes that a few repositories contribute many tables that
are snapshots of the same database ("daily snapshots"), and that such
tables "can be used for constructing larger tables through unions and
joins". This module implements that reconstruction: it groups a corpus's
tables by repository and unions the groups that share a schema, yielding
larger tables closer to the original databases.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..dataframe.table import Table
from ..errors import TableValidationError
from ..ontology.types import normalize_label
from .corpus import GitTablesCorpus

__all__ = ["UnionReport", "union_tables", "unionable_groups", "reconstruct_snapshots"]


def _schema_key(table: Table) -> tuple[str, ...]:
    """A normalised schema fingerprint used to decide unionability."""
    return tuple(normalize_label(name) for name in table.header)


def union_tables(tables: list[Table], table_id: str | None = None) -> Table:
    """Union tables that share the same (normalised) schema.

    The first table's header spelling wins; rows are concatenated in input
    order and exact duplicate rows are dropped (snapshots overlap heavily).
    Raises :class:`TableValidationError` when schemas differ.
    """
    if not tables:
        raise TableValidationError("cannot union an empty list of tables")
    reference_key = _schema_key(tables[0])
    for table in tables[1:]:
        if _schema_key(table) != reference_key:
            raise TableValidationError(
                f"table {table.table_id!r} has a different schema and cannot be unioned"
            )
    seen: set[tuple] = set()
    rows: list[tuple] = []
    for table in tables:
        for row in table.rows:
            if row in seen:
                continue
            seen.add(row)
            rows.append(row)
    metadata = dict(tables[0].metadata)
    metadata["union_of"] = tuple(table.table_id for table in tables)
    return Table(
        tables[0].header,
        rows,
        table_id=table_id or f"union::{tables[0].table_id}",
        metadata=metadata,
    )


def unionable_groups(corpus: GitTablesCorpus, min_group_size: int = 2) -> list[list[Table]]:
    """Group corpus tables by (repository, normalised schema).

    Only groups with at least ``min_group_size`` members are returned —
    those are the snapshot-style table families worth unioning.
    """
    groups: dict[tuple[str, tuple[str, ...]], list[Table]] = {}
    for annotated in corpus:
        key = (annotated.repository, _schema_key(annotated.table))
        groups.setdefault(key, []).append(annotated.table)
    return [tables for tables in groups.values() if len(tables) >= min_group_size]


@dataclass
class UnionReport:
    """Outcome of reconstructing snapshot tables across a corpus."""

    groups_found: int = 0
    tables_unioned: int = 0
    rows_before: int = 0
    rows_after: int = 0
    unions: list[Table] = field(default_factory=list)

    @property
    def duplicate_row_fraction(self) -> float:
        """Fraction of snapshot rows that were duplicates across snapshots."""
        if self.rows_before == 0:
            return 0.0
        return 1.0 - self.rows_after / self.rows_before


def reconstruct_snapshots(corpus: GitTablesCorpus, min_group_size: int = 2) -> UnionReport:
    """Union every snapshot-style table family in ``corpus``."""
    report = UnionReport()
    for group in unionable_groups(corpus, min_group_size=min_group_size):
        union = union_tables(group)
        report.groups_found += 1
        report.tables_unioned += len(group)
        report.rows_before += sum(table.num_rows for table in group)
        report.rows_after += union.num_rows
        report.unions.append(union)
    return report
