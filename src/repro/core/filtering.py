"""Table filtering rules (paper §3.3, 'Table filtering').

Filters applied to parsed tables, in order:

1. **License** — only tables from repositories with a license allowing
   redistribution are retained (~16% of tables in the paper).
2. **Dimensions** — tables with fewer than two rows or two columns are
   dropped.
3. **Header quality** — tables where more than half of the column names
   are unspecified, or where any column name is not a string (i.e. the
   first row was data, not a header), are dropped.
4. **Social-media content** — tables with a column name containing
   "twitter", "tweet", "reddit" or "facebook" are dropped.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import CurationConfig
from ..dataframe.dtypes import AtomicType, infer_value_type
from ..dataframe.table import Table
from ..github.licenses import is_permissive
from .parsing import ParsedFile

__all__ = ["FilterDecision", "FilterReport", "TableFilter"]

#: Reason codes, in the order rules are evaluated.
REASON_LICENSE = "no_permissive_license"
REASON_TOO_SMALL = "too_small"
REASON_UNNAMED = "unnamed_columns"
REASON_NON_STRING_HEADER = "non_string_header"
REASON_SOCIAL_MEDIA = "social_media_content"


@dataclass(frozen=True)
class FilterDecision:
    """The outcome of filtering one table."""

    keep: bool
    reason: str | None = None

    @classmethod
    def kept(cls) -> "FilterDecision":
        return cls(keep=True)

    @classmethod
    def dropped(cls, reason: str) -> "FilterDecision":
        return cls(keep=False, reason=reason)


@dataclass
class FilterReport:
    """Aggregate statistics of the filtering stage."""

    evaluated: int = 0
    kept: int = 0
    dropped: int = 0
    dropped_by_reason: dict[str, int] = field(default_factory=dict)

    @property
    def drop_rate(self) -> float:
        if self.evaluated == 0:
            return 0.0
        return self.dropped / self.evaluated

    def drop_rate_excluding_license(self) -> float:
        """Drop rate of the curation filters only (paper reports ~9%)."""
        license_drops = self.dropped_by_reason.get(REASON_LICENSE, 0)
        considered = self.evaluated - license_drops
        if considered <= 0:
            return 0.0
        return (self.dropped - license_drops) / considered

    def record(self, decision: FilterDecision) -> None:
        self.evaluated += 1
        if decision.keep:
            self.kept += 1
        else:
            self.dropped += 1
            reason = decision.reason or "unknown"
            self.dropped_by_reason[reason] = self.dropped_by_reason.get(reason, 0) + 1


#: Sentinel distinguishing "license not provided, use table metadata"
#: from an explicit ``None`` (repository without a license).
_LICENSE_FROM_METADATA = object()


class TableFilter:
    """Applies the §3.3 filtering rules to parsed tables."""

    def __init__(self, config: CurationConfig | None = None) -> None:
        self.config = config or CurationConfig()
        self.config.validate()

    def evaluate(self, table: Table, license_key: object = _LICENSE_FROM_METADATA) -> FilterDecision:
        """Evaluate one table.

        ``license_key`` overrides the table's ``license`` metadata entry;
        pass ``None`` explicitly to mean "repository without a license".
        """
        config = self.config

        if config.require_permissive_license:
            license_value = (
                table.metadata.get("license")
                if license_key is _LICENSE_FROM_METADATA
                else license_key
            )
            if not is_permissive(license_value if isinstance(license_value, str) else None):
                return FilterDecision.dropped(REASON_LICENSE)

        if table.num_rows < config.min_rows or table.num_columns < config.min_columns:
            return FilterDecision.dropped(REASON_TOO_SMALL)

        if table.unnamed_column_fraction() > config.max_unnamed_fraction:
            return FilterDecision.dropped(REASON_UNNAMED)

        # A column name that parses as a number or date indicates the first
        # row was data rather than a header (paper: "column names not of
        # the type string"). Short alphabetic names like "y" stay strings.
        for name in table.header:
            if name.strip() and infer_value_type(name) in (
                AtomicType.INTEGER,
                AtomicType.FLOAT,
                AtomicType.DATE,
            ):
                return FilterDecision.dropped(REASON_NON_STRING_HEADER)

        blocked = tuple(term.lower() for term in config.blocked_column_terms)
        for name in table.header:
            lowered = name.lower()
            if any(term in lowered for term in blocked):
                return FilterDecision.dropped(REASON_SOCIAL_MEDIA)

        return FilterDecision.kept()

    def filter_parsed(self, parsed_files: list[ParsedFile]) -> tuple[list[ParsedFile], FilterReport]:
        """Filter a list of parsed files, returning survivors and a report.

        Materializing wrapper over the streaming
        :class:`repro.pipeline.FilterStage`.
        """
        from ..pipeline.stage import StageContext
        from ..pipeline.stages import FilterStage

        stage = FilterStage(self)
        kept = list(stage.process(iter(parsed_files), StageContext()))
        return kept, stage.report
