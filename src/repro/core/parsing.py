"""Parsing stage: raw CSV files → tables (paper §3.3, 'CSV parsing').

Wraps :func:`repro.dataframe.parse_csv` with provenance metadata and
bookkeeping of the parse success rate (the paper reports 99.3% of files
parsing successfully).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..dataframe.parser import ParseReport, parse_csv
from ..dataframe.table import Table
from ..github.licenses import License
from .extraction import ExtractedFile

__all__ = ["ParsedFile", "ParsingReport", "ParsingStage"]


@dataclass
class ParsedFile:
    """A successfully parsed CSV file with its provenance."""

    table: Table
    parse_report: ParseReport
    source: ExtractedFile


@dataclass
class ParsingReport:
    """Aggregate statistics of the parsing stage."""

    attempted: int = 0
    parsed: int = 0
    failed: int = 0
    failures_by_reason: dict[str, int] = field(default_factory=dict)

    @property
    def success_rate(self) -> float:
        """Fraction of files parsed into tables (paper: 0.993)."""
        if self.attempted == 0:
            return 0.0
        return self.parsed / self.attempted


class ParsingStage:
    """Parses extracted files into tables, collecting success statistics."""

    def parse_file(self, extracted: ExtractedFile) -> ParsedFile:
        """Parse one extracted file (raises :class:`CSVParseError` on failure)."""
        table, report = parse_csv(
            extracted.content,
            table_id=extracted.url,
            metadata={
                "source_url": extracted.url,
                "repository": extracted.repository,
                "path": extracted.path,
                "topic": extracted.topic,
                "license": extracted.license.key if isinstance(extracted.license, License) else None,
                "license_name": extracted.license.name if isinstance(extracted.license, License) else None,
            },
        )
        return ParsedFile(table=table, parse_report=report, source=extracted)

    def parse_all(self, files: list[ExtractedFile]) -> tuple[list[ParsedFile], ParsingReport]:
        """Parse every file, dropping unparseable ones.

        Materializing wrapper over the streaming
        :class:`repro.pipeline.ParseStage`.
        """
        from ..pipeline.stage import StageContext
        from ..pipeline.stages import ParseStage

        stage = ParseStage(self)
        parsed = list(stage.process(iter(files), StageContext()))
        return parsed, stage.report
