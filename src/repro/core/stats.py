"""Corpus and annotation statistics (paper §4.1).

These functions compute every number reported in the paper's analysis
section for a given corpus: table/row/column counts (Tables 1-2), atomic
data type distribution (Table 4), per-method/per-ontology annotation
statistics (Table 5), the cumulative dimension distributions (Figure 4a),
annotation coverage per table (Figure 4b), confidence-score distributions
(Figure 4c), top-k annotated types (Figure 5), and tables-per-repository
statistics.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from ..dataframe.dtypes import AtomicType
from ..storage.columnar import (
    METHODS,
    ColumnarProjection,
    count_by,
    first_seen_counts,
    masked,
)
from .annotation import AnnotationMethod
from .corpus import GitTablesCorpus

__all__ = ["CorpusStatistics", "AnnotationStatistics", "dimension_cdf", "top_types"]


@dataclass(frozen=True)
class CorpusStatistics:
    """Structural statistics of a corpus (Tables 1, 2 and 4; Figure 4a)."""

    table_count: int
    total_rows: int
    total_columns: int
    avg_rows: float
    avg_cols: float
    avg_cells: float
    median_rows: float
    median_cols: float
    #: Coarse atomic type distribution: numeric / string / other fractions.
    atomic_type_fractions: dict[str, float]
    #: Fine-grained atomic type counts.
    atomic_type_counts: dict[str, int]
    #: Tables-per-repository distribution summary.
    tables_per_repository_mean: float
    repositories_with_at_most_5_tables_fraction: float

    @classmethod
    def from_corpus(cls, corpus: GitTablesCorpus) -> "CorpusStatistics":
        """Compute statistics for ``corpus``.

        Dispatches to the columnar engine when the corpus has a current
        :class:`~repro.storage.columnar.ColumnarProjection` attached
        (results are identical to the iteration path, property-tested);
        falls back to the streaming Python scan otherwise.
        """
        projection = getattr(corpus, "projection", None)
        if projection is not None:
            return cls.from_projection(projection)
        return cls.from_scan(corpus)

    @classmethod
    def from_projection(cls, projection: ColumnarProjection) -> "CorpusStatistics":
        """Compute statistics from materialized columns (no table parsing)."""
        table_count = projection.table_count
        total_rows = int(projection.n_rows.sum())
        total_columns = int(projection.n_cols.sum())
        total_columns_nonzero = max(total_columns, 1)

        atomic_counts = projection.dtype_counts()
        coarse: Counter[str] = Counter()
        for type_value, count in atomic_counts.items():
            coarse[AtomicType(type_value).coarse] += count
        fractions = {
            bucket: coarse.get(bucket, 0) / total_columns_nonzero
            for bucket in ("numeric", "string", "other")
        }

        has_repos = bool(projection.repositories)
        repo_values = (
            count_by(projection.repo_codes, len(projection.repositories))
            if has_repos
            else np.array([0])
        )
        at_most_5 = float(np.mean(repo_values <= 5)) if has_repos else 0.0

        return cls(
            table_count=table_count,
            total_rows=total_rows,
            total_columns=total_columns,
            avg_rows=total_rows / table_count if table_count else 0.0,
            avg_cols=total_columns / table_count if table_count else 0.0,
            avg_cells=(
                int((projection.n_rows * projection.n_cols).sum()) / table_count
                if table_count
                else 0.0
            ),
            median_rows=float(np.median(projection.n_rows)) if table_count else 0.0,
            median_cols=float(np.median(projection.n_cols)) if table_count else 0.0,
            atomic_type_fractions=fractions,
            atomic_type_counts=atomic_counts,
            tables_per_repository_mean=float(repo_values.mean()) if has_repos else 0.0,
            repositories_with_at_most_5_tables_fraction=at_most_5,
        )

    @classmethod
    def from_scan(cls, corpus: GitTablesCorpus) -> "CorpusStatistics":
        """The streaming Python iteration reference (one pass, parses tables)."""
        row_counts = []
        col_counts = []
        atomic_counts: Counter[str] = Counter()
        for annotated in corpus:
            table = annotated.table
            row_counts.append(table.num_rows)
            col_counts.append(table.num_columns)
            for column in table.columns:
                atomic_counts[column.atomic_type.value] += 1

        table_count = len(corpus)
        total_rows = int(sum(row_counts))
        total_columns = int(sum(col_counts))
        total_columns_nonzero = max(total_columns, 1)

        coarse: Counter[str] = Counter()
        for type_value, count in atomic_counts.items():
            coarse[AtomicType(type_value).coarse] += count
        fractions = {
            bucket: coarse.get(bucket, 0) / total_columns_nonzero
            for bucket in ("numeric", "string", "other")
        }

        repo_counts = corpus.repositories()
        repo_values = np.array(list(repo_counts.values())) if repo_counts else np.array([0])
        at_most_5 = float(np.mean(repo_values <= 5)) if repo_counts else 0.0

        return cls(
            table_count=table_count,
            total_rows=total_rows,
            total_columns=total_columns,
            avg_rows=total_rows / table_count if table_count else 0.0,
            avg_cols=total_columns / table_count if table_count else 0.0,
            avg_cells=(
                sum(r * c for r, c in zip(row_counts, col_counts)) / table_count
                if table_count
                else 0.0
            ),
            median_rows=float(np.median(row_counts)) if row_counts else 0.0,
            median_cols=float(np.median(col_counts)) if col_counts else 0.0,
            atomic_type_fractions=fractions,
            atomic_type_counts=dict(atomic_counts),
            tables_per_repository_mean=float(repo_values.mean()) if repo_counts else 0.0,
            repositories_with_at_most_5_tables_fraction=at_most_5,
        )

    def as_table1_row(self, name: str = "GitTables", source: str = "CSVs from GitHub") -> dict:
        """One row of paper Table 1."""
        return {
            "name": name,
            "table_source": source,
            "n_tables": self.table_count,
            "avg_rows": round(self.avg_rows, 1),
            "avg_cols": round(self.avg_cols, 1),
        }

    def as_table4_rows(self) -> dict[str, float]:
        """Coarse atomic type percentages (paper Table 4)."""
        return {
            bucket: round(100.0 * fraction, 1)
            for bucket, fraction in self.atomic_type_fractions.items()
        }


@dataclass(frozen=True)
class MethodOntologyStats:
    """Annotation statistics for one (method, ontology) pair (Table 5)."""

    method: str
    ontology: str
    annotated_tables: int
    annotated_columns: int
    unique_types: int
    types_above_threshold: int

    def as_row(self) -> dict:
        return {
            "method": self.method,
            "ontology": self.ontology,
            "annotated_tables": self.annotated_tables,
            "annotated_columns": self.annotated_columns,
            "unique_types": self.unique_types,
            "types_above_threshold": self.types_above_threshold,
        }


@dataclass(frozen=True)
class AnnotationStatistics:
    """Annotation statistics of a corpus (Table 5; Figures 4b, 4c, 5)."""

    table_count: int
    per_method_ontology: tuple[MethodOntologyStats, ...]
    #: method -> fraction of columns annotated, averaged over tables (Fig 4b).
    mean_coverage: dict[str, float]
    #: method -> list of per-table coverage fractions (Fig 4b histogram input).
    coverage_per_table: dict[str, list[float]] = field(repr=False, default_factory=dict)
    #: ontology -> list of semantic-annotation confidence scores (Fig 4c).
    similarity_scores: dict[str, list[float]] = field(repr=False, default_factory=dict)
    #: (method, ontology) -> Counter of type labels (Fig 5 input).
    type_counts: dict[tuple[str, str], Counter] = field(repr=False, default_factory=dict)

    @classmethod
    def from_corpus(
        cls,
        corpus: GitTablesCorpus,
        popular_type_column_threshold: int = 5,
    ) -> "AnnotationStatistics":
        """Compute annotation statistics for ``corpus``.

        ``popular_type_column_threshold`` plays the role of the paper's
        "# types (#columns > 1K)" row, scaled down for smaller corpora.
        Dispatches to the columnar engine when the corpus has a current
        projection attached; falls back to the streaming scan otherwise.
        """
        projection = getattr(corpus, "projection", None)
        if projection is not None:
            return cls.from_projection(
                projection, popular_type_column_threshold=popular_type_column_threshold
            )
        return cls.from_scan(
            corpus, popular_type_column_threshold=popular_type_column_threshold
        )

    @classmethod
    def from_projection(
        cls,
        projection: ColumnarProjection,
        popular_type_column_threshold: int = 5,
    ) -> "AnnotationStatistics":
        """Compute annotation statistics from materialized columns.

        Annotation rows are stored in reference iteration order, so the
        reconstructed ``Counter`` insertion order — and with it
        ``most_common`` tie-breaking — matches the scan path exactly.
        """
        ontologies = ("dbpedia", "schema_org")
        table_count = projection.table_count

        # Per-table coverage: distinct annotated column names per
        # (table, method), over annotations from *every* ontology.
        distinct = np.zeros((table_count, len(METHODS)), dtype=np.int64)
        if projection.ann_table.size:
            triples = np.stack(
                [
                    projection.ann_table,
                    projection.ann_method.astype(np.int64),
                    projection.ann_column.astype(np.int64),
                ],
                axis=1,
            )
            unique_triples = np.unique(triples, axis=0)
            keys = unique_triples[:, 0] * len(METHODS) + unique_triples[:, 1]
            distinct = count_by(keys, table_count * len(METHODS)).reshape(
                table_count, len(METHODS)
            )
        safe_cols = np.where(projection.n_cols > 0, projection.n_cols, 1)
        coverage = distinct / safe_cols[:, None]
        coverage[projection.n_cols == 0] = 0.0
        coverage_per_table = {
            method: coverage[:, index].tolist() for index, method in enumerate(METHODS)
        }

        type_counts: dict[tuple[str, str], Counter] = {}
        annotated_tables: dict[tuple[str, str], int] = {}
        annotated_columns: dict[tuple[str, str], int] = {}
        similarity_scores: dict[str, list[float]] = {ontology: [] for ontology in ontologies}
        for method_code, method in enumerate(METHODS):
            for ontology in ontologies:
                key = (method, ontology)
                ontology_code = (
                    projection.ontologies.index(ontology)
                    if ontology in projection.ontologies
                    else -1
                )
                row_mask = (projection.ann_method == method_code) & (
                    projection.ann_ontology == ontology_code
                )
                counter: Counter = Counter()
                codes, counts = first_seen_counts(masked(projection.ann_label, row_mask))
                for code, count in zip(codes.tolist(), counts.tolist()):
                    counter[projection.type_labels[code]] = count
                type_counts[key] = counter
                annotated_columns[key] = int(row_mask.sum())
                annotated_tables[key] = int(np.unique(masked(projection.ann_table, row_mask)).size)
                if method == "semantic":
                    similarity_scores[ontology] = masked(
                        projection.ann_confidence, row_mask
                    ).tolist()

        per_method_ontology = []
        for method in METHODS:
            for ontology in ontologies:
                key = (method, ontology)
                counts = type_counts[key]
                per_method_ontology.append(
                    MethodOntologyStats(
                        method=method,
                        ontology=ontology,
                        annotated_tables=annotated_tables[key],
                        annotated_columns=annotated_columns[key],
                        unique_types=len(counts),
                        types_above_threshold=sum(
                            1 for count in counts.values() if count > popular_type_column_threshold
                        ),
                    )
                )

        mean_coverage = {
            method: float(np.mean(values)) if values else 0.0
            for method, values in coverage_per_table.items()
        }

        return cls(
            table_count=table_count,
            per_method_ontology=tuple(per_method_ontology),
            mean_coverage=mean_coverage,
            coverage_per_table=coverage_per_table,
            similarity_scores=similarity_scores,
            type_counts=type_counts,
        )

    @classmethod
    def from_scan(
        cls,
        corpus: GitTablesCorpus,
        popular_type_column_threshold: int = 5,
    ) -> "AnnotationStatistics":
        """The streaming Python iteration reference (one pass, parses tables)."""
        methods = (AnnotationMethod.SYNTACTIC, AnnotationMethod.SEMANTIC)
        ontologies = ("dbpedia", "schema_org")

        annotated_tables: Counter[tuple[str, str]] = Counter()
        annotated_columns: Counter[tuple[str, str]] = Counter()
        type_counts: dict[tuple[str, str], Counter] = {
            (method.value, ontology): Counter() for method in methods for ontology in ontologies
        }
        coverage_per_table: dict[str, list[float]] = {method.value: [] for method in methods}
        similarity_scores: dict[str, list[float]] = {ontology: [] for ontology in ontologies}

        for annotated in corpus:
            n_columns = annotated.table.num_columns
            for method in methods:
                coverage_per_table[method.value].append(
                    annotated.annotations.annotated_column_fraction(method, n_columns)
                )
                for ontology in ontologies:
                    annotations = annotated.annotations.for_method(method, ontology)
                    if annotations:
                        annotated_tables[(method.value, ontology)] += 1
                        annotated_columns[(method.value, ontology)] += len(annotations)
                        for annotation in annotations:
                            type_counts[(method.value, ontology)][annotation.type_label] += 1
                            if method is AnnotationMethod.SEMANTIC:
                                similarity_scores[ontology].append(annotation.confidence)

        per_method_ontology = []
        for method in methods:
            for ontology in ontologies:
                key = (method.value, ontology)
                counts = type_counts[key]
                per_method_ontology.append(
                    MethodOntologyStats(
                        method=method.value,
                        ontology=ontology,
                        annotated_tables=annotated_tables[key],
                        annotated_columns=annotated_columns[key],
                        unique_types=len(counts),
                        types_above_threshold=sum(
                            1 for count in counts.values() if count > popular_type_column_threshold
                        ),
                    )
                )

        mean_coverage = {
            method: float(np.mean(values)) if values else 0.0
            for method, values in coverage_per_table.items()
        }

        return cls(
            table_count=len(corpus),
            per_method_ontology=tuple(per_method_ontology),
            mean_coverage=mean_coverage,
            coverage_per_table=coverage_per_table,
            similarity_scores=similarity_scores,
            type_counts=type_counts,
        )

    def stats_for(self, method: str, ontology: str) -> MethodOntologyStats:
        """Statistics of one (method, ontology) pair."""
        for stats in self.per_method_ontology:
            if stats.method == method and stats.ontology == ontology:
                return stats
        raise KeyError((method, ontology))

    def unique_type_count(self, method: str) -> int:
        """Unique types annotated by a method across both ontologies."""
        labels: set[str] = set()
        for (stat_method, _ontology), counts in self.type_counts.items():
            if stat_method == method:
                labels.update(counts)
        return len(labels)

    def as_table5_rows(self) -> list[dict]:
        """Rows of paper Table 5."""
        return [stats.as_row() for stats in self.per_method_ontology]


def dimension_cdf(corpus: GitTablesCorpus, axis: str = "rows", points: int = 40) -> list[tuple[float, int]]:
    """Cumulative table counts over a dimension (paper Figure 4a).

    Returns (dimension value, number of tables with dimension <= value)
    pairs over log-spaced dimension values.
    """
    if axis not in ("rows", "columns"):
        raise ValueError("axis must be 'rows' or 'columns'")
    projection = getattr(corpus, "projection", None)
    if projection is not None:
        values = np.asarray(projection.n_rows if axis == "rows" else projection.n_cols)
    else:
        values = np.array(
            [
                annotated.table.num_rows if axis == "rows" else annotated.table.num_columns
                for annotated in corpus
            ]
        )
    if values.size == 0:
        return []
    grid = np.unique(np.logspace(0, np.log10(max(values.max(), 2)), points).astype(int))
    if grid[-1] < values.max():
        grid = np.append(grid, values.max())
    # One sort instead of a corpus-sized comparison per grid point:
    # searchsorted(side="right") counts values <= point exactly.
    ordered = np.sort(values)
    return [(float(point), int(np.searchsorted(ordered, point, side="right"))) for point in grid]


def top_types(
    stats: AnnotationStatistics, method: str, ontology: str, k: int = 25
) -> list[tuple[str, int]]:
    """The ``k`` most frequently annotated types (paper Figure 5)."""
    counts = stats.type_counts.get((method, ontology), Counter())
    return counts.most_common(k)
