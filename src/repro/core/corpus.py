"""The GitTables corpus container.

An :class:`AnnotatedTable` bundles a curated table with its column
annotations and provenance; :class:`GitTablesCorpus` is the queryable
collection the analysis and application layers operate on. The corpus can
be persisted to (and re-loaded from) a directory of JSON files so that
expensive corpus builds can be cached between experiments.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Callable, Iterator

from ..dataframe.table import Table
from ..errors import CorpusError
from .annotation import AnnotationMethod, ColumnAnnotation, TableAnnotations

__all__ = ["AnnotatedTable", "GitTablesCorpus"]


@dataclass
class AnnotatedTable:
    """A curated table plus its annotations and provenance."""

    table: Table
    annotations: TableAnnotations
    topic: str
    repository: str
    source_url: str
    license_key: str | None = None

    @property
    def table_id(self) -> str:
        return self.table.table_id or self.source_url

    def to_dict(self) -> dict:
        """JSON-serialisable representation."""
        return {
            "table_id": self.table_id,
            "topic": self.topic,
            "repository": self.repository,
            "source_url": self.source_url,
            "license_key": self.license_key,
            "header": list(self.table.header),
            "rows": [list(row) for row in self.table.rows],
            "metadata": dict(self.table.metadata),
            "annotations": [
                {
                    "column": annotation.column,
                    "type_label": annotation.type_label,
                    "ontology": annotation.ontology,
                    "method": annotation.method.value,
                    "confidence": annotation.confidence,
                }
                for annotation in self.annotations.all()
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "AnnotatedTable":
        """Inverse of :meth:`to_dict`."""
        table = Table(
            payload["header"],
            payload["rows"],
            table_id=payload["table_id"],
            metadata=payload.get("metadata", {}),
        )
        annotations = TableAnnotations(table_id=payload["table_id"])
        for entry in payload.get("annotations", []):
            annotations.add(
                ColumnAnnotation(
                    column=entry["column"],
                    type_label=entry["type_label"],
                    ontology=entry["ontology"],
                    method=AnnotationMethod(entry["method"]),
                    confidence=float(entry["confidence"]),
                )
            )
        return cls(
            table=table,
            annotations=annotations,
            topic=payload.get("topic", ""),
            repository=payload.get("repository", ""),
            source_url=payload.get("source_url", payload["table_id"]),
            license_key=payload.get("license_key"),
        )


class GitTablesCorpus:
    """A collection of annotated tables."""

    def __init__(self, name: str = "gittables") -> None:
        self.name = name
        self._tables: dict[str, AnnotatedTable] = {}

    # -- container protocol ----------------------------------------------

    def __len__(self) -> int:
        return len(self._tables)

    def __iter__(self) -> Iterator[AnnotatedTable]:
        return iter(self._tables.values())

    def __contains__(self, table_id: str) -> bool:
        return table_id in self._tables

    def get(self, table_id: str) -> AnnotatedTable | None:
        return self._tables.get(table_id)

    def add(self, annotated: AnnotatedTable) -> None:
        """Add a table; duplicate table ids are rejected."""
        table_id = annotated.table_id
        if table_id in self._tables:
            raise CorpusError(f"duplicate table id {table_id!r}")
        self._tables[table_id] = annotated

    # -- queries -----------------------------------------------------------

    def tables(self) -> list[AnnotatedTable]:
        return list(self._tables.values())

    def topics(self) -> list[str]:
        """Sorted list of distinct topics present in the corpus."""
        return sorted({annotated.topic for annotated in self._tables.values()})

    def topic_subset(self, topic: str) -> "GitTablesCorpus":
        """The sub-corpus of tables extracted for one topic."""
        subset = GitTablesCorpus(name=f"{self.name}:{topic}")
        for annotated in self._tables.values():
            if annotated.topic == topic:
                subset.add(annotated)
        return subset

    def filter(self, predicate: Callable[[AnnotatedTable], bool], name: str | None = None) -> "GitTablesCorpus":
        """A sub-corpus of the tables satisfying ``predicate``."""
        subset = GitTablesCorpus(name=name or f"{self.name}:filtered")
        for annotated in self._tables.values():
            if predicate(annotated):
                subset.add(annotated)
        return subset

    def repositories(self) -> dict[str, int]:
        """repository full name -> number of tables contributed."""
        counts: dict[str, int] = {}
        for annotated in self._tables.values():
            counts[annotated.repository] = counts.get(annotated.repository, 0) + 1
        return counts

    def schemas(self) -> list[tuple[str, tuple[str, ...]]]:
        """(table id, schema) pairs, used by schema completion and search."""
        return [(annotated.table_id, annotated.table.schema) for annotated in self._tables.values()]

    def total_rows(self) -> int:
        return sum(annotated.table.num_rows for annotated in self._tables.values())

    def total_columns(self) -> int:
        return sum(annotated.table.num_columns for annotated in self._tables.values())

    # -- persistence -------------------------------------------------------

    def save(self, directory: str | os.PathLike[str]) -> None:
        """Persist the corpus as one JSON file per table plus an index."""
        os.makedirs(directory, exist_ok=True)
        index = []
        for position, annotated in enumerate(self._tables.values()):
            filename = f"table_{position:06d}.json"
            with open(os.path.join(directory, filename), "w", encoding="utf-8") as handle:
                json.dump(annotated.to_dict(), handle)
            index.append({"file": filename, "table_id": annotated.table_id, "topic": annotated.topic})
        with open(os.path.join(directory, "index.json"), "w", encoding="utf-8") as handle:
            json.dump({"name": self.name, "tables": index}, handle)

    @classmethod
    def load(cls, directory: str | os.PathLike[str]) -> "GitTablesCorpus":
        """Load a corpus previously written by :meth:`save`."""
        index_path = os.path.join(directory, "index.json")
        if not os.path.exists(index_path):
            raise CorpusError(f"no corpus index found at {index_path}")
        with open(index_path, "r", encoding="utf-8") as handle:
            index = json.load(handle)
        corpus = cls(name=index.get("name", "gittables"))
        for entry in index.get("tables", []):
            with open(os.path.join(directory, entry["file"]), "r", encoding="utf-8") as handle:
                corpus.add(AnnotatedTable.from_dict(json.load(handle)))
        return corpus
