"""The GitTables corpus container.

An :class:`AnnotatedTable` bundles a curated table with its column
annotations and provenance; :class:`GitTablesCorpus` is the queryable
collection the analysis and application layers operate on.

Physical storage is pluggable: the corpus delegates every container
operation to a :class:`~repro.storage.base.CorpusStore` backend — the
in-memory dict by default, or a lazy sharded-JSONL store for corpora
that should not (or cannot) be fully resident. Iteration, ``get`` and
the derived views are backend-aware and streaming, so code written as
``for annotated in corpus`` works identically over both.

Persistence: :meth:`GitTablesCorpus.save` writes the sharded JSONL
layout (atomically — the target directory appears only once fully
written) and :meth:`GitTablesCorpus.load` auto-detects the format,
returning a *lazy* disk-backed corpus for sharded directories and an
in-memory corpus for the legacy one-JSON-file-per-table layout.

Sub-corpus name provenance: derived corpora record how they were carved
out of their parent in the corpus name — ``topic_subset("cars")`` of a
corpus named ``gittables`` is named ``gittables/topic=cars``, and
``filter(...)`` appends ``/filtered`` (or the caller-supplied name).
"""

from __future__ import annotations

import json
import os
import shutil
from dataclasses import dataclass
from itertools import islice
from pathlib import Path
from typing import Callable, Iterator

from ..dataframe.table import Table
from ..errors import CorpusError
from ..storage.base import CorpusStore
from ..storage.columnar import ColumnarProjection, TablePredicate
from ..storage.memory import InMemoryStore
from ..storage.sharded import (
    DEFAULT_SHARD_SIZE,
    ShardedCorpusWriter,
    ShardedJsonlStore,
    is_sharded_dir,
)
from .annotation import AnnotationMethod, ColumnAnnotation, TableAnnotations

__all__ = ["AnnotatedTable", "GitTablesCorpus"]


@dataclass
class AnnotatedTable:
    """A curated table plus its annotations and provenance."""

    table: Table
    annotations: TableAnnotations
    topic: str
    repository: str
    source_url: str
    license_key: str | None = None

    @property
    def table_id(self) -> str:
        return self.table.table_id or self.source_url

    def to_dict(self) -> dict:
        """JSON-serialisable representation."""
        return {
            "table_id": self.table_id,
            "topic": self.topic,
            "repository": self.repository,
            "source_url": self.source_url,
            "license_key": self.license_key,
            "header": list(self.table.header),
            "rows": [list(row) for row in self.table.rows],
            "metadata": dict(self.table.metadata),
            "annotations": [
                {
                    "column": annotation.column,
                    "type_label": annotation.type_label,
                    "ontology": annotation.ontology,
                    "method": annotation.method.value,
                    "confidence": annotation.confidence,
                }
                for annotation in self.annotations.all()
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "AnnotatedTable":
        """Inverse of :meth:`to_dict`."""
        table = Table(
            payload["header"],
            payload["rows"],
            table_id=payload["table_id"],
            metadata=payload.get("metadata", {}),
        )
        annotations = TableAnnotations(table_id=payload["table_id"])
        for entry in payload.get("annotations", []):
            annotations.add(
                ColumnAnnotation(
                    column=entry["column"],
                    type_label=entry["type_label"],
                    ontology=entry["ontology"],
                    method=AnnotationMethod(entry["method"]),
                    confidence=float(entry["confidence"]),
                )
            )
        return cls(
            table=table,
            annotations=annotations,
            topic=payload.get("topic", ""),
            repository=payload.get("repository", ""),
            source_url=payload.get("source_url", payload["table_id"]),
            license_key=payload.get("license_key"),
        )


class GitTablesCorpus:
    """A collection of annotated tables over a pluggable storage backend.

    ``store`` defaults to a fresh :class:`~repro.storage.memory.InMemoryStore`;
    pass a :class:`~repro.storage.sharded.ShardedJsonlStore` (or use
    :meth:`load` on a sharded directory) for a lazily-loaded disk-backed
    corpus. The container API is identical across backends.
    """

    def __init__(self, name: str | None = None, store: CorpusStore | None = None) -> None:
        if store is None:
            store = InMemoryStore(name=name or "gittables")
        elif name is not None:
            store.name = name
        self._store = store
        self._projection: ColumnarProjection | None = None

    @property
    def store(self) -> CorpusStore:
        """The storage backend this corpus delegates to."""
        return self._store

    # -- columnar projection ----------------------------------------------

    def attach_projection(self, projection: ColumnarProjection) -> None:
        """Attach a materialized columnar metadata projection.

        Once attached (see :func:`~repro.storage.columnar.
        ensure_projection`), corpus statistics and
        :class:`~repro.storage.columnar.TablePredicate` filters are
        evaluated engine-side on the projection's arrays instead of
        iterating parsed tables.
        """
        self._projection = projection

    @property
    def projection(self) -> ColumnarProjection | None:
        """The attached projection, or ``None`` when absent or stale.

        Corpora are append-only (duplicate ids rejected, no removal),
        so a table-count mismatch is exactly "tables were added since
        the projection was built" — the stale projection is ignored and
        consumers fall back to iteration (or rebuild).
        """
        projection = self._projection
        if projection is not None and projection.table_count == len(self._store):
            return projection
        return None

    @property
    def name(self) -> str:
        return self._store.name

    @name.setter
    def name(self, value: str) -> None:
        self._store.name = value

    # -- container protocol ----------------------------------------------

    def __len__(self) -> int:
        return len(self._store)

    def __iter__(self) -> Iterator[AnnotatedTable]:
        return iter(self._store)

    def __contains__(self, table_id: str) -> bool:
        return table_id in self._store

    def get(self, table_id: str) -> AnnotatedTable | None:
        """The table for ``table_id`` (sharded backends read one shard)."""
        return self._store.get(table_id)

    def add(self, annotated: AnnotatedTable) -> None:
        """Add a table; duplicate table ids are rejected."""
        self._store.add(annotated)

    def table_ids(self) -> Iterator[str]:
        """Stream table ids without loading table content."""
        return self._store.table_ids()

    # -- queries -----------------------------------------------------------

    def tables(self) -> list[AnnotatedTable]:
        """All tables as a list (materializes; prefer iterating the corpus)."""
        return list(self._store)

    def topics(self) -> list[str]:
        """Sorted list of distinct topics present in the corpus."""
        hint = self._store.stats_hint()
        if hint is not None:
            return sorted(hint.get("topics", {}))
        return sorted({annotated.topic for annotated in self._store})

    def topic_subset(self, topic: str) -> "GitTablesCorpus":
        """The sub-corpus of tables extracted for one topic.

        The result is in-memory and named ``<parent>/topic=<topic>`` so
        downstream reports can trace where a subset came from.
        """
        subset = GitTablesCorpus(name=f"{self.name}/topic={topic}")
        for annotated in self._store:
            if annotated.topic == topic:
                subset.add(annotated)
        return subset

    def filter(
        self,
        predicate: Callable[[AnnotatedTable], bool] | TablePredicate,
        name: str | None = None,
    ) -> "GitTablesCorpus":
        """A sub-corpus of the tables satisfying ``predicate``.

        ``predicate`` is either a plain callable (evaluated by streaming
        iteration, as before) or a declarative
        :class:`~repro.storage.columnar.TablePredicate`. With a current
        columnar projection attached, declarative predicates are pushed
        down to the projection arrays: matching table ids are computed
        engine-side and only those tables' shards are read. Both paths
        select identical table ids. The result is in-memory and named
        ``<parent>/filtered`` unless an explicit ``name`` records more
        specific provenance.
        """
        subset = GitTablesCorpus(name=name or f"{self.name}/filtered")
        if isinstance(predicate, TablePredicate):
            projection = self.projection
            if projection is not None:
                for table_id in projection.select_ids(predicate):
                    annotated = self._store.get(table_id)
                    if annotated is not None:
                        subset.add(annotated)
                return subset
            predicate = predicate.matches
        for annotated in self._store:
            if predicate(annotated):
                subset.add(annotated)
        return subset

    def repositories(self) -> dict[str, int]:
        """repository full name -> number of tables contributed."""
        hint = self._store.stats_hint()
        if hint is not None:
            return dict(hint.get("repositories", {}))
        counts: dict[str, int] = {}
        for annotated in self._store:
            counts[annotated.repository] = counts.get(annotated.repository, 0) + 1
        return counts

    def iter_schemas(self, start: int = 0) -> Iterator[tuple[str, tuple[str, ...]]]:
        """Stream (table id, schema) pairs without materializing a list.

        ``start`` skips the first ``start`` tables in corpus order;
        sharded stores skip whole shards via their manifest counts
        without parsing them, so streaming an extension's tail costs
        O(tail), not O(corpus).
        """
        source: Iterator = iter(self._store)
        if start:
            iter_from = getattr(self._store, "iter_from", None)
            source = iter_from(start) if iter_from is not None else islice(source, start, None)
        for annotated in source:
            yield annotated.table_id, annotated.table.schema

    def schemas(self) -> list[tuple[str, tuple[str, ...]]]:
        """(table id, schema) pairs, used by schema completion and search."""
        return list(self.iter_schemas())

    def total_rows(self) -> int:
        hint = self._store.stats_hint()
        if hint is not None:
            return int(hint.get("total_rows", 0))
        return sum(annotated.table.num_rows for annotated in self._store)

    def total_columns(self) -> int:
        hint = self._store.stats_hint()
        if hint is not None:
            return int(hint.get("total_columns", 0))
        return sum(annotated.table.num_columns for annotated in self._store)

    # -- persistence -------------------------------------------------------

    def save(
        self,
        directory: str | os.PathLike[str],
        shard_size: int = DEFAULT_SHARD_SIZE,
        format: str = "sharded",
    ) -> None:
        """Persist the corpus to ``directory`` atomically.

        The corpus is first written to a temporary sibling directory and
        only renamed into place once complete, so a half-written corpus
        is never observable at ``directory``. Overwriting an existing
        corpus moves the old one aside, renames the new one in, then
        removes the old — if the swap-in fails the old corpus is
        restored, and a process kill inside the (two-rename) swap window
        leaves the old corpus intact under the sibling recovery name
        ``.<name>.replaced-<pid>`` rather than corrupting anything.

        ``format="sharded"`` (default) writes the sharded JSONL layout of
        :mod:`repro.storage.sharded`; ``format="legacy"`` writes the
        original one-JSON-file-per-table layout.

        The target directory is replaced *wholesale*: anything else
        living in it is discarded with the old corpus. One exception —
        when the corpus being saved is backed by this very directory,
        its ``build.json`` provenance (which keeps the store reusable by
        ``build(store_dir=...)``) is carried over.
        """
        if format not in ("sharded", "legacy"):
            raise ValueError(f"unknown corpus format {format!r}")
        directory = Path(directory)
        directory.parent.mkdir(parents=True, exist_ok=True)
        self._clean_stale_save_dirs(directory)
        staging = directory.parent / f".{directory.name}.saving-{os.getpid()}"
        if staging.exists():
            shutil.rmtree(staging)
        try:
            if format == "sharded":
                writer = ShardedCorpusWriter(staging, shard_size=shard_size, name=self.name)
                # Commit shard-sized chunks so saving a lazy disk-backed
                # corpus never materializes it (commit boundaries do not
                # change the output bytes; finalize compacts the
                # manifest delta log away).
                for annotated in self._store:
                    writer.add(annotated)
                    if writer.pending_count >= shard_size:
                        writer.commit()
                writer.finalize()
            else:
                self._save_legacy(staging)
            # Re-saving a store's own corpus onto its directory keeps the
            # build provenance valid — carry it (and the derived index
            # artifacts, still valid since the content is unchanged)
            # into the replacement.
            store_directory = getattr(self._store, "directory", None)
            if (
                store_directory is not None
                and Path(store_directory).resolve() == directory.resolve()
            ):
                build_meta = directory / "build.json"
                if build_meta.exists():
                    shutil.copy2(build_meta, staging / "build.json")
                artifacts_dir = directory / "artifacts"
                if artifacts_dir.is_dir():
                    shutil.copytree(artifacts_dir, staging / "artifacts")
            if directory.exists():
                replaced = directory.parent / f".{directory.name}.replaced-{os.getpid()}"
                os.rename(directory, replaced)
                try:
                    os.rename(staging, directory)
                except BaseException:
                    # Put the old corpus back before propagating; the new
                    # one stays in staging until the finally-cleanup.
                    os.rename(replaced, directory)
                    raise
                shutil.rmtree(replaced)
            else:
                os.rename(staging, directory)
        finally:
            if staging.exists():
                shutil.rmtree(staging)

    @staticmethod
    def _is_dead_sibling(path: Path) -> bool:
        """Whether a pid-suffixed staging/recovery sibling is orphaned."""
        pid_text = path.name.rpartition("-")[2]
        if not pid_text.isdigit() or int(pid_text) == os.getpid():
            return False
        try:
            os.kill(int(pid_text), 0)
        except ProcessLookupError:
            return True
        except OSError:  # pragma: no cover - e.g. EPERM: pid is alive
            return False
        return False

    @classmethod
    def _clean_stale_save_dirs(cls, directory: Path) -> None:
        """Recover from saves interrupted by *dead* processes.

        An interrupted save can leave two kinds of pid-suffixed siblings:
        ``.<name>.replaced-<pid>`` — the previous corpus, moved aside
        during the swap window; if the target directory is gone (the
        process died between the two renames) this is the only complete
        copy, so it is **restored**, and only deleted when the target
        exists (the swap completed, the copy is superseded). And
        ``.<name>.saving-<pid>`` — a half-written staging tree, always
        garbage. Live pids are left alone — their save is in flight.
        """
        for path in directory.parent.glob(f".{directory.name}.replaced-*"):
            if not cls._is_dead_sibling(path):
                continue
            if directory.exists():
                shutil.rmtree(path, ignore_errors=True)
            else:
                os.rename(path, directory)
        for path in directory.parent.glob(f".{directory.name}.saving-*"):
            if cls._is_dead_sibling(path):
                shutil.rmtree(path, ignore_errors=True)

    def _save_legacy(self, directory: Path) -> None:
        """The original layout: one JSON file per table plus an index."""
        os.makedirs(directory, exist_ok=True)
        index = []
        for position, annotated in enumerate(self._store):
            filename = f"table_{position:06d}.json"
            with open(directory / filename, "w", encoding="utf-8") as handle:
                json.dump(annotated.to_dict(), handle)
            index.append({"file": filename, "table_id": annotated.table_id, "topic": annotated.topic})
        with open(directory / "index.json", "w", encoding="utf-8") as handle:
            json.dump({"name": self.name, "tables": index}, handle)

    @classmethod
    def load(
        cls, directory: str | os.PathLike[str], cache_shards: int = 2
    ) -> "GitTablesCorpus":
        """Load a corpus previously written by :meth:`save`.

        Sharded directories come back *lazily*: only the manifest is read
        here, and shards are loaded on demand (``cache_shards`` bounds
        how many parsed shards stay resident). Legacy directories are
        loaded eagerly into memory, as before.
        """
        if is_sharded_dir(directory):
            return cls(store=ShardedJsonlStore(directory, cache_shards=cache_shards))
        index_path = os.path.join(directory, "index.json")
        if not os.path.exists(index_path):
            raise CorpusError(f"no corpus index found at {index_path}")
        with open(index_path, "r", encoding="utf-8") as handle:
            index = json.load(handle)
        corpus = cls(name=index.get("name", "gittables"))
        for entry in index.get("tables", []):
            with open(os.path.join(directory, entry["file"]), "r", encoding="utf-8") as handle:
                corpus.add(AnnotatedTable.from_dict(json.load(handle)))
        return corpus
