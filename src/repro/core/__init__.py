"""The GitTables construction pipeline (the paper's primary contribution).

Stages (paper §3):

1. :mod:`~repro.core.extraction` — topic queries against the GitHub
   Search API, size-qualifier segmentation, pagination, raw-file download.
2. :mod:`~repro.core.parsing` — CSV → :class:`~repro.dataframe.Table`.
3. :mod:`~repro.core.filtering` — license / dimension / header / content
   filters.
4. :mod:`~repro.core.annotation` — syntactic and semantic column
   annotation against DBpedia and Schema.org.
5. :mod:`~repro.core.curation` — PII anonymisation.
6. :mod:`~repro.core.corpus` — the resulting corpus container.
7. :mod:`~repro.core.pipeline` — end-to-end orchestration.
8. :mod:`~repro.core.stats` — corpus and annotation statistics (§4).
"""

from .annotation import (
    AnnotationMethod,
    AnnotationPipeline,
    ColumnAnnotation,
    SemanticAnnotator,
    SyntacticAnnotator,
    TableAnnotations,
    annotate_table,
    annotate_tables,
)
from .corpus import AnnotatedTable, GitTablesCorpus
from .extraction import CSVExtractor, ExtractedFile, build_topic_query, segment_query
from .filtering import FilterDecision, TableFilter
from .parsing import ParsedFile, ParsingStage
from .curation import ContentCurator, CurationResult
from .pipeline import CorpusBuilder, PipelineResult, build_corpus
from .stats import AnnotationStatistics, CorpusStatistics

__all__ = [
    "AnnotatedTable",
    "AnnotationMethod",
    "AnnotationPipeline",
    "AnnotationStatistics",
    "CSVExtractor",
    "ColumnAnnotation",
    "ContentCurator",
    "CorpusBuilder",
    "CorpusStatistics",
    "CurationResult",
    "ExtractedFile",
    "FilterDecision",
    "GitTablesCorpus",
    "ParsedFile",
    "ParsingStage",
    "PipelineResult",
    "SemanticAnnotator",
    "SyntacticAnnotator",
    "TableAnnotations",
    "TableFilter",
    "annotate_table",
    "annotate_tables",
    "build_corpus",
    "build_topic_query",
    "segment_query",
]
