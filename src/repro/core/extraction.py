"""CSV extraction from GitHub (paper §3.2).

The extraction stage builds a "topic query" per WordNet topic, asks the
Search API for the total result count, and — because only the first 1000
results of any query are retrievable — segments large queries into
byte-size ranges (``size:50..100`` etc.) sized proportionally to the
initial response. All pages of all segmented queries are traversed, URLs
are de-duplicated, and the raw contents behind each URL are downloaded.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import ExtractionConfig
from ..errors import ResultWindowExceeded
from ..github.client import GitHubClient
from ..github.licenses import License
from ..github.search import SearchQuery

__all__ = ["ExtractedFile", "ExtractionReport", "CSVExtractor", "build_topic_query", "segment_query"]


@dataclass(frozen=True)
class ExtractedFile:
    """A raw CSV file extracted from the (simulated) GitHub."""

    url: str
    repository: str
    path: str
    topic: str
    content: str
    license: License | None
    size_bytes: int


@dataclass
class ExtractionReport:
    """Bookkeeping of one extraction run."""

    topics: list[str] = field(default_factory=list)
    #: topic -> initial (unsegmented) result count.
    initial_counts: dict[str, int] = field(default_factory=dict)
    #: topic -> number of segmented queries issued.
    segmented_queries: dict[str, int] = field(default_factory=dict)
    total_urls: int = 0
    duplicate_urls: int = 0
    files_downloaded: int = 0
    api_requests: int = 0
    simulated_wait_seconds: float = 0.0


def build_topic_query(topic: str, exclude_forks: bool = True) -> SearchQuery:
    """The initial topic query, e.g. ``q="object" extension:csv fork:false``."""
    return SearchQuery(term=topic, extension="csv", include_forks=not exclude_forks)


def segment_query(
    query: SearchQuery,
    total_count: int,
    result_window: int = 1000,
    segment_bytes: int = 50 * 1024,
    max_file_size: int = 438 * 1024,
) -> list[SearchQuery]:
    """Split a query into size-range segments.

    When the total result count fits in the result window the original
    query is returned unchanged. Otherwise the byte range [0,
    max_file_size] is split into ranges whose width shrinks as the number
    of matching files grows, so that each segmented query is expected to
    stay within the result window (mirroring the paper's "sequences of
    file size ranges proportional to the number of files in the initial
    response").
    """
    if total_count <= result_window:
        return [query]

    # Number of segments needed if files were uniformly distributed over
    # sizes, padded by 2x because real size distributions are skewed.
    needed = max(2, (2 * total_count) // result_window)
    width = max(1, min(segment_bytes, max_file_size // needed))

    segments: list[SearchQuery] = []
    low = 0
    while low <= max_file_size:
        high = min(low + width - 1, max_file_size)
        segments.append(query.with_size_range(low, high))
        low = high + 1
    return segments


class CSVExtractor:
    """Executes the extraction stage against a GitHub client."""

    def __init__(self, client: GitHubClient, config: ExtractionConfig | None = None) -> None:
        self.client = client
        self.config = config or ExtractionConfig()
        self.config.validate()

    def collect_urls(self, topic: str, report: ExtractionReport | None = None) -> dict[str, object]:
        """Collect all retrievable search result items for one topic.

        Returns a mapping url -> SearchResultItem. Queries whose result
        count exceeds the window are segmented by file size.
        """
        query = build_topic_query(topic, exclude_forks=self.config.exclude_forks)
        initial_count = self.client.total_count(query)
        if report is not None:
            report.initial_counts[topic] = initial_count

        queries = segment_query(
            query,
            initial_count,
            result_window=self.config.result_window,
            segment_bytes=self.config.size_segment_bytes,
            max_file_size=self.config.max_file_size,
        )
        if report is not None:
            report.segmented_queries[topic] = len(queries)

        items: dict[str, object] = {}
        for segmented in queries:
            try:
                for item in self.client.search_all_pages(segmented):
                    items[item.url] = item
            except ResultWindowExceeded:
                # A single size segment still exceeded the window; take
                # what is retrievable (the first 1000) and move on.
                continue
        return items

    def extract_topic(
        self, topic: str, report: ExtractionReport | None = None
    ) -> list[ExtractedFile]:
        """Extract the raw CSV files for one topic."""
        items = self.collect_urls(topic, report=report)
        files: list[ExtractedFile] = []
        for url, item in items.items():
            repository = self.client.instance.repository(item.repository)
            content = self.client.raw_content(url)
            files.append(
                ExtractedFile(
                    url=url,
                    repository=item.repository,
                    path=item.path,
                    topic=topic,
                    content=content,
                    license=repository.license if repository else None,
                    size_bytes=item.size_bytes,
                )
            )
        return files

    def extract(self, topics: list[str] | tuple[str, ...]) -> tuple[list[ExtractedFile], ExtractionReport]:
        """Extract files for every topic, de-duplicating across topics.

        A file matched by several topic queries is kept once, attributed
        to the first topic that retrieved it (the paper's topic subsets
        are likewise disjoint by construction order). Materializing
        wrapper over the streaming :class:`repro.pipeline.ExtractStage`.
        """
        from ..pipeline.stage import StageContext
        from ..pipeline.stages import ExtractStage

        stage = ExtractStage(self)
        files = list(stage.process(iter(topics), StageContext()))
        return files, stage.report
