"""End-to-end GitTables corpus construction (paper Figure 1).

:class:`CorpusBuilder` is a thin, backward-compatible wrapper over the
streaming stage graph in :mod:`repro.pipeline`:

    GitHub instance → extraction → parsing → filtering → annotation →
    content curation → :class:`~repro.core.corpus.GitTablesCorpus`

Tables stream through generator-based stages in batches; the run stops
pulling from every upstream stage as soon as ``config.target_tables``
tables have been curated, so no table is annotated only to be discarded.
Every stage still produces its legacy report — all are bundled in the
returned :class:`PipelineResult` together with the unified
:class:`~repro.pipeline.report.PipelineReport` — so experiments can
reproduce the paper's per-stage statistics (parse success rate, filter
rate, PII fraction, …).

New code should prefer the :class:`repro.api.GitTables` facade, which
wraps a built corpus with the paper's applications.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import PipelineConfig
from ..github.client import GitHubClient
from ..github.content import GeneratorConfig
from ..github.instance import GitHubInstance, build_instance
from ..pipeline.report import PipelineReport
from ..pipeline.runner import Pipeline
from ..pipeline.stages import default_stages
from ..wordnet.topics import select_topics
from .annotation import AnnotationPipeline
from .corpus import GitTablesCorpus
from .curation import ContentCurator, CurationReport
from .extraction import CSVExtractor, ExtractionReport
from .filtering import FilterReport, TableFilter
from .parsing import ParsingReport, ParsingStage

__all__ = ["PipelineResult", "CorpusBuilder", "build_corpus"]

#: Default number of tables streamed per runner batch.
DEFAULT_BATCH_SIZE = 32


@dataclass
class PipelineResult:
    """The corpus plus per-stage reports."""

    corpus: GitTablesCorpus
    extraction_report: ExtractionReport
    parsing_report: ParsingReport
    filter_report: FilterReport
    curation_report: CurationReport
    topics: tuple[str, ...]
    #: Unified per-stage counters/timings of the streaming run.
    pipeline_report: PipelineReport | None = None

    @property
    def table_count(self) -> int:
        return len(self.corpus)


class CorpusBuilder:
    """Builds a GitTables corpus from a (simulated) GitHub instance."""

    def __init__(
        self,
        config: PipelineConfig | None = None,
        instance: GitHubInstance | None = None,
        generator_config: GeneratorConfig | None = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> None:
        # PipelineConfig validates itself in __post_init__.
        self.config = config or PipelineConfig.default()
        self.batch_size = batch_size
        if instance is None:
            instance = build_instance(self._derive_generator_config(generator_config))
        self.instance = instance
        self.client = GitHubClient(instance)
        self.extractor = CSVExtractor(self.client, self.config.extraction)
        self.parser = ParsingStage()
        self.table_filter = TableFilter(self.config.curation)
        self.annotator = AnnotationPipeline(self.config.annotation)
        self.curator = ContentCurator(self.config.curation, seed=self.config.seed)

    def _derive_generator_config(self, override: GeneratorConfig | None) -> GeneratorConfig:
        """Size the synthetic GitHub so the target table count is reachable.

        Only ~16% of files come from permissively licensed repositories
        and ~9% of the remainder is filtered, so the instance holds about
        8x the configured target in CSV files.
        """
        if override is not None:
            return override
        target_files = int(self.config.target_tables * 8)
        base = GeneratorConfig(seed=self.config.seed)
        return base.scaled_to_files(target_files)

    def pipeline(self) -> Pipeline:
        """The Figure-1 stage graph over this builder's components.

        A fresh graph (with fresh stage reports) per call; callers may
        insert, replace or reorder stages before running it. With
        ``config.workers > 1`` the parsing and annotation stages run as
        chunked thread-pool map stages (order-preserving; may prefetch
        up to ``workers + 1`` chunks past the early-stop limit).
        """
        return Pipeline(
            default_stages(
                self.extractor,
                self.parser,
                self.table_filter,
                self.annotator,
                self.curator,
                workers=self.config.workers,
                chunk_size=self.batch_size,
            ),
            batch_size=self.batch_size,
            name="gittables-build",
        )

    def build(self) -> PipelineResult:
        """Run the full streaming pipeline and return corpus plus reports."""
        config = self.config
        topic_selection = select_topics(config.extraction.topic_count, seed=config.seed)

        pipeline = self.pipeline()
        outcome = pipeline.run(
            topic_selection.topics, config=config, limit=config.target_tables
        )

        corpus = GitTablesCorpus()
        for annotated in outcome.items:
            corpus.add(annotated)

        reports = outcome.report.stage_reports
        return PipelineResult(
            corpus=corpus,
            extraction_report=reports.get("extraction", ExtractionReport()),
            parsing_report=reports.get("parsing", ParsingReport()),
            filter_report=reports.get("filtering", FilterReport()),
            curation_report=reports.get("curation", CurationReport()),
            topics=topic_selection.topics,
            pipeline_report=outcome.report,
        )


def build_corpus(
    config: PipelineConfig | None = None,
    instance: GitHubInstance | None = None,
    generator_config: GeneratorConfig | None = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> PipelineResult:
    """Convenience wrapper: construct a corpus with one call."""
    return CorpusBuilder(
        config=config,
        instance=instance,
        generator_config=generator_config,
        batch_size=batch_size,
    ).build()
