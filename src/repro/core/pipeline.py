"""End-to-end GitTables corpus construction (paper Figure 1).

:class:`CorpusBuilder` wires the stages together:

    GitHub instance → extraction → parsing → filtering → annotation →
    content curation → :class:`~repro.core.corpus.GitTablesCorpus`

The builder runs against any :class:`~repro.github.GitHubInstance`; when
none is supplied it synthesises one sized to the configured corpus
target. Every stage produces a report, all of which are bundled in the
returned :class:`PipelineResult` so experiments can reproduce the paper's
per-stage statistics (parse success rate, filter rate, PII fraction, …).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import PipelineConfig
from ..github.client import GitHubClient
from ..github.content import GeneratorConfig
from ..github.instance import GitHubInstance, build_instance
from ..wordnet.topics import select_topics
from .annotation import AnnotationPipeline
from .corpus import AnnotatedTable, GitTablesCorpus
from .curation import ContentCurator, CurationReport
from .extraction import CSVExtractor, ExtractionReport
from .filtering import FilterReport, TableFilter
from .parsing import ParsingReport, ParsingStage

__all__ = ["PipelineResult", "CorpusBuilder", "build_corpus"]


@dataclass
class PipelineResult:
    """The corpus plus per-stage reports."""

    corpus: GitTablesCorpus
    extraction_report: ExtractionReport
    parsing_report: ParsingReport
    filter_report: FilterReport
    curation_report: CurationReport
    topics: tuple[str, ...]

    @property
    def table_count(self) -> int:
        return len(self.corpus)


class CorpusBuilder:
    """Builds a GitTables corpus from a (simulated) GitHub instance."""

    def __init__(
        self,
        config: PipelineConfig | None = None,
        instance: GitHubInstance | None = None,
        generator_config: GeneratorConfig | None = None,
    ) -> None:
        self.config = config or PipelineConfig.default()
        self.config.validate()
        if instance is None:
            instance = build_instance(self._derive_generator_config(generator_config))
        self.instance = instance
        self.client = GitHubClient(instance)
        self.extractor = CSVExtractor(self.client, self.config.extraction)
        self.parser = ParsingStage()
        self.table_filter = TableFilter(self.config.curation)
        self.annotator = AnnotationPipeline(self.config.annotation)
        self.curator = ContentCurator(self.config.curation, seed=self.config.seed)

    def _derive_generator_config(self, override: GeneratorConfig | None) -> GeneratorConfig:
        """Size the synthetic GitHub so the target table count is reachable.

        Only ~16% of files come from permissively licensed repositories
        and ~9% of the remainder is filtered, so the instance holds about
        8x the configured target in CSV files.
        """
        if override is not None:
            return override
        target_files = int(self.config.target_tables * 8)
        base = GeneratorConfig(seed=self.config.seed)
        return base.scaled_to_files(target_files)

    def build(self) -> PipelineResult:
        """Run the full pipeline and return the corpus plus stage reports."""
        config = self.config
        topic_selection = select_topics(config.extraction.topic_count, seed=config.seed)

        extracted, extraction_report = self.extractor.extract(list(topic_selection.topics))
        parsed, parsing_report = self.parser.parse_all(extracted)
        kept, filter_report = self.table_filter.filter_parsed(parsed)

        corpus = GitTablesCorpus()
        curation_report = CurationReport()
        for parsed_file in kept:
            if len(corpus) >= config.target_tables:
                break
            table = parsed_file.table
            annotations = self.annotator.annotate(table)
            curated = self.curator.curate(table, annotations, report=curation_report)
            annotated = AnnotatedTable(
                table=curated.table,
                annotations=annotations,
                topic=parsed_file.source.topic,
                repository=parsed_file.source.repository,
                source_url=parsed_file.source.url,
                license_key=(
                    parsed_file.source.license.key if parsed_file.source.license else None
                ),
            )
            corpus.add(annotated)

        return PipelineResult(
            corpus=corpus,
            extraction_report=extraction_report,
            parsing_report=parsing_report,
            filter_report=filter_report,
            curation_report=curation_report,
            topics=topic_selection.topics,
        )


def build_corpus(
    config: PipelineConfig | None = None,
    instance: GitHubInstance | None = None,
    generator_config: GeneratorConfig | None = None,
) -> PipelineResult:
    """Convenience wrapper: construct a corpus with one call."""
    return CorpusBuilder(config=config, instance=instance, generator_config=generator_config).build()
